//! # DCert — secure, efficient, and versatile blockchain light clients
//!
//! A full reproduction of *"DCert: Towards Secure, Efficient, and Versatile
//! Blockchain Light Clients"* (Ji, Xu, Zhang, Xu — ACM/IFIP Middleware
//! 2022), including every substrate the system depends on: the blockchain
//! prototype, the contract VM, the authenticated data structures, the SGX
//! enclave simulation, the query layer, the Blockbench workloads, and the
//! paper's evaluation baselines.
//!
//! This facade crate re-exports the workspace's public API under one roof:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`primitives`] | `dcert-primitives` | hashes, addresses, codec, keys |
//! | [`merkle`] | `dcert-merkle` | MHT, sparse Merkle tree, Patricia trie, Merkle B-tree |
//! | [`vm`] | `dcert-vm` | deterministic contract VM with read/write-set tracking |
//! | [`chain`] | `dcert-chain` | blocks, consensus, state, full node |
//! | [`sgx`] | `dcert-sgx` | enclave simulator, attestation, cost model |
//! | [`core`] | `dcert-core` | **the paper's contribution**: certificates, CI, superlight client |
//! | [`obs`] | `dcert-obs` | deterministic metrics: counters, gauges, histograms, snapshots |
//! | [`query`] | `dcert-query` | certified indexes + verifiable queries |
//! | [`store`] | `dcert-store` | crash-safe segment/head persistence for certified history |
//! | [`baselines`] | `dcert-baselines` | traditional light client, LineageChain-style index |
//! | [`workloads`] | `dcert-workloads` | Blockbench DN/CPU/IO/KV/SB |
//!
//! Start with the [`core`] crate documentation — its example walks the full
//! pipeline — or run `cargo run --example quickstart`.

#![forbid(unsafe_code)]

pub use dcert_baselines as baselines;
pub use dcert_chain as chain;
pub use dcert_core as core;
pub use dcert_merkle as merkle;
pub use dcert_obs as obs;
pub use dcert_primitives as primitives;
pub use dcert_query as query;
pub use dcert_serve as serve;
pub use dcert_sgx as sgx;
pub use dcert_store as store;
pub use dcert_vm as vm;
pub use dcert_workloads as workloads;
