//! Segment files: reading, naming, and the two read paths.
//!
//! A segment file is immutable certified history: `SEGMENT_MAGIC` then
//! frames (see [`crate::frame`]). This module owns the *read* side — the
//! write side lives in [`crate::seg_store`], which is the only code that
//! ever appends.
//!
//! Two read modes are provided and must be byte-equivalent:
//!
//! - [`ReadMode::Resident`] slurps the whole file and scans it in memory —
//!   the stand-in for an mmap reader (the workspace forbids `unsafe`, and
//!   real `mmap` needs either `unsafe` or a dependency the build
//!   intentionally does not take).
//! - [`ReadMode::Buffered`] streams the file through a fixed-size
//!   `BufReader`, reading one frame header and payload at a time — the
//!   shape a store larger than RAM would use.
//!
//! Both paths feed the same validation (length cap, CRC, canonical record
//! decode) and stop at the first damaged frame, reporting how many bytes
//! were intact so recovery can truncate the torn tail.

use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;

use dcert_primitives::codec::Decode;

use crate::error::{io_err, StoreError};
use crate::frame::{scan_frames, Record, ScanStop, FRAME_HEADER, MAX_FRAME, SEGMENT_MAGIC};

/// How segment files are read back at recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadMode {
    /// Stream frames through a `BufReader` (constant memory).
    #[default]
    Buffered,
    /// Read the whole file into memory first (mmap stand-in).
    Resident,
}

/// File name for segment `index` (fixed width keeps lexicographic and
/// numeric order identical).
pub fn segment_file_name(index: u32) -> String {
    format!("seg-{index:08}.dcs")
}

/// Parses a segment file name back to its index.
pub fn parse_segment_file_name(name: &str) -> Option<u32> {
    let digits = name.strip_prefix("seg-")?.strip_suffix(".dcs")?;
    if digits.len() != 8 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Everything recovery learns from scanning one segment file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentScan {
    /// Records decoded from intact frames, in file order.
    pub records: Vec<Record>,
    /// Bytes of the file (including magic) covered by the magic plus
    /// intact frames; `0` means even the magic was damaged.
    pub valid_len: u64,
    /// Total bytes the file held on disk.
    pub file_len: u64,
    /// Why the scan stopped early (`None` if the whole file was intact;
    /// a bad or short magic reports [`ScanStop::ShortHeader`]).
    pub stop: Option<ScanStop>,
    /// Highest record height seen among intact frames.
    pub max_height: u64,
}

impl SegmentScan {
    /// True if the file carries a torn or corrupt tail.
    pub fn torn(&self) -> bool {
        self.valid_len < self.file_len
    }
}

/// Scans one segment file under the given read mode. Never panics; all
/// damage is reported through `SegmentScan`, all I/O failure through
/// [`StoreError::Io`].
///
/// # Errors
///
/// Only on operating-system I/O failure — a damaged file is a successful
/// scan with a `stop` reason.
pub fn read_segment(path: &Path, mode: ReadMode) -> Result<SegmentScan, StoreError> {
    match mode {
        ReadMode::Resident => {
            let bytes = std::fs::read(path).map_err(io_err("segment read"))?;
            Ok(scan_resident(&bytes))
        }
        ReadMode::Buffered => scan_buffered(path),
    }
}

fn finish(
    records: Vec<Record>,
    valid_len: u64,
    file_len: u64,
    stop: Option<ScanStop>,
) -> SegmentScan {
    let max_height = records.iter().map(|r| r.height).max().unwrap_or(0);
    SegmentScan {
        records,
        valid_len,
        file_len,
        stop,
        max_height,
    }
}

fn scan_resident(bytes: &[u8]) -> SegmentScan {
    let file_len = bytes.len() as u64;
    let Some(magic) = bytes.get(..SEGMENT_MAGIC.len()) else {
        return finish(Vec::new(), 0, file_len, Some(ScanStop::ShortHeader));
    };
    if magic != SEGMENT_MAGIC {
        return finish(Vec::new(), 0, file_len, Some(ScanStop::ShortHeader));
    }
    let frames = bytes.get(SEGMENT_MAGIC.len()..).unwrap_or(&[]);
    let outcome = scan_frames(frames);
    finish(
        outcome.records,
        SEGMENT_MAGIC.len() as u64 + outcome.valid_len,
        file_len,
        outcome.stop,
    )
}

/// Reads exactly `buf.len()` bytes unless EOF intervenes; returns how many
/// bytes were read (a short count means EOF mid-buffer — a torn tail).
fn read_fully(reader: &mut impl Read, buf: &mut [u8]) -> Result<usize, StoreError> {
    let mut filled = 0usize;
    loop {
        let space = buf.get_mut(filled..).unwrap_or(&mut []);
        if space.is_empty() {
            return Ok(filled);
        }
        match reader.read(space) {
            Ok(0) => return Ok(filled),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(io_err("segment read")(e)),
        }
    }
}

fn scan_buffered(path: &Path) -> Result<SegmentScan, StoreError> {
    let file = File::open(path).map_err(io_err("segment open"))?;
    let file_len = file.metadata().map_err(io_err("segment metadata"))?.len();
    let mut reader = BufReader::with_capacity(64 * 1024, file);

    let mut magic = [0u8; SEGMENT_MAGIC.len()];
    let got = read_fully(&mut reader, &mut magic)?;
    if got != SEGMENT_MAGIC.len() || magic != SEGMENT_MAGIC {
        return Ok(finish(Vec::new(), 0, file_len, Some(ScanStop::ShortHeader)));
    }

    let mut records = Vec::new();
    let mut valid_len = SEGMENT_MAGIC.len() as u64;
    let stop = loop {
        let mut header = [0u8; FRAME_HEADER];
        let got = read_fully(&mut reader, &mut header)?;
        if got == 0 {
            break None;
        }
        if got < FRAME_HEADER {
            break Some(ScanStop::ShortHeader);
        }
        let (len_bytes, crc_bytes) = header.split_at(4);
        let len = u32::from_be_bytes(len_bytes.try_into().unwrap_or([0; 4]));
        let want_crc = u32::from_be_bytes(crc_bytes.try_into().unwrap_or([0; 4]));
        if u64::from(len) > MAX_FRAME {
            break Some(ScanStop::OversizeFrame);
        }
        let Ok(payload_len) = usize::try_from(len) else {
            break Some(ScanStop::OversizeFrame);
        };
        let mut payload = vec![0u8; payload_len];
        let got = read_fully(&mut reader, &mut payload)?;
        if got < payload_len {
            break Some(ScanStop::ShortPayload);
        }
        if crate::crc32::crc32(&payload) != want_crc {
            break Some(ScanStop::CrcMismatch);
        }
        match Record::decode_all(&payload) {
            Ok(record) => {
                records.push(record);
                valid_len += (FRAME_HEADER + payload_len) as u64;
            }
            Err(_) => break Some(ScanStop::BadRecord),
        }
    };
    Ok(finish(records, valid_len, file_len, stop))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{append_frame, StreamId};
    use dcert_primitives::Encode;

    fn temp_file(label: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = crate::testutil::temp_dir(label).join(segment_file_name(0));
        std::fs::write(&path, bytes).unwrap();
        path
    }

    fn sample_segment(n: u64) -> Vec<u8> {
        let mut bytes = SEGMENT_MAGIC.to_vec();
        for h in 1..=n {
            let record = Record::new(h, StreamId::Writes, vec![h as u8; 24]);
            append_frame(&record.to_encoded_bytes(), &mut bytes).unwrap();
        }
        bytes
    }

    #[test]
    fn file_name_round_trip() {
        assert_eq!(segment_file_name(7), "seg-00000007.dcs");
        assert_eq!(parse_segment_file_name("seg-00000007.dcs"), Some(7));
        assert_eq!(parse_segment_file_name("seg-7.dcs"), None);
        assert_eq!(parse_segment_file_name("head-a.dch"), None);
    }

    #[test]
    fn both_read_modes_agree_on_intact_file() {
        let bytes = sample_segment(9);
        let path = temp_file("modes-intact", &bytes);
        let buffered = read_segment(&path, ReadMode::Buffered).unwrap();
        let resident = read_segment(&path, ReadMode::Resident).unwrap();
        assert_eq!(buffered, resident);
        assert_eq!(buffered.records.len(), 9);
        assert!(!buffered.torn());
        assert_eq!(buffered.max_height, 9);
    }

    #[test]
    fn both_read_modes_agree_at_every_truncation() {
        let bytes = sample_segment(4);
        for cut in 0..bytes.len() {
            let path = temp_file("modes-cut", &bytes[..cut]);
            let buffered = read_segment(&path, ReadMode::Buffered).unwrap();
            let resident = read_segment(&path, ReadMode::Resident).unwrap();
            assert_eq!(buffered, resident, "cut {cut}");
            assert!(buffered.valid_len <= cut as u64);
        }
    }

    #[test]
    fn bad_magic_reports_zero_valid_bytes() {
        let mut bytes = sample_segment(2);
        bytes[0] ^= 0xFF;
        let path = temp_file("bad-magic", &bytes);
        let scan = read_segment(&path, ReadMode::Buffered).unwrap();
        assert_eq!(scan.valid_len, 0);
        assert!(scan.torn());
        assert!(scan.records.is_empty());
    }
}
