//! `MemStore` — the in-RAM reference backend.
//!
//! Exactly the behavior the workspace had before persistence existed:
//! appends land in a `Vec`, head entries in a `BTreeMap`, and `sync` is
//! free. It is kept for two reasons: fast tests, and as the *oracle* the
//! equivalence suite compares [`crate::SegmentStore`] against — every read
//! a segment store answers must be byte-identical to a `MemStore` fed the
//! same history.

use std::collections::BTreeMap;

use crate::error::StoreError;
use crate::frame::Record;
use crate::Store;

/// In-memory [`Store`] backend.
#[derive(Debug, Default, Clone)]
pub struct MemStore {
    records: Vec<Record>,
    entries: BTreeMap<String, Vec<u8>>,
    durable_height: u64,
    max_height: u64,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MemStore::default()
    }
}

impl Store for MemStore {
    fn backend(&self) -> &'static str {
        "mem"
    }

    fn append(&mut self, record: &Record) -> Result<(), StoreError> {
        self.max_height = self.max_height.max(record.height);
        self.records.push(record.clone());
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        self.durable_height = self.max_height;
        Ok(())
    }

    fn put_head(&mut self, key: &str, value: Vec<u8>) -> Result<(), StoreError> {
        self.entries.insert(key.to_owned(), value);
        Ok(())
    }

    fn head(&self, key: &str) -> Option<Vec<u8>> {
        self.entries.get(key).cloned()
    }

    fn head_entries(&self) -> Vec<(String, Vec<u8>)> {
        self.entries
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    fn records(&self) -> Vec<Record> {
        self.records.clone()
    }

    fn durable_height(&self) -> u64 {
        self.durable_height
    }

    fn max_height(&self) -> u64 {
        self.max_height
    }

    fn prune_below(&mut self, height: u64) -> Result<(), StoreError> {
        self.records.retain(|r| r.height >= height);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::StreamId;

    #[test]
    fn durable_height_follows_sync() {
        let mut store = MemStore::new();
        store
            .append(&Record::new(3, StreamId::Cert, vec![1]))
            .unwrap();
        assert_eq!(store.durable_height(), 0);
        assert_eq!(store.max_height(), 3);
        store.sync().unwrap();
        assert_eq!(store.durable_height(), 3);
    }

    #[test]
    fn head_entries_sorted_and_overwritable() {
        let mut store = MemStore::new();
        store.put_head("b", vec![2]).unwrap();
        store.put_head("a", vec![1]).unwrap();
        store.put_head("b", vec![9]).unwrap();
        assert_eq!(store.head("b"), Some(vec![9]));
        assert_eq!(
            store.head_entries(),
            vec![("a".into(), vec![1]), ("b".into(), vec![9])]
        );
    }

    #[test]
    fn prune_below_drops_exactly() {
        let mut store = MemStore::new();
        for h in 1..=5 {
            store
                .append(&Record::new(h, StreamId::Cert, vec![]))
                .unwrap();
        }
        store.prune_below(3).unwrap();
        let heights: Vec<u64> = store.records().iter().map(|r| r.height).collect();
        assert_eq!(heights, vec![3, 4, 5]);
    }
}
