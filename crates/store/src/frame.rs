//! The on-disk wire format: CRC32-framed records.
//!
//! A segment file is `SEGMENT_MAGIC` followed by zero or more frames; each
//! frame is
//!
//! ```text
//! ┌────────────┬──────────────────┬────────────────┐
//! │ len: u32 BE│ crc32(payload)   │ payload (len B)│
//! └────────────┴──────────────────┴────────────────┘
//! ```
//!
//! and every payload is the canonical encoding of a [`Record`]. The frame
//! layer is what makes recovery decidable: a torn tail fails the length,
//! CRC, or record-decode check at the first damaged frame, and everything
//! before that point is provably intact (up to CRC-32's burst guarantees —
//! semantic re-verification against the latest certificate is layered on
//! top by the store's consumers).
//!
//! Scanning never panics and never allocates proportionally to a corrupt
//! length prefix: frame lengths are capped at [`MAX_FRAME`] before any
//! buffer is touched.

use dcert_primitives::codec::{Decode, Encode, Reader, MAX_LEN};
use dcert_primitives::CodecError;

use crate::crc32::crc32;
use crate::error::StoreError;

/// First eight bytes of every segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"DCSEGv1\0";

/// First eight bytes of every head-region slot file.
pub const HEAD_MAGIC: [u8; 8] = *b"DCHEAD1\0";

/// Bytes of frame header preceding each payload (`len` + `crc`).
pub const FRAME_HEADER: usize = 8;

/// Maximum frame payload accepted, matching the canonical codec's
/// [`MAX_LEN`] so no decodable record can ever be unframeable.
pub const MAX_FRAME: u64 = MAX_LEN;

/// Which logical stream a [`Record`] belongs to. Streams share one
/// physical segment sequence; consumers filter by stream on replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StreamId {
    /// Certified network messages retained by the archive
    /// (`NetMessage::BlockCert` / `NetMessage::IndexCert` encodings).
    Cert,
    /// Per-block state writes (replayed into history/aggregate indexes).
    Writes,
    /// Per-block keyword appends (replayed into inverted indexes).
    Keywords,
    /// Consumer-defined checkpoint payloads.
    Checkpoint,
}

impl StreamId {
    fn tag(self) -> u8 {
        match self {
            StreamId::Cert => 1,
            StreamId::Writes => 2,
            StreamId::Keywords => 3,
            StreamId::Checkpoint => 4,
        }
    }
}

impl Encode for StreamId {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.tag());
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Decode for StreamId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_byte()? {
            1 => Ok(StreamId::Cert),
            2 => Ok(StreamId::Writes),
            3 => Ok(StreamId::Keywords),
            4 => Ok(StreamId::Checkpoint),
            other => Err(CodecError::InvalidTag(other)),
        }
    }
}

/// One appended unit of certified history: a block height, a stream tag,
/// and an opaque body (itself a canonical encoding owned by the consumer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Block height the record belongs to.
    pub height: u64,
    /// Logical stream the record belongs to.
    pub stream: StreamId,
    /// Consumer-owned canonical encoding.
    pub body: Vec<u8>,
}

impl Record {
    /// Builds a record.
    pub fn new(height: u64, stream: StreamId, body: Vec<u8>) -> Self {
        Record {
            height,
            stream,
            body,
        }
    }
}

impl Encode for Record {
    fn encode(&self, out: &mut Vec<u8>) {
        self.height.encode(out);
        self.stream.encode(out);
        self.body.encode(out);
    }
    fn encoded_len(&self) -> usize {
        8 + 1 + self.body.encoded_len()
    }
}

impl Decode for Record {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Record {
            height: u64::decode(r)?,
            stream: StreamId::decode(r)?,
            body: Vec::<u8>::decode(r)?,
        })
    }
}

/// Reads four big-endian bytes as a `u32`, if exactly four are given.
fn be_u32(bytes: &[u8]) -> Option<u32> {
    let fixed: [u8; 4] = bytes.try_into().ok()?;
    Some(u32::from_be_bytes(fixed))
}

/// Appends one frame (`len ‖ crc32 ‖ payload`) to `out`.
///
/// # Errors
///
/// Returns [`StoreError::RecordTooLarge`] if the payload exceeds
/// [`MAX_FRAME`].
pub fn append_frame(payload: &[u8], out: &mut Vec<u8>) -> Result<(), StoreError> {
    let len =
        u32::try_from(payload.len()).map_err(|_| StoreError::RecordTooLarge(payload.len()))?;
    if u64::from(len) > MAX_FRAME {
        return Err(StoreError::RecordTooLarge(payload.len()));
    }
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(&crc32(payload).to_be_bytes());
    out.extend_from_slice(payload);
    Ok(())
}

/// Size in bytes of the frame that [`append_frame`] produces for a payload
/// of `payload_len` bytes.
pub fn framed_len(payload_len: usize) -> u64 {
    (FRAME_HEADER + payload_len) as u64
}

/// Why a frame scan stopped before the end of its input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanStop {
    /// Fewer than [`FRAME_HEADER`] bytes remained.
    ShortHeader,
    /// The length prefix promised more payload bytes than remained.
    ShortPayload,
    /// The length prefix exceeded [`MAX_FRAME`].
    OversizeFrame,
    /// The payload failed its CRC-32 check.
    CrcMismatch,
    /// The payload passed CRC but was not a canonical [`Record`].
    BadRecord,
}

/// Result of scanning a byte run for consecutive intact frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Records decoded from intact frames, in file order.
    pub records: Vec<Record>,
    /// Bytes of `input` covered by intact frames (the torn tail, if any,
    /// starts here).
    pub valid_len: u64,
    /// Why the scan stopped early, or `None` if it consumed everything.
    pub stop: Option<ScanStop>,
}

/// Scans `input` (the byte run *after* a segment's magic) for consecutive
/// intact frames, stopping at the first damaged one. Never panics.
pub fn scan_frames(input: &[u8]) -> ScanOutcome {
    let mut records = Vec::new();
    let mut offset = 0usize;
    let stop = loop {
        let rest = input.get(offset..).unwrap_or(&[]);
        if rest.is_empty() {
            break None;
        }
        let Some(header) = rest.get(..FRAME_HEADER) else {
            break Some(ScanStop::ShortHeader);
        };
        let (len_bytes, crc_bytes) = header.split_at(4);
        let (Some(len), Some(want_crc)) = (be_u32(len_bytes), be_u32(crc_bytes)) else {
            break Some(ScanStop::ShortHeader);
        };
        if u64::from(len) > MAX_FRAME {
            break Some(ScanStop::OversizeFrame);
        }
        let Ok(payload_len) = usize::try_from(len) else {
            break Some(ScanStop::OversizeFrame);
        };
        let Some(payload) = rest.get(FRAME_HEADER..FRAME_HEADER + payload_len) else {
            break Some(ScanStop::ShortPayload);
        };
        if crc32(payload) != want_crc {
            break Some(ScanStop::CrcMismatch);
        }
        match Record::decode_all(payload) {
            Ok(record) => {
                records.push(record);
                offset += FRAME_HEADER + payload_len;
            }
            Err(_) => break Some(ScanStop::BadRecord),
        }
    };
    ScanOutcome {
        records,
        valid_len: offset as u64,
        stop,
    }
}

/// Verifies that `input` is exactly one intact frame and returns its
/// payload. Used by the head region, which holds a single framed state
/// per slot.
///
/// # Errors
///
/// Returns [`StoreError::HeadCorrupt`] describing the first check that
/// failed.
pub fn decode_framed(input: &[u8]) -> Result<&[u8], StoreError> {
    let Some(header) = input.get(..FRAME_HEADER) else {
        return Err(StoreError::HeadCorrupt {
            detail: "short frame header",
        });
    };
    let (len_bytes, crc_bytes) = header.split_at(4);
    let (Some(len), Some(want_crc)) = (be_u32(len_bytes), be_u32(crc_bytes)) else {
        return Err(StoreError::HeadCorrupt {
            detail: "short frame header",
        });
    };
    if u64::from(len) > MAX_FRAME {
        return Err(StoreError::HeadCorrupt {
            detail: "oversize frame",
        });
    }
    let Ok(payload_len) = usize::try_from(len) else {
        return Err(StoreError::HeadCorrupt {
            detail: "oversize frame",
        });
    };
    let payload = input.get(FRAME_HEADER..).unwrap_or(&[]);
    if payload.len() != payload_len {
        return Err(StoreError::HeadCorrupt {
            detail: "frame length mismatch",
        });
    }
    if crc32(payload) != want_crc {
        return Err(StoreError::HeadCorrupt {
            detail: "frame crc mismatch",
        });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(height: u64) -> Record {
        Record::new(height, StreamId::Cert, vec![7; 16])
    }

    #[test]
    fn record_round_trip() {
        let r = sample(42);
        assert_eq!(Record::decode_all(&r.to_encoded_bytes()).unwrap(), r);
        assert_eq!(r.encoded_len(), r.to_encoded_bytes().len());
    }

    #[test]
    fn stream_id_rejects_unknown_tag() {
        assert!(matches!(
            StreamId::decode_all(&[9]),
            Err(CodecError::InvalidTag(9))
        ));
    }

    #[test]
    fn scan_recovers_all_intact_frames() {
        let mut bytes = Vec::new();
        for h in 1..=5 {
            append_frame(&sample(h).to_encoded_bytes(), &mut bytes).unwrap();
        }
        let outcome = scan_frames(&bytes);
        assert_eq!(outcome.records.len(), 5);
        assert_eq!(outcome.valid_len, bytes.len() as u64);
        assert_eq!(outcome.stop, None);
    }

    #[test]
    fn scan_stops_at_every_truncation() {
        let mut bytes = Vec::new();
        let mut boundaries = vec![0u64];
        for h in 1..=4 {
            append_frame(&sample(h).to_encoded_bytes(), &mut bytes).unwrap();
            boundaries.push(bytes.len() as u64);
        }
        for cut in 0..bytes.len() {
            let outcome = scan_frames(&bytes[..cut]);
            // valid_len is the largest frame boundary ≤ cut.
            let want = boundaries
                .iter()
                .copied()
                .filter(|&b| b <= cut as u64)
                .max()
                .unwrap();
            assert_eq!(outcome.valid_len, want, "cut at {cut}");
            assert_eq!(outcome.records.len() as u64, {
                boundaries.iter().filter(|&&b| b <= cut as u64).count() as u64 - 1
            });
            // A cut exactly on a frame boundary looks like a clean (shorter)
            // file; any other cut must be reported as damage.
            if boundaries.contains(&(cut as u64)) {
                assert!(outcome.stop.is_none(), "cut at {cut} is a clean boundary");
            } else {
                assert!(outcome.stop.is_some(), "cut at {cut} must report a stop");
            }
        }
    }

    #[test]
    fn scan_detects_every_single_bit_flip() {
        let mut bytes = Vec::new();
        append_frame(&sample(1).to_encoded_bytes(), &mut bytes).unwrap();
        let clean = scan_frames(&bytes);
        assert_eq!(clean.records.len(), 1);
        for pos in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[pos] ^= 1 << bit;
                let outcome = scan_frames(&flipped);
                // A flip in the length prefix can only shorten/lengthen the
                // frame (caught as Short*/Oversize/Crc); a flip in crc or
                // payload is a CRC mismatch; any flip must stop the scan.
                assert!(
                    outcome.records.is_empty() && outcome.stop.is_some(),
                    "flip at {pos}:{bit} slipped through: {outcome:?}"
                );
            }
        }
    }

    #[test]
    fn oversize_length_prefix_does_not_allocate() {
        let mut bytes = vec![0xFF, 0xFF, 0xFF, 0xFF];
        bytes.extend_from_slice(&[0; 12]);
        let outcome = scan_frames(&bytes);
        assert_eq!(outcome.stop, Some(ScanStop::OversizeFrame));
        assert_eq!(outcome.valid_len, 0);
    }

    #[test]
    fn decode_framed_round_trip_and_refusals() {
        let mut framed = Vec::new();
        append_frame(b"head state", &mut framed).unwrap();
        assert_eq!(decode_framed(&framed).unwrap(), b"head state");
        // Truncations and trailing junk are both refused.
        for cut in 0..framed.len() {
            assert!(decode_framed(&framed[..cut]).is_err(), "cut {cut}");
        }
        let mut extended = framed.clone();
        extended.push(0);
        assert!(decode_framed(&extended).is_err());
    }
}
