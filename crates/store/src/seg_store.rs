//! `SegmentStore` — the durable backend: append-only segments plus the
//! A/B head region, with crash recovery at open.
//!
//! # Write protocol
//!
//! 1. `append` frames the record and writes it to the active segment file
//!    (no fsync — the bytes are *volatile* until the next sync). When the
//!    active segment would outgrow `max_segment_bytes` it is fsynced and
//!    sealed, and a fresh segment starts.
//! 2. `sync` fsyncs the active segment **first**, then writes the head
//!    region (alternating slot, sequence + 1, per-segment durable byte
//!    lengths, consumer head entries) and fsyncs it. Ordering matters: the
//!    head may lag the segments but must never lead them.
//!
//! # Recovery protocol (at [`SegmentStore::open`])
//!
//! 1. Pick the authoritative head slot ([`crate::head::choose_head`]);
//!    refuse with [`StoreError::HeadCorrupt`] if slots exist but none
//!    decodes.
//! 2. Scan every segment in index order, stopping at the first damaged
//!    frame. If the intact prefix is shorter than the head's durable
//!    watermark for that segment, acknowledged data was lost — refuse
//!    with [`StoreError::DurableDataLost`].
//! 3. Physically truncate any torn tail, replay intact records (including
//!    redo records past the watermark — they were written before the
//!    crash and prove themselves by CRC plus consumer re-verification),
//!    and drop unreachable files (segments orphaned by an interrupted
//!    prune, or garbage after a torn segment).
//!
//! The store itself guarantees *integrity* (what is replayed is exactly
//! what was written); *authenticity* is layered on top by consumers, which
//! re-verify the recovered state against the latest certificate before
//! serving (`CertArchive::recover`, `ServiceProvider::recover_from`).

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use dcert_obs::{Counter, Gauge, Registry};
use dcert_primitives::Encode;

use crate::error::{io_err, StoreError};
use crate::frame::{append_frame, Record, SEGMENT_MAGIC};
use crate::head::{choose_head, HeadState, SegmentMark, HEAD_SLOT_A, HEAD_SLOT_B};
use crate::segment::{parse_segment_file_name, read_segment, segment_file_name, ReadMode};
use crate::Store;

/// Default segment roll threshold (4 MiB).
pub const DEFAULT_MAX_SEGMENT_BYTES: u64 = 4 << 20;

/// Configuration for opening a [`SegmentStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding segment and head files (created if absent).
    pub dir: PathBuf,
    /// Roll the active segment when it would exceed this many bytes.
    pub max_segment_bytes: u64,
    /// How segment files are read back at recovery.
    pub read_mode: ReadMode,
    /// Registry receiving the `store.*` metrics (disabled by default).
    pub obs: Registry,
}

impl StoreConfig {
    /// Builds a config with defaults: 4 MiB segments, buffered reads, no
    /// observability.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        StoreConfig {
            dir: dir.into(),
            max_segment_bytes: DEFAULT_MAX_SEGMENT_BYTES,
            read_mode: ReadMode::default(),
            obs: Registry::disabled(),
        }
    }

    /// Sets the segment roll threshold.
    pub fn max_segment_bytes(mut self, bytes: u64) -> Self {
        self.max_segment_bytes = bytes.max(64);
        self
    }

    /// Sets the recovery read mode.
    pub fn read_mode(mut self, mode: ReadMode) -> Self {
        self.read_mode = mode;
        self
    }

    /// Attaches an observability registry.
    pub fn obs(mut self, registry: Registry) -> Self {
        self.obs = registry;
        self
    }
}

/// What recovery found and did at [`SegmentStore::open`]. All zeros for a
/// brand-new store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Intact records replayed from segment files.
    pub replayed: u64,
    /// Segment files whose torn tail was truncated (or that were dropped
    /// wholesale as unreachable).
    pub truncated_segments: u64,
    /// Bytes removed by those truncations.
    pub truncated_bytes: u64,
    /// Durable watermark the head region certified.
    pub durable_height: u64,
    /// Highest record height actually recovered (≥ `durable_height` when
    /// redo records survived past the watermark).
    pub recovered_height: u64,
}

/// `store.*` metric handles.
struct Metrics {
    appends: Counter,
    segment_bytes: Counter,
    fsyncs: Counter,
    head_writes: Counter,
    recovery_replays: Counter,
    tail_truncations: Counter,
    truncated_bytes: Counter,
    segments: Gauge,
    disk_bytes: Gauge,
}

impl Metrics {
    fn new(registry: &Registry) -> Self {
        Metrics {
            appends: registry.counter("store.appends"),
            segment_bytes: registry.counter("store.segment_bytes"),
            fsyncs: registry.counter("store.fsyncs"),
            head_writes: registry.counter("store.head_writes"),
            recovery_replays: registry.counter("store.recovery_replays"),
            tail_truncations: registry.counter("store.tail_truncations"),
            truncated_bytes: registry.counter("store.truncated_bytes"),
            segments: registry.gauge("store.segments"),
            disk_bytes: registry.gauge("store.disk_bytes"),
        }
    }
}

/// Live bookkeeping for one segment file.
#[derive(Debug, Clone)]
struct SegMeta {
    index: u32,
    len: u64,
    max_height: u64,
    records: usize,
}

/// The durable [`Store`] backend.
impl std::fmt::Debug for SegmentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentStore")
            .field("dir", &self.dir)
            .field("segments", &self.metas.len())
            .field("records", &self.records.len())
            .field("durable_height", &self.durable_height)
            .field("max_height", &self.max_height)
            .field("poisoned", &self.poisoned)
            .finish_non_exhaustive()
    }
}

pub struct SegmentStore {
    dir: PathBuf,
    max_segment_bytes: u64,
    metrics: Metrics,
    active: File,
    metas: Vec<SegMeta>,
    records: Vec<Record>,
    entries: BTreeMap<String, Vec<u8>>,
    seq: u64,
    durable_height: u64,
    max_height: u64,
    report: RecoveryReport,
    poisoned: Option<StoreError>,
}

impl SegmentStore {
    /// Opens (or creates) a store in `config.dir`, running crash recovery
    /// if the directory already holds data.
    ///
    /// # Errors
    ///
    /// - [`StoreError::HeadCorrupt`] — head slots exist but none decodes.
    /// - [`StoreError::DurableDataLost`] — a segment's intact prefix is
    ///   shorter than the durable watermark (or a marked segment is
    ///   missing entirely).
    /// - [`StoreError::Io`] — operating-system failure.
    pub fn open(config: StoreConfig) -> Result<Self, StoreError> {
        std::fs::create_dir_all(&config.dir).map_err(io_err("store mkdir"))?;
        let metrics = Metrics::new(&config.obs);

        let slot_a = read_slot(&config.dir, HEAD_SLOT_A)?;
        let slot_b = read_slot(&config.dir, HEAD_SLOT_B)?;
        let head = choose_head(slot_a, slot_b)?;
        let on_disk = list_segments(&config.dir)?;

        let mut store = SegmentStore {
            dir: config.dir,
            max_segment_bytes: config.max_segment_bytes,
            metrics,
            // Placeholder; replaced below once the active segment is known.
            active: File::open("/dev/null").map_err(io_err("store open"))?,
            metas: Vec::new(),
            records: Vec::new(),
            entries: BTreeMap::new(),
            seq: 0,
            durable_height: 0,
            max_height: 0,
            report: RecoveryReport::default(),
            poisoned: None,
        };
        store.recover(head, on_disk, config.read_mode)?;
        Ok(store)
    }

    fn recover(
        &mut self,
        head: Option<HeadState>,
        on_disk: Vec<u32>,
        read_mode: ReadMode,
    ) -> Result<(), StoreError> {
        let head = head.unwrap_or_default();

        // Every segment the head marks durable must still be present.
        for mark in &head.segments {
            if mark.durable_len > 0 && !on_disk.contains(&mark.index) {
                return Err(StoreError::DurableDataLost {
                    segment: mark.index,
                    durable: mark.durable_len,
                    recovered: 0,
                });
            }
        }
        let min_marked = head.segments.iter().map(|m| m.index).min();

        let mut prev_torn = false;
        for index in on_disk {
            let path = self.dir.join(segment_file_name(index));
            // A segment older than everything the head tracks was orphaned
            // by an interrupted prune: the head (written first) already
            // disowned it, so finish the job.
            if head.seq > 0 && min_marked.map(|min| index < min).unwrap_or(true) {
                let dropped = path
                    .metadata()
                    .map(|m| m.len())
                    .map_err(io_err("segment metadata"))?;
                std::fs::remove_file(&path).map_err(io_err("segment remove"))?;
                self.report.truncated_segments += 1;
                self.report.truncated_bytes += dropped;
                continue;
            }
            let durable = head.durable_len(index).unwrap_or(0);
            let scan = read_segment(&path, read_mode)?;
            if scan.valid_len < durable {
                return Err(StoreError::DurableDataLost {
                    segment: index,
                    durable,
                    recovered: scan.valid_len,
                });
            }
            if prev_torn {
                // Nothing after a torn segment can be durable (checked
                // above), so any remaining file is unreachable garbage.
                std::fs::remove_file(&path).map_err(io_err("segment remove"))?;
                self.report.truncated_segments += 1;
                self.report.truncated_bytes += scan.file_len;
                continue;
            }
            // A file shorter than the magic (e.g. zero bytes, from a crash
            // between segment create and the magic write) is not "torn" by
            // the length test but still needs its header restored before
            // anything can be appended to it.
            if scan.torn() || scan.valid_len < SEGMENT_MAGIC.len() as u64 {
                truncate_segment(&path, scan.valid_len)?;
                self.report.truncated_segments += 1;
                self.report.truncated_bytes += scan.file_len - scan.valid_len;
                prev_torn = true;
            }
            self.report.replayed += scan.records.len() as u64;
            self.metas.push(SegMeta {
                index,
                len: scan.valid_len.max(SEGMENT_MAGIC.len() as u64),
                max_height: scan.max_height,
                records: scan.records.len(),
            });
            self.records.extend(scan.records);
        }

        // A brand-new store (or one whose every segment was dropped)
        // starts a fresh segment after the highest index ever used.
        if self.metas.is_empty() {
            let next = head.segments.iter().map(|m| m.index + 1).max().unwrap_or(0);
            self.create_segment(next)?;
        }

        self.seq = head.seq;
        self.durable_height = head.durable_height;
        self.max_height = self
            .records
            .iter()
            .map(|r| r.height)
            .max()
            .unwrap_or(0)
            .max(head.durable_height);
        self.entries = head.entries.iter().cloned().collect();
        self.report.durable_height = head.durable_height;
        self.report.recovered_height = self.max_height;

        // (Re)open the active segment for appending.
        let active_meta = self.metas.last().ok_or(StoreError::HeadCorrupt {
            detail: "no active segment after recovery",
        })?;
        let path = self.dir.join(segment_file_name(active_meta.index));
        self.active = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(io_err("segment open"))?;

        self.metrics.recovery_replays.add(self.report.replayed);
        self.metrics
            .tail_truncations
            .add(self.report.truncated_segments);
        self.metrics
            .truncated_bytes
            .add(self.report.truncated_bytes);
        self.publish_gauges();
        Ok(())
    }

    /// Creates a fresh segment file (magic only) and makes it active.
    fn create_segment(&mut self, index: u32) -> Result<(), StoreError> {
        let path = self.dir.join(segment_file_name(index));
        let mut file = File::create(&path).map_err(io_err("segment create"))?;
        file.write_all(&SEGMENT_MAGIC)
            .map_err(io_err("segment create"))?;
        self.active = file;
        self.metas.push(SegMeta {
            index,
            len: SEGMENT_MAGIC.len() as u64,
            max_height: 0,
            records: 0,
        });
        // Make the new directory entry itself durable (best effort: the
        // next head fsync orders it anyway on the journaled filesystems
        // this targets).
        if let Ok(dir) = File::open(&self.dir) {
            let _ = dir.sync_all();
        }
        Ok(())
    }

    fn publish_gauges(&self) {
        self.metrics.segments.set(self.metas.len() as i64);
        let total: u64 = self.metas.iter().map(|m| m.len).sum();
        self.metrics
            .disk_bytes
            .set(i64::try_from(total).unwrap_or(i64::MAX));
    }

    /// What recovery found and did when this store was opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.report
    }

    /// Directory holding this store's files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total bytes across live segment files.
    pub fn disk_bytes(&self) -> u64 {
        self.metas.iter().map(|m| m.len).sum()
    }

    /// Paths of live segment files, ascending by index.
    pub fn segment_paths(&self) -> Vec<PathBuf> {
        self.metas
            .iter()
            .map(|m| self.dir.join(segment_file_name(m.index)))
            .collect()
    }

    fn fsync_active(&mut self) -> Result<(), StoreError> {
        self.active.sync_all().map_err(io_err("segment fsync"))?;
        self.metrics.fsyncs.inc();
        Ok(())
    }

    /// Seals the active segment and starts the next one.
    fn roll(&mut self) -> Result<(), StoreError> {
        self.fsync_active()?;
        let next = self.metas.last().map(|m| m.index + 1).unwrap_or(0);
        self.create_segment(next)?;
        Ok(())
    }

    fn poison(&mut self, err: StoreError) -> StoreError {
        self.poisoned = Some(err.clone());
        err
    }
}

fn read_slot(dir: &Path, name: &str) -> Result<Option<Result<HeadState, StoreError>>, StoreError> {
    match std::fs::read(dir.join(name)) {
        Ok(bytes) => Ok(Some(HeadState::decode_slot_file(name, &bytes))),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(io_err("head read")(e)),
    }
}

fn list_segments(dir: &Path) -> Result<Vec<u32>, StoreError> {
    let mut indices = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(io_err("store readdir"))? {
        let entry = entry.map_err(io_err("store readdir"))?;
        if let Some(index) = entry.file_name().to_str().and_then(parse_segment_file_name) {
            indices.push(index);
        }
    }
    indices.sort_unstable();
    Ok(indices)
}

/// Truncates a torn segment to its intact prefix; a file whose magic was
/// damaged is reset to a bare magic header.
fn truncate_segment(path: &Path, valid_len: u64) -> Result<(), StoreError> {
    if valid_len < SEGMENT_MAGIC.len() as u64 {
        std::fs::write(path, SEGMENT_MAGIC).map_err(io_err("segment truncate"))?;
        return Ok(());
    }
    let file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(io_err("segment truncate"))?;
    file.set_len(valid_len)
        .map_err(io_err("segment truncate"))?;
    file.sync_all().map_err(io_err("segment truncate"))?;
    Ok(())
}

impl Store for SegmentStore {
    fn backend(&self) -> &'static str {
        "segment"
    }

    fn append(&mut self, record: &Record) -> Result<(), StoreError> {
        if self.poisoned.is_some() {
            return Err(StoreError::Poisoned);
        }
        let mut frame = Vec::with_capacity(record.encoded_len() + 8);
        append_frame(&record.to_encoded_bytes(), &mut frame)?;
        let frame_len = frame.len() as u64;

        let active_len = self.metas.last().map(|m| m.len).unwrap_or(0);
        if active_len + frame_len > self.max_segment_bytes
            && active_len > SEGMENT_MAGIC.len() as u64
        {
            if let Err(e) = self.roll() {
                return Err(self.poison(e));
            }
        }
        if let Err(e) = self
            .active
            .write_all(&frame)
            .map_err(io_err("segment append"))
        {
            return Err(self.poison(e));
        }
        if let Some(meta) = self.metas.last_mut() {
            meta.len += frame_len;
            meta.max_height = meta.max_height.max(record.height);
            meta.records += 1;
        }
        self.max_height = self.max_height.max(record.height);
        self.records.push(record.clone());
        self.metrics.appends.inc();
        self.metrics.segment_bytes.add(frame_len);
        self.publish_gauges();
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        if self.poisoned.is_some() {
            return Err(StoreError::Poisoned);
        }
        if let Err(e) = self.fsync_active() {
            return Err(self.poison(e));
        }
        let state = HeadState {
            seq: self.seq + 1,
            durable_height: self.max_height,
            segments: self
                .metas
                .iter()
                .map(|m| SegmentMark {
                    index: m.index,
                    durable_len: m.len,
                })
                .collect(),
            entries: self
                .entries
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        };
        let slot = self.dir.join(if state.seq % 2 == 1 {
            HEAD_SLOT_A
        } else {
            HEAD_SLOT_B
        });
        let write_head = || -> Result<(), StoreError> {
            let bytes = state.encode_slot_file()?;
            let mut file = File::create(&slot).map_err(io_err("head write"))?;
            file.write_all(&bytes).map_err(io_err("head write"))?;
            file.sync_all().map_err(io_err("head fsync"))?;
            Ok(())
        };
        if let Err(e) = write_head() {
            return Err(self.poison(e));
        }
        self.metrics.fsyncs.inc();
        self.metrics.head_writes.inc();
        self.seq = state.seq;
        self.durable_height = state.durable_height;
        Ok(())
    }

    fn put_head(&mut self, key: &str, value: Vec<u8>) -> Result<(), StoreError> {
        if self.poisoned.is_some() {
            return Err(StoreError::Poisoned);
        }
        self.entries.insert(key.to_owned(), value);
        Ok(())
    }

    fn head(&self, key: &str) -> Option<Vec<u8>> {
        self.entries.get(key).cloned()
    }

    fn head_entries(&self) -> Vec<(String, Vec<u8>)> {
        self.entries
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    fn records(&self) -> Vec<Record> {
        self.records.clone()
    }

    fn durable_height(&self) -> u64 {
        self.durable_height
    }

    fn max_height(&self) -> u64 {
        self.max_height
    }

    /// Drops whole sealed segments whose every record is below `height`.
    /// Head-first ordering keeps this crash-safe: the head stops tracking
    /// a segment before its file is unlinked, so recovery treats a
    /// half-pruned file as an orphan and finishes the job.
    fn prune_below(&mut self, height: u64) -> Result<(), StoreError> {
        if self.poisoned.is_some() {
            return Err(StoreError::Poisoned);
        }
        let mut drop_metas = Vec::new();
        while self.metas.len() > 1 {
            let Some(first) = self.metas.first() else {
                break;
            };
            if first.max_height >= height || first.records == 0 {
                break;
            }
            drop_metas.push(self.metas.remove(0));
        }
        if drop_metas.is_empty() {
            return Ok(());
        }
        let dropped_records: usize = drop_metas.iter().map(|m| m.records).sum();
        self.records
            .drain(..dropped_records.min(self.records.len()));
        // Persist the shrunken segment list before unlinking anything.
        self.sync()?;
        for meta in drop_metas {
            let path = self.dir.join(segment_file_name(meta.index));
            if let Err(e) = std::fs::remove_file(&path).map_err(io_err("segment remove")) {
                return Err(self.poison(e));
            }
        }
        self.publish_gauges();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::StreamId;
    use crate::testutil::temp_dir;

    fn record(height: u64, fill: u8) -> Record {
        Record::new(height, StreamId::Cert, vec![fill; 20])
    }

    fn filled_store(dir: &Path, blocks: u64) -> SegmentStore {
        let mut store = SegmentStore::open(StoreConfig::new(dir)).unwrap();
        for h in 1..=blocks {
            store.append(&record(h, h as u8)).unwrap();
            store.sync().unwrap();
        }
        store
    }

    #[test]
    fn clean_reopen_replays_everything() {
        let dir = temp_dir("clean-reopen");
        let store = filled_store(&dir, 7);
        let want = store.records();
        drop(store);
        let back = SegmentStore::open(StoreConfig::new(&dir)).unwrap();
        assert_eq!(back.records(), want);
        assert_eq!(back.durable_height(), 7);
        assert_eq!(back.recovery().replayed, 7);
        assert_eq!(back.recovery().truncated_segments, 0);
    }

    #[test]
    fn head_entries_survive_reopen() {
        let dir = temp_dir("head-reopen");
        let mut store = filled_store(&dir, 2);
        store.put_head("sp.header", vec![9, 9]).unwrap();
        store.sync().unwrap();
        drop(store);
        let back = SegmentStore::open(StoreConfig::new(&dir)).unwrap();
        assert_eq!(back.head("sp.header"), Some(vec![9, 9]));
    }

    #[test]
    fn unsynced_appends_replay_as_redo() {
        let dir = temp_dir("redo");
        let mut store = filled_store(&dir, 3);
        store.append(&record(4, 4)).unwrap(); // appended, never synced
        drop(store);
        let back = SegmentStore::open(StoreConfig::new(&dir)).unwrap();
        assert_eq!(back.durable_height(), 3);
        assert_eq!(back.max_height(), 4);
        assert_eq!(back.records().len(), 4);
    }

    #[test]
    fn torn_tail_is_truncated_and_counted() {
        let dir = temp_dir("torn");
        let store = filled_store(&dir, 5);
        let path = store.segment_paths().pop().unwrap();
        let full = std::fs::read(&path).unwrap();
        drop(store);
        // Chop mid-way through the last frame.
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        // The head claims 5 durable records, so losing one must refuse...
        let err = SegmentStore::open(StoreConfig::new(&dir)).unwrap_err();
        assert!(matches!(err, StoreError::DurableDataLost { .. }));
        // ...but with a head one sync behind, it is a clean truncation.
        let dir2 = temp_dir("torn-redo");
        let mut store = SegmentStore::open(StoreConfig::new(&dir2)).unwrap();
        for h in 1..=4 {
            store.append(&record(h, h as u8)).unwrap();
        }
        store.sync().unwrap();
        store.append(&record(5, 5)).unwrap(); // redo record
        let path = store.segment_paths().pop().unwrap();
        drop(store);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let back = SegmentStore::open(StoreConfig::new(&dir2)).unwrap();
        assert_eq!(back.durable_height(), 4);
        assert_eq!(back.max_height(), 4);
        assert_eq!(back.recovery().truncated_segments, 1);
        assert!(back.recovery().truncated_bytes > 0);
    }

    #[test]
    fn rolls_segments_and_reopens_across_them() {
        let dir = temp_dir("roll");
        let mut store = SegmentStore::open(StoreConfig::new(&dir).max_segment_bytes(128)).unwrap();
        for h in 1..=12 {
            store.append(&record(h, h as u8)).unwrap();
            store.sync().unwrap();
        }
        assert!(store.segment_paths().len() > 1, "expected a roll");
        let want = store.records();
        drop(store);
        let back = SegmentStore::open(StoreConfig::new(&dir).max_segment_bytes(128)).unwrap();
        assert_eq!(back.records(), want);
    }

    #[test]
    fn prune_below_unlinks_sealed_segments() {
        let dir = temp_dir("prune");
        let mut store = SegmentStore::open(StoreConfig::new(&dir).max_segment_bytes(128)).unwrap();
        for h in 1..=12 {
            store.append(&record(h, h as u8)).unwrap();
            store.sync().unwrap();
        }
        let before = store.segment_paths().len();
        store.prune_below(9).unwrap();
        let after = store.segment_paths().len();
        assert!(after < before);
        assert!(store.records().iter().all(|r| store
            .records()
            .first()
            .map(|f| r.height >= f.height)
            .unwrap_or(true)));
        drop(store);
        let back = SegmentStore::open(StoreConfig::new(&dir).max_segment_bytes(128)).unwrap();
        assert_eq!(back.max_height(), 12);
        assert!(back.records().iter().map(|r| r.height).max().unwrap() == 12);
    }

    #[test]
    fn same_history_yields_byte_identical_files() {
        let dir1 = temp_dir("bytes-1");
        let dir2 = temp_dir("bytes-2");
        let a = filled_store(&dir1, 6);
        let b = filled_store(&dir2, 6);
        let read_all = |s: &SegmentStore| -> Vec<Vec<u8>> {
            s.segment_paths()
                .iter()
                .map(|p| std::fs::read(p).unwrap())
                .collect()
        };
        assert_eq!(read_all(&a), read_all(&b));
        // Head slots too.
        for slot in [HEAD_SLOT_A, HEAD_SLOT_B] {
            let fa = std::fs::read(dir1.join(slot)).ok();
            let fb = std::fs::read(dir2.join(slot)).ok();
            assert_eq!(fa, fb, "{slot}");
        }
    }

    #[test]
    fn corrupt_both_heads_refuses() {
        let dir = temp_dir("both-heads");
        let store = filled_store(&dir, 3);
        drop(store);
        for slot in [HEAD_SLOT_A, HEAD_SLOT_B] {
            let path = dir.join(slot);
            if path.exists() {
                let mut bytes = std::fs::read(&path).unwrap();
                if let Some(b) = bytes.last_mut() {
                    *b ^= 0xFF;
                }
                std::fs::write(&path, bytes).unwrap();
            }
        }
        let err = SegmentStore::open(StoreConfig::new(&dir)).unwrap_err();
        assert!(matches!(
            err,
            StoreError::HeadCorrupt { .. } | StoreError::BadMagic { .. }
        ));
    }

    #[test]
    fn empty_segment_file_recovers_and_stays_appendable() {
        // A crash between segment create and the magic write leaves a
        // zero-byte file: recovery must restore the header so appends
        // after recovery survive the *next* crash.
        let dir = temp_dir("empty-seg");
        std::fs::write(dir.join(segment_file_name(0)), []).unwrap();
        let mut store = SegmentStore::open(StoreConfig::new(&dir)).unwrap();
        assert_eq!(store.recovery().truncated_segments, 1);
        store.append(&record(1, 1)).unwrap();
        store.sync().unwrap();
        drop(store);
        let back = SegmentStore::open(StoreConfig::new(&dir)).unwrap();
        assert_eq!(back.durable_height(), 1);
        assert_eq!(back.records(), vec![record(1, 1)]);
    }

    #[test]
    fn missing_marked_segment_refuses() {
        let dir = temp_dir("missing-seg");
        let store = filled_store(&dir, 3);
        let path = store.segment_paths().pop().unwrap();
        drop(store);
        std::fs::remove_file(path).unwrap();
        let err = SegmentStore::open(StoreConfig::new(&dir)).unwrap_err();
        assert!(matches!(err, StoreError::DurableDataLost { .. }));
    }
}
