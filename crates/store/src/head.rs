//! The mutable head region: a tiny, atomically-replaced summary of what
//! is durable.
//!
//! Segment files are append-only and immutable once rolled; everything
//! mutable lives here. The head is two slot files (`head-a.dch`,
//! `head-b.dch`), each holding [`HEAD_MAGIC`] followed by one CRC-framed
//! [`HeadState`]. Writes alternate slots with a strictly increasing
//! sequence number, so a torn head write can only damage the slot being
//! replaced — the previous state survives in the other slot. Recovery
//! takes the valid slot with the highest sequence number; if both slots
//! exist but neither decodes, the durable watermark is unknowable and the
//! store refuses to open ([`StoreError::HeadCorrupt`]).
//!
//! The head state carries three things:
//!
//! 1. the **durable watermark** — per-segment byte lengths covered by the
//!    last fsync, and the highest block height those bytes certify,
//! 2. the **key-value entries** — small consumer checkpoints (latest
//!    certified digests, headers, prune marks) that must travel with the
//!    watermark they were synced under,
//! 3. the **sequence number** — total order over head writes.

use dcert_primitives::codec::{decode_seq, encode_seq, Decode, Encode, Reader};
use dcert_primitives::CodecError;

use crate::error::StoreError;
use crate::frame::{append_frame, decode_framed, HEAD_MAGIC};

/// File name of the first head slot.
pub const HEAD_SLOT_A: &str = "head-a.dch";

/// File name of the second head slot.
pub const HEAD_SLOT_B: &str = "head-b.dch";

/// Durable byte length of one segment file at the time of a head write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMark {
    /// Segment file index (`seg-<index>.dcs`).
    pub index: u32,
    /// Bytes of that file (including magic) covered by the last fsync.
    pub durable_len: u64,
}

impl Encode for SegmentMark {
    fn encode(&self, out: &mut Vec<u8>) {
        self.index.encode(out);
        self.durable_len.encode(out);
    }
    fn encoded_len(&self) -> usize {
        4 + 8
    }
}

impl Decode for SegmentMark {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(SegmentMark {
            index: u32::decode(r)?,
            durable_len: u64::decode(r)?,
        })
    }
}

/// The mutable state persisted in a head slot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HeadState {
    /// Strictly increasing head-write sequence number (0 = never synced).
    pub seq: u64,
    /// Highest block height fully covered by durable segment bytes.
    pub durable_height: u64,
    /// Durable byte length per live segment, ascending by index.
    pub segments: Vec<SegmentMark>,
    /// Consumer checkpoint entries, ascending by key.
    pub entries: Vec<(String, Vec<u8>)>,
}

impl Encode for HeadState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.seq.encode(out);
        self.durable_height.encode(out);
        encode_seq(&self.segments, out);
        encode_seq(&self.entries, out);
    }
}

impl Decode for HeadState {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(HeadState {
            seq: u64::decode(r)?,
            durable_height: u64::decode(r)?,
            segments: decode_seq(r)?,
            entries: decode_seq(r)?,
        })
    }
}

impl HeadState {
    /// Returns the durable byte length recorded for segment `index`, or
    /// `None` if the head does not cover it.
    pub fn durable_len(&self, index: u32) -> Option<u64> {
        self.segments
            .iter()
            .find(|m| m.index == index)
            .map(|m| m.durable_len)
    }

    /// Serializes this state as a full head-slot file (magic + frame).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::RecordTooLarge`] if the entries outgrow the
    /// maximum frame size.
    pub fn encode_slot_file(&self) -> Result<Vec<u8>, StoreError> {
        let mut out = Vec::with_capacity(64 + self.entries.len() * 32);
        out.extend_from_slice(&HEAD_MAGIC);
        append_frame(&self.to_encoded_bytes(), &mut out)?;
        Ok(out)
    }

    /// Parses a head-slot file (magic + one frame). Never panics.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::BadMagic`] or [`StoreError::HeadCorrupt`] on
    /// any damage.
    pub fn decode_slot_file(file: &str, bytes: &[u8]) -> Result<HeadState, StoreError> {
        let Some(magic) = bytes.get(..HEAD_MAGIC.len()) else {
            return Err(StoreError::BadMagic { file: file.into() });
        };
        if magic != HEAD_MAGIC {
            return Err(StoreError::BadMagic { file: file.into() });
        }
        let framed = bytes.get(HEAD_MAGIC.len()..).unwrap_or(&[]);
        let payload = decode_framed(framed)?;
        HeadState::decode_all(payload).map_err(|_| StoreError::HeadCorrupt {
            detail: "head state decode failed",
        })
    }

    /// Slot file the *next* head write (sequence `seq + 1`) goes to.
    /// Alternating on the sequence number guarantees the slot holding the
    /// current state is never overwritten.
    pub fn next_slot(&self) -> &'static str {
        if (self.seq + 1) % 2 == 1 {
            HEAD_SLOT_A
        } else {
            HEAD_SLOT_B
        }
    }
}

/// Picks the authoritative head among the two decoded slot attempts.
///
/// Missing slots are `None`; corrupt slots are `Some(Err(..))`. The rule:
/// the valid slot with the highest sequence wins; a single corrupt slot
/// falls back to the other valid slot (a torn head write); but if at least
/// one slot exists and *no* slot is valid, the watermark is unknowable.
///
/// # Errors
///
/// Returns [`StoreError::HeadCorrupt`] in the unknowable case.
pub fn choose_head(
    slot_a: Option<Result<HeadState, StoreError>>,
    slot_b: Option<Result<HeadState, StoreError>>,
) -> Result<Option<HeadState>, StoreError> {
    let any_present = slot_a.is_some() || slot_b.is_some();
    let best = [slot_a, slot_b]
        .into_iter()
        .flatten()
        .filter_map(Result::ok)
        .max_by_key(|h| h.seq);
    match best {
        Some(head) => Ok(Some(head)),
        None if any_present => Err(StoreError::HeadCorrupt {
            detail: "no head slot decodes",
        }),
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seq: u64) -> HeadState {
        HeadState {
            seq,
            durable_height: seq * 3,
            segments: vec![SegmentMark {
                index: 0,
                durable_len: 8 + seq * 40,
            }],
            entries: vec![("sp.header".into(), vec![1, 2, 3])],
        }
    }

    #[test]
    fn slot_file_round_trip() {
        let head = sample(5);
        let bytes = head.encode_slot_file().unwrap();
        assert_eq!(
            HeadState::decode_slot_file("head-a.dch", &bytes).unwrap(),
            head
        );
    }

    #[test]
    fn every_truncation_of_slot_file_is_refused() {
        let bytes = sample(9).encode_slot_file().unwrap();
        for cut in 0..bytes.len() {
            assert!(
                HeadState::decode_slot_file("head-a.dch", &bytes[..cut]).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn every_bit_flip_of_slot_file_is_refused() {
        let bytes = sample(2).encode_slot_file().unwrap();
        for pos in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[pos] ^= 0x40;
            assert!(
                HeadState::decode_slot_file("head-a.dch", &flipped).is_err(),
                "flip {pos}"
            );
        }
    }

    #[test]
    fn slots_alternate() {
        assert_eq!(sample(0).next_slot(), HEAD_SLOT_A);
        assert_eq!(sample(1).next_slot(), HEAD_SLOT_B);
        assert_eq!(sample(2).next_slot(), HEAD_SLOT_A);
    }

    #[test]
    fn choose_head_prefers_highest_valid_seq() {
        let a = sample(4);
        let b = sample(7);
        let chosen = choose_head(Some(Ok(a)), Some(Ok(b.clone())))
            .unwrap()
            .unwrap();
        assert_eq!(chosen, b);
    }

    #[test]
    fn choose_head_falls_back_past_one_corrupt_slot() {
        let good = sample(4);
        let torn = Err(StoreError::HeadCorrupt {
            detail: "frame crc mismatch",
        });
        let chosen = choose_head(Some(torn), Some(Ok(good.clone())))
            .unwrap()
            .unwrap();
        assert_eq!(chosen, good);
    }

    #[test]
    fn choose_head_refuses_when_all_present_slots_corrupt() {
        let torn = || {
            Some(Err(StoreError::HeadCorrupt {
                detail: "frame crc mismatch",
            }))
        };
        assert!(matches!(
            choose_head(torn(), torn()),
            Err(StoreError::HeadCorrupt { .. })
        ));
        assert!(matches!(
            choose_head(torn(), None),
            Err(StoreError::HeadCorrupt { .. })
        ));
    }

    #[test]
    fn choose_head_fresh_store() {
        assert_eq!(choose_head(None, None).unwrap(), None);
    }
}
