//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the frame
//! checksum guarding every record in a segment file.
//!
//! The implementation is the bitwise (table-free) form: a branchless
//! mask-and-shift per bit. A 256-entry lookup table would be ~8× faster,
//! but building and indexing it cannot be written without slice indexing,
//! which dcert-lint rule R2 bans in verifier paths — and at the scale this
//! reproduction stores (kilobytes to megabytes of certified history) the
//! bitwise form is nowhere near the bottleneck. CRC-32 detects all
//! single-bit errors and all burst errors up to 32 bits, which is exactly
//! the torn-write/bit-rot threat model the recovery suite replays.

/// Computes the CRC-32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFF_u32;
    for &byte in bytes {
        crc ^= u32::from(byte);
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            bit += 1;
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_vector() {
        // The canonical CRC-32 check value: crc32("123456789").
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_bit_flips_change_checksum() {
        let base = b"the quick brown fox jumps over the lazy dog".to_vec();
        let want = crc32(&base);
        for pos in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[pos] ^= 1 << bit;
                assert_ne!(crc32(&flipped), want, "flip at {pos}:{bit} undetected");
            }
        }
    }
}
