//! Typed errors for the storage engine.
//!
//! Recovery is a trust boundary: a store that cannot prove its on-disk
//! state intact must *refuse to serve* with one of these variants — never
//! panic, never hand back bytes it cannot vouch for. The variants are
//! `Clone + PartialEq + Eq` so the kill-at-every-offset suite can assert on
//! exact refusal reasons.

use std::fmt;

use dcert_primitives::CodecError;

/// An error produced by a [`crate::Store`] backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An operating-system I/O operation failed. `op` names the store
    /// operation (e.g. `"segment append"`), `detail` carries the OS error
    /// text.
    Io {
        /// Store operation that failed.
        op: &'static str,
        /// Stringified OS error.
        detail: String,
    },
    /// A segment or head file did not start with the expected magic bytes.
    BadMagic {
        /// File name (relative to the store directory).
        file: String,
    },
    /// Both head-region slots exist but neither decodes to a valid head
    /// state: the durable watermark is unknowable, so recovery refuses.
    HeadCorrupt {
        /// Why the head region was rejected.
        detail: &'static str,
    },
    /// The intact prefix of a segment is shorter than the durable watermark
    /// recorded in the head region: acknowledged data was lost or
    /// corrupted, so the store refuses to serve rather than silently
    /// rewind.
    DurableDataLost {
        /// Index of the offending segment file.
        segment: u32,
        /// Durable byte length the head region promised.
        durable: u64,
        /// Intact byte length actually recovered.
        recovered: u64,
    },
    /// A record payload failed canonical decoding.
    Codec(CodecError),
    /// A record payload exceeds the maximum frame size.
    RecordTooLarge(usize),
    /// A previous write error poisoned the store; it no longer accepts
    /// appends (reads keep working so in-flight clients can drain).
    Poisoned,
    /// The recovered state failed semantic re-verification against the
    /// latest certificate (performed by the store's consumer).
    VerifyFailed(&'static str),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, detail } => write!(f, "i/o failure during {op}: {detail}"),
            StoreError::BadMagic { file } => write!(f, "bad magic bytes in {file}"),
            StoreError::HeadCorrupt { detail } => {
                write!(f, "head region unrecoverable: {detail}")
            }
            StoreError::DurableDataLost {
                segment,
                durable,
                recovered,
            } => write!(
                f,
                "segment {segment}: durable watermark {durable} exceeds intact prefix {recovered}"
            ),
            StoreError::Codec(e) => write!(f, "record decode failed: {e}"),
            StoreError::RecordTooLarge(n) => write!(f, "record payload of {n} bytes too large"),
            StoreError::Poisoned => write!(f, "store poisoned by an earlier write failure"),
            StoreError::VerifyFailed(what) => {
                write!(f, "recovered state failed re-verification: {what}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

/// Maps an [`std::io::Error`] into [`StoreError::Io`], tagging the failing
/// store operation.
pub(crate) fn io_err(op: &'static str) -> impl FnOnce(std::io::Error) -> StoreError {
    move |e| StoreError::Io {
        op,
        detail: e.to_string(),
    }
}
