//! `dcert-store` — crash-safe persistent storage for certified history.
//!
//! Everything DCert serves to superlight clients is *certified*: blocks
//! and index digests carry enclave-signed certificates
//! (`⟨pk_enc, rep, dig, sig⟩`), so a Service Provider's disk is untrusted
//! in exactly the way the paper's SP is untrusted — clients verify what
//! they receive. What the storage engine must guarantee is therefore not
//! secrecy but **integrity under crashes**: after a kill at any byte
//! offset, the SP either comes back serving a state byte-identical to
//! what it had durably acknowledged, or refuses with a typed error. It
//! must never panic, and never serve bytes it cannot account for.
//!
//! The layering mirrors the hot/cold split production chains converged
//! on (e.g. reth's mutable hot database in front of immutable
//! static-file segments):
//!
//! - **Segment files** ([`segment`], [`seg_store`]) hold the immutable
//!   history: certificates, per-block writes, keyword postings — CRC32-
//!   framed records ([`frame`]) appended in block order, rolled at a size
//!   threshold, never rewritten.
//! - **The head region** ([`head`]) is the only mutable state: two
//!   alternating slot files carrying the durable watermark and small
//!   consumer checkpoints (latest certified digests, headers). A torn
//!   head write can only hit the slot being replaced.
//! - **Recovery** truncates a torn segment tail at the first damaged
//!   frame, replays intact records, refuses if the damage reaches below
//!   the durable watermark — and then the *consumer* re-verifies the
//!   replayed state against the latest certificate before serving
//!   (`CertArchive::recover`, `ServiceProvider::recover_from`,
//!   `SuperlightClient::resume`).
//!
//! Two backends implement the [`Store`] trait: [`MemStore`] (the pre-
//! persistence behavior, kept as the oracle for fast tests) and
//! [`SegmentStore`]. The determinism contract — pinned by
//! `tests/store_equivalence.rs` — is that the same certified history
//! produces byte-identical segment files, and every read a
//! `SegmentStore` answers is byte-identical to a `MemStore` fed the same
//! appends.

#![forbid(unsafe_code)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)
)]

pub mod crc32;
pub mod error;
pub mod frame;
pub mod head;
pub mod mem;
pub mod seg_store;
pub mod segment;

pub use crc32::crc32;
pub use error::StoreError;
pub use frame::{Record, StreamId};
pub use head::{HeadState, SegmentMark};
pub use mem::MemStore;
pub use seg_store::{RecoveryReport, SegmentStore, StoreConfig, DEFAULT_MAX_SEGMENT_BYTES};
pub use segment::ReadMode;

use crate::error::StoreError as Error;

/// A backend holding certified history: an append-only record log plus a
/// small mutable head region of consumer checkpoints.
///
/// The contract all backends share:
///
/// - [`append`](Store::append)ed records are **volatile** until the next
///   [`sync`](Store::sync); after it they are durable, along with every
///   head entry [`put_head`](Store::put_head) staged before it.
/// - [`records`](Store::records) returns every record the backend holds,
///   in append order — for [`SegmentStore`] that includes *redo* records
///   appended after the last sync (they survive if the OS flushed them;
///   consumers decide whether to trust them, and certified streams can,
///   because certificates prove themselves).
/// - [`durable_height`](Store::durable_height) is the highest block
///   height covered by the last sync; consumers replaying uncertified
///   streams must stop there.
pub trait Store: Send {
    /// Stable name of the backend (`"mem"` / `"segment"`), used in logs
    /// and metrics.
    fn backend(&self) -> &'static str;

    /// Appends one record to the log (volatile until [`sync`](Store::sync)).
    ///
    /// # Errors
    ///
    /// Backend-specific write failures; a failed append poisons a
    /// [`SegmentStore`].
    fn append(&mut self, record: &Record) -> Result<(), Error>;

    /// Makes every prior append and head entry durable.
    ///
    /// # Errors
    ///
    /// Backend-specific sync failures.
    fn sync(&mut self) -> Result<(), Error>;

    /// Stages a head entry (durable at the next [`sync`](Store::sync)).
    ///
    /// # Errors
    ///
    /// Backend-specific failures (e.g. a poisoned store).
    fn put_head(&mut self, key: &str, value: Vec<u8>) -> Result<(), Error>;

    /// Reads a head entry.
    fn head(&self, key: &str) -> Option<Vec<u8>>;

    /// All head entries, ascending by key.
    fn head_entries(&self) -> Vec<(String, Vec<u8>)>;

    /// Every record held, in append order.
    fn records(&self) -> Vec<Record>;

    /// Highest block height covered by the last sync.
    fn durable_height(&self) -> u64;

    /// Highest block height ever appended (≥ [`durable_height`](Store::durable_height)).
    fn max_height(&self) -> u64;

    /// Forgets records below `height`. [`MemStore`] prunes exactly;
    /// [`SegmentStore`] prunes at segment granularity and may retain
    /// more — consumers record their own prune mark in the head region.
    ///
    /// # Errors
    ///
    /// Backend-specific failures.
    fn prune_below(&mut self, height: u64) -> Result<(), Error>;
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Creates a unique, empty temp directory for a unit test. Uniqueness
    /// comes from the process id plus a counter — no ambient randomness,
    /// keeping the determinism lint's world view intact.
    pub fn temp_dir(label: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("dcert-store-{}-{}-{label}", std::process::id(), n));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).expect("stale temp dir removable");
        }
        std::fs::create_dir_all(&dir).expect("temp dir creatable");
        dir
    }
}
