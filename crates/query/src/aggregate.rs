//! Verifiable window **aggregation** queries (the paper's §5.1 mentions
//! aggregation as a supported query class, citing authenticated
//! aggregation structures \[32\]).
//!
//! A two-level index like the historical one, but the lower level is an
//! [`AggMbTree`]: every subtree carries a certified count/sum/min/max
//! annotation, so "SUM of account X's balance over blocks [t1, t2]" is
//! answered with an O(log n) proof — without shipping a single version.
//!
//! **Ingestion rule** (shared by the SP and the enclave verifier, so it
//! must be deterministic): only writes whose value is *exactly 8 bytes*
//! are ingested, interpreted as a big-endian `u64`. This matches how the
//! SmallBank contract stores balances; other writes are invisible to this
//! index.

use std::collections::HashMap;

use dcert_chain::Block;
use dcert_core::{CertError, IndexVerifier};
pub use dcert_merkle::aggmb::Aggregate;
use dcert_merkle::aggmb::{AggAppendProof, AggMbTree, AggProof};
use dcert_merkle::{AggOpProof, Mpt, MptProof};
use dcert_primitives::codec::{decode_seq, encode_seq, Decode, Encode, Reader};
use dcert_primitives::error::CodecError;
use dcert_primitives::hash::{hash_bytes, Hash};
use dcert_vm::StateKey;

use crate::error::QueryError;

/// The canonical numeric interpretation: exactly-8-byte values as
/// big-endian `u64`; anything else is not aggregatable.
pub fn numeric_value(bytes: &[u8]) -> Option<u64> {
    let arr: [u8; 8] = bytes.try_into().ok()?;
    Some(u64::from_be_bytes(arr))
}

/// Filters a block write set down to this index's ingestible entries.
fn ingestible(writes: &[(StateKey, Option<Vec<u8>>)]) -> Vec<(StateKey, u64)> {
    writes
        .iter()
        .filter_map(|(k, v)| {
            v.as_deref()
                .and_then(numeric_value)
                .map(|value| (*k, value))
        })
        .collect()
}

/// The SP-side two-level aggregate index.
#[derive(Debug, Clone)]
pub struct AggregateIndex {
    name: String,
    upper: Mpt,
    lower: HashMap<Vec<u8>, AggMbTree>,
    order: usize,
}

impl AggregateIndex {
    /// Creates an index registered under `name` with the default fanout.
    pub fn new(name: impl Into<String>) -> Self {
        Self::with_order(name, AggMbTree::DEFAULT_ORDER)
    }

    /// Creates an index with an explicit fanout.
    pub fn with_order(name: impl Into<String>, order: usize) -> Self {
        AggregateIndex {
            name: name.into(),
            upper: Mpt::new(),
            lower: HashMap::new(),
            order,
        }
    }

    /// The registered index-type name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The certified digest `H_idx`.
    pub fn digest(&self) -> Hash {
        self.upper.root()
    }

    /// Number of tracked keys.
    pub fn tracked_keys(&self) -> usize {
        self.lower.len()
    }

    /// Applies one block's write set at `height`, returning `(aux,
    /// new_digest)` for enclave certification.
    pub fn apply_block(
        &mut self,
        height: u64,
        writes: &[(StateKey, Option<Vec<u8>>)],
    ) -> (Vec<u8>, Hash) {
        let mut updates = Vec::new();
        for (key, value) in ingestible(writes) {
            let key_bytes = key.as_hash().as_bytes().to_vec();
            let mpt_proof = self.upper.prove(&key_bytes);
            let (prev_root, append) = match self.lower.get(&key_bytes) {
                Some(tree) => (Some(tree.root()), tree.prove_append()),
                None => (None, AggMbTree::new(self.order).prove_append()),
            };
            updates.push(KeyUpdate {
                prev_root,
                append,
                mpt: mpt_proof,
            });

            let tree = self
                .lower
                .entry(key_bytes.clone())
                .or_insert_with(|| AggMbTree::new(self.order));
            tree.insert(height, value);
            self.upper
                .insert(&key_bytes, tree.root().as_bytes().to_vec());
        }
        let mut aux = Vec::new();
        encode_seq(&updates, &mut aux);
        (aux, self.digest())
    }

    /// Answers "aggregate of `key`'s values over `[t1, t2]`" with a proof.
    pub fn query(&self, key: &StateKey, t1: u64, t2: u64) -> (Aggregate, AggQueryProof) {
        let key_bytes = key.as_hash().as_bytes().to_vec();
        let mpt = self.upper.prove(&key_bytes);
        match self.lower.get(&key_bytes) {
            None => (
                Aggregate::EMPTY,
                AggQueryProof {
                    mpt,
                    tree_root: None,
                    agg: None,
                },
            ),
            Some(tree) => {
                let (aggregate, agg) = tree.aggregate(t1, t2);
                (
                    aggregate,
                    AggQueryProof {
                        mpt,
                        tree_root: Some(tree.root()),
                        agg: Some(agg),
                    },
                )
            }
        }
    }

    /// Like [`AggregateIndex::query`], but the subtree-annotation evidence
    /// is one op-stream program ([`dcert_merkle::ProofEncoding::OpStream`]).
    ///
    /// Returns exactly the same aggregate as `query` for the same window;
    /// only the proof encoding differs.
    pub fn query_ops(&self, key: &StateKey, t1: u64, t2: u64) -> (Aggregate, AggOpQueryProof) {
        let key_bytes = key.as_hash().as_bytes().to_vec();
        let mpt = self.upper.prove(&key_bytes);
        match self.lower.get(&key_bytes) {
            None => (
                Aggregate::EMPTY,
                AggOpQueryProof {
                    mpt,
                    tree_root: None,
                    ops: None,
                },
            ),
            Some(tree) => {
                let (aggregate, _) = tree.aggregate(t1, t2);
                (
                    aggregate,
                    AggOpQueryProof {
                        mpt,
                        tree_root: Some(tree.root()),
                        ops: Some(tree.prove_agg_ops(t1, t2)),
                    },
                )
            }
        }
    }
}

/// One key's chained update in the aux payload.
#[derive(Debug, Clone, PartialEq, Eq)]
struct KeyUpdate {
    prev_root: Option<Hash>,
    append: AggAppendProof,
    mpt: MptProof,
}

impl Encode for KeyUpdate {
    fn encode(&self, out: &mut Vec<u8>) {
        self.prev_root.encode(out);
        self.append.encode(out);
        self.mpt.encode(out);
    }
}

impl Decode for KeyUpdate {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(KeyUpdate {
            prev_root: Option::<Hash>::decode(r)?,
            append: AggAppendProof::decode(r)?,
            mpt: MptProof::decode(r)?,
        })
    }
}

/// The trusted update verifier for [`AggregateIndex`].
#[derive(Debug, Clone)]
pub struct AggregateVerifier {
    name: String,
    order: usize,
}

impl AggregateVerifier {
    /// Creates the verifier matching [`AggregateIndex::new`].
    pub fn new(name: impl Into<String>) -> Self {
        Self::with_order(name, AggMbTree::DEFAULT_ORDER)
    }

    /// Creates the verifier with an explicit fanout (must match the SP's).
    pub fn with_order(name: impl Into<String>, order: usize) -> Self {
        AggregateVerifier {
            name: name.into(),
            order,
        }
    }
}

impl IndexVerifier for AggregateVerifier {
    fn type_name(&self) -> &str {
        &self.name
    }

    fn genesis_digest(&self) -> Hash {
        Hash::ZERO
    }

    fn verify_update(
        &self,
        prev_digest: &Hash,
        block: &Block,
        writes: &[(StateKey, Option<Vec<u8>>)],
        aux: &[u8],
    ) -> Result<Hash, CertError> {
        let mut reader = Reader::new(aux);
        let updates: Vec<KeyUpdate> =
            decode_seq(&mut reader).map_err(|_| CertError::BadIndexUpdate("aux decode"))?;
        if reader.remaining() != 0 {
            return Err(CertError::BadIndexUpdate("trailing aux bytes"));
        }
        // The enclave derives the ingestible subset itself from the
        // authenticated write set.
        let entries = ingestible(writes);
        if updates.len() != entries.len() {
            return Err(CertError::BadIndexUpdate("update count mismatch"));
        }
        let height = block.header.height;
        let mut root = *prev_digest;
        for ((key, value), update) in entries.iter().zip(&updates) {
            let key_bytes = key.as_hash().as_bytes();
            let proven = update
                .mpt
                .verify(&root, key_bytes)
                .map_err(CertError::Proof)?;
            let claimed = update.prev_root.as_ref().map(|r| hash_bytes(r.as_bytes()));
            if proven != claimed {
                return Err(CertError::BadIndexUpdate("stale aggregate-tree root"));
            }
            let new_root = match update.prev_root {
                None => AggMbTree::singleton_root(height, *value),
                Some(prev) => update
                    .append
                    .appended_root(&prev, self.order, height, *value)
                    .map_err(CertError::Proof)?,
            };
            root = update
                .mpt
                .updated_root(&root, key_bytes, &hash_bytes(new_root.as_bytes()))
                .map_err(CertError::Proof)?;
        }
        Ok(root)
    }
}

/// Proof returned with an aggregate query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggQueryProof {
    mpt: MptProof,
    tree_root: Option<Hash>,
    agg: Option<AggProof>,
}

impl AggQueryProof {
    /// Serialized proof size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.encoded_len()
    }
}

impl Encode for AggQueryProof {
    fn encode(&self, out: &mut Vec<u8>) {
        self.mpt.encode(out);
        self.tree_root.encode(out);
        self.agg.encode(out);
    }
}

impl Decode for AggQueryProof {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(AggQueryProof {
            mpt: MptProof::decode(r)?,
            tree_root: Option::<Hash>::decode(r)?,
            agg: Option::<AggProof>::decode(r)?,
        })
    }
}

/// Proof returned with an op-stream aggregate query
/// ([`AggregateIndex::query_ops`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggOpQueryProof {
    mpt: MptProof,
    tree_root: Option<Hash>,
    ops: Option<AggOpProof>,
}

impl AggOpQueryProof {
    /// Serialized proof size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.encoded_len()
    }
}

impl Encode for AggOpQueryProof {
    fn encode(&self, out: &mut Vec<u8>) {
        self.mpt.encode(out);
        self.tree_root.encode(out);
        self.ops.encode(out);
    }
}

impl Decode for AggOpQueryProof {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(AggOpQueryProof {
            mpt: MptProof::decode(r)?,
            tree_root: Option::<Hash>::decode(r)?,
            ops: Option::<AggOpProof>::decode(r)?,
        })
    }
}

/// Client-side verification of an op-stream window aggregate. Same checks
/// as [`verify_aggregate`]; the op program is executed and lifted into the
/// per-path aggregate verifier.
///
/// # Errors
///
/// [`QueryError`] describing the first failed check.
pub fn verify_aggregate_op(
    digest: &Hash,
    key: &StateKey,
    t1: u64,
    t2: u64,
    claimed: &Aggregate,
    proof: &AggOpQueryProof,
) -> Result<(), QueryError> {
    let key_bytes = key.as_hash().as_bytes();
    let proven = proof.mpt.verify(digest, key_bytes)?;
    match (&proof.tree_root, &proof.ops) {
        (None, None) => {
            if proven.is_some() {
                return Err(QueryError::ResultMismatch(
                    "key is tracked but no aggregate tree presented",
                ));
            }
            if *claimed != Aggregate::EMPTY {
                return Err(QueryError::ResultMismatch("aggregate for an untracked key"));
            }
            Ok(())
        }
        (Some(tree_root), Some(ops)) => {
            if proven != Some(hash_bytes(tree_root.as_bytes())) {
                return Err(QueryError::DigestMismatch);
            }
            ops.verify(tree_root, t1, t2, claimed)?;
            Ok(())
        }
        _ => Err(QueryError::ResultMismatch("inconsistent proof shape")),
    }
}

/// Client-side verification of a window aggregate against the certified
/// index digest.
///
/// # Errors
///
/// [`QueryError`] describing the first failed check.
pub fn verify_aggregate(
    digest: &Hash,
    key: &StateKey,
    t1: u64,
    t2: u64,
    claimed: &Aggregate,
    proof: &AggQueryProof,
) -> Result<(), QueryError> {
    let key_bytes = key.as_hash().as_bytes();
    let proven = proof.mpt.verify(digest, key_bytes)?;
    match (&proof.tree_root, &proof.agg) {
        (None, None) => {
            if proven.is_some() {
                return Err(QueryError::ResultMismatch(
                    "key is tracked but no aggregate tree presented",
                ));
            }
            if *claimed != Aggregate::EMPTY {
                return Err(QueryError::ResultMismatch("aggregate for an untracked key"));
            }
            Ok(())
        }
        (Some(tree_root), Some(agg_proof)) => {
            if proven != Some(hash_bytes(tree_root.as_bytes())) {
                return Err(QueryError::DigestMismatch);
            }
            agg_proof.verify(tree_root, t1, t2, claimed)?;
            Ok(())
        }
        _ => Err(QueryError::ResultMismatch("inconsistent proof shape")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcert_chain::consensus::ConsensusProof;
    use dcert_chain::BlockHeader;
    use dcert_primitives::hash::Address;

    fn key(label: &str) -> StateKey {
        StateKey::new("smallbank", label.as_bytes())
    }

    fn block_at(height: u64) -> Block {
        Block {
            header: BlockHeader {
                height,
                prev_hash: Hash::ZERO,
                state_root: Hash::ZERO,
                tx_root: Hash::ZERO,
                timestamp: height,
                miner: Address::default(),
                consensus: ConsensusProof::Pow {
                    difficulty_bits: 0,
                    nonce: 0,
                },
            },
            txs: Vec::new(),
        }
    }

    fn balance_writes(entries: &[(&str, u64)]) -> Vec<(StateKey, Option<Vec<u8>>)> {
        let mut out: Vec<(StateKey, Option<Vec<u8>>)> = entries
            .iter()
            .map(|(k, v)| (key(k), Some(v.to_be_bytes().to_vec())))
            .collect();
        out.sort_by_key(|(k, _)| *k.as_hash());
        out
    }

    #[test]
    fn numeric_rule_is_exactly_eight_bytes() {
        assert_eq!(numeric_value(&7u64.to_be_bytes()), Some(7));
        assert_eq!(numeric_value(b"1234567"), None);
        assert_eq!(numeric_value(b"123456789"), None);
        assert_eq!(numeric_value(b""), None);
    }

    #[test]
    fn digest_tracks_updates_and_verifier_agrees() {
        let mut index = AggregateIndex::with_order("agg", 4);
        let verifier = AggregateVerifier::with_order("agg", 4);
        let mut digest = index.digest();
        assert_eq!(digest, verifier.genesis_digest());
        for height in 1..=40u64 {
            let writes = balance_writes(&[("alice", 100 + height), ("bob", 50 * height)]);
            let (aux, new_digest) = index.apply_block(height, &writes);
            let recomputed = verifier
                .verify_update(&digest, &block_at(height), &writes, &aux)
                .unwrap_or_else(|e| panic!("height {height}: {e}"));
            assert_eq!(recomputed, new_digest, "height {height}");
            digest = new_digest;
        }
    }

    #[test]
    fn non_numeric_writes_are_skipped_consistently() {
        let mut index = AggregateIndex::with_order("agg", 4);
        let verifier = AggregateVerifier::with_order("agg", 4);
        let digest = index.digest();
        // A mix: one balance, one text value, one deletion.
        let mut writes = vec![
            (key("alice"), Some(42u64.to_be_bytes().to_vec())),
            (key("memo"), Some(b"not a number".to_vec())),
            (key("gone"), None),
        ];
        writes.sort_by_key(|(k, _)| *k.as_hash());
        let (aux, new_digest) = index.apply_block(1, &writes);
        assert_eq!(index.tracked_keys(), 1);
        let recomputed = verifier
            .verify_update(&digest, &block_at(1), &writes, &aux)
            .unwrap();
        assert_eq!(recomputed, new_digest);
    }

    #[test]
    fn window_aggregates_verify() {
        let mut index = AggregateIndex::with_order("agg", 4);
        for height in 1..=60u64 {
            index.apply_block(height, &balance_writes(&[("alice", height * 10)]));
        }
        let digest = index.digest();
        let (agg, proof) = index.query(&key("alice"), 11, 30);
        assert_eq!(agg.count, 20);
        assert_eq!(agg.sum, (11..=30).map(|h| h * 10).sum::<u64>() as u128);
        assert_eq!((agg.min, agg.max), (110, 300));
        verify_aggregate(&digest, &key("alice"), 11, 30, &agg, &proof).unwrap();
        // Proof is compact: no per-version data.
        assert!(proof.size_bytes() < 4096, "size = {}", proof.size_bytes());
    }

    #[test]
    fn untracked_key_verifies_empty() {
        let mut index = AggregateIndex::with_order("agg", 4);
        index.apply_block(1, &balance_writes(&[("alice", 1)]));
        let digest = index.digest();
        let (agg, proof) = index.query(&key("nobody"), 0, 100);
        assert_eq!(agg, Aggregate::EMPTY);
        verify_aggregate(&digest, &key("nobody"), 0, 100, &agg, &proof).unwrap();
    }

    #[test]
    fn inflated_sum_detected() {
        let mut index = AggregateIndex::with_order("agg", 4);
        for height in 1..=30u64 {
            index.apply_block(height, &balance_writes(&[("alice", height)]));
        }
        let digest = index.digest();
        let (mut agg, proof) = index.query(&key("alice"), 5, 25);
        agg.sum += 1_000_000;
        assert!(verify_aggregate(&digest, &key("alice"), 5, 25, &agg, &proof).is_err());
    }

    #[test]
    fn stale_digest_detected() {
        let mut index = AggregateIndex::with_order("agg", 4);
        index.apply_block(1, &balance_writes(&[("alice", 10)]));
        let stale = index.digest();
        index.apply_block(2, &balance_writes(&[("alice", 20)]));
        let (agg, proof) = index.query(&key("alice"), 0, 10);
        assert!(verify_aggregate(&stale, &key("alice"), 0, 10, &agg, &proof).is_err());
    }

    #[test]
    fn op_query_matches_per_path_aggregate_and_verifies() {
        let mut index = AggregateIndex::with_order("agg", 4);
        for height in 1..=60u64 {
            index.apply_block(height, &balance_writes(&[("alice", height * 10)]));
        }
        let digest = index.digest();
        for (t1, t2) in [(11, 30), (0, 0), (60, 60), (70, 90), (0, u64::MAX)] {
            let (per_path, _) = index.query(&key("alice"), t1, t2);
            let (agg, proof) = index.query_ops(&key("alice"), t1, t2);
            assert_eq!(agg, per_path, "[{t1},{t2}]");
            verify_aggregate_op(&digest, &key("alice"), t1, t2, &agg, &proof).unwrap();
            assert_eq!(proof.size_bytes(), proof.to_encoded_bytes().len());
        }
        // Forged sums are rejected, untracked keys verify empty.
        let (mut agg, proof) = index.query_ops(&key("alice"), 11, 30);
        agg.sum += 1;
        assert!(verify_aggregate_op(&digest, &key("alice"), 11, 30, &agg, &proof).is_err());
        let (empty, absent) = index.query_ops(&key("nobody"), 0, 100);
        assert_eq!(empty, Aggregate::EMPTY);
        verify_aggregate_op(&digest, &key("nobody"), 0, 100, &empty, &absent).unwrap();
    }

    #[test]
    fn verifier_rejects_forged_aux() {
        let mut index = AggregateIndex::with_order("agg", 4);
        let verifier = AggregateVerifier::with_order("agg", 4);
        let digest = index.digest();
        let writes = balance_writes(&[("alice", 7)]);
        let (mut aux, _) = index.apply_block(1, &writes);
        let last = aux.len() - 1;
        aux[last] ^= 0xff;
        assert!(verifier
            .verify_update(&digest, &block_at(1), &writes, &aux)
            .is_err());
    }
}
