//! The two-level historical query index (Fig. 5, lower-left).
//!
//! Upper level: a Merkle Patricia trie mapping each state key (the 32-byte
//! SMT path of an account/field) to the root of its version tree. Lower
//! level: per-key Merkle B-trees mapping *timestamp* (block height) to the
//! value written at that height (`None` encodes a deletion event).
//!
//! Three roles share this module:
//!
//! - the SP maintains [`HistoryIndex`] and serves
//!   [`HistoryIndex::query`] with completeness proofs;
//! - the enclave runs [`HistoryVerifier`] (an
//!   [`dcert_core::IndexVerifier`]) to recompute the digest
//!   after each block from chained stateless proofs;
//! - clients call [`verify_history`] against the certified digest.

use std::collections::HashMap;

use dcert_chain::Block;
use dcert_core::{CertError, IndexVerifier};
use dcert_merkle::{MbAppendProof, MbOpProof, MbRangeProof, MbTree, Mpt, MptProof};
use dcert_primitives::codec::{decode_seq, encode_seq, Decode, Encode, Reader};
use dcert_primitives::error::CodecError;
use dcert_primitives::hash::{hash_bytes, Hash};
use dcert_vm::StateKey;

use crate::error::QueryError;

/// One recorded version: the value written at a height (`None` = deleted).
pub type Version = Option<Vec<u8>>;

fn encode_version(version: &Version) -> Vec<u8> {
    version.to_encoded_bytes()
}

fn decode_version(bytes: &[u8]) -> Result<Version, CodecError> {
    Version::decode_all(bytes)
}

/// The SP-side two-level historical index.
#[derive(Debug, Clone)]
pub struct HistoryIndex {
    name: String,
    upper: Mpt,
    lower: HashMap<Vec<u8>, MbTree>,
    order: usize,
}

impl HistoryIndex {
    /// Creates an index registered under `name` with the default B-tree
    /// fanout.
    pub fn new(name: impl Into<String>) -> Self {
        Self::with_order(name, MbTree::DEFAULT_ORDER)
    }

    /// Creates an index with an explicit B-tree fanout.
    pub fn with_order(name: impl Into<String>, order: usize) -> Self {
        HistoryIndex {
            name: name.into(),
            upper: Mpt::new(),
            lower: HashMap::new(),
            order,
        }
    }

    /// The registered index-type name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The certified digest `H_idx`: the upper trie's root.
    pub fn digest(&self) -> Hash {
        self.upper.root()
    }

    /// Number of tracked keys.
    pub fn tracked_keys(&self) -> usize {
        self.lower.len()
    }

    /// Applies one block's write set at `height`, returning the
    /// enclave-verifiable update proof (`aux`) and the new digest.
    ///
    /// Writes must be presented in the canonical (sorted-by-key) order the
    /// certificate program authenticates.
    pub fn apply_block(
        &mut self,
        height: u64,
        writes: &[(StateKey, Option<Vec<u8>>)],
    ) -> (Vec<u8>, Hash) {
        let mut updates = Vec::with_capacity(writes.len());
        for (key, value) in writes {
            let key_bytes = key.as_hash().as_bytes().to_vec();
            let version = encode_version(value);

            // Proofs against the *current* (chained) state, then mutate.
            let mpt_proof = self.upper.prove(&key_bytes);
            let (prev_mb_root, append) = match self.lower.get(&key_bytes) {
                Some(tree) => (Some(tree.root()), tree.prove_append()),
                None => (None, MbTree::new(self.order).prove_append()),
            };
            updates.push(KeyUpdate {
                prev_mb_root,
                append,
                mpt: mpt_proof,
            });

            let tree = self
                .lower
                .entry(key_bytes.clone())
                .or_insert_with(|| MbTree::new(self.order));
            tree.insert(height, version);
            self.upper
                .insert(&key_bytes, tree.root().as_bytes().to_vec());
        }
        let mut aux = Vec::new();
        encode_seq(&updates, &mut aux);
        (aux, self.digest())
    }

    /// Answers "all versions of `key` in `[t1, t2]`" with a proof.
    // expect() here decodes the SP's own canonical index entries (see the
    // dcert-lint rationale at the call site).
    #[allow(clippy::expect_used)]
    pub fn query(&self, key: &StateKey, t1: u64, t2: u64) -> (Vec<(u64, Version)>, HistoryProof) {
        let key_bytes = key.as_hash().as_bytes().to_vec();
        let mpt_proof = self.upper.prove(&key_bytes);
        match self.lower.get(&key_bytes) {
            None => (
                Vec::new(),
                HistoryProof {
                    mpt: mpt_proof,
                    mb_root: None,
                    range: None,
                },
            ),
            Some(tree) => {
                let (raw, range) = tree.range(t1, t2);
                let results = raw
                    .into_iter()
                    .map(|(ts, bytes)| {
                        // dcert-lint: allow(r2-panic-freedom, r5-panic-reachability, reason = "SP-side serving path decoding its own canonically-encoded index entries; the client verifier re-checks everything")
                        let v = decode_version(&bytes).expect("index stores canonical versions");
                        (ts, v)
                    })
                    .collect();
                (
                    results,
                    HistoryProof {
                        mpt: mpt_proof,
                        mb_root: Some(tree.root()),
                        range: Some(range),
                    },
                )
            }
        }
    }

    /// Like [`HistoryIndex::query`], but the range-completeness evidence is
    /// one op-stream program ([`dcert_merkle::ProofEncoding::OpStream`])
    /// instead of a per-path pruned tree.
    ///
    /// Returns exactly the same result rows as `query` for the same window;
    /// only the proof encoding differs.
    // expect() decodes the SP's own canonical index entries (same rationale
    // as `query`).
    #[allow(clippy::expect_used)]
    pub fn query_ops(
        &self,
        key: &StateKey,
        t1: u64,
        t2: u64,
    ) -> (Vec<(u64, Version)>, HistoryOpProof) {
        let key_bytes = key.as_hash().as_bytes().to_vec();
        let mpt_proof = self.upper.prove(&key_bytes);
        match self.lower.get(&key_bytes) {
            None => (
                Vec::new(),
                HistoryOpProof {
                    mpt: mpt_proof,
                    mb_root: None,
                    ops: None,
                },
            ),
            Some(tree) => {
                let (raw, _) = tree.range(t1, t2);
                let results = raw
                    .into_iter()
                    .map(|(ts, bytes)| {
                        // dcert-lint: allow(r2-panic-freedom, r5-panic-reachability, reason = "SP-side serving path decoding its own canonically-encoded index entries; the client verifier re-checks everything")
                        let v = decode_version(&bytes).expect("index stores canonical versions");
                        (ts, v)
                    })
                    .collect();
                (
                    results,
                    HistoryOpProof {
                        mpt: mpt_proof,
                        mb_root: Some(tree.root()),
                        ops: Some(tree.prove_ops(&[(t1, t2)])),
                    },
                )
            }
        }
    }
}

/// One key's chained update inside the aux payload.
#[derive(Debug, Clone, PartialEq, Eq)]
struct KeyUpdate {
    /// The key's version-tree root before this block (`None` = new key).
    prev_mb_root: Option<Hash>,
    /// Rightmost-path proof of the version tree (ignored for new keys).
    append: MbAppendProof,
    /// Upper-trie proof for the key against the chained upper root.
    mpt: MptProof,
}

impl Encode for KeyUpdate {
    fn encode(&self, out: &mut Vec<u8>) {
        self.prev_mb_root.encode(out);
        self.append.encode(out);
        self.mpt.encode(out);
    }
}

impl Decode for KeyUpdate {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(KeyUpdate {
            prev_mb_root: Option::<Hash>::decode(r)?,
            append: MbAppendProof::decode(r)?,
            mpt: MptProof::decode(r)?,
        })
    }
}

/// The trusted update verifier for [`HistoryIndex`], registered in the
/// enclave's certificate program.
#[derive(Debug, Clone)]
pub struct HistoryVerifier {
    name: String,
    order: usize,
}

impl HistoryVerifier {
    /// Creates the verifier matching [`HistoryIndex::new`] under `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self::with_order(name, MbTree::DEFAULT_ORDER)
    }

    /// Creates the verifier with an explicit fanout (must match the SP's).
    pub fn with_order(name: impl Into<String>, order: usize) -> Self {
        HistoryVerifier {
            name: name.into(),
            order,
        }
    }
}

impl IndexVerifier for HistoryVerifier {
    fn type_name(&self) -> &str {
        &self.name
    }

    fn genesis_digest(&self) -> Hash {
        // An empty trie.
        Hash::ZERO
    }

    fn verify_update(
        &self,
        prev_digest: &Hash,
        block: &Block,
        writes: &[(StateKey, Option<Vec<u8>>)],
        aux: &[u8],
    ) -> Result<Hash, CertError> {
        let mut reader = Reader::new(aux);
        let updates: Vec<KeyUpdate> =
            decode_seq(&mut reader).map_err(|_| CertError::BadIndexUpdate("aux decode"))?;
        if reader.remaining() != 0 {
            return Err(CertError::BadIndexUpdate("trailing aux bytes"));
        }
        if updates.len() != writes.len() {
            return Err(CertError::BadIndexUpdate("update count mismatch"));
        }
        let height = block.header.height;
        let mut root = *prev_digest;
        for ((key, value), update) in writes.iter().zip(&updates) {
            let key_bytes = key.as_hash().as_bytes();
            let version = encode_version(value);
            let version_hash = hash_bytes(&version);

            // Authenticate the key's current version-tree root (or its
            // absence) against the chained upper root.
            let proven = update
                .mpt
                .verify(&root, key_bytes)
                .map_err(CertError::Proof)?;
            let claimed = update
                .prev_mb_root
                .as_ref()
                .map(|r| hash_bytes(r.as_bytes()));
            if proven != claimed {
                return Err(CertError::BadIndexUpdate("stale version-tree root"));
            }

            // Compute the new version-tree root statelessly.
            let new_mb_root = match update.prev_mb_root {
                None => MbTree::singleton_root(height, &version_hash),
                Some(prev) => update
                    .append
                    .appended_root(&prev, self.order, height, &version_hash)
                    .map_err(CertError::Proof)?,
            };

            // Chain the upper-trie root forward.
            root = update
                .mpt
                .updated_root(&root, key_bytes, &hash_bytes(new_mb_root.as_bytes()))
                .map_err(CertError::Proof)?;
        }
        Ok(root)
    }
}

/// Proof returned with a historical query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryProof {
    /// Upper-trie (non-)membership proof for the queried key.
    mpt: MptProof,
    /// The key's version-tree root (absent if the key is untracked).
    mb_root: Option<Hash>,
    /// Range-completeness proof within the version tree.
    range: Option<MbRangeProof>,
}

impl HistoryProof {
    /// Serialized proof size in bytes (the Fig. 11b metric).
    pub fn size_bytes(&self) -> usize {
        self.encoded_len()
    }
}

impl Encode for HistoryProof {
    fn encode(&self, out: &mut Vec<u8>) {
        self.mpt.encode(out);
        self.mb_root.encode(out);
        self.range.encode(out);
    }
}

impl Decode for HistoryProof {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(HistoryProof {
            mpt: MptProof::decode(r)?,
            mb_root: Option::<Hash>::decode(r)?,
            range: Option::<MbRangeProof>::decode(r)?,
        })
    }
}

/// Proof returned with an op-stream historical query
/// ([`HistoryIndex::query_ops`]).
///
/// Identical to [`HistoryProof`] except the lower-level evidence is a
/// stack-machine program covering the window instead of a pruned tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryOpProof {
    /// Upper-trie (non-)membership proof for the queried key.
    mpt: MptProof,
    /// The key's version-tree root (absent if the key is untracked).
    mb_root: Option<Hash>,
    /// Op-stream range-completeness proof within the version tree.
    ops: Option<MbOpProof>,
}

impl HistoryOpProof {
    /// Serialized proof size in bytes (the Fig. 11b metric).
    pub fn size_bytes(&self) -> usize {
        self.encoded_len()
    }
}

impl Encode for HistoryOpProof {
    fn encode(&self, out: &mut Vec<u8>) {
        self.mpt.encode(out);
        self.mb_root.encode(out);
        self.ops.encode(out);
    }
}

impl Decode for HistoryOpProof {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(HistoryOpProof {
            mpt: MptProof::decode(r)?,
            mb_root: Option::<Hash>::decode(r)?,
            ops: Option::<MbOpProof>::decode(r)?,
        })
    }
}

/// Client-side verification of an op-stream historical query result.
///
/// Enforces exactly the checks of [`verify_history`]: upper-trie
/// (non-)membership for the key, digest binding of the version-tree root,
/// and window completeness — the op program is executed and lifted into
/// the same range verifier the per-path encoding uses.
///
/// # Errors
///
/// [`QueryError`] describing the first failed check.
pub fn verify_history_op(
    digest: &Hash,
    key: &StateKey,
    t1: u64,
    t2: u64,
    results: &[(u64, Version)],
    proof: &HistoryOpProof,
) -> Result<(), QueryError> {
    let key_bytes = key.as_hash().as_bytes();
    let proven = proof.mpt.verify(digest, key_bytes)?;
    match (&proof.mb_root, &proof.ops) {
        (None, None) => {
            if proven.is_some() {
                return Err(QueryError::ResultMismatch(
                    "key is tracked but no version tree presented",
                ));
            }
            if !results.is_empty() {
                return Err(QueryError::ResultMismatch("results for an untracked key"));
            }
            Ok(())
        }
        (Some(mb_root), Some(ops)) => {
            if proven != Some(hash_bytes(mb_root.as_bytes())) {
                return Err(QueryError::DigestMismatch);
            }
            let raw: Vec<(u64, Vec<u8>)> = results
                .iter()
                .map(|(ts, version)| (*ts, encode_version(version)))
                .collect();
            ops.verify(mb_root, t1, t2, &raw)?;
            Ok(())
        }
        _ => Err(QueryError::ResultMismatch("inconsistent proof shape")),
    }
}

/// Client-side verification of a historical query result against the
/// certified index digest.
///
/// # Errors
///
/// [`QueryError`] describing the first failed check.
pub fn verify_history(
    digest: &Hash,
    key: &StateKey,
    t1: u64,
    t2: u64,
    results: &[(u64, Version)],
    proof: &HistoryProof,
) -> Result<(), QueryError> {
    let key_bytes = key.as_hash().as_bytes();
    let proven = proof.mpt.verify(digest, key_bytes)?;
    match (&proof.mb_root, &proof.range) {
        (None, None) => {
            if proven.is_some() {
                return Err(QueryError::ResultMismatch(
                    "key is tracked but no version tree presented",
                ));
            }
            if !results.is_empty() {
                return Err(QueryError::ResultMismatch("results for an untracked key"));
            }
            Ok(())
        }
        (Some(mb_root), Some(range)) => {
            if proven != Some(hash_bytes(mb_root.as_bytes())) {
                return Err(QueryError::DigestMismatch);
            }
            let raw: Vec<(u64, Vec<u8>)> = results
                .iter()
                .map(|(ts, version)| (*ts, encode_version(version)))
                .collect();
            range.verify(mb_root, t1, t2, &raw)?;
            Ok(())
        }
        _ => Err(QueryError::ResultMismatch("inconsistent proof shape")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcert_chain::consensus::ConsensusProof;
    use dcert_chain::BlockHeader;
    use dcert_primitives::hash::Address;

    fn key(label: &str) -> StateKey {
        StateKey::new("kvstore", label.as_bytes())
    }

    fn block_at(height: u64) -> Block {
        Block {
            header: BlockHeader {
                height,
                prev_hash: Hash::ZERO,
                state_root: Hash::ZERO,
                tx_root: Hash::ZERO,
                timestamp: height,
                miner: Address::default(),
                consensus: ConsensusProof::Pow {
                    difficulty_bits: 0,
                    nonce: 0,
                },
            },
            txs: Vec::new(),
        }
    }

    fn writes(entries: &[(&str, Option<&str>)]) -> Vec<(StateKey, Option<Vec<u8>>)> {
        let mut out: Vec<(StateKey, Option<Vec<u8>>)> = entries
            .iter()
            .map(|(k, v)| (key(k), v.map(|s| s.as_bytes().to_vec())))
            .collect();
        out.sort_by_key(|(k, _)| *k.as_hash());
        out
    }

    #[test]
    fn digest_tracks_updates_and_verifier_agrees() {
        let mut index = HistoryIndex::with_order("history", 4);
        let verifier = HistoryVerifier::with_order("history", 4);
        let mut digest = index.digest();
        assert_eq!(digest, verifier.genesis_digest());

        for height in 1..=30u64 {
            let ws = writes(&[
                ("a", Some("v-a")),
                ("b", if height % 3 == 0 { None } else { Some("v-b") }),
            ]);
            let (aux, new_digest) = index.apply_block(height, &ws);
            let recomputed = verifier
                .verify_update(&digest, &block_at(height), &ws, &aux)
                .unwrap_or_else(|e| panic!("height {height}: {e}"));
            assert_eq!(recomputed, new_digest, "height {height}");
            digest = new_digest;
        }
    }

    #[test]
    fn verifier_rejects_tampered_aux() {
        let mut index = HistoryIndex::with_order("history", 4);
        let verifier = HistoryVerifier::with_order("history", 4);
        let digest = index.digest();
        let ws = writes(&[("a", Some("v"))]);
        let (aux, _) = index.apply_block(1, &ws);
        let mut tampered = aux.clone();
        let last = tampered.len() - 1;
        tampered[last] ^= 0xff;
        assert!(verifier
            .verify_update(&digest, &block_at(1), &ws, &tampered)
            .is_err());
    }

    #[test]
    fn verifier_rejects_wrong_write_count() {
        let mut index = HistoryIndex::with_order("history", 4);
        let verifier = HistoryVerifier::with_order("history", 4);
        let digest = index.digest();
        let ws = writes(&[("a", Some("v"))]);
        let (aux, _) = index.apply_block(1, &ws);
        let extra = writes(&[("a", Some("v")), ("b", Some("w"))]);
        assert!(matches!(
            verifier.verify_update(&digest, &block_at(1), &extra, &aux),
            Err(CertError::BadIndexUpdate(_))
        ));
    }

    #[test]
    fn query_returns_versions_in_window_with_valid_proof() {
        let mut index = HistoryIndex::with_order("history", 4);
        for height in 1..=50u64 {
            index.apply_block(height, &writes(&[("acct", Some(&format!("v{height}")))]));
        }
        let digest = index.digest();
        let (results, proof) = index.query(&key("acct"), 10, 20);
        assert_eq!(results.len(), 11);
        assert_eq!(results[0], (10, Some(b"v10".to_vec())));
        verify_history(&digest, &key("acct"), 10, 20, &results, &proof).unwrap();
    }

    #[test]
    fn untracked_key_yields_verified_absence() {
        let mut index = HistoryIndex::with_order("history", 4);
        index.apply_block(1, &writes(&[("known", Some("v"))]));
        let digest = index.digest();
        let (results, proof) = index.query(&key("unknown"), 0, 100);
        assert!(results.is_empty());
        verify_history(&digest, &key("unknown"), 0, 100, &results, &proof).unwrap();
    }

    #[test]
    fn omitted_version_is_detected() {
        let mut index = HistoryIndex::with_order("history", 4);
        for height in 1..=20u64 {
            index.apply_block(height, &writes(&[("acct", Some(&format!("v{height}")))]));
        }
        let digest = index.digest();
        let (mut results, proof) = index.query(&key("acct"), 5, 15);
        results.remove(4);
        assert!(verify_history(&digest, &key("acct"), 5, 15, &results, &proof).is_err());
    }

    #[test]
    fn tampered_version_value_is_detected() {
        let mut index = HistoryIndex::with_order("history", 4);
        for height in 1..=20u64 {
            index.apply_block(height, &writes(&[("acct", Some(&format!("v{height}")))]));
        }
        let digest = index.digest();
        let (mut results, proof) = index.query(&key("acct"), 5, 15);
        results[0].1 = Some(b"forged".to_vec());
        assert!(verify_history(&digest, &key("acct"), 5, 15, &results, &proof).is_err());
    }

    #[test]
    fn proof_from_stale_digest_fails() {
        let mut index = HistoryIndex::with_order("history", 4);
        index.apply_block(1, &writes(&[("acct", Some("v1"))]));
        let stale_digest = index.digest();
        index.apply_block(2, &writes(&[("acct", Some("v2"))]));
        let (results, proof) = index.query(&key("acct"), 0, 10);
        assert!(verify_history(&stale_digest, &key("acct"), 0, 10, &results, &proof).is_err());
    }

    #[test]
    fn op_query_matches_per_path_results_and_verifies() {
        let mut index = HistoryIndex::with_order("history", 4);
        for height in 1..=50u64 {
            index.apply_block(height, &writes(&[("acct", Some(&format!("v{height}")))]));
        }
        let digest = index.digest();
        for (t1, t2) in [(10, 20), (0, 0), (50, 50), (60, 90), (0, u64::MAX)] {
            let (per_path, _) = index.query(&key("acct"), t1, t2);
            let (results, proof) = index.query_ops(&key("acct"), t1, t2);
            assert_eq!(results, per_path, "[{t1},{t2}]");
            verify_history_op(&digest, &key("acct"), t1, t2, &results, &proof).unwrap();
            assert_eq!(proof.size_bytes(), proof.to_encoded_bytes().len());
        }
    }

    #[test]
    fn op_query_detects_omission_and_untracked_keys() {
        let mut index = HistoryIndex::with_order("history", 4);
        for height in 1..=20u64 {
            index.apply_block(height, &writes(&[("acct", Some(&format!("v{height}")))]));
        }
        let digest = index.digest();
        let (mut results, proof) = index.query_ops(&key("acct"), 5, 15);
        results.remove(4);
        assert!(verify_history_op(&digest, &key("acct"), 5, 15, &results, &proof).is_err());

        let (absent, absent_proof) = index.query_ops(&key("unknown"), 0, 100);
        assert!(absent.is_empty());
        verify_history_op(&digest, &key("unknown"), 0, 100, &absent, &absent_proof).unwrap();
    }

    #[test]
    fn deletions_are_recorded_as_versions() {
        let mut index = HistoryIndex::with_order("history", 4);
        index.apply_block(1, &writes(&[("acct", Some("v1"))]));
        index.apply_block(2, &writes(&[("acct", None)]));
        let digest = index.digest();
        let (results, proof) = index.query(&key("acct"), 1, 2);
        assert_eq!(results, vec![(1, Some(b"v1".to_vec())), (2, None)]);
        verify_history(&digest, &key("acct"), 1, 2, &results, &proof).unwrap();
    }
}
