//! Verifiable queries for superlight clients (Section 5 of the paper).
//!
//! The Service Provider (SP) maintains *authenticated indexes* over
//! blockchain data off-chain; the Certificate Issuer's enclave certifies
//! every per-block index update (augmented or hierarchical certificates),
//! and superlight clients verify query results against the certified index
//! digests. Nothing on the chain changes — this is DCert's answer to the
//! built-in approaches (LineageChain, vChain) it compares against.
//!
//! Two index families are provided, matching the paper's case study
//! (Fig. 5):
//!
//! - [`history`]: a **two-level historical index** — a Merkle Patricia trie
//!   over state keys whose values are the roots of per-key Merkle B-trees
//!   of timestamped versions. Supports authenticated time-window queries
//!   ("all versions of account X in [t1, t2]").
//! - [`inverted`]: an **inverted keyword index** — a sparse Merkle tree
//!   over keywords whose values are hash-chain commitments of posting
//!   lists. Supports conjunctive keyword queries ("all transactions
//!   containing Stock AND Bank").
//! - [`aggregate`]: an **aggregate index** — the two-level layout with an
//!   annotation-carrying Merkle B-tree below, answering verifiable window
//!   aggregations (COUNT/SUM/MIN/MAX) with O(log n) proofs.
//!
//! Each index ships three pieces: the SP-side maintained structure, an
//! [`IndexVerifier`](dcert_core::IndexVerifier) loaded into the enclave,
//! and a client-side result verifier. [`sp::ServiceProvider`] packages the
//! per-block maintenance and certificate bookkeeping.

#![forbid(unsafe_code)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)
)]

pub mod aggregate;
pub mod error;
pub mod history;
pub mod inverted;
pub mod sp;

pub use aggregate::{AggOpQueryProof, AggQueryProof, AggregateIndex, AggregateVerifier};
pub use error::QueryError;
pub use history::{HistoryIndex, HistoryOpProof, HistoryProof, HistoryVerifier};
pub use inverted::{extract_keywords, InvertedIndex, InvertedVerifier, KeywordProof};
pub use inverted::{verify_keywords, verify_keywords_any};
pub use sp::{
    CertifiedEntry, KeywordPage, MaintainedIndex, ServiceProvider, WritesPage, SP_CERT_PREFIX,
    SP_HEIGHT_KEY,
};
