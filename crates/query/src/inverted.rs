//! The inverted keyword index (Fig. 5, lower-right).
//!
//! Dictionary: a sparse Merkle tree mapping `H(keyword)` to a hash-chain
//! commitment over the keyword's posting list (the ordered transaction ids
//! containing it). Appends are O(1) to verify — `head' = H(head ‖ tx_id)` —
//! which is exactly what the enclave needs to certify per-block updates,
//! and conjunctive queries return full posting lists (the verifier
//! recomputes each chain head), so intersections are complete by
//! construction.

use std::collections::{BTreeMap, HashMap};

use dcert_chain::Block;
use dcert_core::{CertError, IndexVerifier};
use dcert_merkle::{domain, SmtProof, SparseMerkleTree};
use dcert_primitives::codec::{decode_seq, encode_seq, Decode, Encode, Reader};
use dcert_primitives::error::CodecError;
use dcert_primitives::hash::{hash_bytes, Hash, Hasher};
use dcert_vm::StateKey;

use crate::error::QueryError;

/// Extracts the canonical keyword set of a transaction payload: maximal
/// ASCII-alphanumeric runs starting with a letter, 3–16 characters,
/// lower-cased, deduplicated, sorted.
///
/// Both the SP and the enclave verifier run this same function, so the
/// indexed keyword set is deterministic.
///
/// ```
/// let kws = dcert_query::extract_keywords(b"\x00\x04Sell Stock AND bank!");
/// assert_eq!(kws, vec!["and", "bank", "sell", "stock"]);
/// ```
pub fn extract_keywords(payload: &[u8]) -> Vec<String> {
    let mut keywords = Vec::new();
    let mut current = String::new();
    // A run that began with a digit is poisoned until the next delimiter.
    let mut poisoned = false;
    for &byte in payload.iter().chain(std::iter::once(&0u8)) {
        let ch = byte as char;
        if ch.is_ascii_alphanumeric() {
            if current.is_empty() && !poisoned && !ch.is_ascii_alphabetic() {
                poisoned = true;
            }
            if !poisoned {
                current.push(ch.to_ascii_lowercase());
            }
        } else {
            if !poisoned && (3..=16).contains(&current.len()) {
                // Clone out a right-sized keyword and keep `current`'s
                // buffer; `mem::take` here would discard the accumulated
                // capacity and force a fresh allocation per word.
                keywords.push(current.clone());
            }
            current.clear();
            poisoned = false;
        }
    }
    keywords.sort_unstable();
    keywords.dedup();
    keywords
}

fn keyword_key(keyword: &str) -> Hash {
    Hasher::new().chain(b"ivk:").chain(keyword).finalize()
}

fn chain_append(head: &Hash, tx_id: &Hash) -> Hash {
    Hasher::with_domain(domain::INV_ENTRY)
        .chain(head.as_bytes())
        .chain(tx_id.as_bytes())
        .finalize()
}

/// Recomputes a posting-list chain head from scratch.
fn chain_head(tx_ids: &[Hash]) -> Hash {
    tx_ids
        .iter()
        .fold(Hash::ZERO, |head, id| chain_append(&head, id))
}

/// The SP-side inverted keyword index.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    name: String,
    dictionary: SparseMerkleTree,
    postings: HashMap<String, Vec<Hash>>,
}

impl InvertedIndex {
    /// Creates an index registered under `name`.
    pub fn new(name: impl Into<String>) -> Self {
        InvertedIndex {
            name: name.into(),
            dictionary: SparseMerkleTree::new(),
            postings: HashMap::new(),
        }
    }

    /// The registered index-type name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The certified digest `H_idx`: the dictionary root.
    pub fn digest(&self) -> Hash {
        self.dictionary.root()
    }

    /// Number of distinct indexed keywords.
    pub fn keywords(&self) -> usize {
        self.postings.len()
    }

    /// Derives the per-keyword appends of a block, in transaction order.
    ///
    /// Crate-visible so [`crate::sp::ServiceProvider`] can persist the
    /// appends of each staged block into its `Keywords` record stream.
    pub(crate) fn block_appends(block: &Block) -> BTreeMap<String, Vec<Hash>> {
        let mut appends: BTreeMap<String, Vec<Hash>> = BTreeMap::new();
        for tx in &block.txs {
            let id = tx.id();
            for keyword in extract_keywords(&tx.call.payload) {
                appends.entry(keyword).or_default().push(id);
            }
        }
        appends
    }

    /// Indexes one block, returning the enclave-verifiable update proof
    /// (`aux`) and the new digest.
    // expect() here reads SP-maintained 32-byte chain heads (see the
    // dcert-lint rationale at the call sites).
    #[allow(clippy::expect_used)]
    pub fn apply_block(&mut self, block: &Block) -> (Vec<u8>, Hash) {
        let appends = Self::block_appends(block);
        let touched: Vec<Hash> = appends.keys().map(|kw| keyword_key(kw)).collect();
        let proof = self.dictionary.prove(&touched);
        let prev_heads: Vec<(String, Option<Hash>)> = appends
            .keys()
            .map(|kw| {
                let head = self
                    .dictionary
                    .get(&keyword_key(kw))
                    // dcert-lint: allow(r2-panic-freedom, r5-panic-reachability, reason = "SP-maintained dictionary only ever stores 32-byte chain heads; not attacker input")
                    .map(|bytes| Hash::from_bytes(bytes.try_into().expect("32-byte heads")));
                (kw.clone(), head)
            })
            .collect();

        // Mutate.
        for (keyword, ids) in &appends {
            let list = self.postings.entry(keyword.clone()).or_default();
            let mut head = self
                .dictionary
                .get(&keyword_key(keyword))
                // dcert-lint: allow(r2-panic-freedom, r5-panic-reachability, reason = "SP-maintained dictionary only ever stores 32-byte chain heads; not attacker input")
                .map(|bytes| Hash::from_bytes(bytes.try_into().expect("32-byte heads")))
                .unwrap_or(Hash::ZERO);
            for id in ids {
                list.push(*id);
                head = chain_append(&head, id);
            }
            self.dictionary
                .insert(keyword_key(keyword), head.as_bytes().to_vec());
        }

        let update = InvertedUpdate { prev_heads, proof };
        (update.to_encoded_bytes(), self.digest())
    }

    /// Replays persisted per-keyword appends (one block's worth, as
    /// derived by [`InvertedIndex::block_appends`]) without the block or
    /// the update proof — the mutation half of
    /// [`InvertedIndex::apply_block`], used by store recovery. Applying
    /// the same appends yields the same dictionary root by construction.
    // expect() here reads SP-maintained 32-byte chain heads (see the
    // dcert-lint rationale at the call sites).
    #[allow(clippy::expect_used)]
    pub(crate) fn replay_appends(&mut self, appends: &[(String, Vec<Hash>)]) {
        for (keyword, ids) in appends {
            let list = self.postings.entry(keyword.clone()).or_default();
            let mut head = self
                .dictionary
                .get(&keyword_key(keyword))
                // dcert-lint: allow(r2-panic-freedom, r5-panic-reachability, reason = "SP-maintained dictionary only ever stores 32-byte chain heads; not attacker input")
                .map(|bytes| Hash::from_bytes(bytes.try_into().expect("32-byte heads")))
                .unwrap_or(Hash::ZERO);
            for id in ids {
                list.push(*id);
                head = chain_append(&head, id);
            }
            self.dictionary
                .insert(keyword_key(keyword), head.as_bytes().to_vec());
        }
    }

    /// Answers a **disjunctive** keyword query ("w1 OR w2 OR ..."),
    /// returning the union of matching transaction ids (first-seen order)
    /// and a proof. Verified by [`verify_keywords_any`].
    pub fn query_any(&self, keywords: &[&str]) -> (Vec<Hash>, KeywordProof) {
        let (_, proof) = self.query(keywords);
        let mut seen = std::collections::HashSet::new();
        let mut result = Vec::new();
        for (_, list) in &proof.lists {
            for id in list {
                if seen.insert(*id) {
                    result.push(*id);
                }
            }
        }
        (result, proof)
    }

    /// Answers a conjunctive keyword query ("w1 AND w2 AND ..."),
    /// returning the matching transaction ids and a proof.
    pub fn query(&self, keywords: &[&str]) -> (Vec<Hash>, KeywordProof) {
        let mut normalized: Vec<String> = keywords.iter().map(|k| k.to_ascii_lowercase()).collect();
        normalized.sort_unstable();
        normalized.dedup();

        let touched: Vec<Hash> = normalized.iter().map(|kw| keyword_key(kw)).collect();
        let proof = self.dictionary.prove(&touched);
        let lists: Vec<(String, Vec<Hash>)> = normalized
            .iter()
            .map(|kw| {
                (
                    kw.clone(),
                    self.postings.get(kw).cloned().unwrap_or_default(),
                )
            })
            .collect();

        // Intersection, preserving first-list order.
        let result = match lists.split_first() {
            None => Vec::new(),
            Some(((_, first), rest)) => first
                .iter()
                .filter(|id| rest.iter().all(|(_, list)| list.contains(id)))
                .copied()
                .collect(),
        };
        (result, KeywordProof { lists, smt: proof })
    }
}

/// The aux payload of an inverted-index block update.
#[derive(Debug, Clone, PartialEq, Eq)]
struct InvertedUpdate {
    /// Chain head per touched keyword before the block (`None` = new).
    prev_heads: Vec<(String, Option<Hash>)>,
    /// Dictionary multiproof over the touched keywords.
    proof: SmtProof,
}

impl Encode for InvertedUpdate {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_seq(&self.prev_heads, out);
        self.proof.encode(out);
    }
}

impl Decode for InvertedUpdate {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(InvertedUpdate {
            prev_heads: decode_seq(r)?,
            proof: SmtProof::decode(r)?,
        })
    }
}

/// The trusted update verifier for [`InvertedIndex`].
#[derive(Debug, Clone)]
pub struct InvertedVerifier {
    name: String,
}

impl InvertedVerifier {
    /// Creates the verifier matching [`InvertedIndex::new`] under `name`.
    pub fn new(name: impl Into<String>) -> Self {
        InvertedVerifier { name: name.into() }
    }
}

impl IndexVerifier for InvertedVerifier {
    fn type_name(&self) -> &str {
        &self.name
    }

    fn genesis_digest(&self) -> Hash {
        Hash::ZERO
    }

    fn verify_update(
        &self,
        prev_digest: &Hash,
        block: &Block,
        _writes: &[(StateKey, Option<Vec<u8>>)],
        aux: &[u8],
    ) -> Result<Hash, CertError> {
        let update =
            InvertedUpdate::decode_all(aux).map_err(|_| CertError::BadIndexUpdate("aux decode"))?;
        // The enclave independently derives the appends from the certified
        // block body.
        let appends = InvertedIndex::block_appends(block);
        if update.prev_heads.len() != appends.len()
            || !update
                .prev_heads
                .iter()
                .zip(appends.keys())
                .all(|((a, _), b)| a == b)
        {
            return Err(CertError::BadIndexUpdate("keyword set mismatch"));
        }
        update.proof.verify(prev_digest).map_err(CertError::Proof)?;
        let mut new_values = Vec::with_capacity(appends.len());
        for ((keyword, prev_head), ids) in update.prev_heads.iter().zip(appends.values()) {
            let key = keyword_key(keyword);
            let proven = update
                .proof
                .pre_value_hash(&key)
                .map_err(CertError::Proof)?;
            let claimed = prev_head.map(|h| hash_bytes(h.as_bytes()));
            if proven != claimed {
                return Err(CertError::BadIndexUpdate("stale chain head"));
            }
            let mut head = prev_head.unwrap_or(Hash::ZERO);
            for id in ids {
                head = chain_append(&head, id);
            }
            new_values.push((key, Some(hash_bytes(head.as_bytes()))));
        }
        update
            .proof
            .updated_root(&new_values)
            .map_err(CertError::Proof)
    }
}

/// Proof returned with a conjunctive keyword query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeywordProof {
    /// Full posting list per queried keyword (sorted by keyword).
    lists: Vec<(String, Vec<Hash>)>,
    /// Dictionary multiproof over the queried keywords.
    smt: SmtProof,
}

impl KeywordProof {
    /// Serialized proof size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.encoded_len()
    }
}

impl Encode for KeywordProof {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_seq(&self.lists, out);
        self.smt.encode(out);
    }
}

impl Decode for KeywordProof {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(KeywordProof {
            lists: decode_seq(r)?,
            smt: SmtProof::decode(r)?,
        })
    }
}

/// Client-side verification of a **disjunctive** keyword query result
/// (the union across keywords) against the certified index digest.
///
/// # Errors
///
/// [`QueryError`] describing the first failed check.
pub fn verify_keywords_any(
    digest: &Hash,
    keywords: &[&str],
    result: &[Hash],
    proof: &KeywordProof,
) -> Result<(), QueryError> {
    verify_posting_lists(digest, keywords, proof)?;
    let mut seen = std::collections::HashSet::new();
    let mut recomputed = Vec::new();
    for (_, list) in &proof.lists {
        for id in list {
            if seen.insert(*id) {
                recomputed.push(*id);
            }
        }
    }
    if recomputed != result {
        return Err(QueryError::ResultMismatch("union mismatch"));
    }
    Ok(())
}

/// Shared core: authenticate every posting list in `proof` for exactly the
/// queried keyword set against the certified digest.
fn verify_posting_lists(
    digest: &Hash,
    keywords: &[&str],
    proof: &KeywordProof,
) -> Result<(), QueryError> {
    let mut normalized: Vec<String> = keywords.iter().map(|k| k.to_ascii_lowercase()).collect();
    normalized.sort_unstable();
    normalized.dedup();
    if proof.lists.len() != normalized.len()
        || !proof
            .lists
            .iter()
            .zip(&normalized)
            .all(|((a, _), b)| a == b)
    {
        return Err(QueryError::ResultMismatch("keyword set mismatch"));
    }
    proof.smt.verify(digest)?;
    for (keyword, list) in &proof.lists {
        let key = keyword_key(keyword);
        let proven = proof.smt.pre_value_hash(&key)?;
        let expected = if list.is_empty() {
            None
        } else {
            Some(hash_bytes(chain_head(list).as_bytes()))
        };
        if proven != expected {
            return Err(QueryError::ResultMismatch("posting list mismatch"));
        }
    }
    Ok(())
}

/// Client-side verification of a conjunctive keyword query result against
/// the certified index digest.
///
/// # Errors
///
/// [`QueryError`] describing the first failed check.
pub fn verify_keywords(
    digest: &Hash,
    keywords: &[&str],
    result: &[Hash],
    proof: &KeywordProof,
) -> Result<(), QueryError> {
    verify_posting_lists(digest, keywords, proof)?;
    // Recompute the intersection.
    let recomputed: Vec<Hash> = match proof.lists.split_first() {
        None => Vec::new(),
        Some(((_, first), rest)) => first
            .iter()
            .filter(|id| rest.iter().all(|(_, list)| list.contains(id)))
            .copied()
            .collect(),
    };
    if recomputed != result {
        return Err(QueryError::ResultMismatch("intersection mismatch"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcert_chain::consensus::ConsensusProof;
    use dcert_chain::{Block, BlockHeader, Transaction};
    use dcert_primitives::hash::Address;
    use dcert_primitives::keys::Keypair;

    fn memo_block(height: u64, memos: &[&str]) -> Block {
        let kp = Keypair::from_seed([height as u8 + 1; 32]);
        let txs: Vec<Transaction> = memos
            .iter()
            .enumerate()
            .map(|(i, memo)| {
                Transaction::sign(
                    &kp,
                    height * 100 + i as u64,
                    "kvstore",
                    memo.as_bytes().to_vec(),
                )
            })
            .collect();
        Block {
            header: BlockHeader {
                height,
                prev_hash: Hash::ZERO,
                state_root: Hash::ZERO,
                tx_root: Block::tx_root(&txs),
                timestamp: height,
                miner: Address::default(),
                consensus: ConsensusProof::Pow {
                    difficulty_bits: 0,
                    nonce: 0,
                },
            },
            txs,
        }
    }

    #[test]
    fn extractor_normalizes_and_filters() {
        assert_eq!(
            extract_keywords(b"Stock AND Bank and stock"),
            vec!["and", "bank", "stock"]
        );
        // Too-short and too-long words are dropped; digits can't start one.
        assert_eq!(
            extract_keywords(b"go 12abc abcdefghijklmnopq"),
            Vec::<String>::new()
        );
        assert_eq!(extract_keywords(b"x9 word9 w"), vec!["word9"]);
    }

    #[test]
    fn digest_tracks_updates_and_verifier_agrees() {
        let mut index = InvertedIndex::new("inverted");
        let verifier = InvertedVerifier::new("inverted");
        let mut digest = index.digest();
        assert_eq!(digest, verifier.genesis_digest());
        for height in 1..=10u64 {
            let block = memo_block(
                height,
                &["buy stock now", "bank transfer stock", "sell bond"],
            );
            let (aux, new_digest) = index.apply_block(&block);
            let recomputed = verifier
                .verify_update(&digest, &block, &[], &aux)
                .unwrap_or_else(|e| panic!("height {height}: {e}"));
            assert_eq!(recomputed, new_digest);
            digest = new_digest;
        }
    }

    #[test]
    fn verifier_rejects_forged_appends() {
        let mut index = InvertedIndex::new("inverted");
        let verifier = InvertedVerifier::new("inverted");
        let digest = index.digest();
        let block = memo_block(1, &["stock bank"]);
        let (aux, _) = index.apply_block(&block);
        // Present the aux for a *different* block (different tx set).
        let other = memo_block(2, &["stock bank extra"]);
        assert!(verifier.verify_update(&digest, &other, &[], &aux).is_err());
    }

    #[test]
    fn conjunctive_query_verifies() {
        let mut index = InvertedIndex::new("inverted");
        let b1 = memo_block(1, &["stock bank merger", "stock only here"]);
        let b2 = memo_block(2, &["bank holiday", "stock AND bank again"]);
        index.apply_block(&b1);
        index.apply_block(&b2);
        let digest = index.digest();

        let (result, proof) = index.query(&["stock", "bank"]);
        // Txs containing both words: b1 tx0 and b2 tx1.
        assert_eq!(result.len(), 2);
        assert!(result.contains(&b1.txs[0].id()));
        assert!(result.contains(&b2.txs[1].id()));
        verify_keywords(&digest, &["stock", "bank"], &result, &proof).unwrap();
        // Order/case-insensitive on the client side too.
        verify_keywords(&digest, &["BANK", "Stock"], &result, &proof).unwrap();
    }

    #[test]
    fn disjunctive_query_verifies_union() {
        let mut index = InvertedIndex::new("inverted");
        let b1 = memo_block(1, &["stock only", "bank only", "neither word"]);
        index.apply_block(&b1);
        let digest = index.digest();
        let (result, proof) = index.query_any(&["stock", "bank"]);
        assert_eq!(result.len(), 2);
        assert!(result.contains(&b1.txs[0].id()));
        assert!(result.contains(&b1.txs[1].id()));
        verify_keywords_any(&digest, &["stock", "bank"], &result, &proof).unwrap();

        // Omitting a union member is caught.
        let mut hidden = result.clone();
        hidden.pop();
        assert!(verify_keywords_any(&digest, &["stock", "bank"], &hidden, &proof).is_err());
        // And the union result does not pass the conjunctive verifier.
        assert!(verify_keywords(&digest, &["stock", "bank"], &result, &proof).is_err());
    }

    #[test]
    fn absent_keyword_gives_verified_empty_result() {
        let mut index = InvertedIndex::new("inverted");
        index.apply_block(&memo_block(1, &["stock bank"]));
        let digest = index.digest();
        let (result, proof) = index.query(&["stock", "unicorn"]);
        assert!(result.is_empty());
        verify_keywords(&digest, &["stock", "unicorn"], &result, &proof).unwrap();
    }

    #[test]
    fn omitted_posting_detected() {
        let mut index = InvertedIndex::new("inverted");
        let b1 = memo_block(1, &["stock bank", "stock bank too"]);
        index.apply_block(&b1);
        let digest = index.digest();
        let (result, mut proof) = index.query(&["stock", "bank"]);
        assert_eq!(result.len(), 2);
        // SP drops one posting from a list (hiding a match).
        proof.lists[0].1.pop();
        assert!(verify_keywords(&digest, &["stock", "bank"], &result, &proof).is_err());
    }

    #[test]
    fn tampered_result_detected() {
        let mut index = InvertedIndex::new("inverted");
        index.apply_block(&memo_block(1, &["stock bank"]));
        let digest = index.digest();
        let (mut result, proof) = index.query(&["stock"]);
        result.push(hash_bytes(b"injected"));
        assert!(verify_keywords(&digest, &["stock"], &result, &proof).is_err());
    }

    #[test]
    fn replay_appends_matches_apply_block() {
        let mut live = InvertedIndex::new("inverted");
        let mut replayed = InvertedIndex::new("inverted");
        for height in 1..=5u64 {
            let block = memo_block(height, &["stock bank sale", "bank bond note"]);
            live.apply_block(&block);
            let appends: Vec<(String, Vec<Hash>)> =
                InvertedIndex::block_appends(&block).into_iter().collect();
            replayed.replay_appends(&appends);
        }
        assert_eq!(live.digest(), replayed.digest());
        assert_eq!(live.query(&["bank"]).0, replayed.query(&["bank"]).0);
    }

    #[test]
    fn proof_codec_round_trip() {
        let mut index = InvertedIndex::new("inverted");
        index.apply_block(&memo_block(1, &["stock bank"]));
        let (_, proof) = index.query(&["stock"]);
        let decoded = KeywordProof::decode_all(&proof.to_encoded_bytes()).unwrap();
        assert_eq!(decoded, proof);
    }
}
