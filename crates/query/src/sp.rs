//! The Query Service Provider (SP).
//!
//! A full node that maintains any number of authenticated indexes over the
//! chain, stages per-block update proofs for the Certificate Issuer, and
//! serves verifiable queries to superlight clients (Fig. 2 of the paper).

use std::collections::BTreeMap;
use std::sync::Arc;

use dcert_chain::{Block, ChainError, ChainState, ConsensusEngine, FullNode};
use dcert_core::{Certificate, IndexInput, IndexVerifier};
use dcert_obs::{Buckets, Counter, Histogram, Registry};
use dcert_primitives::codec::Encode;
use dcert_primitives::hash::{Address, Hash};
use dcert_sgx::cost::timed;
use dcert_vm::{Executor, StateKey};

use crate::aggregate::{AggQueryProof, Aggregate, AggregateIndex, AggregateVerifier};
use crate::history::{HistoryIndex, HistoryProof, HistoryVerifier, Version};
use crate::inverted::{InvertedIndex, InvertedVerifier, KeywordProof};

/// An index the SP maintains block by block.
///
/// Implemented by [`HistoryIndex`] and [`InvertedIndex`]; the object-safe
/// surface is what [`ServiceProvider`] drives, while querying goes through
/// the concrete types.
pub trait MaintainedIndex: Send {
    /// The registered index-type name.
    fn type_name(&self) -> &str;
    /// The current digest `H_idx`.
    fn digest(&self) -> Hash;
    /// Applies one block, returning `(aux, new_digest)` for certification.
    fn apply_block(
        &mut self,
        block: &Block,
        writes: &[(StateKey, Option<Vec<u8>>)],
    ) -> (Vec<u8>, Hash);
}

impl MaintainedIndex for HistoryIndex {
    fn type_name(&self) -> &str {
        self.name()
    }
    fn digest(&self) -> Hash {
        HistoryIndex::digest(self)
    }
    fn apply_block(
        &mut self,
        block: &Block,
        writes: &[(StateKey, Option<Vec<u8>>)],
    ) -> (Vec<u8>, Hash) {
        HistoryIndex::apply_block(self, block.header.height, writes)
    }
}

impl MaintainedIndex for AggregateIndex {
    fn type_name(&self) -> &str {
        self.name()
    }
    fn digest(&self) -> Hash {
        AggregateIndex::digest(self)
    }
    fn apply_block(
        &mut self,
        block: &Block,
        writes: &[(StateKey, Option<Vec<u8>>)],
    ) -> (Vec<u8>, Hash) {
        AggregateIndex::apply_block(self, block.header.height, writes)
    }
}

impl MaintainedIndex for InvertedIndex {
    fn type_name(&self) -> &str {
        self.name()
    }
    fn digest(&self) -> Hash {
        InvertedIndex::digest(self)
    }
    fn apply_block(
        &mut self,
        block: &Block,
        _writes: &[(StateKey, Option<Vec<u8>>)],
    ) -> (Vec<u8>, Hash) {
        InvertedIndex::apply_block(self, block)
    }
}

/// Which kind of index to instantiate under a name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Two-level historical index.
    History,
    /// Inverted keyword index.
    Inverted,
    /// Two-level window-aggregation index.
    Aggregate,
}

/// Metric handles for the SP query cost center (`sp.*`) — the data
/// behind the paper's Fig. 11 query-overhead comparison (VO size and
/// serving time per query family).
struct SpObs {
    queries: Counter,
    history_queries: Counter,
    keyword_queries: Counter,
    aggregate_queries: Counter,
    /// Verification-object wire size per served query.
    vo_bytes: Histogram,
    /// Result entries per served query.
    results: Histogram,
    /// Wall-clock serving time (index walk + proof assembly).
    serve_ns: Histogram,
    /// Wire size of each index certificate recorded by the SP.
    cert_bytes: Histogram,
}

impl SpObs {
    fn register(registry: &Registry) -> Self {
        SpObs {
            queries: registry.counter("sp.queries"),
            history_queries: registry.counter("sp.query.history"),
            keyword_queries: registry.counter("sp.query.keyword"),
            aggregate_queries: registry.counter("sp.query.aggregate"),
            vo_bytes: registry.histogram("sp.query.vo_bytes", Buckets::bytes()),
            results: registry.histogram("sp.query.results", Buckets::exponential(1, 2, 16)),
            serve_ns: registry.timer("sp.query.serve_ns"),
            cert_bytes: registry.histogram("sp.cert_bytes", Buckets::bytes()),
        }
    }

    fn record_query(&self, family: &Counter, vo_bytes: usize, results: usize) {
        self.queries.inc();
        family.inc();
        self.vo_bytes
            .observe(u64::try_from(vo_bytes).unwrap_or(u64::MAX));
        self.results
            .observe(u64::try_from(results).unwrap_or(u64::MAX));
    }
}

/// The SP: a full node plus its maintained indexes and their certificate
/// bookkeeping.
pub struct ServiceProvider {
    node: FullNode,
    histories: BTreeMap<String, HistoryIndex>,
    inverteds: BTreeMap<String, InvertedIndex>,
    aggregates: BTreeMap<String, AggregateIndex>,
    /// Last *certified* digest and certificate per index.
    certified: BTreeMap<String, (Hash, Option<Certificate>)>,
    /// Digests staged by the latest `stage_block`, awaiting certificates.
    staged: Vec<(String, Hash)>,
    obs: Option<SpObs>,
}

impl std::fmt::Debug for ServiceProvider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceProvider")
            .field("height", &self.node.height())
            .field("histories", &self.histories.len())
            .field("inverteds", &self.inverteds.len())
            .finish()
    }
}

impl ServiceProvider {
    /// Creates an SP at genesis.
    pub fn new(
        genesis: &Block,
        genesis_state: ChainState,
        executor: Executor,
        engine: Arc<dyn ConsensusEngine>,
    ) -> Self {
        ServiceProvider {
            node: FullNode::new(genesis, genesis_state, executor, engine, Address::default()),
            histories: BTreeMap::new(),
            inverteds: BTreeMap::new(),
            aggregates: BTreeMap::new(),
            certified: BTreeMap::new(),
            staged: Vec::new(),
            obs: None,
        }
    }

    /// Registers this SP's query metrics (`sp.*`) in `registry`; every
    /// `serve_*` call and recorded certificate is measured from here on.
    pub fn attach_obs(&mut self, registry: &Registry) {
        self.obs = Some(SpObs::register(registry));
    }

    /// Registers a new index under `name`.
    ///
    /// # Panics
    ///
    /// Panics if an index with the same name already exists, or if blocks
    /// have already been processed (indexes must start from genesis).
    pub fn add_index(&mut self, kind: IndexKind, name: &str) {
        assert_eq!(self.node.height(), 0, "indexes must start from genesis");
        let fresh = self
            .certified
            .insert(name.to_owned(), (Hash::ZERO, None))
            .is_none();
        assert!(fresh, "duplicate index name {name}");
        match kind {
            IndexKind::History => {
                self.histories
                    .insert(name.to_owned(), HistoryIndex::new(name));
            }
            IndexKind::Inverted => {
                self.inverteds
                    .insert(name.to_owned(), InvertedIndex::new(name));
            }
            IndexKind::Aggregate => {
                self.aggregates
                    .insert(name.to_owned(), AggregateIndex::new(name));
            }
        }
    }

    /// Builds the enclave-side verifiers matching the registered indexes —
    /// hand these to [`CertificateIssuer::new`](dcert_core::CertificateIssuer::new).
    pub fn verifiers(&self) -> Vec<Box<dyn IndexVerifier>> {
        let mut out: Vec<Box<dyn IndexVerifier>> = Vec::new();
        for name in self.histories.keys() {
            out.push(Box::new(HistoryVerifier::new(name.clone())));
        }
        for name in self.inverteds.keys() {
            out.push(Box::new(InvertedVerifier::new(name.clone())));
        }
        for name in self.aggregates.keys() {
            out.push(Box::new(AggregateVerifier::new(name.clone())));
        }
        out
    }

    /// The SP's chain height.
    pub fn height(&self) -> u64 {
        self.node.height()
    }

    /// Access a history index for querying.
    pub fn history(&self, name: &str) -> Option<&HistoryIndex> {
        self.histories.get(name)
    }

    /// Access an inverted index for querying.
    pub fn inverted(&self, name: &str) -> Option<&InvertedIndex> {
        self.inverteds.get(name)
    }

    /// Access an aggregate index for querying.
    pub fn aggregate(&self, name: &str) -> Option<&AggregateIndex> {
        self.aggregates.get(name)
    }

    /// Serves an authenticated time-window history query through the SP's
    /// measured query path: the result and proof are exactly
    /// [`HistoryIndex::query`]'s, with serving time, VO size, and result
    /// count recorded into the attached registry. `None` if no history
    /// index is registered under `name`.
    pub fn serve_history(
        &self,
        name: &str,
        key: &StateKey,
        t1: u64,
        t2: u64,
    ) -> Option<(Vec<(u64, Version)>, HistoryProof)> {
        let index = self.histories.get(name)?;
        let ((results, proof), took) = timed(|| index.query(key, t1, t2));
        if let Some(obs) = &self.obs {
            obs.record_query(&obs.history_queries, proof.encoded_len(), results.len());
            obs.serve_ns.record(took);
        }
        Some((results, proof))
    }

    /// Serves a conjunctive keyword query ([`InvertedIndex::query`])
    /// through the measured query path. `None` if no inverted index is
    /// registered under `name`.
    pub fn serve_keywords(
        &self,
        name: &str,
        keywords: &[&str],
    ) -> Option<(Vec<Hash>, KeywordProof)> {
        let index = self.inverteds.get(name)?;
        let ((results, proof), took) = timed(|| index.query(keywords));
        if let Some(obs) = &self.obs {
            obs.record_query(&obs.keyword_queries, proof.encoded_len(), results.len());
            obs.serve_ns.record(took);
        }
        Some((results, proof))
    }

    /// Serves a verifiable window aggregation ([`AggregateIndex::query`])
    /// through the measured query path. `None` if no aggregate index is
    /// registered under `name`.
    pub fn serve_aggregate(
        &self,
        name: &str,
        key: &StateKey,
        t1: u64,
        t2: u64,
    ) -> Option<(Aggregate, AggQueryProof)> {
        let index = self.aggregates.get(name)?;
        let ((aggregate, proof), took) = timed(|| index.query(key, t1, t2));
        if let Some(obs) = &self.obs {
            obs.record_query(&obs.aggregate_queries, proof.encoded_len(), 1);
            obs.serve_ns.record(took);
        }
        Some((aggregate, proof))
    }

    /// Processes one block: executes it, updates every index, advances the
    /// chain, and returns the [`IndexInput`]s the CI needs (in the same
    /// deterministic order as [`ServiceProvider::verifiers`]).
    ///
    /// # Errors
    ///
    /// Propagates block-validation errors; indexes are only updated when
    /// the block is valid.
    // expect() here reads SP-internal bookkeeping seeded by register_* (see
    // the dcert-lint rationale at the call site).
    #[allow(clippy::expect_used)]
    pub fn stage_block(&mut self, block: &Block) -> Result<Vec<IndexInput>, ChainError> {
        let execution = self.node.execute(&block.txs);
        let writes: Vec<(StateKey, Option<Vec<u8>>)> = execution
            .writes
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        // Validate + advance the chain first; a bad block must not touch
        // the indexes.
        self.node.apply(block)?;

        // Borrow the index maps and the bookkeeping as disjoint fields so
        // the update loop can stream `&str` keys straight out of the maps —
        // no intermediate Vec collections, no per-index key clone just to
        // look up `certified`.
        let ServiceProvider {
            histories,
            inverteds,
            aggregates,
            certified,
            staged,
            ..
        } = self;
        staged.clear();
        let mut inputs = Vec::with_capacity(histories.len() + inverteds.len() + aggregates.len());
        let indexes = histories
            .iter_mut()
            .map(|(n, i)| (n.as_str(), i as &mut dyn MaintainedIndex))
            .chain(
                inverteds
                    .iter_mut()
                    .map(|(n, i)| (n.as_str(), i as &mut dyn MaintainedIndex)),
            )
            .chain(
                aggregates
                    .iter_mut()
                    .map(|(n, i)| (n.as_str(), i as &mut dyn MaintainedIndex)),
            );
        for (name, index) in indexes {
            let (prev_digest, prev_cert) = certified
                .get(name)
                .cloned()
                // dcert-lint: allow(r2-panic-freedom, reason = "SP-internal bookkeeping: register_* seeds this map for every index it iterates")
                .expect("registered index has bookkeeping");
            let (aux, new_digest) = index.apply_block(block, &writes);
            staged.push((name.to_owned(), new_digest));
            inputs.push(IndexInput {
                index_type: name.to_owned(),
                prev_digest,
                prev_cert,
                new_digest,
                aux,
            });
        }
        Ok(inputs)
    }

    /// Records the certificates the CI issued for the last staged block,
    /// in the same order as the returned [`IndexInput`]s.
    ///
    /// # Panics
    ///
    /// Panics if the count does not match the staged updates.
    pub fn record_certs(&mut self, certs: &[Certificate]) {
        assert_eq!(certs.len(), self.staged.len(), "certificate count mismatch");
        for ((name, digest), cert) in self.staged.drain(..).zip(certs) {
            if let Some(obs) = &self.obs {
                obs.cert_bytes
                    .observe(u64::try_from(cert.encoded_len()).unwrap_or(u64::MAX));
            }
            self.certified.insert(name, (digest, Some(cert.clone())));
        }
    }

    /// Marks the last staged updates as headed for certification without
    /// waiting for the certificates themselves.
    ///
    /// In pipelined mode the issuer stage owns the `prev_cert` chain and
    /// splices freshly issued certificates into each request, so the SP
    /// only needs its digest bookkeeping advanced before staging the next
    /// block. The certificates recorded here stay at their last
    /// [`ServiceProvider::record_certs`] value (`None` if never recorded).
    // expect() here reads SP-internal bookkeeping seeded by register_* (see
    // the dcert-lint rationale at the call site).
    #[allow(clippy::expect_used)]
    pub fn advance_staged(&mut self) {
        for (name, digest) in self.staged.drain(..) {
            let entry = self
                .certified
                .get_mut(&name)
                // dcert-lint: allow(r2-panic-freedom, reason = "SP-internal bookkeeping: register_* seeds this map for every index it stages")
                .expect("registered index has bookkeeping");
            entry.0 = digest;
        }
    }

    /// The latest certified digest of an index (for serving clients).
    pub fn certified_digest(&self, name: &str) -> Option<Hash> {
        self.certified.get(name).map(|(d, _)| *d)
    }

    /// The latest certificate of an index.
    pub fn certificate(&self, name: &str) -> Option<&Certificate> {
        self.certified.get(name).and_then(|(_, c)| c.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcert_chain::{GenesisBuilder, ProofOfWork, Transaction};
    use dcert_primitives::keys::Keypair;
    use dcert_workloads::blockbench_registry;

    fn setup() -> (FullNode, ServiceProvider) {
        let executor = Executor::new(Arc::new(blockbench_registry()));
        let engine: Arc<dyn ConsensusEngine> = Arc::new(ProofOfWork::new(2));
        let (genesis, state) = GenesisBuilder::new().build();
        let miner = FullNode::new(
            &genesis,
            state.clone(),
            executor.clone(),
            engine.clone(),
            Address::from_seed(1),
        );
        let mut sp = ServiceProvider::new(&genesis, state, executor, engine);
        sp.add_index(IndexKind::History, "history");
        sp.add_index(IndexKind::Inverted, "inverted");
        (miner, sp)
    }

    #[test]
    fn stage_block_returns_one_input_per_index() {
        let (mut miner, mut sp) = setup();
        let kp = Keypair::from_seed([5; 32]);
        let tx = Transaction::sign(
            &kp,
            0,
            "kvstore",
            dcert_workloads::kvstore::KvCall::Put {
                key: b"acct".to_vec(),
                value: b"stock bank memo".to_vec(),
            }
            .to_encoded_bytes(),
        );
        let block = miner.mine(vec![tx], 1).unwrap();
        let inputs = sp.stage_block(&block).unwrap();
        assert_eq!(inputs.len(), 2);
        assert_eq!(inputs[0].index_type, "history");
        assert_eq!(inputs[1].index_type, "inverted");
        assert_eq!(inputs[0].prev_digest, Hash::ZERO);
        assert_ne!(inputs[0].new_digest, Hash::ZERO);
        assert_eq!(sp.height(), 1);
    }

    #[test]
    fn serve_methods_match_direct_queries_and_record_metrics() {
        let (mut miner, mut sp) = setup();
        let registry = dcert_obs::Registry::new();
        sp.attach_obs(&registry);
        let kp = Keypair::from_seed([5; 32]);
        let tx = Transaction::sign(
            &kp,
            0,
            "kvstore",
            dcert_workloads::kvstore::KvCall::Put {
                key: b"acct".to_vec(),
                value: b"stock bank memo".to_vec(),
            }
            .to_encoded_bytes(),
        );
        let block = miner.mine(vec![tx], 1).unwrap();
        sp.stage_block(&block).unwrap();

        let key = StateKey::new("kvstore", b"acct");
        let (direct_res, direct_proof) = sp.history("history").unwrap().query(&key, 0, 10);
        let (served_res, served_proof) = sp.serve_history("history", &key, 0, 10).unwrap();
        assert_eq!(direct_res, served_res, "serve path must not change results");
        assert_eq!(
            direct_proof.to_encoded_bytes(),
            served_proof.to_encoded_bytes()
        );
        let (kw_res, _) = sp.serve_keywords("inverted", &["stock", "bank"]).unwrap();
        assert_eq!(kw_res.len(), 1);
        assert!(sp.serve_history("no-such-index", &key, 0, 10).is_none());

        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("sp.queries"), 2);
        assert_eq!(snapshot.counter("sp.query.history"), 1);
        assert_eq!(snapshot.counter("sp.query.keyword"), 1);
        let vo = snapshot.histograms.get("sp.query.vo_bytes").unwrap();
        assert_eq!(vo.count, 2);
        assert!(vo.sum > 0, "VOs have nonzero wire size");
    }

    #[test]
    fn verifiers_match_indexes() {
        let (_, sp) = setup();
        let verifiers = sp.verifiers();
        let names: Vec<&str> = verifiers.iter().map(|v| v.type_name()).collect();
        assert_eq!(names, vec!["history", "inverted"]);
    }

    #[test]
    #[should_panic(expected = "duplicate index name")]
    fn duplicate_names_rejected() {
        let (_, mut sp) = setup();
        sp.add_index(IndexKind::History, "history");
    }

    use dcert_primitives::codec::Encode;
}
