//! The Query Service Provider (SP).
//!
//! A full node that maintains any number of authenticated indexes over the
//! chain, stages per-block update proofs for the Certificate Issuer, and
//! serves verifiable queries to superlight clients (Fig. 2 of the paper).

use std::collections::BTreeMap;
use std::sync::Arc;

use dcert_chain::{Block, ChainError, ChainState, ConsensusEngine, FullNode};
use dcert_core::{Certificate, IndexInput, IndexVerifier, RecoverError};
use dcert_obs::{Buckets, Counter, Histogram, Registry};
use dcert_primitives::codec::{decode_seq, encode_seq, Decode, Encode, Reader};
use dcert_primitives::error::CodecError;
use dcert_primitives::hash::{Address, Hash};
use dcert_primitives::keys::PublicKey;
use dcert_sgx::cost::timed;
use dcert_store::{Record, Store, StoreError, StreamId};
use dcert_vm::{Executor, StateKey};

use crate::aggregate::{
    AggOpQueryProof, AggQueryProof, Aggregate, AggregateIndex, AggregateVerifier,
};
use crate::history::{HistoryIndex, HistoryOpProof, HistoryProof, HistoryVerifier, Version};
use crate::inverted::{InvertedIndex, InvertedVerifier, KeywordProof};

/// Head-region key under which the SP commits its replay watermark: the
/// highest block height whose index updates (and record pages) are
/// durable *and* accounted for by the committed per-index digests.
pub const SP_HEIGHT_KEY: &str = "sp.height";

/// Head-region key prefix for per-index certified state; the index name
/// follows the prefix.
pub const SP_CERT_PREFIX: &str = "sp.cert.";

/// One block's state writes, as persisted in the [`StreamId::Writes`]
/// record stream. Replaying these pages in height order reproduces every
/// history and aggregate index byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WritesPage {
    /// The executed block's writes, in execution order.
    pub writes: Vec<(StateKey, Option<Vec<u8>>)>,
}

impl Encode for WritesPage {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_seq(&self.writes, out);
    }
}

impl Decode for WritesPage {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(WritesPage {
            writes: decode_seq(r)?,
        })
    }
}

/// One block's keyword appends (as derived by the inverted index from the
/// block body), persisted in the [`StreamId::Keywords`] record stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KeywordPage {
    /// Per-keyword transaction-id appends, sorted by keyword.
    pub appends: Vec<(String, Vec<Hash>)>,
}

impl Encode for KeywordPage {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_seq(&self.appends, out);
    }
}

impl Decode for KeywordPage {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(KeywordPage {
            appends: decode_seq(r)?,
        })
    }
}

/// Per-index certified state, persisted under [`SP_CERT_PREFIX`]`<name>`
/// in the store's head region.
///
/// `anchor` pins the latest certificate to exactly what the enclave
/// signed: the header hash and index digest it certifies. (In pipelined
/// mode the committed `digest` can run ahead of the certified one, so the
/// pair is recorded alongside the certificate rather than inferred.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertifiedEntry {
    /// The committed index digest at the replay watermark.
    pub digest: Hash,
    /// `(header_hash, certified_digest, certificate)` of the latest
    /// recorded certificate, if any was recorded.
    pub anchor: Option<(Hash, Hash, Certificate)>,
}

impl Encode for CertifiedEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        self.digest.encode(out);
        self.anchor.encode(out);
    }
}

impl Decode for CertifiedEntry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(CertifiedEntry {
            digest: Hash::decode(r)?,
            anchor: Option::decode(r)?,
        })
    }
}

/// An index the SP maintains block by block.
///
/// Implemented by [`HistoryIndex`] and [`InvertedIndex`]; the object-safe
/// surface is what [`ServiceProvider`] drives, while querying goes through
/// the concrete types.
pub trait MaintainedIndex: Send {
    /// The registered index-type name.
    fn type_name(&self) -> &str;
    /// The current digest `H_idx`.
    fn digest(&self) -> Hash;
    /// Applies one block, returning `(aux, new_digest)` for certification.
    fn apply_block(
        &mut self,
        block: &Block,
        writes: &[(StateKey, Option<Vec<u8>>)],
    ) -> (Vec<u8>, Hash);
}

impl MaintainedIndex for HistoryIndex {
    fn type_name(&self) -> &str {
        self.name()
    }
    fn digest(&self) -> Hash {
        HistoryIndex::digest(self)
    }
    fn apply_block(
        &mut self,
        block: &Block,
        writes: &[(StateKey, Option<Vec<u8>>)],
    ) -> (Vec<u8>, Hash) {
        HistoryIndex::apply_block(self, block.header.height, writes)
    }
}

impl MaintainedIndex for AggregateIndex {
    fn type_name(&self) -> &str {
        self.name()
    }
    fn digest(&self) -> Hash {
        AggregateIndex::digest(self)
    }
    fn apply_block(
        &mut self,
        block: &Block,
        writes: &[(StateKey, Option<Vec<u8>>)],
    ) -> (Vec<u8>, Hash) {
        AggregateIndex::apply_block(self, block.header.height, writes)
    }
}

impl MaintainedIndex for InvertedIndex {
    fn type_name(&self) -> &str {
        self.name()
    }
    fn digest(&self) -> Hash {
        InvertedIndex::digest(self)
    }
    fn apply_block(
        &mut self,
        block: &Block,
        _writes: &[(StateKey, Option<Vec<u8>>)],
    ) -> (Vec<u8>, Hash) {
        InvertedIndex::apply_block(self, block)
    }
}

/// Which kind of index to instantiate under a name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Two-level historical index.
    History,
    /// Inverted keyword index.
    Inverted,
    /// Two-level window-aggregation index.
    Aggregate,
}

/// Metric handles for the SP query cost center (`sp.*`) — the data
/// behind the paper's Fig. 11 query-overhead comparison (VO size and
/// serving time per query family).
struct SpObs {
    queries: Counter,
    history_queries: Counter,
    keyword_queries: Counter,
    aggregate_queries: Counter,
    /// Verification-object wire size per served query.
    vo_bytes: Histogram,
    /// Result entries per served query.
    results: Histogram,
    /// Wall-clock serving time (index walk + proof assembly).
    serve_ns: Histogram,
    /// Wire size of each index certificate recorded by the SP.
    cert_bytes: Histogram,
}

impl SpObs {
    fn register(registry: &Registry) -> Self {
        SpObs {
            queries: registry.counter("sp.queries"),
            history_queries: registry.counter("sp.query.history"),
            keyword_queries: registry.counter("sp.query.keyword"),
            aggregate_queries: registry.counter("sp.query.aggregate"),
            vo_bytes: registry.histogram("sp.query.vo_bytes", Buckets::bytes()),
            results: registry.histogram("sp.query.results", Buckets::exponential(1, 2, 16)),
            serve_ns: registry.timer("sp.query.serve_ns"),
            cert_bytes: registry.histogram("sp.cert_bytes", Buckets::bytes()),
        }
    }

    fn record_query(&self, family: &Counter, vo_bytes: usize, results: usize) {
        self.queries.inc();
        family.inc();
        self.vo_bytes
            .observe(u64::try_from(vo_bytes).unwrap_or(u64::MAX));
        self.results
            .observe(u64::try_from(results).unwrap_or(u64::MAX));
    }
}

/// The SP: a full node plus its maintained indexes and their certificate
/// bookkeeping.
pub struct ServiceProvider {
    node: FullNode,
    histories: BTreeMap<String, HistoryIndex>,
    inverteds: BTreeMap<String, InvertedIndex>,
    aggregates: BTreeMap<String, AggregateIndex>,
    /// Last *certified* digest and certificate per index.
    certified: BTreeMap<String, (Hash, Option<Certificate>)>,
    /// Digests staged by the latest `stage_block`, awaiting certificates.
    staged: Vec<(String, Hash)>,
    /// `(header_hash, certified_digest)` each index's latest certificate
    /// was issued for — what recovery re-verifies the certificate against.
    anchors: BTreeMap<String, (Hash, Hash)>,
    /// Highest block height already applied to the indexes. Equal to the
    /// chain height in normal operation; after [`ServiceProvider::recover_from`]
    /// it runs ahead of the genesis chain state until the caller re-syncs.
    index_height: u64,
    /// Height and header hash of the most recently staged block.
    staged_at: Option<(u64, Hash)>,
    /// Durable backend, when persistence is attached.
    store: Option<Box<dyn Store>>,
    /// First store failure; once set, persistence stops (queries keep
    /// serving) and the error is reported via [`ServiceProvider::store_error`].
    store_error: Option<StoreError>,
    obs: Option<SpObs>,
}

impl std::fmt::Debug for ServiceProvider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceProvider")
            .field("height", &self.node.height())
            .field("histories", &self.histories.len())
            .field("inverteds", &self.inverteds.len())
            .finish()
    }
}

impl ServiceProvider {
    /// Creates an SP at genesis.
    pub fn new(
        genesis: &Block,
        genesis_state: ChainState,
        executor: Executor,
        engine: Arc<dyn ConsensusEngine>,
    ) -> Self {
        ServiceProvider {
            node: FullNode::new(genesis, genesis_state, executor, engine, Address::default()),
            histories: BTreeMap::new(),
            inverteds: BTreeMap::new(),
            aggregates: BTreeMap::new(),
            certified: BTreeMap::new(),
            staged: Vec::new(),
            anchors: BTreeMap::new(),
            index_height: 0,
            staged_at: None,
            store: None,
            store_error: None,
            obs: None,
        }
    }

    /// Attaches a durable [`Store`]: every block staged from here on has
    /// its writes and keyword appends appended as records, and
    /// [`ServiceProvider::record_certs`] / [`ServiceProvider::advance_staged`]
    /// commit the per-index digests (plus the latest certificates) to the
    /// head region before syncing.
    ///
    /// Store failures never interrupt serving: the first one is latched
    /// (see [`ServiceProvider::store_error`]) and persistence stops.
    ///
    /// # Panics
    ///
    /// Panics unless the SP is at genesis and the store holds no records —
    /// resuming an existing store goes through
    /// [`ServiceProvider::recover_from`].
    pub fn attach_store(&mut self, store: Box<dyn Store>) {
        assert_eq!(self.node.height(), 0, "attach_store requires a genesis SP");
        assert_eq!(
            store.max_height(),
            0,
            "attach_store requires an empty store; use recover_from"
        );
        self.store = Some(store);
    }

    /// The first store failure, if persistence has been poisoned.
    pub fn store_error(&self) -> Option<&StoreError> {
        self.store_error.as_ref()
    }

    /// Detaches and returns the store (e.g. to close and later recover
    /// from it). Persistence stops; the SP keeps serving from memory.
    pub fn take_store(&mut self) -> Option<Box<dyn Store>> {
        self.store.take()
    }

    /// Highest block height already applied to the indexes. Runs ahead of
    /// [`ServiceProvider::height`] after a recovery, until the caller
    /// re-syncs the chain through [`ServiceProvider::stage_block`].
    pub fn index_height(&self) -> u64 {
        self.index_height
    }

    /// Registers this SP's query metrics (`sp.*`) in `registry`; every
    /// `serve_*` call and recorded certificate is measured from here on.
    pub fn attach_obs(&mut self, registry: &Registry) {
        self.obs = Some(SpObs::register(registry));
    }

    /// Registers a new index under `name`.
    ///
    /// # Panics
    ///
    /// Panics if an index with the same name already exists, or if blocks
    /// have already been processed (indexes must start from genesis).
    pub fn add_index(&mut self, kind: IndexKind, name: &str) {
        assert_eq!(self.node.height(), 0, "indexes must start from genesis");
        assert_eq!(self.index_height, 0, "indexes must start from genesis");
        let fresh = self
            .certified
            .insert(name.to_owned(), (Hash::ZERO, None))
            .is_none();
        assert!(fresh, "duplicate index name {name}");
        match kind {
            IndexKind::History => {
                self.histories
                    .insert(name.to_owned(), HistoryIndex::new(name));
            }
            IndexKind::Inverted => {
                self.inverteds
                    .insert(name.to_owned(), InvertedIndex::new(name));
            }
            IndexKind::Aggregate => {
                self.aggregates
                    .insert(name.to_owned(), AggregateIndex::new(name));
            }
        }
    }

    /// Builds the enclave-side verifiers matching the registered indexes —
    /// hand these to [`CertificateIssuer::new`](dcert_core::CertificateIssuer::new).
    pub fn verifiers(&self) -> Vec<Box<dyn IndexVerifier>> {
        let mut out: Vec<Box<dyn IndexVerifier>> = Vec::new();
        for name in self.histories.keys() {
            out.push(Box::new(HistoryVerifier::new(name.clone())));
        }
        for name in self.inverteds.keys() {
            out.push(Box::new(InvertedVerifier::new(name.clone())));
        }
        for name in self.aggregates.keys() {
            out.push(Box::new(AggregateVerifier::new(name.clone())));
        }
        out
    }

    /// The SP's chain height.
    pub fn height(&self) -> u64 {
        self.node.height()
    }

    /// Access a history index for querying.
    pub fn history(&self, name: &str) -> Option<&HistoryIndex> {
        self.histories.get(name)
    }

    /// Access an inverted index for querying.
    pub fn inverted(&self, name: &str) -> Option<&InvertedIndex> {
        self.inverteds.get(name)
    }

    /// Access an aggregate index for querying.
    pub fn aggregate(&self, name: &str) -> Option<&AggregateIndex> {
        self.aggregates.get(name)
    }

    /// Serves an authenticated time-window history query through the SP's
    /// measured query path: the result and proof are exactly
    /// [`HistoryIndex::query`]'s, with serving time, VO size, and result
    /// count recorded into the attached registry. `None` if no history
    /// index is registered under `name`.
    pub fn serve_history(
        &self,
        name: &str,
        key: &StateKey,
        t1: u64,
        t2: u64,
    ) -> Option<(Vec<(u64, Version)>, HistoryProof)> {
        let index = self.histories.get(name)?;
        let ((results, proof), took) = timed(|| index.query(key, t1, t2));
        if let Some(obs) = &self.obs {
            obs.record_query(&obs.history_queries, proof.encoded_len(), results.len());
            obs.serve_ns.record(took);
        }
        Some((results, proof))
    }

    /// Serves an authenticated time-window history query with the
    /// op-stream proof encoding ([`HistoryIndex::query_ops`]) through the
    /// measured query path. Results are byte-identical to
    /// [`ServiceProvider::serve_history`]; only the proof encoding
    /// differs. `None` if no history index is registered under `name`.
    pub fn serve_history_ops(
        &self,
        name: &str,
        key: &StateKey,
        t1: u64,
        t2: u64,
    ) -> Option<(Vec<(u64, Version)>, HistoryOpProof)> {
        let index = self.histories.get(name)?;
        let ((results, proof), took) = timed(|| index.query_ops(key, t1, t2));
        if let Some(obs) = &self.obs {
            obs.record_query(&obs.history_queries, proof.encoded_len(), results.len());
            obs.serve_ns.record(took);
        }
        Some((results, proof))
    }

    /// Serves a conjunctive keyword query ([`InvertedIndex::query`])
    /// through the measured query path. `None` if no inverted index is
    /// registered under `name`.
    pub fn serve_keywords(
        &self,
        name: &str,
        keywords: &[&str],
    ) -> Option<(Vec<Hash>, KeywordProof)> {
        let index = self.inverteds.get(name)?;
        let ((results, proof), took) = timed(|| index.query(keywords));
        if let Some(obs) = &self.obs {
            obs.record_query(&obs.keyword_queries, proof.encoded_len(), results.len());
            obs.serve_ns.record(took);
        }
        Some((results, proof))
    }

    /// Serves a verifiable window aggregation ([`AggregateIndex::query`])
    /// through the measured query path. `None` if no aggregate index is
    /// registered under `name`.
    pub fn serve_aggregate(
        &self,
        name: &str,
        key: &StateKey,
        t1: u64,
        t2: u64,
    ) -> Option<(Aggregate, AggQueryProof)> {
        let index = self.aggregates.get(name)?;
        let ((aggregate, proof), took) = timed(|| index.query(key, t1, t2));
        if let Some(obs) = &self.obs {
            obs.record_query(&obs.aggregate_queries, proof.encoded_len(), 1);
            obs.serve_ns.record(took);
        }
        Some((aggregate, proof))
    }

    /// Serves a verifiable window aggregation with the op-stream proof
    /// encoding ([`AggregateIndex::query_ops`]) through the measured query
    /// path. `None` if no aggregate index is registered under `name`.
    pub fn serve_aggregate_ops(
        &self,
        name: &str,
        key: &StateKey,
        t1: u64,
        t2: u64,
    ) -> Option<(Aggregate, AggOpQueryProof)> {
        let index = self.aggregates.get(name)?;
        let ((aggregate, proof), took) = timed(|| index.query_ops(key, t1, t2));
        if let Some(obs) = &self.obs {
            obs.record_query(&obs.aggregate_queries, proof.encoded_len(), 1);
            obs.serve_ns.record(took);
        }
        Some((aggregate, proof))
    }

    /// Processes one block: executes it, updates every index, advances the
    /// chain, and returns the [`IndexInput`]s the CI needs (in the same
    /// deterministic order as [`ServiceProvider::verifiers`]).
    ///
    /// # Errors
    ///
    /// Propagates block-validation errors; indexes are only updated when
    /// the block is valid.
    // expect() here reads SP-internal bookkeeping seeded by register_* (see
    // the dcert-lint rationale at the call site).
    #[allow(clippy::expect_used)]
    pub fn stage_block(&mut self, block: &Block) -> Result<Vec<IndexInput>, ChainError> {
        // Post-recovery catch-up: the indexes (and the store) already hold
        // this height, so only the chain state advances. Nothing is staged
        // — these blocks were certified before the restart.
        if block.header.height <= self.index_height {
            self.node.apply(block)?;
            return Ok(Vec::new());
        }
        let execution = self.node.execute(&block.txs);
        let writes: Vec<(StateKey, Option<Vec<u8>>)> = execution
            .writes
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        // Validate + advance the chain first; a bad block must not touch
        // the indexes.
        self.node.apply(block)?;

        // Persist the raw material recovery replays: the block's writes
        // (rebuilds history/aggregate indexes) and its keyword appends
        // (rebuilds inverted indexes). Volatile until the commit in
        // record_certs / advance_staged syncs.
        if self.store.is_some() {
            let height = block.header.height;
            let mut writes_body = Vec::new();
            encode_seq(&writes, &mut writes_body);
            self.persist(height, StreamId::Writes, writes_body);
            let appends: Vec<(String, Vec<Hash>)> =
                InvertedIndex::block_appends(block).into_iter().collect();
            let mut keywords_body = Vec::new();
            encode_seq(&appends, &mut keywords_body);
            self.persist(height, StreamId::Keywords, keywords_body);
        }

        // Borrow the index maps and the bookkeeping as disjoint fields so
        // the update loop can stream `&str` keys straight out of the maps —
        // no intermediate Vec collections, no per-index key clone just to
        // look up `certified`.
        let ServiceProvider {
            histories,
            inverteds,
            aggregates,
            certified,
            staged,
            ..
        } = self;
        staged.clear();
        let mut inputs = Vec::with_capacity(histories.len() + inverteds.len() + aggregates.len());
        let indexes = histories
            .iter_mut()
            .map(|(n, i)| (n.as_str(), i as &mut dyn MaintainedIndex))
            .chain(
                inverteds
                    .iter_mut()
                    .map(|(n, i)| (n.as_str(), i as &mut dyn MaintainedIndex)),
            )
            .chain(
                aggregates
                    .iter_mut()
                    .map(|(n, i)| (n.as_str(), i as &mut dyn MaintainedIndex)),
            );
        for (name, index) in indexes {
            let (prev_digest, prev_cert) = certified
                .get(name)
                .cloned()
                // dcert-lint: allow(r2-panic-freedom, r5-panic-reachability, reason = "SP-internal bookkeeping: register_* seeds this map for every index it iterates")
                .expect("registered index has bookkeeping");
            let (aux, new_digest) = index.apply_block(block, &writes);
            staged.push((name.to_owned(), new_digest));
            inputs.push(IndexInput {
                index_type: name.to_owned(),
                prev_digest,
                prev_cert,
                new_digest,
                aux,
            });
        }
        self.index_height = block.header.height;
        self.staged_at = Some((block.header.height, block.header.hash()));
        Ok(inputs)
    }

    /// Appends one record if a healthy store is attached; a failure
    /// latches [`ServiceProvider::store_error`] and stops persistence.
    fn persist(&mut self, height: u64, stream: StreamId, body: Vec<u8>) {
        if self.store_error.is_some() {
            return;
        }
        if let Some(store) = &mut self.store {
            if let Err(e) = store.append(&Record {
                height,
                stream,
                body,
            }) {
                self.store_error = Some(e);
            }
        }
    }

    /// Commits the current certified state to the store's head region and
    /// syncs, making every record staged for the committed height durable.
    /// Called from [`ServiceProvider::record_certs`] and
    /// [`ServiceProvider::advance_staged`] — the two points where the SP's
    /// in-memory bookkeeping reaches a consistent post-block state.
    fn commit_store(&mut self) {
        if self.store_error.is_some() || self.store.is_none() {
            return;
        }
        let mut entries = Vec::with_capacity(self.certified.len() + 1);
        for (name, (digest, cert)) in &self.certified {
            let anchor = match (cert, self.anchors.get(name)) {
                (Some(c), Some((header_hash, cert_digest))) => {
                    Some((*header_hash, *cert_digest, c.clone()))
                }
                _ => None,
            };
            let entry = CertifiedEntry {
                digest: *digest,
                anchor,
            };
            entries.push((format!("{SP_CERT_PREFIX}{name}"), entry.to_encoded_bytes()));
        }
        entries.push((
            SP_HEIGHT_KEY.to_owned(),
            self.index_height.to_encoded_bytes(),
        ));
        let result: Result<(), StoreError> = (|| {
            if let Some(store) = &mut self.store {
                for (key, value) in entries {
                    store.put_head(&key, value)?;
                }
                store.sync()?;
            }
            Ok(())
        })();
        if let Err(e) = result {
            self.store_error = Some(e);
        }
    }

    /// Records the certificates the CI issued for the last staged block,
    /// in the same order as the returned [`IndexInput`]s.
    ///
    /// # Panics
    ///
    /// Panics if the count does not match the staged updates.
    pub fn record_certs(&mut self, certs: &[Certificate]) {
        assert_eq!(certs.len(), self.staged.len(), "certificate count mismatch");
        let header_hash = self.staged_at.map(|(_, h)| h);
        for ((name, digest), cert) in self.staged.drain(..).zip(certs) {
            if let Some(obs) = &self.obs {
                obs.cert_bytes
                    .observe(u64::try_from(cert.encoded_len()).unwrap_or(u64::MAX));
            }
            if let Some(hh) = header_hash {
                self.anchors.insert(name.clone(), (hh, digest));
            }
            self.certified.insert(name, (digest, Some(cert.clone())));
        }
        self.commit_store();
    }

    /// Marks the last staged updates as headed for certification without
    /// waiting for the certificates themselves.
    ///
    /// In pipelined mode the issuer stage owns the `prev_cert` chain and
    /// splices freshly issued certificates into each request, so the SP
    /// only needs its digest bookkeeping advanced before staging the next
    /// block. The certificates recorded here stay at their last
    /// [`ServiceProvider::record_certs`] value (`None` if never recorded).
    // expect() here reads SP-internal bookkeeping seeded by register_* (see
    // the dcert-lint rationale at the call site).
    #[allow(clippy::expect_used)]
    pub fn advance_staged(&mut self) {
        for (name, digest) in self.staged.drain(..) {
            let entry = self
                .certified
                .get_mut(&name)
                // dcert-lint: allow(r2-panic-freedom, r5-panic-reachability, reason = "SP-internal bookkeeping: register_* seeds this map for every index it stages")
                .expect("registered index has bookkeeping");
            entry.0 = digest;
        }
        self.commit_store();
    }

    /// The latest certified digest of an index (for serving clients).
    pub fn certified_digest(&self, name: &str) -> Option<Hash> {
        self.certified.get(name).map(|(d, _)| *d)
    }

    /// The latest certificate of an index.
    pub fn certificate(&self, name: &str) -> Option<&Certificate> {
        self.certified.get(name).and_then(|(_, c)| c.as_ref())
    }

    /// The current digest of the named index, across all three families.
    fn live_digest(&self, name: &str) -> Option<Hash> {
        self.histories
            .get(name)
            .map(|i| i.digest())
            .or_else(|| self.inverteds.get(name).map(|i| i.digest()))
            .or_else(|| self.aggregates.get(name).map(|i| i.digest()))
    }

    /// Rebuilds this SP's indexes and certificate bookkeeping from a
    /// store written by [`ServiceProvider::attach_store`], consuming a
    /// freshly built genesis SP with the same indexes registered.
    ///
    /// Replay is bounded by the committed watermark ([`SP_HEIGHT_KEY`]):
    /// record pages beyond it (the redo tail of a crash) are ignored,
    /// because their index updates were never acknowledged. After replay
    /// every index digest must match its committed head entry, and every
    /// recorded certificate must still verify under the caller-supplied
    /// trust anchors — the disk is untrusted input, so any mismatch
    /// refuses with a typed error instead of serving.
    ///
    /// On success the store stays attached and persistence continues.
    /// Chain state is still at genesis: the caller re-syncs blocks
    /// through [`ServiceProvider::stage_block`], which applies heights up
    /// to [`ServiceProvider::index_height`] to the chain only.
    ///
    /// # Errors
    ///
    /// [`RecoverError`] when a page or head entry does not decode, a
    /// replayed digest does not match its committed one, or a recovered
    /// certificate fails re-verification.
    ///
    /// # Panics
    ///
    /// Panics if this SP is not at genesis.
    pub fn recover_from(
        mut self,
        ias_key: &PublicKey,
        measurement: &Hash,
        store: Box<dyn Store>,
    ) -> Result<Self, RecoverError> {
        assert_eq!(self.node.height(), 0, "recover_from requires a genesis SP");
        assert_eq!(self.index_height, 0, "recover_from requires a genesis SP");
        let committed = match store.head(SP_HEIGHT_KEY) {
            Some(bytes) => u64::decode_all(&bytes)?,
            None => 0,
        };

        // Collect the record pages covered by the commit.
        let mut writes_pages: BTreeMap<u64, WritesPage> = BTreeMap::new();
        let mut keyword_pages: BTreeMap<u64, KeywordPage> = BTreeMap::new();
        for record in store.records() {
            if record.height > committed {
                continue; // uncommitted redo tail: never acknowledged, never replayed
            }
            match record.stream {
                StreamId::Writes => {
                    writes_pages.insert(record.height, WritesPage::decode_all(&record.body)?);
                }
                StreamId::Keywords => {
                    keyword_pages.insert(record.height, KeywordPage::decode_all(&record.body)?);
                }
                // Other streams (e.g. a co-hosted certificate archive)
                // are not the SP's to replay.
                _ => {}
            }
        }

        // Replay in height order; a gap below the watermark means
        // acknowledged data is missing, so recovery refuses.
        for height in 1..=committed {
            let writes =
                writes_pages
                    .get(&height)
                    .ok_or(RecoverError::Store(StoreError::VerifyFailed(
                        "missing writes page below the committed watermark",
                    )))?;
            let keywords =
                keyword_pages
                    .get(&height)
                    .ok_or(RecoverError::Store(StoreError::VerifyFailed(
                        "missing keyword page below the committed watermark",
                    )))?;
            for index in self.histories.values_mut() {
                HistoryIndex::apply_block(index, height, &writes.writes);
            }
            for index in self.aggregates.values_mut() {
                AggregateIndex::apply_block(index, height, &writes.writes);
            }
            for index in self.inverteds.values_mut() {
                index.replay_appends(&keywords.appends);
            }
        }

        // Re-verify: every committed digest must equal the replayed one,
        // and the latest certificate must still prove its anchor.
        let names: Vec<String> = self.certified.keys().cloned().collect();
        for name in &names {
            let key = format!("{SP_CERT_PREFIX}{name}");
            let Some(bytes) = store.head(&key) else {
                if committed == 0 {
                    continue; // fresh store: nothing committed yet
                }
                return Err(RecoverError::Store(StoreError::VerifyFailed(
                    "missing per-index head entry",
                )));
            };
            let entry = CertifiedEntry::decode_all(&bytes)?;
            let replayed = self.live_digest(name).unwrap_or(Hash::ZERO);
            if entry.digest != replayed {
                return Err(RecoverError::Store(StoreError::VerifyFailed(
                    "replayed index digest does not match the committed digest",
                )));
            }
            if let Some((header_hash, cert_digest, cert)) = &entry.anchor {
                cert.verify(
                    ias_key,
                    measurement,
                    &Certificate::index_digest(header_hash, cert_digest),
                )
                .map_err(RecoverError::Cert)?;
                self.anchors
                    .insert(name.clone(), (*header_hash, *cert_digest));
            }
            self.certified.insert(
                name.clone(),
                (entry.digest, entry.anchor.map(|(_, _, c)| c)),
            );
        }
        // A head entry for an index this SP does not maintain means the
        // store belongs to a differently-configured SP: refuse rather
        // than silently drop certified state.
        for (key, _) in store.head_entries() {
            if let Some(name) = key.strip_prefix(SP_CERT_PREFIX) {
                if !self.certified.contains_key(name) {
                    return Err(RecoverError::Store(StoreError::VerifyFailed(
                        "head entry for an unregistered index",
                    )));
                }
            }
        }

        self.index_height = committed;
        self.store = Some(store);
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcert_chain::{GenesisBuilder, ProofOfWork, Transaction};
    use dcert_primitives::keys::Keypair;
    use dcert_workloads::blockbench_registry;

    fn setup() -> (FullNode, ServiceProvider) {
        let executor = Executor::new(Arc::new(blockbench_registry()));
        let engine: Arc<dyn ConsensusEngine> = Arc::new(ProofOfWork::new(2));
        let (genesis, state) = GenesisBuilder::new().build();
        let miner = FullNode::new(
            &genesis,
            state.clone(),
            executor.clone(),
            engine.clone(),
            Address::from_seed(1),
        );
        let mut sp = ServiceProvider::new(&genesis, state, executor, engine);
        sp.add_index(IndexKind::History, "history");
        sp.add_index(IndexKind::Inverted, "inverted");
        (miner, sp)
    }

    #[test]
    fn stage_block_returns_one_input_per_index() {
        let (mut miner, mut sp) = setup();
        let kp = Keypair::from_seed([5; 32]);
        let tx = Transaction::sign(
            &kp,
            0,
            "kvstore",
            dcert_workloads::kvstore::KvCall::Put {
                key: b"acct".to_vec(),
                value: b"stock bank memo".to_vec(),
            }
            .to_encoded_bytes(),
        );
        let block = miner.mine(vec![tx], 1).unwrap();
        let inputs = sp.stage_block(&block).unwrap();
        assert_eq!(inputs.len(), 2);
        assert_eq!(inputs[0].index_type, "history");
        assert_eq!(inputs[1].index_type, "inverted");
        assert_eq!(inputs[0].prev_digest, Hash::ZERO);
        assert_ne!(inputs[0].new_digest, Hash::ZERO);
        assert_eq!(sp.height(), 1);
    }

    #[test]
    fn serve_methods_match_direct_queries_and_record_metrics() {
        let (mut miner, mut sp) = setup();
        let registry = dcert_obs::Registry::new();
        sp.attach_obs(&registry);
        let kp = Keypair::from_seed([5; 32]);
        let tx = Transaction::sign(
            &kp,
            0,
            "kvstore",
            dcert_workloads::kvstore::KvCall::Put {
                key: b"acct".to_vec(),
                value: b"stock bank memo".to_vec(),
            }
            .to_encoded_bytes(),
        );
        let block = miner.mine(vec![tx], 1).unwrap();
        sp.stage_block(&block).unwrap();

        let key = StateKey::new("kvstore", b"acct");
        let (direct_res, direct_proof) = sp.history("history").unwrap().query(&key, 0, 10);
        let (served_res, served_proof) = sp.serve_history("history", &key, 0, 10).unwrap();
        assert_eq!(direct_res, served_res, "serve path must not change results");
        assert_eq!(
            direct_proof.to_encoded_bytes(),
            served_proof.to_encoded_bytes()
        );
        let (kw_res, _) = sp.serve_keywords("inverted", &["stock", "bank"]).unwrap();
        assert_eq!(kw_res.len(), 1);
        assert!(sp.serve_history("no-such-index", &key, 0, 10).is_none());

        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("sp.queries"), 2);
        assert_eq!(snapshot.counter("sp.query.history"), 1);
        assert_eq!(snapshot.counter("sp.query.keyword"), 1);
        let vo = snapshot.histograms.get("sp.query.vo_bytes").unwrap();
        assert_eq!(vo.count, 2);
        assert!(vo.sum > 0, "VOs have nonzero wire size");
    }

    #[test]
    fn verifiers_match_indexes() {
        let (_, sp) = setup();
        let verifiers = sp.verifiers();
        let names: Vec<&str> = verifiers.iter().map(|v| v.type_name()).collect();
        assert_eq!(names, vec!["history", "inverted"]);
    }

    #[test]
    #[should_panic(expected = "duplicate index name")]
    fn duplicate_names_rejected() {
        let (_, mut sp) = setup();
        sp.add_index(IndexKind::History, "history");
    }

    use dcert_primitives::codec::Encode;

    use dcert_core::{expected_measurement, CertificateIssuer};
    use dcert_sgx::{AttestationService, CostModel};
    use dcert_store::MemStore;

    /// A miner, an SP (history + inverted), and a CI wired with the SP's
    /// verifiers — plus the trust anchors recovery needs.
    struct CertifiedWorld {
        miner: FullNode,
        sp: ServiceProvider,
        ci: CertificateIssuer,
        ias_key: PublicKey,
        measurement: Hash,
        genesis: Block,
        state: ChainState,
        executor: Executor,
        engine: Arc<dyn ConsensusEngine>,
    }

    impl CertifiedWorld {
        fn new() -> Self {
            let executor = Executor::new(Arc::new(blockbench_registry()));
            let engine: Arc<dyn ConsensusEngine> = Arc::new(ProofOfWork::new(2));
            let (genesis, state) = GenesisBuilder::new().build();
            let miner = FullNode::new(
                &genesis,
                state.clone(),
                executor.clone(),
                engine.clone(),
                Address::from_seed(1),
            );
            let mut sp =
                ServiceProvider::new(&genesis, state.clone(), executor.clone(), engine.clone());
            sp.add_index(IndexKind::History, "history");
            sp.add_index(IndexKind::Inverted, "inverted");
            let mut ias = AttestationService::with_seed([42; 32]);
            let ci = CertificateIssuer::new(
                &genesis,
                state.clone(),
                executor.clone(),
                engine.clone(),
                sp.verifiers(),
                &mut ias,
                CostModel::zero(),
            )
            .expect("CI boots");
            CertifiedWorld {
                miner,
                sp,
                ci,
                ias_key: ias.public_key(),
                measurement: expected_measurement(),
                genesis,
                state,
                executor,
                engine,
            }
        }

        fn genesis_sp(&self) -> ServiceProvider {
            let mut sp = ServiceProvider::new(
                &self.genesis,
                self.state.clone(),
                self.executor.clone(),
                self.engine.clone(),
            );
            sp.add_index(IndexKind::History, "history");
            sp.add_index(IndexKind::Inverted, "inverted");
            sp
        }

        /// Mines one keyword-bearing kvstore block and runs it through the
        /// full stage → certify → record loop.
        fn certified_block(&mut self, height: u64) -> Block {
            let kp = Keypair::from_seed([5; 32]);
            let tx = Transaction::sign(
                &kp,
                height - 1,
                "kvstore",
                dcert_workloads::kvstore::KvCall::Put {
                    key: b"acct".to_vec(),
                    value: format!("stock bank memo {height}").into_bytes(),
                }
                .to_encoded_bytes(),
            );
            let block = self.miner.mine(vec![tx], height).unwrap();
            let inputs = self.sp.stage_block(&block).unwrap();
            let (certs, _) = self.ci.certify_augmented(&block, &inputs).unwrap();
            self.sp.record_certs(&certs);
            block
        }
    }

    #[test]
    fn store_round_trips_through_recovery_and_resync() {
        let mut world = CertifiedWorld::new();
        world.sp.attach_store(Box::new(MemStore::new()));
        let blocks: Vec<Block> = (1..=4u64).map(|h| world.certified_block(h)).collect();
        assert!(world.sp.store_error().is_none());

        let store = world.sp.take_store().unwrap();
        assert_eq!(store.durable_height(), 4);
        let recovered = world
            .genesis_sp()
            .recover_from(&world.ias_key, &world.measurement, store)
            .unwrap();

        // The recovered SP serves exactly what the live one does.
        assert_eq!(recovered.index_height(), 4);
        assert_eq!(recovered.height(), 0, "chain state resyncs separately");
        for name in ["history", "inverted"] {
            assert_eq!(
                recovered.certified_digest(name),
                world.sp.certified_digest(name)
            );
            assert_eq!(
                recovered.certificate(name).map(Encode::to_encoded_bytes),
                world.sp.certificate(name).map(Encode::to_encoded_bytes),
            );
        }
        let key = StateKey::new("kvstore", b"acct");
        let (live_res, live_proof) = world.sp.serve_history("history", &key, 0, 100).unwrap();
        let (rec_res, rec_proof) = recovered.serve_history("history", &key, 0, 100).unwrap();
        assert_eq!(live_res, rec_res);
        assert_eq!(live_proof.to_encoded_bytes(), rec_proof.to_encoded_bytes());
        let (live_kw, _) = world
            .sp
            .serve_keywords("inverted", &["stock", "bank"])
            .unwrap();
        let (rec_kw, _) = recovered
            .serve_keywords("inverted", &["stock", "bank"])
            .unwrap();
        assert_eq!(live_kw, rec_kw);

        // Re-syncing the chain skips the already-recovered heights, then
        // staging continues identically to the uninterrupted SP.
        let mut recovered = recovered;
        for block in &blocks {
            let inputs = recovered.stage_block(block).unwrap();
            assert!(inputs.is_empty(), "catch-up stages nothing");
        }
        assert_eq!(recovered.height(), 4);
        let block5 = world.certified_block(5);
        let inputs = recovered.stage_block(&block5).unwrap();
        assert_eq!(inputs.len(), 2);
        recovered.advance_staged();
        for name in ["history", "inverted"] {
            assert_eq!(
                recovered.certified_digest(name),
                world.sp.certified_digest(name),
                "post-recovery staging converges with the live SP"
            );
        }
    }

    #[test]
    fn recovery_refuses_tampered_digest() {
        let mut world = CertifiedWorld::new();
        world.sp.attach_store(Box::new(MemStore::new()));
        world.certified_block(1);
        let mut store = world.sp.take_store().unwrap();

        let key = format!("{SP_CERT_PREFIX}history");
        let mut entry = CertifiedEntry::decode_all(&store.head(&key).unwrap()).unwrap();
        entry.digest = Hash::from_bytes([0xAB; 32]);
        store.put_head(&key, entry.to_encoded_bytes()).unwrap();
        store.sync().unwrap();

        let err = world
            .genesis_sp()
            .recover_from(&world.ias_key, &world.measurement, store)
            .unwrap_err();
        assert!(
            matches!(err, RecoverError::Store(StoreError::VerifyFailed(_))),
            "got {err:?}"
        );
    }

    #[test]
    fn recovery_refuses_forged_certificate_anchor() {
        let mut world = CertifiedWorld::new();
        world.sp.attach_store(Box::new(MemStore::new()));
        world.certified_block(1);
        let mut store = world.sp.take_store().unwrap();

        let key = format!("{SP_CERT_PREFIX}history");
        let mut entry = CertifiedEntry::decode_all(&store.head(&key).unwrap()).unwrap();
        // Claim the certificate covers a different digest than it signs.
        if let Some((_, cert_digest, _)) = &mut entry.anchor {
            *cert_digest = Hash::from_bytes([0xCD; 32]);
        }
        store.put_head(&key, entry.to_encoded_bytes()).unwrap();
        store.sync().unwrap();

        let err = world
            .genesis_sp()
            .recover_from(&world.ias_key, &world.measurement, store)
            .unwrap_err();
        assert!(matches!(err, RecoverError::Cert(_)), "got {err:?}");
    }

    #[test]
    fn recovery_refuses_undecodable_head_entry() {
        let mut world = CertifiedWorld::new();
        world.sp.attach_store(Box::new(MemStore::new()));
        world.certified_block(1);
        let mut store = world.sp.take_store().unwrap();
        store
            .put_head(&format!("{SP_CERT_PREFIX}history"), vec![0xFF; 3])
            .unwrap();
        store.sync().unwrap();
        let err = world
            .genesis_sp()
            .recover_from(&world.ias_key, &world.measurement, store)
            .unwrap_err();
        assert!(matches!(err, RecoverError::Codec(_)), "got {err:?}");
    }

    #[test]
    fn recovery_ignores_uncommitted_tail() {
        let mut world = CertifiedWorld::new();
        world.sp.attach_store(Box::new(MemStore::new()));
        world.certified_block(1);
        world.certified_block(2);
        // Stage height 3 but never record/advance: records exist, the
        // committed watermark does not cover them.
        let kp = Keypair::from_seed([5; 32]);
        let tx = Transaction::sign(&kp, 2, "kvstore", b"uncommitted".to_vec());
        let block = world.miner.mine(vec![tx], 3).unwrap();
        world.sp.stage_block(&block).unwrap();

        let store = world.sp.take_store().unwrap();
        let recovered = world
            .genesis_sp()
            .recover_from(&world.ias_key, &world.measurement, store)
            .unwrap();
        assert_eq!(recovered.index_height(), 2);
    }

    #[test]
    fn page_and_entry_codecs_round_trip() {
        let page = WritesPage {
            writes: vec![
                (StateKey::new("kvstore", b"a"), Some(vec![1, 2, 3])),
                (StateKey::new("kvstore", b"b"), None),
            ],
        };
        assert_eq!(
            WritesPage::decode_all(&page.to_encoded_bytes()).unwrap(),
            page
        );
        let kws = KeywordPage {
            appends: vec![("stock".to_owned(), vec![Hash::from_bytes([7; 32])])],
        };
        assert_eq!(
            KeywordPage::decode_all(&kws.to_encoded_bytes()).unwrap(),
            kws
        );
        let entry = CertifiedEntry {
            digest: Hash::from_bytes([9; 32]),
            anchor: None,
        };
        assert_eq!(
            CertifiedEntry::decode_all(&entry.to_encoded_bytes()).unwrap(),
            entry
        );
    }
}
