//! Query verification errors.

use std::fmt;

use dcert_merkle::ProofError;
use dcert_primitives::error::CodecError;

/// Why a query result failed verification on the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// An underlying Merkle proof failed.
    Proof(ProofError),
    /// The proof authenticates an index state inconsistent with the
    /// certified digest.
    DigestMismatch,
    /// The claimed results disagree with the authenticated index content.
    ResultMismatch(&'static str),
    /// The proof payload failed to decode.
    Codec(CodecError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Proof(e) => write!(f, "proof verification failed: {e}"),
            QueryError::DigestMismatch => write!(f, "certified digest mismatch"),
            QueryError::ResultMismatch(what) => write!(f, "result mismatch: {what}"),
            QueryError::Codec(e) => write!(f, "proof decoding failed: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ProofError> for QueryError {
    fn from(e: ProofError) -> Self {
        QueryError::Proof(e)
    }
}

impl From<CodecError> for QueryError {
    fn from(e: CodecError) -> Self {
        QueryError::Codec(e)
    }
}
