//! Baselines from the paper's evaluation.
//!
//! Two comparators are reimplemented so the benchmark harness can
//! regenerate the paper's comparison figures:
//!
//! - [`light_client::TraditionalLightClient`] — the standard header-chain
//!   light client (SPV-style): stores **every** header and validates the
//!   chain link-by-link. Its linear storage and bootstrap time are the
//!   curves DCert's constant-cost superlight client is compared against in
//!   Fig. 7.
//! - [`skiplist`] / [`lineage::LineageIndex`] — an authenticated
//!   deterministic skip list over account versions, in the style of
//!   LineageChain (Ruan et al., PVLDB'19), used as the historical-query
//!   comparator in Fig. 11. The two-level layout matches DCert's index
//!   (same Merkle Patricia trie upper level) so the figure isolates the
//!   lower-level structure: skip-list towers vs. Merkle B-tree.

#![forbid(unsafe_code)]

pub mod light_client;
pub mod lineage;
pub mod skiplist;

pub use light_client::TraditionalLightClient;
pub use lineage::{LineageIndex, LineageProof};
pub use skiplist::{AuthSkipList, SkipRangeProof};
