//! A LineageChain-style two-level historical index (the Fig. 11 baseline).
//!
//! Same upper level as DCert's history index (a Merkle Patricia trie over
//! state keys) but with an authenticated deterministic **skip list** as the
//! per-key version structure — the index family LineageChain builds into
//! the chain. Comparing it against `dcert_query::HistoryIndex` isolates
//! skip-list towers vs. Merkle B-tree, which is exactly the comparison the
//! paper's Fig. 11 makes.

use std::collections::HashMap;

use dcert_merkle::{Mpt, MptProof};
use dcert_primitives::codec::{Decode, Encode, Reader};
use dcert_primitives::error::CodecError;
use dcert_primitives::hash::{hash_bytes, Hash};
use dcert_vm::StateKey;

use crate::skiplist::{AuthSkipList, SkipRangeProof};

/// One recorded version (`None` = deletion event), mirroring the DCert
/// index's encoding.
pub type Version = Option<Vec<u8>>;

fn encode_version(version: &Version) -> Vec<u8> {
    version.to_encoded_bytes()
}

/// The baseline two-level index.
#[derive(Debug, Clone, Default)]
pub struct LineageIndex {
    upper: Mpt,
    lower: HashMap<Vec<u8>, AuthSkipList>,
}

impl LineageIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// The index digest: the upper trie's root.
    pub fn digest(&self) -> Hash {
        self.upper.root()
    }

    /// Number of tracked keys.
    pub fn tracked_keys(&self) -> usize {
        self.lower.len()
    }

    /// Applies one block's write set at `height`.
    pub fn apply_block(&mut self, height: u64, writes: &[(StateKey, Option<Vec<u8>>)]) {
        for (key, value) in writes {
            let key_bytes = key.as_hash().as_bytes().to_vec();
            let list = self.lower.entry(key_bytes.clone()).or_default();
            list.append(height, encode_version(value));
            self.upper
                .insert(&key_bytes, list.head().as_bytes().to_vec());
        }
    }

    /// Answers "all versions of `key` in `[t1, t2]`" with a proof.
    pub fn query(&self, key: &StateKey, t1: u64, t2: u64) -> (Vec<(u64, Version)>, LineageProof) {
        let key_bytes = key.as_hash().as_bytes().to_vec();
        let mpt = self.upper.prove(&key_bytes);
        match self.lower.get(&key_bytes) {
            None => (
                Vec::new(),
                LineageProof {
                    mpt,
                    head: None,
                    range: None,
                },
            ),
            Some(list) => {
                let (raw, range) = list.range(t1, t2);
                let results = raw
                    .into_iter()
                    .map(|(ts, bytes)| {
                        (
                            ts,
                            Version::decode_all(&bytes).expect("index stores canonical versions"),
                        )
                    })
                    .collect();
                (
                    results,
                    LineageProof {
                        mpt,
                        head: Some(list.head()),
                        range: Some(range),
                    },
                )
            }
        }
    }
}

/// Proof returned with a baseline historical query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineageProof {
    mpt: MptProof,
    head: Option<Hash>,
    range: Option<SkipRangeProof>,
}

impl LineageProof {
    /// Serialized proof size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.encoded_len()
    }
}

impl Encode for LineageProof {
    fn encode(&self, out: &mut Vec<u8>) {
        self.mpt.encode(out);
        self.head.encode(out);
        self.range.encode(out);
    }
}

impl Decode for LineageProof {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(LineageProof {
            mpt: MptProof::decode(r)?,
            head: Option::<Hash>::decode(r)?,
            range: Option::<SkipRangeProof>::decode(r)?,
        })
    }
}

/// Errors from baseline query verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineageError {
    /// A Merkle/skip-list proof failed.
    Proof(dcert_merkle::ProofError),
    /// The proof shape or bindings are inconsistent.
    Mismatch(&'static str),
}

impl std::fmt::Display for LineageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LineageError::Proof(e) => write!(f, "proof failed: {e}"),
            LineageError::Mismatch(what) => write!(f, "mismatch: {what}"),
        }
    }
}

impl std::error::Error for LineageError {}

impl From<dcert_merkle::ProofError> for LineageError {
    fn from(e: dcert_merkle::ProofError) -> Self {
        LineageError::Proof(e)
    }
}

/// Client-side verification of a baseline historical query.
///
/// # Errors
///
/// [`LineageError`] describing the first failed check.
pub fn verify_lineage(
    digest: &Hash,
    key: &StateKey,
    t1: u64,
    t2: u64,
    results: &[(u64, Version)],
    proof: &LineageProof,
) -> Result<(), LineageError> {
    let key_bytes = key.as_hash().as_bytes();
    let proven = proof.mpt.verify(digest, key_bytes)?;
    match (&proof.head, &proof.range) {
        (None, None) => {
            if proven.is_some() {
                return Err(LineageError::Mismatch("tracked key without version list"));
            }
            if !results.is_empty() {
                return Err(LineageError::Mismatch("results for an untracked key"));
            }
            Ok(())
        }
        (Some(head), Some(range)) => {
            if proven != Some(hash_bytes(head.as_bytes())) {
                return Err(LineageError::Mismatch("stale list head"));
            }
            let raw: Vec<(u64, Vec<u8>)> = results
                .iter()
                .map(|(ts, version)| (*ts, encode_version(version)))
                .collect();
            range.verify(head, t1, t2, &raw)?;
            Ok(())
        }
        _ => Err(LineageError::Mismatch("inconsistent proof shape")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(label: &str) -> StateKey {
        StateKey::new("kvstore", label.as_bytes())
    }

    fn writes(entries: &[(&str, Option<&str>)]) -> Vec<(StateKey, Option<Vec<u8>>)> {
        entries
            .iter()
            .map(|(k, v)| (key(k), v.map(|s| s.as_bytes().to_vec())))
            .collect()
    }

    #[test]
    fn query_and_verify_round_trip() {
        let mut index = LineageIndex::new();
        for height in 1..=60u64 {
            index.apply_block(height, &writes(&[("acct", Some(&format!("v{height}")))]));
        }
        let digest = index.digest();
        let (results, proof) = index.query(&key("acct"), 20, 30);
        assert_eq!(results.len(), 11);
        verify_lineage(&digest, &key("acct"), 20, 30, &results, &proof).unwrap();
    }

    #[test]
    fn untracked_key_verifies_as_absent() {
        let mut index = LineageIndex::new();
        index.apply_block(1, &writes(&[("known", Some("v"))]));
        let digest = index.digest();
        let (results, proof) = index.query(&key("unknown"), 0, 10);
        assert!(results.is_empty());
        verify_lineage(&digest, &key("unknown"), 0, 10, &results, &proof).unwrap();
    }

    #[test]
    fn omission_detected() {
        let mut index = LineageIndex::new();
        for height in 1..=30u64 {
            index.apply_block(height, &writes(&[("acct", Some(&format!("v{height}")))]));
        }
        let digest = index.digest();
        let (mut results, proof) = index.query(&key("acct"), 5, 15);
        results.remove(3);
        assert!(verify_lineage(&digest, &key("acct"), 5, 15, &results, &proof).is_err());
    }

    #[test]
    fn stale_digest_detected() {
        let mut index = LineageIndex::new();
        index.apply_block(1, &writes(&[("acct", Some("v1"))]));
        let stale = index.digest();
        index.apply_block(2, &writes(&[("acct", Some("v2"))]));
        let (results, proof) = index.query(&key("acct"), 0, 10);
        assert!(verify_lineage(&stale, &key("acct"), 0, 10, &results, &proof).is_err());
    }

    #[test]
    fn digest_changes_per_block() {
        let mut index = LineageIndex::new();
        let d0 = index.digest();
        index.apply_block(1, &writes(&[("a", Some("v"))]));
        let d1 = index.digest();
        index.apply_block(2, &writes(&[("a", Some("w"))]));
        let d2 = index.digest();
        assert_ne!(d0, d1);
        assert_ne!(d1, d2);
    }
}
