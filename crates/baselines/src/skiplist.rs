//! An authenticated deterministic skip list (LineageChain-style).
//!
//! Append-only list of `(timestamp, value)` versions with deterministic
//! tower heights — node `i` (0-based) has height `tz(i+1) + 1`, where `tz`
//! is the number of trailing zero bits — and *backward* hash links: at
//! every level `l` below its height, a node commits to the hash of the
//! previous node of height `> l`. The list commitment is the hash of the
//! newest node, so verification always starts from the latest version and
//! walks back — which is why query cost grows with the distance of the
//! queried window from the chain tip (the effect Fig. 11 measures).
//!
//! Range queries `[t1, t2]` return all in-range versions with a proof
//! consisting of every node visited: skip steps (level > 0) are only legal
//! while they land at or above `t2`, and collection walks level 0 down
//! through one boundary node below `t1`, so omissions are detectable.

use dcert_merkle::{domain, ProofError};
use dcert_primitives::codec::{decode_seq, encode_seq, Decode, Encode, Reader};
use dcert_primitives::error::CodecError;
use dcert_primitives::hash::{hash_bytes, Hash};

fn node_hash(ts: u64, value_hash: &Hash, link_hashes: &[Hash]) -> Hash {
    let mut buf = Vec::with_capacity(1 + 8 + 32 + 1 + link_hashes.len() * 32);
    buf.push(domain::SKIP_NODE);
    buf.extend_from_slice(&ts.to_be_bytes());
    buf.extend_from_slice(value_hash.as_bytes());
    buf.push(link_hashes.len() as u8);
    for link in link_hashes {
        buf.extend_from_slice(link.as_bytes());
    }
    hash_bytes(&buf)
}

/// Height of the `i`-th appended node (0-based).
fn tower_height(i: usize) -> usize {
    (i as u64 + 1).trailing_zeros() as usize + 1
}

#[derive(Debug, Clone)]
struct Node {
    ts: u64,
    value: Vec<u8>,
    /// `link_hashes[l]` = hash of the previous node with height > l
    /// ([`Hash::ZERO`] at the list start).
    link_hashes: Vec<Hash>,
    /// `links[l]` = index of that node, if any.
    links: Vec<Option<usize>>,
    hash: Hash,
}

/// The SP-side authenticated skip list.
#[derive(Debug, Clone, Default)]
pub struct AuthSkipList {
    nodes: Vec<Node>,
    /// `last_at_level[l]` = index of the newest node with height > l.
    last_at_level: Vec<usize>,
}

impl AuthSkipList {
    /// Creates an empty list (commitment = [`Hash::ZERO`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored versions.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if no versions are stored.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The list commitment: the newest node's hash.
    pub fn head(&self) -> Hash {
        self.nodes.last().map_or(Hash::ZERO, |n| n.hash)
    }

    /// The newest timestamp, if any.
    pub fn max_ts(&self) -> Option<u64> {
        self.nodes.last().map(|n| n.ts)
    }

    /// Appends a version; `ts` must exceed every stored timestamp.
    ///
    /// # Panics
    ///
    /// Panics on non-increasing timestamps (an index-maintenance bug).
    pub fn append(&mut self, ts: u64, value: Vec<u8>) {
        if let Some(last) = self.nodes.last() {
            assert!(ts > last.ts, "timestamps must be strictly increasing");
        }
        let i = self.nodes.len();
        let height = tower_height(i);
        let mut link_hashes = Vec::with_capacity(height);
        let mut links = Vec::with_capacity(height);
        for l in 0..height {
            match self.last_at_level.get(l) {
                Some(&idx) => {
                    links.push(Some(idx));
                    link_hashes.push(self.nodes[idx].hash);
                }
                None => {
                    links.push(None);
                    link_hashes.push(Hash::ZERO);
                }
            }
        }
        let hash = node_hash(ts, &hash_bytes(&value), &link_hashes);
        self.nodes.push(Node {
            ts,
            value,
            link_hashes,
            links,
            hash,
        });
        // This node becomes the newest of height > l for every l < height.
        for l in 0..height {
            if l < self.last_at_level.len() {
                self.last_at_level[l] = i;
            } else {
                self.last_at_level.push(i);
            }
        }
    }

    /// Answers the range query `[t1, t2]`, returning the in-range versions
    /// (ascending by timestamp) and the traversal proof.
    pub fn range(&self, t1: u64, t2: u64) -> (Vec<(u64, Vec<u8>)>, SkipRangeProof) {
        let mut steps = Vec::new();
        let mut results = Vec::new();
        let Some(mut cur) = self.nodes.len().checked_sub(1) else {
            return (results, SkipRangeProof { steps });
        };
        // The head node is always disclosed (entry point of verification).
        steps.push(ProofStep {
            level: 0,
            node: self.proof_node(cur),
        });
        // Phase 1: skip back until at or below t2, using the highest link
        // that lands at ts >= t2.
        while self.nodes[cur].ts > t2 {
            let node = &self.nodes[cur];
            let mut chosen = 0usize;
            for l in (0..node.links.len()).rev() {
                if let Some(target) = node.links[l] {
                    if self.nodes[target].ts >= t2 {
                        chosen = l;
                        break;
                    }
                }
            }
            match node.links[chosen] {
                None => return (results, SkipRangeProof { steps }), // list start
                Some(next) => {
                    steps.push(ProofStep {
                        level: chosen as u8,
                        node: self.proof_node(next),
                    });
                    cur = next;
                }
            }
        }
        // Phase 2: collect along level 0 until below t1 (inclusive of one
        // boundary node).
        loop {
            let node = &self.nodes[cur];
            if node.ts < t1 {
                break;
            }
            if node.ts <= t2 {
                results.push((node.ts, node.value.clone()));
            }
            match node.links[0] {
                None => break,
                Some(next) => {
                    steps.push(ProofStep {
                        level: 0,
                        node: self.proof_node(next),
                    });
                    cur = next;
                }
            }
        }
        results.reverse();
        (results, SkipRangeProof { steps })
    }

    fn proof_node(&self, idx: usize) -> ProofNode {
        let node = &self.nodes[idx];
        ProofNode {
            ts: node.ts,
            value_hash: hash_bytes(&node.value),
            link_hashes: node.link_hashes.clone(),
        }
    }
}

/// One disclosed node of a traversal proof.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ProofNode {
    ts: u64,
    value_hash: Hash,
    link_hashes: Vec<Hash>,
}

impl ProofNode {
    fn hash(&self) -> Hash {
        node_hash(self.ts, &self.value_hash, &self.link_hashes)
    }
}

/// One traversal step: the link level taken to reach `node` from the
/// previously disclosed node (the first step's level is unused).
#[derive(Debug, Clone, PartialEq, Eq)]
struct ProofStep {
    level: u8,
    node: ProofNode,
}

/// A range-query proof over an [`AuthSkipList`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkipRangeProof {
    steps: Vec<ProofStep>,
}

impl SkipRangeProof {
    /// Serialized proof size in bytes (the Fig. 11b metric).
    pub fn size_bytes(&self) -> usize {
        self.encoded_len()
    }

    /// Verifies that `results` is exactly the version set in `[t1, t2]`,
    /// against the trusted `head` commitment.
    ///
    /// # Errors
    ///
    /// [`ProofError`] describing the first failed check.
    pub fn verify(
        &self,
        head: &Hash,
        t1: u64,
        t2: u64,
        results: &[(u64, Vec<u8>)],
    ) -> Result<(), ProofError> {
        if self.steps.is_empty() {
            return if head.is_zero() {
                if results.is_empty() {
                    Ok(())
                } else {
                    Err(ProofError::Incomplete("results for an empty list"))
                }
            } else {
                Err(ProofError::Malformed("empty proof for non-empty list"))
            };
        }
        // The first node must hash to the head commitment.
        if self.steps[0].node.hash() != *head {
            return Err(ProofError::RootMismatch);
        }
        let mut collected: Vec<(u64, Hash)> = Vec::new();
        let mut reached_below_t1_or_start = false;
        for (i, step) in self.steps.iter().enumerate() {
            let node = &step.node;
            if i > 0 {
                let prev = &self.steps[i - 1].node;
                let level = step.level as usize;
                // Link authenticity: the previous node committed to this
                // node at `level`.
                let link = prev
                    .link_hashes
                    .get(level)
                    .ok_or(ProofError::Malformed("link level out of range"))?;
                if *link != node.hash() {
                    return Err(ProofError::RootMismatch);
                }
                // Skip-safety: a level-above-0 step may only land at or
                // above t2 (nothing in range can be jumped over).
                if level > 0 && node.ts < t2 {
                    return Err(ProofError::Incomplete("skip jumped into the range"));
                }
                // Timestamps must strictly decrease along the walk.
                if node.ts >= prev.ts {
                    return Err(ProofError::Malformed("non-decreasing traversal"));
                }
            }
            if node.ts >= t1 && node.ts <= t2 {
                collected.push((node.ts, node.value_hash));
            }
            if node.ts < t1 {
                reached_below_t1_or_start = true;
            }
            // List start: all links zero at level 0.
            if node.link_hashes.first().map(Hash::is_zero).unwrap_or(true) {
                reached_below_t1_or_start = true;
            }
        }
        if !reached_below_t1_or_start {
            return Err(ProofError::Incomplete("traversal stops inside the range"));
        }
        // Collected nodes were pushed newest-first.
        collected.reverse();
        if collected.len() != results.len() {
            return Err(ProofError::Incomplete("result count mismatch"));
        }
        for ((ts, vh), (rts, rv)) in collected.iter().zip(results) {
            if ts != rts || *vh != hash_bytes(rv) {
                return Err(ProofError::Incomplete("result entry mismatch"));
            }
        }
        Ok(())
    }
}

// --- serialization ---------------------------------------------------------

impl Encode for ProofNode {
    fn encode(&self, out: &mut Vec<u8>) {
        self.ts.encode(out);
        self.value_hash.encode(out);
        encode_seq(&self.link_hashes, out);
    }
}

impl Decode for ProofNode {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ProofNode {
            ts: u64::decode(r)?,
            value_hash: Hash::decode(r)?,
            link_hashes: decode_seq(r)?,
        })
    }
}

impl Encode for ProofStep {
    fn encode(&self, out: &mut Vec<u8>) {
        self.level.encode(out);
        self.node.encode(out);
    }
}

impl Decode for ProofStep {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ProofStep {
            level: u8::decode(r)?,
            node: ProofNode::decode(r)?,
        })
    }
}

impl Encode for SkipRangeProof {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_seq(&self.steps, out);
    }
}

impl Decode for SkipRangeProof {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(SkipRangeProof {
            steps: decode_seq(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn build(n: u64) -> AuthSkipList {
        let mut list = AuthSkipList::new();
        for ts in 0..n {
            list.append(ts, format!("v{ts}").into_bytes());
        }
        list
    }

    #[test]
    fn empty_list_verifies_empty_results() {
        let list = AuthSkipList::new();
        let (results, proof) = list.range(0, 10);
        assert!(results.is_empty());
        proof.verify(&Hash::ZERO, 0, 10, &results).unwrap();
    }

    #[test]
    fn tower_heights_are_deterministic() {
        assert_eq!(tower_height(0), 1);
        assert_eq!(tower_height(1), 2);
        assert_eq!(tower_height(2), 1);
        assert_eq!(tower_height(3), 3);
        assert_eq!(tower_height(7), 4);
    }

    #[test]
    fn ranges_verify_across_windows() {
        let list = build(100);
        let head = list.head();
        for (t1, t2) in [(0, 99), (10, 20), (95, 99), (0, 0), (50, 50), (90, 200)] {
            let (results, proof) = list.range(t1, t2);
            let expected: Vec<u64> = (t1..=t2.min(99)).collect();
            assert_eq!(
                results.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
                expected,
                "window [{t1},{t2}]"
            );
            proof
                .verify(&head, t1, t2, &results)
                .unwrap_or_else(|e| panic!("window [{t1},{t2}]: {e}"));
        }
    }

    #[test]
    fn empty_window_above_tip_verifies() {
        let list = build(10);
        let (results, proof) = list.range(50, 60);
        assert!(results.is_empty());
        proof.verify(&list.head(), 50, 60, &results).unwrap();
    }

    #[test]
    fn omitted_result_detected() {
        let list = build(50);
        let (mut results, proof) = list.range(10, 20);
        results.remove(5);
        assert!(proof.verify(&list.head(), 10, 20, &results).is_err());
    }

    #[test]
    fn tampered_value_detected() {
        let list = build(50);
        let (mut results, proof) = list.range(10, 20);
        results[0].1 = b"forged".to_vec();
        assert!(proof.verify(&list.head(), 10, 20, &results).is_err());
    }

    #[test]
    fn stale_head_detected() {
        let mut list = build(50);
        let stale_head = list.head();
        list.append(50, b"new".to_vec());
        let (results, proof) = list.range(10, 20);
        assert!(proof.verify(&stale_head, 10, 20, &results).is_err());
    }

    #[test]
    fn proof_cost_grows_with_distance_from_tip() {
        let list = build(10_000);
        let (_, near) = list.range(9_990, 9_995);
        let (_, far) = list.range(10, 15);
        assert!(
            far.size_bytes() > near.size_bytes(),
            "far window proofs must be larger: far={} near={}",
            far.size_bytes(),
            near.size_bytes()
        );
    }

    #[test]
    fn proof_codec_round_trip() {
        let list = build(40);
        let (results, proof) = list.range(5, 15);
        let decoded = SkipRangeProof::decode_all(&proof.to_encoded_bytes()).unwrap();
        assert_eq!(decoded, proof);
        decoded.verify(&list.head(), 5, 15, &results).unwrap();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_ranges_verify(n in 0u64..200, t1 in 0u64..250, width in 0u64..80) {
            let list = build(n);
            let t2 = t1 + width;
            let (results, proof) = list.range(t1, t2);
            let expected: Vec<u64> = (t1..=t2).filter(|t| *t < n).collect();
            prop_assert_eq!(
                results.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
                expected
            );
            prop_assert!(proof.verify(&list.head(), t1, t2, &results).is_ok());
        }
    }
}
