//! The traditional header-chain light client (the Fig. 7 baseline).

use dcert_chain::{BlockHeader, ChainError, ConsensusEngine};
use dcert_primitives::codec::Encode;
use dcert_primitives::hash::Hash;

/// Bytes per header the paper attributes to Ethereum (Section 1).
pub const ETHEREUM_HEADER_BYTES: usize = 508;

/// A standard light client: keeps **all** block headers and validates the
/// chain from genesis.
///
/// Both of its costs grow linearly with chain length — the exact pain
/// DCert's constant-cost superlight client removes:
///
/// - storage: every header ([`TraditionalLightClient::storage_bytes`]),
/// - bootstrap: link + consensus validation per header
///   ([`TraditionalLightClient::validate_all`]).
#[derive(Debug, Clone)]
pub struct TraditionalLightClient {
    headers: Vec<BlockHeader>,
}

impl TraditionalLightClient {
    /// Creates a client holding only the genesis header.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::BadGenesis`] for a non-genesis header.
    pub fn new(genesis: BlockHeader) -> Result<Self, ChainError> {
        if genesis.height != 0 {
            return Err(ChainError::BadGenesis("height must be 0"));
        }
        Ok(TraditionalLightClient {
            headers: vec![genesis],
        })
    }

    /// Syncs one header, validating its linkage and consensus proof.
    ///
    /// # Errors
    ///
    /// Rejects broken links, height gaps, and invalid consensus proofs.
    pub fn sync(
        &mut self,
        header: BlockHeader,
        engine: &dyn ConsensusEngine,
    ) -> Result<(), ChainError> {
        let tip = self.headers.last().expect("genesis always present");
        if header.prev_hash != tip.hash() {
            return Err(ChainError::BrokenLink {
                claimed: header.prev_hash,
                actual: tip.hash(),
            });
        }
        if header.height != tip.height + 1 {
            return Err(ChainError::BadHeight {
                parent: tip.height,
                child: header.height,
            });
        }
        engine.verify(&header)?;
        self.headers.push(header);
        Ok(())
    }

    /// Full bootstrap validation: re-checks every link and consensus proof
    /// from genesis (what a freshly joined light client must do).
    ///
    /// # Errors
    ///
    /// Returns the first validation failure.
    pub fn validate_all(&self, engine: &dyn ConsensusEngine) -> Result<(), ChainError> {
        let mut prev_hash: Option<Hash> = None;
        for (i, header) in self.headers.iter().enumerate() {
            if let Some(expected) = prev_hash {
                if header.prev_hash != expected {
                    return Err(ChainError::BrokenLink {
                        claimed: header.prev_hash,
                        actual: expected,
                    });
                }
                if header.height != i as u64 {
                    return Err(ChainError::BadHeight {
                        parent: i as u64 - 1,
                        child: header.height,
                    });
                }
                engine.verify(header)?;
            }
            prev_hash = Some(header.hash());
        }
        Ok(())
    }

    /// Chain height (genesis = 0).
    pub fn height(&self) -> u64 {
        self.headers.last().expect("genesis always present").height
    }

    /// Number of stored headers.
    pub fn len(&self) -> usize {
        self.headers.len()
    }

    /// Always `false`: the genesis header is always stored.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Actual bytes stored: the sum of serialized header sizes.
    pub fn storage_bytes(&self) -> usize {
        self.headers.iter().map(|h| h.encoded_len()).sum()
    }

    /// Ethereum-equivalent storage (508 B per header), the extrapolation
    /// the paper's Fig. 7a uses.
    pub fn ethereum_equivalent_bytes(&self) -> usize {
        self.headers.len() * ETHEREUM_HEADER_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcert_chain::consensus::ConsensusProof;
    use dcert_chain::ProofOfWork;
    use dcert_primitives::hash::Address;

    fn genesis() -> BlockHeader {
        BlockHeader {
            height: 0,
            prev_hash: Hash::ZERO,
            state_root: Hash::ZERO,
            tx_root: Hash::ZERO,
            timestamp: 0,
            miner: Address::default(),
            consensus: ConsensusProof::Pow {
                difficulty_bits: 0,
                nonce: 0,
            },
        }
    }

    fn extend(engine: &ProofOfWork, parent: &BlockHeader, salt: u64) -> BlockHeader {
        let mut header = BlockHeader {
            height: parent.height + 1,
            prev_hash: parent.hash(),
            state_root: Hash::ZERO,
            tx_root: Hash::ZERO,
            timestamp: salt,
            miner: Address::default(),
            consensus: ConsensusProof::Pow {
                difficulty_bits: 0,
                nonce: 0,
            },
        };
        dcert_chain::ConsensusEngine::seal(engine, &mut header).unwrap();
        header
    }

    #[test]
    fn sync_and_bootstrap_a_chain() {
        let engine = ProofOfWork::new(4);
        let mut client = TraditionalLightClient::new(genesis()).unwrap();
        let mut parent = genesis();
        for i in 1..=20u64 {
            let header = extend(&engine, &parent, i);
            client.sync(header.clone(), &engine).unwrap();
            parent = header;
        }
        assert_eq!(client.height(), 20);
        assert_eq!(client.len(), 21);
        client.validate_all(&engine).unwrap();
    }

    #[test]
    fn storage_grows_linearly() {
        let engine = ProofOfWork::new(0);
        let mut client = TraditionalLightClient::new(genesis()).unwrap();
        let base = client.storage_bytes();
        let mut parent = genesis();
        for i in 1..=10u64 {
            let header = extend(&engine, &parent, i);
            client.sync(header.clone(), &engine).unwrap();
            parent = header;
        }
        assert!(client.storage_bytes() >= base + 10 * 100);
        assert_eq!(client.ethereum_equivalent_bytes(), 11 * 508);
    }

    #[test]
    fn rejects_broken_link() {
        let engine = ProofOfWork::new(0);
        let mut client = TraditionalLightClient::new(genesis()).unwrap();
        let mut orphan = extend(&engine, &genesis(), 1);
        orphan.prev_hash = Hash::ZERO;
        assert!(matches!(
            client.sync(orphan, &engine),
            Err(ChainError::BrokenLink { .. })
        ));
    }

    #[test]
    fn rejects_insufficient_work() {
        let weak = ProofOfWork::new(0);
        let strict = ProofOfWork::new(24);
        let mut client = TraditionalLightClient::new(genesis()).unwrap();
        let header = extend(&weak, &genesis(), 1);
        assert!(matches!(
            client.sync(header, &strict),
            Err(ChainError::BadConsensus(_))
        ));
    }

    #[test]
    fn rejects_non_genesis_start() {
        let engine = ProofOfWork::new(0);
        let header = extend(&engine, &genesis(), 1);
        assert!(TraditionalLightClient::new(header).is_err());
    }
}
