//! Aggregate Merkle B-tree: authenticated window aggregation.
//!
//! Section 5.1 of the paper notes DCert supports "complex queries such as
//! aggregations" whenever an authenticated query algorithm exists. This
//! module supplies one: a B+-tree over `(timestamp, u64 value)` entries
//! whose every subtree is annotated with an [`Aggregate`]
//! (count/sum/min/max) **bound into the node hashes**. A window query
//! `[t1, t2]` then returns just the aggregate with an O(log n)-size proof:
//! subtrees fully inside the window contribute their certified annotation
//! without being opened, so the proof does not grow with the window size —
//! unlike answering aggregation by shipping every in-range version.
//!
//! # Example
//!
//! ```
//! use dcert_merkle::aggmb::AggMbTree;
//!
//! let mut tree = AggMbTree::new(4);
//! for ts in 0..100u64 {
//!     tree.insert(ts, ts);
//! }
//! let (agg, proof) = tree.aggregate(10, 19);
//! assert_eq!(agg.count, 10);
//! assert_eq!(agg.sum, (10..=19).sum::<u64>() as u128);
//! assert_eq!((agg.min, agg.max), (10, 19));
//! proof.verify(&tree.root(), 10, 19, &agg)?;
//! # Ok::<(), dcert_merkle::ProofError>(())
//! ```

use dcert_primitives::codec::{decode_seq, encode_seq, Decode, Encode, Reader};
use dcert_primitives::error::CodecError;
use dcert_primitives::hash::{hash_bytes, Hash};

use crate::ops::{AggOpProof, OpNode, ProofOp};
use crate::ProofError;

/// Domain tags (kept here: the module owns its hash formats).
const AGG_LEAF_DOMAIN: u8 = 0x0c;
const AGG_NODE_DOMAIN: u8 = 0x0d;

/// A verifiable window aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aggregate {
    /// Number of entries.
    pub count: u64,
    /// Sum of values (u128: no overflow for u64 values × u64 count).
    pub sum: u128,
    /// Minimum value ([`u64::MAX`] when empty).
    pub min: u64,
    /// Maximum value (0 when empty).
    pub max: u64,
}

impl Aggregate {
    /// The aggregate of nothing.
    pub const EMPTY: Aggregate = Aggregate {
        count: 0,
        sum: 0,
        min: u64::MAX,
        max: 0,
    };

    /// The aggregate of a single value.
    pub fn of(value: u64) -> Self {
        Aggregate {
            count: 1,
            sum: value as u128,
            min: value,
            max: value,
        }
    }

    /// Merges another aggregate into this one.
    ///
    /// Saturating: `count`/`sum` pin at their type maxima instead of
    /// wrapping. Honest trees never get near the limits (u128 sum cannot
    /// overflow for u64 values × u64 count), but the verifier merges
    /// *claimed* annotations from decoded proofs before the root
    /// comparison, so attacker-chosen near-MAX values must not be able to
    /// panic a debug build. A saturated merge then fails the root or
    /// aggregate equality check like any other forgery.
    pub fn merge(&mut self, other: &Aggregate) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The arithmetic mean, if any entries exist.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    fn write_to(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.count.to_be_bytes());
        buf.extend_from_slice(&self.sum.to_be_bytes());
        buf.extend_from_slice(&self.min.to_be_bytes());
        buf.extend_from_slice(&self.max.to_be_bytes());
    }
}

impl Default for Aggregate {
    fn default() -> Self {
        Aggregate::EMPTY
    }
}

impl Encode for Aggregate {
    fn encode(&self, out: &mut Vec<u8>) {
        self.count.encode(out);
        self.sum.encode(out);
        self.min.encode(out);
        self.max.encode(out);
    }
}

impl Decode for Aggregate {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Aggregate {
            count: u64::decode(r)?,
            sum: u128::decode(r)?,
            min: u64::decode(r)?,
            max: u64::decode(r)?,
        })
    }
}

/// Node arity as a u32 for the hash preimage; saturating (never reachable
/// for codec-bounded proofs) so distinct lengths cannot collide.
fn len_u32(len: usize) -> u32 {
    u32::try_from(len).unwrap_or(u32::MAX)
}

fn leaf_hash(entries: &[(u64, u64)]) -> Hash {
    let mut buf = Vec::with_capacity(1 + 4 + entries.len() * 16);
    buf.push(AGG_LEAF_DOMAIN);
    buf.extend_from_slice(&len_u32(entries.len()).to_be_bytes());
    for (ts, value) in entries {
        buf.extend_from_slice(&ts.to_be_bytes());
        buf.extend_from_slice(&value.to_be_bytes());
    }
    hash_bytes(&buf)
}

fn node_hash(separators: &[u64], children: &[(Hash, Aggregate)]) -> Hash {
    let mut buf = Vec::with_capacity(1 + 4 + separators.len() * 8 + children.len() * 88);
    buf.push(AGG_NODE_DOMAIN);
    buf.extend_from_slice(&len_u32(separators.len()).to_be_bytes());
    for sep in separators {
        buf.extend_from_slice(&sep.to_be_bytes());
    }
    for (hash, agg) in children {
        buf.extend_from_slice(hash.as_bytes());
        agg.write_to(&mut buf);
    }
    hash_bytes(&buf)
}

fn aggregate_of_entries(entries: &[(u64, u64)]) -> Aggregate {
    let mut agg = Aggregate::EMPTY;
    for (_, value) in entries {
        agg.merge(&Aggregate::of(*value));
    }
    agg
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        entries: Vec<(u64, u64)>,
        hash: Hash,
        agg: Aggregate,
    },
    Internal {
        separators: Vec<u64>,
        children: Vec<Node>,
        hash: Hash,
        agg: Aggregate,
    },
}

impl Node {
    fn hash(&self) -> Hash {
        match self {
            Node::Leaf { hash, .. } | Node::Internal { hash, .. } => *hash,
        }
    }

    fn agg(&self) -> Aggregate {
        match self {
            Node::Leaf { agg, .. } | Node::Internal { agg, .. } => *agg,
        }
    }

    fn new_leaf(entries: Vec<(u64, u64)>) -> Node {
        let hash = leaf_hash(&entries);
        let agg = aggregate_of_entries(&entries);
        Node::Leaf { entries, hash, agg }
    }

    fn new_internal(separators: Vec<u64>, children: Vec<Node>) -> Node {
        debug_assert_eq!(children.len(), separators.len() + 1);
        let pairs: Vec<(Hash, Aggregate)> = children.iter().map(|c| (c.hash(), c.agg())).collect();
        let hash = node_hash(&separators, &pairs);
        let mut agg = Aggregate::EMPTY;
        for (_, child_agg) in &pairs {
            agg.merge(child_agg);
        }
        Node::Internal {
            separators,
            children,
            hash,
            agg,
        }
    }
}

/// An aggregate-annotated authenticated B+-tree over `(u64 ts, u64 value)`.
#[derive(Debug, Clone)]
pub struct AggMbTree {
    root: Option<Node>,
    order: usize,
    len: usize,
}

impl AggMbTree {
    /// Default fanout.
    pub const DEFAULT_ORDER: usize = 16;

    /// Creates an empty tree with the given fanout.
    ///
    /// # Panics
    ///
    /// Panics if `order < 3`.
    pub fn new(order: usize) -> Self {
        assert!(order >= 3, "AggMbTree order must be at least 3");
        AggMbTree {
            root: None,
            order,
            len: 0,
        }
    }

    /// Number of entries stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The root commitment ([`Hash::ZERO`] when empty).
    pub fn root(&self) -> Hash {
        self.root.as_ref().map_or(Hash::ZERO, |n| n.hash())
    }

    /// The aggregate over the whole tree.
    pub fn total(&self) -> Aggregate {
        self.root.as_ref().map_or(Aggregate::EMPTY, |n| n.agg())
    }

    /// The root a fresh tree would have after one insertion (stateless
    /// verifiers use this for brand-new per-account trees).
    pub fn singleton_root(ts: u64, value: u64) -> Hash {
        leaf_hash(&[(ts, value)])
    }

    /// Inserts `(ts, value)`, replacing any existing entry at `ts`.
    pub fn insert(&mut self, ts: u64, value: u64) -> Option<u64> {
        let mut previous = None;
        match self.root.take() {
            None => {
                self.root = Some(Node::new_leaf(vec![(ts, value)]));
            }
            Some(root) => {
                let (node, split) = self.insert_rec(root, ts, value, &mut previous);
                self.root = Some(match split {
                    None => node,
                    Some((sep, right)) => Node::new_internal(vec![sep], vec![node, right]),
                });
            }
        }
        if previous.is_none() {
            self.len += 1;
        }
        previous
    }

    fn insert_rec(
        &self,
        node: Node,
        ts: u64,
        value: u64,
        previous: &mut Option<u64>,
    ) -> (Node, Option<(u64, Node)>) {
        match node {
            Node::Leaf { mut entries, .. } => {
                match entries.binary_search_by_key(&ts, |(t, _)| *t) {
                    Ok(pos) => {
                        if let Some(entry) = entries.get_mut(pos) {
                            *previous = Some(std::mem::replace(&mut entry.1, value));
                        }
                    }
                    Err(pos) => entries.insert(pos, (ts, value)),
                }
                if entries.len() > self.order {
                    let mid = entries.len() / 2;
                    let right = entries.split_off(mid);
                    let sep = right.first().map_or(0, |(t, _)| *t);
                    (Node::new_leaf(entries), Some((sep, Node::new_leaf(right))))
                } else {
                    (Node::new_leaf(entries), None)
                }
            }
            Node::Internal {
                mut separators,
                mut children,
                ..
            } => {
                let idx = separators.partition_point(|sep| *sep <= ts);
                let child = children.remove(idx);
                let (child, split) = self.insert_rec(child, ts, value, previous);
                children.insert(idx, child);
                if let Some((sep, right)) = split {
                    separators.insert(idx, sep);
                    children.insert(idx + 1, right);
                }
                if children.len() > self.order {
                    let mid = children.len() / 2;
                    let right_children = children.split_off(mid);
                    let promoted = separators
                        .get(mid.saturating_sub(1))
                        .copied()
                        .unwrap_or_default();
                    let right_seps = separators.split_off(mid);
                    separators.pop();
                    (
                        Node::new_internal(separators, children),
                        Some((promoted, Node::new_internal(right_seps, right_children))),
                    )
                } else {
                    (Node::new_internal(separators, children), None)
                }
            }
        }
    }

    /// Produces a proof of the rightmost path enabling a stateless
    /// verifier to append an entry with a strictly larger timestamp
    /// ([`AggAppendProof::appended_root`]) — the enclave-side primitive
    /// for certifying aggregate-index updates.
    pub fn prove_append(&self) -> AggAppendProof {
        let mut path = Vec::new();
        let mut node = self.root.as_ref();
        while let Some(n) = node {
            match n {
                Node::Leaf { entries, .. } => {
                    path.push(AppendNode::Leaf {
                        entries: entries.clone(),
                    });
                    node = None;
                }
                Node::Internal {
                    separators,
                    children,
                    ..
                } => {
                    let Some((rightmost, rest)) = children.split_last() else {
                        node = None;
                        continue;
                    };
                    let left: Vec<(Hash, Aggregate)> =
                        rest.iter().map(|c| (c.hash(), c.agg())).collect();
                    path.push(AppendNode::Internal {
                        separators: separators.clone(),
                        left_siblings: left,
                    });
                    node = Some(rightmost);
                }
            }
        }
        AggAppendProof { path }
    }

    /// Emits a single op-stream proof for the window aggregate
    /// `[lo, hi]` — the op-encoding counterpart of
    /// [`AggMbTree::aggregate`]. Subtrees fully inside or outside the
    /// window stay pruned (their certified annotations travel with the
    /// hash); only boundary-straddling paths open, exactly as the
    /// per-path prover prunes, so [`AggOpProof::verify`] accepts the
    /// same claimed aggregate.
    pub fn prove_agg_ops(&self, lo: u64, hi: u64) -> AggOpProof {
        let mut ops = Vec::new();
        if let Some(root) = &self.root {
            Self::emit_agg_ops(root, None, None, lo, hi, &mut ops);
        }
        AggOpProof::from_ops(ops)
    }

    fn emit_agg_ops(
        node: &Node,
        bound_lo: Option<u64>,
        bound_hi: Option<u64>,
        lo: u64,
        hi: u64,
        ops: &mut Vec<ProofOp>,
    ) {
        match node {
            Node::Leaf { entries, .. } => {
                ops.push(ProofOp::Push(OpNode::AggLeaf(entries.clone())));
            }
            Node::Internal {
                separators,
                children,
                ..
            } => {
                for (i, child) in children.iter().enumerate() {
                    let child_lo = match i.checked_sub(1) {
                        None => bound_lo,
                        Some(j) => separators.get(j).copied().or(bound_lo),
                    };
                    let child_hi = separators.get(i).copied().or(bound_hi);
                    match coverage(child_lo, child_hi, lo, hi) {
                        Coverage::Outside | Coverage::Inside => {
                            ops.push(ProofOp::Push(OpNode::AggPruned(child.hash(), child.agg())));
                        }
                        Coverage::Partial => {
                            Self::emit_agg_ops(child, child_lo, child_hi, lo, hi, ops);
                        }
                    }
                    if i == 0 {
                        ops.push(ProofOp::Push(OpNode::AggInternal(separators.clone())));
                        ops.push(ProofOp::Parent);
                    } else {
                        ops.push(ProofOp::Child);
                    }
                }
            }
        }
    }

    /// Answers the window-aggregate query `[lo, hi]` (inclusive) with an
    /// O(log n)-size proof.
    pub fn aggregate(&self, lo: u64, hi: u64) -> (Aggregate, AggProof) {
        let mut agg = Aggregate::EMPTY;
        let root = self
            .root
            .as_ref()
            .map(|r| Self::aggregate_rec(r, None, None, lo, hi, &mut agg));
        (agg, AggProof { root })
    }

    fn aggregate_rec(
        node: &Node,
        bound_lo: Option<u64>,
        bound_hi: Option<u64>,
        lo: u64,
        hi: u64,
        agg: &mut Aggregate,
    ) -> ProofNode {
        match node {
            Node::Leaf { entries, .. } => {
                for (ts, value) in entries {
                    if *ts >= lo && *ts <= hi {
                        agg.merge(&Aggregate::of(*value));
                    }
                }
                ProofNode::Leaf {
                    entries: entries.clone(),
                }
            }
            Node::Internal {
                separators,
                children,
                ..
            } => {
                let kids = children
                    .iter()
                    .enumerate()
                    .map(|(i, child)| {
                        let child_lo = match i.checked_sub(1) {
                            None => bound_lo,
                            Some(j) => separators.get(j).copied().or(bound_lo),
                        };
                        let child_hi = separators.get(i).copied().or(bound_hi);
                        match coverage(child_lo, child_hi, lo, hi) {
                            Coverage::Outside | Coverage::Inside => {
                                if matches!(coverage(child_lo, child_hi, lo, hi), Coverage::Inside)
                                {
                                    agg.merge(&child.agg());
                                }
                                ProofChild::Pruned(child.hash(), child.agg())
                            }
                            Coverage::Partial => ProofChild::Open(Box::new(Self::aggregate_rec(
                                child, child_lo, child_hi, lo, hi, agg,
                            ))),
                        }
                    })
                    .collect();
                ProofNode::Internal {
                    separators: separators.clone(),
                    children: kids,
                }
            }
        }
    }
}

/// How a child's key interval relates to the query window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Coverage {
    /// No overlap.
    Outside,
    /// Entirely within `[lo, hi]`.
    Inside,
    /// Straddles a boundary.
    Partial,
}

fn coverage(child_lo: Option<u64>, child_hi: Option<u64>, lo: u64, hi: u64) -> Coverage {
    // Child covers [child_lo, child_hi) with None = unbounded.
    let below = matches!(child_hi, Some(h) if h <= lo);
    let above = matches!(child_lo, Some(l) if l > hi);
    if below || above {
        return Coverage::Outside;
    }
    let starts_inside = matches!(child_lo, Some(l) if l >= lo);
    let ends_inside = matches!(child_hi, Some(h) if h.checked_sub(1).is_some_and(|h1| h1 <= hi));
    if starts_inside && ends_inside {
        Coverage::Inside
    } else {
        Coverage::Partial
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ProofChild {
    /// An unopened child: hash + certified aggregate annotation.
    Pruned(Hash, Aggregate),
    /// An opened child.
    Open(Box<ProofNode>),
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ProofNode {
    Leaf {
        entries: Vec<(u64, u64)>,
    },
    Internal {
        separators: Vec<u64>,
        children: Vec<ProofChild>,
    },
}

/// Proof for a window aggregate over an [`AggMbTree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggProof {
    pub(crate) root: Option<ProofNode>,
}

impl AggProof {
    /// Serialized size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.encoded_len()
    }

    /// Verifies that `claimed` is exactly the aggregate of entries in
    /// `[lo, hi]`, against the trusted `root`.
    ///
    /// # Errors
    ///
    /// [`ProofError`] on root mismatch, structural violations, or when a
    /// boundary-straddling subtree was pruned (incompleteness).
    pub fn verify(
        &self,
        root: &Hash,
        lo: u64,
        hi: u64,
        claimed: &Aggregate,
    ) -> Result<(), ProofError> {
        let mut agg = Aggregate::EMPTY;
        let computed = match &self.root {
            None => Hash::ZERO,
            Some(node) => Self::verify_rec(node, None, None, lo, hi, &mut agg)?.0,
        };
        if computed != *root {
            return Err(ProofError::RootMismatch);
        }
        if agg != *claimed {
            return Err(ProofError::Incomplete("aggregate mismatch"));
        }
        Ok(())
    }

    fn verify_rec(
        node: &ProofNode,
        bound_lo: Option<u64>,
        bound_hi: Option<u64>,
        lo: u64,
        hi: u64,
        agg: &mut Aggregate,
    ) -> Result<(Hash, Aggregate), ProofError> {
        match node {
            ProofNode::Leaf { entries } => {
                let mut prev = None;
                for (ts, value) in entries {
                    if let Some(p) = prev {
                        if *ts <= p {
                            return Err(ProofError::Malformed("leaf entries not sorted"));
                        }
                    }
                    prev = Some(*ts);
                    if matches!(bound_lo, Some(b) if *ts < b)
                        || matches!(bound_hi, Some(b) if *ts >= b)
                    {
                        return Err(ProofError::Malformed("leaf entry outside bounds"));
                    }
                    if *ts >= lo && *ts <= hi {
                        agg.merge(&Aggregate::of(*value));
                    }
                }
                Ok((leaf_hash(entries), aggregate_of_entries(entries)))
            }
            ProofNode::Internal {
                separators,
                children,
            } => {
                if children.len() != separators.len() + 1 {
                    return Err(ProofError::Malformed("arity mismatch"));
                }
                if separators.windows(2).any(|w| matches!(w, [a, b] if a >= b)) {
                    return Err(ProofError::Malformed("separators not sorted"));
                }
                let mut pairs = Vec::with_capacity(children.len());
                for (i, child) in children.iter().enumerate() {
                    let child_lo = match i.checked_sub(1) {
                        None => bound_lo,
                        Some(j) => Some(
                            *separators
                                .get(j)
                                .ok_or(ProofError::Malformed("arity mismatch"))?,
                        ),
                    };
                    let child_hi = separators.get(i).copied().or(bound_hi);
                    match child {
                        ProofChild::Pruned(hash, child_agg) => {
                            match coverage(child_lo, child_hi, lo, hi) {
                                Coverage::Outside => {}
                                Coverage::Inside => agg.merge(child_agg),
                                Coverage::Partial => {
                                    return Err(ProofError::Incomplete(
                                        "boundary subtree was pruned",
                                    ))
                                }
                            }
                            pairs.push((*hash, *child_agg));
                        }
                        ProofChild::Open(sub) => {
                            pairs.push(Self::verify_rec(sub, child_lo, child_hi, lo, hi, agg)?);
                        }
                    }
                }
                let mut own = Aggregate::EMPTY;
                for (_, child_agg) in &pairs {
                    own.merge(child_agg);
                }
                Ok((node_hash(separators, &pairs), own))
            }
        }
    }
}

// --- append proof ----------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum AppendNode {
    Internal {
        separators: Vec<u64>,
        /// `(hash, aggregate)` of every child except the rightmost.
        left_siblings: Vec<(Hash, Aggregate)>,
    },
    Leaf {
        entries: Vec<(u64, u64)>,
    },
}

/// A rightmost-path proof of an [`AggMbTree`] for stateless appends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggAppendProof {
    path: Vec<AppendNode>,
}

enum Applied {
    Single(Hash, Aggregate),
    Split((Hash, Aggregate), u64, (Hash, Aggregate)),
}

impl AggAppendProof {
    /// Serialized size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.encoded_len()
    }

    /// Verifies the path against `root` and computes the root after
    /// appending `(ts, value)`. Mirrors [`AggMbTree::insert`]'s split logic
    /// exactly; `order` must match the tree's fanout and `ts` must exceed
    /// every stored timestamp.
    ///
    /// # Errors
    ///
    /// [`ProofError::RootMismatch`] if the path does not authenticate;
    /// [`ProofError::Malformed`] for non-increasing timestamps or shape
    /// violations.
    pub fn appended_root(
        &self,
        root: &Hash,
        order: usize,
        ts: u64,
        value: u64,
    ) -> Result<Hash, ProofError> {
        if order < 3 {
            return Err(ProofError::Malformed("order must be at least 3"));
        }
        let Some((last_node, upper)) = self.path.split_last() else {
            if !root.is_zero() {
                return Err(ProofError::RootMismatch);
            }
            return Ok(leaf_hash(&[(ts, value)]));
        };
        let AppendNode::Leaf { entries } = last_node else {
            return Err(ProofError::Malformed("append path must end in a leaf"));
        };
        // Authenticate: compute each path node's state from the bottom up,
        // then compare the top with `root`.
        let mut below = (leaf_hash(entries), aggregate_of_entries(entries));
        for node in upper.iter().rev() {
            let AppendNode::Internal {
                separators,
                left_siblings,
            } = node
            else {
                return Err(ProofError::Malformed("leaf in the middle of path"));
            };
            if left_siblings.len() != separators.len() {
                return Err(ProofError::Malformed("append path arity"));
            }
            let mut pairs = left_siblings.clone();
            pairs.push(below);
            let mut agg = Aggregate::EMPTY;
            for (_, a) in &pairs {
                agg.merge(a);
            }
            below = (node_hash(separators, &pairs), agg);
        }
        if below.0 != *root {
            return Err(ProofError::RootMismatch);
        }

        // Replay the append with splits.
        if let Some((last_ts, _)) = entries.last() {
            if ts <= *last_ts {
                return Err(ProofError::Malformed("append timestamp not increasing"));
            }
        }
        let mut new_entries = entries.clone();
        new_entries.push((ts, value));
        let leaf_state =
            |entries: &[(u64, u64)]| (leaf_hash(entries), aggregate_of_entries(entries));
        let mut applied = if new_entries.len() > order {
            let mid = new_entries.len() / 2;
            let right = new_entries.split_off(mid);
            let sep = right.first().map_or(0, |(t, _)| *t);
            Applied::Split(leaf_state(&new_entries), sep, leaf_state(&right))
        } else {
            let s = leaf_state(&new_entries);
            Applied::Single(s.0, s.1)
        };

        for node in upper.iter().rev() {
            let AppendNode::Internal {
                separators,
                left_siblings,
            } = node
            else {
                return Err(ProofError::Malformed("leaf in the middle of path"));
            };
            let mut separators = separators.clone();
            let mut pairs = left_siblings.clone();
            match applied {
                Applied::Single(h, a) => pairs.push((h, a)),
                Applied::Split(l, sep, r) => {
                    pairs.push(l);
                    separators.push(sep);
                    pairs.push(r);
                }
            }
            let state_of = |seps: &[u64], pairs: &[(Hash, Aggregate)]| {
                let mut agg = Aggregate::EMPTY;
                for (_, a) in pairs {
                    agg.merge(a);
                }
                (node_hash(seps, pairs), agg)
            };
            applied = if pairs.len() > order {
                let mid = pairs.len() / 2;
                let right_pairs = pairs.split_off(mid);
                let promoted = separators
                    .get(mid.saturating_sub(1))
                    .copied()
                    .ok_or(ProofError::Malformed("append split arity"))?;
                let right_seps = separators.split_off(mid);
                separators.pop();
                Applied::Split(
                    state_of(&separators, &pairs),
                    promoted,
                    state_of(&right_seps, &right_pairs),
                )
            } else {
                let s = state_of(&separators, &pairs);
                Applied::Single(s.0, s.1)
            };
        }

        Ok(match applied {
            Applied::Single(h, _) => h,
            Applied::Split(l, sep, r) => node_hash(&[sep], &[l, r]),
        })
    }
}

impl Encode for AppendNode {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            AppendNode::Internal {
                separators,
                left_siblings,
            } => {
                out.push(0);
                encode_seq(separators, out);
                encode_seq(left_siblings, out);
            }
            AppendNode::Leaf { entries } => {
                out.push(1);
                encode_seq(entries, out);
            }
        }
    }
}

impl Decode for AppendNode {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_byte()? {
            0 => Ok(AppendNode::Internal {
                separators: decode_seq(r)?,
                left_siblings: decode_seq(r)?,
            }),
            1 => Ok(AppendNode::Leaf {
                entries: decode_seq(r)?,
            }),
            other => Err(CodecError::InvalidTag(other)),
        }
    }
}

impl Encode for AggAppendProof {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_seq(&self.path, out);
    }
}

impl Decode for AggAppendProof {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(AggAppendProof {
            path: decode_seq(r)?,
        })
    }
}

// --- serialization ---------------------------------------------------------

impl Encode for ProofChild {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ProofChild::Pruned(hash, agg) => {
                out.push(0);
                hash.encode(out);
                agg.encode(out);
            }
            ProofChild::Open(node) => {
                out.push(1);
                node.encode(out);
            }
        }
    }
}

impl Decode for ProofChild {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_byte()? {
            0 => Ok(ProofChild::Pruned(Hash::decode(r)?, Aggregate::decode(r)?)),
            1 => Ok(ProofChild::Open(Box::new(ProofNode::decode(r)?))),
            other => Err(CodecError::InvalidTag(other)),
        }
    }
}

impl Encode for ProofNode {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ProofNode::Leaf { entries } => {
                out.push(0);
                encode_seq(entries, out);
            }
            ProofNode::Internal {
                separators,
                children,
            } => {
                out.push(1);
                encode_seq(separators, out);
                encode_seq(children, out);
            }
        }
    }
}

impl Decode for ProofNode {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_byte()? {
            0 => Ok(ProofNode::Leaf {
                entries: decode_seq(r)?,
            }),
            1 => Ok(ProofNode::Internal {
                separators: decode_seq(r)?,
                children: decode_seq(r)?,
            }),
            other => Err(CodecError::InvalidTag(other)),
        }
    }
}

impl Encode for AggProof {
    fn encode(&self, out: &mut Vec<u8>) {
        self.root.encode(out);
    }
}

impl Decode for AggProof {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(AggProof {
            root: Option::<ProofNode>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn build(n: u64, order: usize) -> AggMbTree {
        let mut tree = AggMbTree::new(order);
        for ts in 0..n {
            tree.insert(ts, ts * 3 + 1);
        }
        tree
    }

    fn expected(lo: u64, hi: u64, n: u64) -> Aggregate {
        let mut agg = Aggregate::EMPTY;
        if n == 0 {
            // `n - 1` below would wrap; an empty tree aggregates empty.
            return agg;
        }
        for ts in lo..=hi.min(n - 1) {
            agg.merge(&Aggregate::of(ts * 3 + 1));
        }
        agg
    }

    #[test]
    fn empty_tree_aggregates_empty() {
        let tree = AggMbTree::new(4);
        let (agg, proof) = tree.aggregate(0, 100);
        assert_eq!(agg, Aggregate::EMPTY);
        proof.verify(&Hash::ZERO, 0, 100, &agg).unwrap();
        assert!(agg.mean().is_none());
    }

    #[test]
    fn total_annotation_tracks_inserts_and_replacements() {
        let mut tree = AggMbTree::new(4);
        tree.insert(1, 10);
        tree.insert(2, 20);
        assert_eq!(tree.total().sum, 30);
        assert_eq!(tree.insert(1, 15), Some(10));
        assert_eq!(tree.total().sum, 35);
        assert_eq!(tree.total().count, 2);
        assert_eq!((tree.total().min, tree.total().max), (15, 20));
    }

    #[test]
    fn aggregates_verify_across_windows_and_fanouts() {
        for order in [3usize, 4, 16] {
            let n = 200u64;
            let tree = build(n, order);
            let root = tree.root();
            for (lo, hi) in [
                (0, 199),
                (50, 99),
                (0, 0),
                (199, 199),
                (150, 400),
                (300, 400),
            ] {
                let (agg, proof) = tree.aggregate(lo, hi);
                assert_eq!(agg, expected(lo, hi, n), "order={order} [{lo},{hi}]");
                proof
                    .verify(&root, lo, hi, &agg)
                    .unwrap_or_else(|e| panic!("order={order} [{lo},{hi}]: {e}"));
            }
        }
    }

    #[test]
    fn understated_aggregate_rejected() {
        let tree = build(100, 4);
        let (mut agg, proof) = tree.aggregate(10, 90);
        agg.sum -= 1;
        assert!(matches!(
            proof.verify(&tree.root(), 10, 90, &agg),
            Err(ProofError::Incomplete(_))
        ));
    }

    #[test]
    fn proof_for_other_window_rejected() {
        let tree = build(100, 4);
        let (agg, proof) = tree.aggregate(10, 20);
        // Same aggregate claimed for a wider window must fail (pruned
        // subtrees now straddle the boundary, or the aggregate mismatches).
        assert!(proof.verify(&tree.root(), 5, 40, &agg).is_err());
    }

    #[test]
    fn wrong_root_rejected() {
        let tree = build(50, 4);
        let (agg, proof) = tree.aggregate(5, 25);
        assert_eq!(
            proof.verify(&Hash::ZERO, 5, 25, &agg),
            Err(ProofError::RootMismatch)
        );
    }

    #[test]
    fn forged_annotation_rejected() {
        // An SP inflating a pruned child's aggregate breaks the hash chain.
        let tree = build(200, 4);
        let (agg, proof) = tree.aggregate(20, 180);
        let mut forged = proof.clone();
        #[allow(clippy::collapsible_match)] // guard can't borrow `sub` mutably
        fn inflate(node: &mut ProofNode) -> bool {
            let ProofNode::Internal { children, .. } = node else {
                return false;
            };
            for child in children {
                match child {
                    ProofChild::Pruned(_, agg) if agg.count > 0 => {
                        agg.sum += 1_000;
                        return true;
                    }
                    ProofChild::Open(sub) => {
                        if inflate(sub) {
                            return true;
                        }
                    }
                    _ => {}
                }
            }
            false
        }
        assert!(
            inflate(forged.root.as_mut().unwrap()),
            "fixture has pruned children"
        );
        let mut claimed = agg;
        claimed.sum += 1_000;
        assert!(forged.verify(&tree.root(), 20, 180, &claimed).is_err());
    }

    #[test]
    fn hostile_annotations_cannot_overflow_the_verifier() {
        // Regression: `Aggregate::merge` used unchecked `+=`. The
        // verifier merges *claimed* annotations from a decoded proof
        // before the root comparison, so near-MAX counts/sums in two
        // pruned siblings overflowed (panicking in debug builds) before
        // the forgery was rejected. Merge now saturates; the forged
        // proof must fail with a typed error, never a panic.
        let hostile = Aggregate {
            count: u64::MAX,
            sum: u128::MAX,
            min: 0,
            max: u64::MAX,
        };
        let proof = AggProof {
            root: Some(ProofNode::Internal {
                separators: vec![50],
                children: vec![
                    ProofChild::Pruned(hash_bytes(b"left"), hostile),
                    ProofChild::Pruned(hash_bytes(b"right"), hostile),
                ],
            }),
        };
        // Window [0, 100]: both pruned children are fully inside, so both
        // annotations are merged into the running aggregate.
        let err = proof
            .verify(&hash_bytes(b"no-such-root"), 0, 100, &Aggregate::EMPTY)
            .unwrap_err();
        assert!(matches!(
            err,
            ProofError::RootMismatch | ProofError::Incomplete(_)
        ));
        // The decoded form takes the same path.
        let decoded = AggProof::decode_all(&proof.to_encoded_bytes()).unwrap();
        assert!(decoded
            .verify(&hash_bytes(b"no-such-root"), 0, 100, &Aggregate::EMPTY)
            .is_err());

        let mut merged = hostile;
        merged.merge(&hostile);
        assert_eq!((merged.count, merged.sum), (u64::MAX, u128::MAX));
    }

    #[test]
    fn op_proof_matches_per_path_aggregate() {
        for (n, order) in [(0u64, 4usize), (1, 4), (100, 4), (300, 16)] {
            let tree = build(n, order);
            for (lo, hi) in [(0u64, 0u64), (10, 90), (0, 500), (250, 320), (90, 20)] {
                let (agg, per_path) = tree.aggregate(lo, hi);
                per_path.verify(&tree.root(), lo, hi, &agg).unwrap();
                let op = tree.prove_agg_ops(lo, hi);
                op.verify(&tree.root(), lo, hi, &agg)
                    .unwrap_or_else(|e| panic!("n={n} order={order} [{lo},{hi}]: {e}"));
                assert_eq!(op.size_bytes(), op.to_encoded_bytes().len());
                assert_eq!(per_path.size_bytes(), per_path.to_encoded_bytes().len());

                // Tampered claims fail through the op encoding too.
                let mut forged = agg;
                forged.sum = forged.sum.wrapping_add(1);
                assert!(op.verify(&tree.root(), lo, hi, &forged).is_err());
            }
        }
    }

    #[test]
    fn op_proof_for_other_window_rejected() {
        let tree = build(100, 4);
        let (agg, _) = tree.aggregate(10, 20);
        let op = tree.prove_agg_ops(10, 20);
        assert!(op.verify(&tree.root(), 5, 40, &agg).is_err());
    }

    #[test]
    fn proof_size_is_logarithmic_in_window() {
        let tree = build(10_000, 16);
        let (_, narrow) = tree.aggregate(4_000, 4_100);
        let (_, wide) = tree.aggregate(100, 9_900);
        // A 98× wider window must not cost anywhere near 98× the proof.
        assert!(
            wide.size_bytes() < narrow.size_bytes() * 8,
            "wide={} narrow={}",
            wide.size_bytes(),
            narrow.size_bytes()
        );
    }

    #[test]
    fn proof_codec_round_trip() {
        let tree = build(100, 4);
        let (agg, proof) = tree.aggregate(10, 60);
        let decoded = AggProof::decode_all(&proof.to_encoded_bytes()).unwrap();
        assert_eq!(decoded, proof);
        decoded.verify(&tree.root(), 10, 60, &agg).unwrap();
    }

    #[test]
    fn append_proof_tracks_real_inserts() {
        for order in [3usize, 5, 16] {
            let mut tree = AggMbTree::new(order);
            for ts in 0..150u64 {
                let proof = tree.prove_append();
                let predicted = proof
                    .appended_root(&tree.root(), order, ts, ts * 7)
                    .unwrap_or_else(|e| panic!("order={order} ts={ts}: {e}"));
                tree.insert(ts, ts * 7);
                assert_eq!(predicted, tree.root(), "order={order} ts={ts}");
            }
        }
    }

    #[test]
    fn append_proof_rejects_stale_root_and_bad_ts() {
        let tree = build(20, 4);
        let proof = tree.prove_append();
        assert_eq!(
            proof.appended_root(&Hash::ZERO, 4, 100, 1),
            Err(ProofError::RootMismatch)
        );
        assert!(matches!(
            proof.appended_root(&tree.root(), 4, 5, 1),
            Err(ProofError::Malformed(_))
        ));
    }

    #[test]
    fn append_proof_codec_round_trip() {
        let tree = build(40, 4);
        let proof = tree.prove_append();
        let decoded = AggAppendProof::decode_all(&proof.to_encoded_bytes()).unwrap();
        assert_eq!(decoded, proof);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_append_agrees(
            order in 3usize..9,
            steps in proptest::collection::vec((1u64..5, any::<u64>()), 1..50),
        ) {
            let mut tree = AggMbTree::new(order);
            let mut ts = 0u64;
            for (step, value) in steps {
                ts += step;
                let proof = tree.prove_append();
                let predicted = proof
                    .appended_root(&tree.root(), order, ts, value)
                    .unwrap();
                tree.insert(ts, value);
                prop_assert_eq!(predicted, tree.root());
            }
        }

        #[test]
        fn prop_aggregates_match_reference(
            n in 0u64..300,
            order in 3usize..10,
            lo in 0u64..350,
            width in 0u64..120,
        ) {
            let tree = build(n, order);
            let hi = lo + width;
            let (agg, proof) = tree.aggregate(lo, hi);
            prop_assert_eq!(agg, expected(lo, hi, n));
            prop_assert!(proof.verify(&tree.root(), lo, hi, &agg).is_ok());
        }

        #[test]
        fn prop_random_insert_order_same_root(mut entries in proptest::collection::vec((0u64..500, any::<u64>()), 1..80)) {
            let mut a = AggMbTree::new(4);
            for (ts, v) in &entries {
                a.insert(*ts, *v);
            }
            // The B+-tree is not order-independent in general, but the
            // *aggregate* must match the deduplicated entry set (last
            // write per ts wins).
            let mut last: std::collections::BTreeMap<u64, u64> = Default::default();
            for (ts, v) in entries.drain(..) {
                last.insert(ts, v);
            }
            let mut want = Aggregate::EMPTY;
            for v in last.values() {
                want.merge(&Aggregate::of(*v));
            }
            prop_assert_eq!(a.total(), want);
            prop_assert_eq!(a.len(), last.len());
        }
    }
}
