//! Hex-nibble Merkle Patricia trie.
//!
//! The upper level of DCert's two-level historical query index (Fig. 5 of
//! the paper): account addresses map to the root digests of per-account
//! Merkle B-trees. Mirrors Ethereum's trie shape — leaf, extension, and
//! 16-way branch nodes over the nibbles of the key — with DCert's canonical
//! hashing instead of RLP.
//!
//! Three capabilities are provided:
//!
//! - ordinary maintenance ([`Mpt::insert`], [`Mpt::get`]),
//! - authenticated lookups ([`Mpt::prove`] / [`MptProof::verify`]) proving
//!   membership *or absence* of a key,
//! - **stateless upserts** ([`MptProof::updated_root`]): given only a proof
//!   against the old root, compute the root after writing the key — this is
//!   what lets the SGX enclave certify index updates (Algorithm 4/5)
//!   without holding the index.
//!
//! # Example
//!
//! ```
//! use dcert_merkle::Mpt;
//! use dcert_primitives::hash::hash_bytes;
//!
//! let mut trie = Mpt::new();
//! trie.insert(b"alice", b"10".to_vec());
//! let root = trie.root();
//!
//! let proof = trie.prove(b"alice");
//! assert_eq!(proof.verify(&root, b"alice")?, Some(hash_bytes(b"10")));
//!
//! // A stateless verifier predicts the post-write root.
//! let new_root = proof.updated_root(&root, b"alice", &hash_bytes(b"99"))?;
//! trie.insert(b"alice", b"99".to_vec());
//! assert_eq!(trie.root(), new_root);
//! # Ok::<(), dcert_merkle::ProofError>(())
//! ```

use dcert_primitives::codec::{decode_seq, encode_seq, Decode, Encode, Reader};
use dcert_primitives::error::CodecError;
use dcert_primitives::hash::{hash_bytes, Hash};
use sha2_free_hasher::*;

use crate::domain;
use crate::ProofError;

/// Internal helpers for hashing trie nodes without allocating.
mod sha2_free_hasher {
    use super::*;

    /// Nibble-path length as a u16 for the hash preimage. Key material in
    /// this workspace is at most a few dozen bytes, so saturation is
    /// unreachable; saturating (rather than truncating) keeps distinct
    /// lengths from ever colliding in the preimage.
    fn path_len_u16(path: &[u8]) -> u16 {
        u16::try_from(path.len()).unwrap_or(u16::MAX)
    }

    pub fn leaf_node_hash(path: &[u8], value_hash: &Hash) -> Hash {
        let mut buf = Vec::with_capacity(3 + path.len() + 32);
        buf.push(domain::MPT_LEAF);
        buf.extend_from_slice(&path_len_u16(path).to_be_bytes());
        buf.extend_from_slice(path);
        buf.extend_from_slice(value_hash.as_bytes());
        hash_bytes(&buf)
    }

    pub fn ext_node_hash(path: &[u8], child: &Hash) -> Hash {
        let mut buf = Vec::with_capacity(3 + path.len() + 32);
        buf.push(domain::MPT_EXT);
        buf.extend_from_slice(&path_len_u16(path).to_be_bytes());
        buf.extend_from_slice(path);
        buf.extend_from_slice(child.as_bytes());
        hash_bytes(&buf)
    }

    pub fn branch_node_hash(children: &[Hash; 16], value_hash: &Option<Hash>) -> Hash {
        let mut buf = Vec::with_capacity(1 + 16 * 32 + 33);
        buf.push(domain::MPT_BRANCH);
        for child in children {
            buf.extend_from_slice(child.as_bytes());
        }
        match value_hash {
            None => buf.push(0),
            Some(vh) => {
                buf.push(1);
                buf.extend_from_slice(vh.as_bytes());
            }
        }
        hash_bytes(&buf)
    }
}

/// Converts key bytes to a nibble path (high nibble first).
pub fn to_nibbles(key: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(key.len() * 2);
    for &b in key {
        out.push(b >> 4);
        out.push(b & 0x0f);
    }
    out
}

fn lcp(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

#[derive(Debug, Clone)]
enum MptNode {
    Leaf {
        path: Vec<u8>,
        value: Vec<u8>,
        hash: Hash,
    },
    Ext {
        path: Vec<u8>,
        child: Box<MptNode>,
        hash: Hash,
    },
    Branch {
        children: [Option<Box<MptNode>>; 16],
        value: Option<Vec<u8>>,
        hash: Hash,
    },
}

impl MptNode {
    fn hash(&self) -> Hash {
        match self {
            MptNode::Leaf { hash, .. }
            | MptNode::Ext { hash, .. }
            | MptNode::Branch { hash, .. } => *hash,
        }
    }

    fn new_leaf(path: Vec<u8>, value: Vec<u8>) -> Box<MptNode> {
        let hash = leaf_node_hash(&path, &hash_bytes(&value));
        Box::new(MptNode::Leaf { path, value, hash })
    }

    fn new_ext(path: Vec<u8>, child: Box<MptNode>) -> Box<MptNode> {
        debug_assert!(!path.is_empty());
        let hash = ext_node_hash(&path, &child.hash());
        Box::new(MptNode::Ext { path, child, hash })
    }

    fn new_branch(children: [Option<Box<MptNode>>; 16], value: Option<Vec<u8>>) -> Box<MptNode> {
        let child_hashes = child_hash_array(&children);
        let vh = value.as_ref().map(hash_bytes);
        let hash = branch_node_hash(&child_hashes, &vh);
        Box::new(MptNode::Branch {
            children,
            value,
            hash,
        })
    }
}

fn child_hash_array(children: &[Option<Box<MptNode>>; 16]) -> [Hash; 16] {
    let mut out = [Hash::ZERO; 16];
    for (slot, child) in out.iter_mut().zip(children) {
        if let Some(c) = child {
            *slot = c.hash();
        }
    }
    out
}

/// A Merkle Patricia trie over byte-string keys.
///
/// Insert-only (the DCert indexes it backs are append-only); see the
/// [module documentation](self) for the full workflow.
#[derive(Debug, Clone, Default)]
pub struct Mpt {
    root: Option<Box<MptNode>>,
    len: usize,
}

impl Mpt {
    /// Creates an empty trie (root = [`Hash::ZERO`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the trie holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The current root commitment ([`Hash::ZERO`] when empty).
    pub fn root(&self) -> Hash {
        self.root.as_ref().map_or(Hash::ZERO, |n| n.hash())
    }

    /// Inserts or updates `key`, returning the previous value if present.
    pub fn insert(&mut self, key: &[u8], value: Vec<u8>) -> Option<Vec<u8>> {
        let nibbles = to_nibbles(key);
        let mut previous = None;
        let root = self.root.take();
        self.root = Some(Self::insert_node(root, &nibbles, value, &mut previous));
        if previous.is_none() {
            self.len += 1;
        }
        previous
    }

    /// Returns the value stored under `key`, if any.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        let nibbles = to_nibbles(key);
        let mut node = self.root.as_deref()?;
        let mut rest: &[u8] = &nibbles;
        loop {
            match node {
                MptNode::Leaf { path, value, .. } => {
                    return (path.as_slice() == rest).then_some(value.as_slice());
                }
                MptNode::Ext { path, child, .. } => {
                    rest = rest.strip_prefix(path.as_slice())?;
                    node = child;
                }
                MptNode::Branch {
                    children, value, ..
                } => {
                    let Some((&nib, tail)) = rest.split_first() else {
                        return value.as_deref();
                    };
                    node = children.get(usize::from(nib))?.as_deref()?;
                    rest = tail;
                }
            }
        }
    }

    fn insert_node(
        node: Option<Box<MptNode>>,
        path: &[u8],
        value: Vec<u8>,
        previous: &mut Option<Vec<u8>>,
    ) -> Box<MptNode> {
        let Some(node) = node else {
            return MptNode::new_leaf(path.to_vec(), value);
        };
        match *node {
            MptNode::Leaf {
                path: lpath,
                value: lvalue,
                ..
            } => {
                if lpath.as_slice() == path {
                    *previous = Some(lvalue);
                    return MptNode::new_leaf(lpath, value);
                }
                let common = lcp(&lpath, path);
                let mut children: [Option<Box<MptNode>>; 16] = Default::default();
                let mut branch_value = None;
                let lrest = lpath.get(common..).unwrap_or_default();
                match lrest.split_first() {
                    None => branch_value = Some(lvalue),
                    Some((&nib, tail)) => {
                        let leaf = MptNode::new_leaf(tail.to_vec(), lvalue);
                        if let Some(slot) = children.get_mut(usize::from(nib)) {
                            *slot = Some(leaf);
                        }
                    }
                }
                let prest = path.get(common..).unwrap_or_default();
                match prest.split_first() {
                    None => branch_value = Some(value),
                    Some((&nib, tail)) => {
                        let leaf = MptNode::new_leaf(tail.to_vec(), value);
                        if let Some(slot) = children.get_mut(usize::from(nib)) {
                            *slot = Some(leaf);
                        }
                    }
                }
                let branch = MptNode::new_branch(children, branch_value);
                if common > 0 {
                    MptNode::new_ext(path.get(..common).unwrap_or_default().to_vec(), branch)
                } else {
                    branch
                }
            }
            MptNode::Ext {
                path: epath, child, ..
            } => {
                let common = lcp(&epath, path);
                // `(nib, tail)` of the extension path past the shared
                // prefix; `None` means the whole extension matched.
                let split = epath
                    .get(common..)
                    .and_then(|s| s.split_first())
                    .map(|(nib, tail)| (*nib, tail.to_vec()));
                let Some((enib, etail)) = split else {
                    let rest = path.get(common..).unwrap_or_default();
                    let new_child = Self::insert_node(Some(child), rest, value, previous);
                    return MptNode::new_ext(epath, new_child);
                };
                // Split the extension at `common`.
                let mut children: [Option<Box<MptNode>>; 16] = Default::default();
                let mut branch_value = None;
                let moved = if etail.is_empty() {
                    child
                } else {
                    MptNode::new_ext(etail, child)
                };
                if let Some(slot) = children.get_mut(usize::from(enib)) {
                    *slot = Some(moved);
                }
                let prest = path.get(common..).unwrap_or_default();
                match prest.split_first() {
                    None => branch_value = Some(value),
                    Some((&nib, tail)) => {
                        let leaf = MptNode::new_leaf(tail.to_vec(), value);
                        if let Some(slot) = children.get_mut(usize::from(nib)) {
                            *slot = Some(leaf);
                        }
                    }
                }
                let branch = MptNode::new_branch(children, branch_value);
                if common > 0 {
                    MptNode::new_ext(path.get(..common).unwrap_or_default().to_vec(), branch)
                } else {
                    branch
                }
            }
            MptNode::Branch {
                mut children,
                value: bvalue,
                ..
            } => {
                let Some((&nib, tail)) = path.split_first() else {
                    *previous = bvalue;
                    return MptNode::new_branch(children, Some(value));
                };
                let slot = usize::from(nib);
                let child = children.get_mut(slot).and_then(Option::take);
                let new_child = Self::insert_node(child, tail, value, previous);
                if let Some(entry) = children.get_mut(slot) {
                    *entry = Some(new_child);
                }
                MptNode::new_branch(children, bvalue)
            }
        }
    }

    /// Produces a (non-)membership proof for `key` against the current root.
    pub fn prove(&self, key: &[u8]) -> MptProof {
        let nibbles = to_nibbles(key);
        let mut nodes = Vec::new();
        let mut node = match self.root.as_deref() {
            Some(n) => n,
            None => return MptProof { nodes },
        };
        let mut rest: &[u8] = &nibbles;
        loop {
            match node {
                MptNode::Leaf { path, value, .. } => {
                    nodes.push(ProofNode::Leaf {
                        path: path.clone(),
                        value_hash: hash_bytes(value),
                    });
                    return MptProof { nodes };
                }
                MptNode::Ext { path, child, .. } => {
                    nodes.push(ProofNode::Ext {
                        path: path.clone(),
                        child: child.hash(),
                    });
                    match rest.strip_prefix(path.as_slice()) {
                        Some(tail) => {
                            rest = tail;
                            node = child;
                        }
                        None => return MptProof { nodes },
                    }
                }
                MptNode::Branch {
                    children, value, ..
                } => {
                    nodes.push(ProofNode::Branch {
                        children: child_hash_array(children),
                        value_hash: value.as_ref().map(hash_bytes),
                    });
                    let Some((&nib, tail)) = rest.split_first() else {
                        return MptProof { nodes };
                    };
                    match children.get(usize::from(nib)).and_then(|c| c.as_deref()) {
                        Some(next) => {
                            node = next;
                            rest = tail;
                        }
                        None => return MptProof { nodes },
                    }
                }
            }
        }
    }
}

/// One node disclosed along a proof path.
// Branch nodes carry 16 hashes; leaf/ext are small. Proof vectors are
// short (trie depth), so the size skew is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
enum ProofNode {
    Leaf {
        path: Vec<u8>,
        value_hash: Hash,
    },
    Ext {
        path: Vec<u8>,
        child: Hash,
    },
    Branch {
        children: [Hash; 16],
        value_hash: Option<Hash>,
    },
}

impl ProofNode {
    fn hash(&self) -> Hash {
        match self {
            ProofNode::Leaf { path, value_hash } => leaf_node_hash(path, value_hash),
            ProofNode::Ext { path, child } => ext_node_hash(path, child),
            ProofNode::Branch {
                children,
                value_hash,
            } => branch_node_hash(children, value_hash),
        }
    }
}

/// The resolution of walking a proof path for a key.
#[derive(Debug)]
enum Resolution {
    /// Key present with this value hash. For `ValueAtLeaf`, the terminal
    /// node index; for the rest the walk data needed by updates.
    Found { value_hash: Hash },
    /// Key proven absent; `at` describes the divergence for updates.
    Absent,
}

/// A membership / non-membership proof for one key of an [`Mpt`].
///
/// Also supports computing the post-upsert root without the trie
/// ([`MptProof::updated_root`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MptProof {
    nodes: Vec<ProofNode>,
}

impl MptProof {
    /// Size of the serialized proof in bytes.
    pub fn size_bytes(&self) -> usize {
        self.encoded_len()
    }

    /// Verifies the proof for `key` against `root`.
    ///
    /// Returns the authenticated value hash, or `None` if the key is proven
    /// absent.
    ///
    /// # Errors
    ///
    /// Returns [`ProofError::RootMismatch`] or [`ProofError::Malformed`] if
    /// the proof does not authenticate against `root` for this key.
    pub fn verify(&self, root: &Hash, key: &[u8]) -> Result<Option<Hash>, ProofError> {
        let nibbles = to_nibbles(key);
        match self.walk(root, &nibbles)?.0 {
            Resolution::Found { value_hash } => Ok(Some(value_hash)),
            Resolution::Absent => Ok(None),
        }
    }

    /// Computes the root after upserting `key` with `new_value_hash`.
    ///
    /// The proof must verify against `root` for `key` (this is re-checked).
    /// Mirrors [`Mpt::insert`] exactly, so the returned root equals what the
    /// real trie would produce.
    ///
    /// # Errors
    ///
    /// Propagates verification errors.
    pub fn updated_root(
        &self,
        root: &Hash,
        key: &[u8],
        new_value_hash: &Hash,
    ) -> Result<Hash, ProofError> {
        let nibbles = to_nibbles(key);
        let (_, trail) = self.walk(root, &nibbles)?;

        // `consumed[i]` = nibbles consumed before reaching node i.
        // Rebuild from the terminal node upward.
        let Some((last_node, upper)) = self.nodes.split_last() else {
            // Empty trie: new root is a single leaf.
            return Ok(leaf_node_hash(&nibbles, new_value_hash));
        };

        let consumed_last = trail.consumed.last().copied().unwrap_or(0);
        let rest = nibbles.get(consumed_last..).unwrap_or_default();
        let mut acc = match last_node {
            ProofNode::Leaf { path, value_hash } => {
                if path.as_slice() == rest {
                    // Update in place.
                    leaf_node_hash(path, new_value_hash)
                } else {
                    // Split the leaf.
                    let common = lcp(path, rest);
                    let mut children = [Hash::ZERO; 16];
                    let mut bvalue = None;
                    let lrest = path.get(common..).unwrap_or_default();
                    match lrest.split_first() {
                        None => bvalue = Some(*value_hash),
                        Some((&nib, tail)) => {
                            if let Some(slot) = children.get_mut(usize::from(nib)) {
                                *slot = leaf_node_hash(tail, value_hash);
                            }
                        }
                    }
                    let prest = rest.get(common..).unwrap_or_default();
                    match prest.split_first() {
                        None => bvalue = Some(*new_value_hash),
                        Some((&nib, tail)) => {
                            if let Some(slot) = children.get_mut(usize::from(nib)) {
                                *slot = leaf_node_hash(tail, new_value_hash);
                            }
                        }
                    }
                    let branch = branch_node_hash(&children, &bvalue);
                    if common > 0 {
                        ext_node_hash(rest.get(..common).unwrap_or_default(), &branch)
                    } else {
                        branch
                    }
                }
            }
            ProofNode::Ext { path, child } => {
                // The walk stopped here, so the ext path diverges from rest.
                let common = lcp(path, rest);
                let Some((&enib, etail)) = path.get(common..).and_then(|s| s.split_first()) else {
                    return Err(ProofError::Malformed("extension does not diverge"));
                };
                let mut children = [Hash::ZERO; 16];
                let mut bvalue = None;
                if let Some(slot) = children.get_mut(usize::from(enib)) {
                    *slot = if etail.is_empty() {
                        *child
                    } else {
                        ext_node_hash(etail, child)
                    };
                }
                let prest = rest.get(common..).unwrap_or_default();
                match prest.split_first() {
                    None => bvalue = Some(*new_value_hash),
                    Some((&nib, tail)) => {
                        if let Some(slot) = children.get_mut(usize::from(nib)) {
                            *slot = leaf_node_hash(tail, new_value_hash);
                        }
                    }
                }
                let branch = branch_node_hash(&children, &bvalue);
                if common > 0 {
                    ext_node_hash(rest.get(..common).unwrap_or_default(), &branch)
                } else {
                    branch
                }
            }
            ProofNode::Branch {
                children,
                value_hash,
            } => {
                match rest.split_first() {
                    // Upsert the branch's own value.
                    None => branch_node_hash(children, &Some(*new_value_hash)),
                    // The walk stopped because the slot was empty.
                    Some((&nib, tail)) => {
                        let mut children = *children;
                        if let Some(slot) = children.get_mut(usize::from(nib)) {
                            debug_assert!(slot.is_zero());
                            *slot = leaf_node_hash(tail, new_value_hash);
                        }
                        branch_node_hash(&children, value_hash)
                    }
                }
            }
        };

        // Propagate upward.
        for (node, &consumed) in upper.iter().zip(&trail.consumed).rev() {
            acc = match node {
                ProofNode::Ext { path, .. } => ext_node_hash(path, &acc),
                ProofNode::Branch {
                    children,
                    value_hash,
                } => {
                    let Some(&nib) = nibbles.get(consumed) else {
                        return Err(ProofError::Malformed("branch consumed past key end"));
                    };
                    let mut children = *children;
                    if let Some(slot) = children.get_mut(usize::from(nib)) {
                        *slot = acc;
                    }
                    branch_node_hash(&children, value_hash)
                }
                ProofNode::Leaf { .. } => {
                    return Err(ProofError::Malformed("leaf with a child"));
                }
            };
        }
        Ok(acc)
    }

    /// Walks the proof for `key`, authenticating each node hash against the
    /// chain from `root`, and returns the resolution plus consumed-nibble
    /// counts per node.
    fn walk(&self, root: &Hash, nibbles: &[u8]) -> Result<(Resolution, Trail), ProofError> {
        let mut trail = Trail {
            consumed: Vec::with_capacity(self.nodes.len()),
        };
        if self.nodes.is_empty() {
            return if root.is_zero() {
                Ok((Resolution::Absent, trail))
            } else {
                Err(ProofError::Malformed("empty proof for non-empty trie"))
            };
        }
        let mut expected = *root;
        let mut consumed = 0usize;
        for (i, node) in self.nodes.iter().enumerate() {
            if node.hash() != expected {
                return Err(ProofError::RootMismatch);
            }
            trail.consumed.push(consumed);
            let rest = nibbles.get(consumed..).unwrap_or_default();
            let is_last = i == self.nodes.len() - 1;
            match node {
                ProofNode::Leaf { path, value_hash } => {
                    if !is_last {
                        return Err(ProofError::Malformed("leaf before end of proof"));
                    }
                    return if path.as_slice() == rest {
                        Ok((
                            Resolution::Found {
                                value_hash: *value_hash,
                            },
                            trail,
                        ))
                    } else {
                        Ok((Resolution::Absent, trail))
                    };
                }
                ProofNode::Ext { path, child } => {
                    if rest.strip_prefix(path.as_slice()).is_some() {
                        if is_last {
                            return Err(ProofError::Malformed("proof ends inside extension"));
                        }
                        consumed += path.len();
                        expected = *child;
                    } else {
                        // Divergence inside the extension path: absent.
                        return if is_last {
                            Ok((Resolution::Absent, trail))
                        } else {
                            Err(ProofError::Malformed("nodes after divergence"))
                        };
                    }
                }
                ProofNode::Branch {
                    children,
                    value_hash,
                } => {
                    let Some((&nib, _)) = rest.split_first() else {
                        if !is_last {
                            return Err(ProofError::Malformed("nodes after terminal branch"));
                        }
                        return Ok((
                            match value_hash {
                                Some(vh) => Resolution::Found { value_hash: *vh },
                                None => Resolution::Absent,
                            },
                            trail,
                        ));
                    };
                    let slot = children
                        .get(usize::from(nib))
                        .copied()
                        .unwrap_or(Hash::ZERO);
                    if slot.is_zero() {
                        return if is_last {
                            Ok((Resolution::Absent, trail))
                        } else {
                            Err(ProofError::Malformed("nodes after empty slot"))
                        };
                    }
                    if is_last {
                        return Err(ProofError::Malformed("proof ends inside branch"));
                    }
                    consumed += 1;
                    expected = slot;
                }
            }
        }
        // Every `is_last` arm above returns, so the loop cannot fall
        // through with a well-formed proof; treat it as malformed.
        Err(ProofError::Malformed("proof has no terminal node"))
    }
}

struct Trail {
    consumed: Vec<usize>,
}

// --- serialization -------------------------------------------------------

const TAG_LEAF: u8 = 0;
const TAG_EXT: u8 = 1;
const TAG_BRANCH: u8 = 2;

impl Encode for ProofNode {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ProofNode::Leaf { path, value_hash } => {
                out.push(TAG_LEAF);
                path.encode(out);
                value_hash.encode(out);
            }
            ProofNode::Ext { path, child } => {
                out.push(TAG_EXT);
                path.encode(out);
                child.encode(out);
            }
            ProofNode::Branch {
                children,
                value_hash,
            } => {
                out.push(TAG_BRANCH);
                for child in children {
                    child.encode(out);
                }
                value_hash.encode(out);
            }
        }
    }
}

impl Decode for ProofNode {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_byte()? {
            TAG_LEAF => Ok(ProofNode::Leaf {
                path: Vec::<u8>::decode(r)?,
                value_hash: Hash::decode(r)?,
            }),
            TAG_EXT => Ok(ProofNode::Ext {
                path: Vec::<u8>::decode(r)?,
                child: Hash::decode(r)?,
            }),
            TAG_BRANCH => {
                let mut children = [Hash::ZERO; 16];
                for child in &mut children {
                    *child = Hash::decode(r)?;
                }
                Ok(ProofNode::Branch {
                    children,
                    value_hash: Option::<Hash>::decode(r)?,
                })
            }
            other => Err(CodecError::InvalidTag(other)),
        }
    }
}

impl Encode for MptProof {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_seq(&self.nodes, out);
    }
}

impl Decode for MptProof {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(MptProof {
            nodes: decode_seq(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[test]
    fn empty_trie() {
        let trie = Mpt::new();
        assert_eq!(trie.root(), Hash::ZERO);
        assert_eq!(trie.get(b"missing"), None);
        let proof = trie.prove(b"missing");
        assert_eq!(proof.verify(&Hash::ZERO, b"missing").unwrap(), None);
    }

    #[test]
    fn insert_get_update() {
        let mut trie = Mpt::new();
        assert_eq!(trie.insert(b"alice", b"1".to_vec()), None);
        assert_eq!(trie.insert(b"bob", b"2".to_vec()), None);
        assert_eq!(trie.insert(b"alice", b"3".to_vec()), Some(b"1".to_vec()));
        assert_eq!(trie.get(b"alice"), Some(b"3".as_slice()));
        assert_eq!(trie.get(b"bob"), Some(b"2".as_slice()));
        assert_eq!(trie.get(b"carol"), None);
        assert_eq!(trie.len(), 2);
    }

    #[test]
    fn prefix_keys_coexist() {
        let mut trie = Mpt::new();
        trie.insert(b"ab", b"short".to_vec());
        trie.insert(b"abcd", b"long".to_vec());
        trie.insert(b"", b"empty".to_vec());
        assert_eq!(trie.get(b"ab"), Some(b"short".as_slice()));
        assert_eq!(trie.get(b"abcd"), Some(b"long".as_slice()));
        assert_eq!(trie.get(b""), Some(b"empty".as_slice()));
        assert_eq!(trie.get(b"abc"), None);
    }

    #[test]
    fn insertion_order_independent_root() {
        let keys: Vec<&[u8]> = vec![b"aaa", b"aab", b"abc", b"zzz", b"a", b""];
        let mut a = Mpt::new();
        for k in &keys {
            a.insert(k, k.to_vec());
        }
        let mut b = Mpt::new();
        for k in keys.iter().rev() {
            b.insert(k, k.to_vec());
        }
        assert_eq!(a.root(), b.root());
    }

    #[test]
    fn membership_proofs_verify() {
        let mut trie = Mpt::new();
        for i in 0..50u32 {
            trie.insert(
                format!("key-{i}").as_bytes(),
                format!("val-{i}").into_bytes(),
            );
        }
        let root = trie.root();
        for i in 0..50u32 {
            let key = format!("key-{i}");
            let proof = trie.prove(key.as_bytes());
            assert_eq!(
                proof.verify(&root, key.as_bytes()).unwrap(),
                Some(hash_bytes(format!("val-{i}").as_bytes())),
                "key {i}"
            );
        }
    }

    #[test]
    fn absence_proofs_verify() {
        let mut trie = Mpt::new();
        for i in 0..20u32 {
            trie.insert(format!("key-{i}").as_bytes(), vec![1]);
        }
        let root = trie.root();
        for probe in ["key-99", "other", "", "key-1x"] {
            let proof = trie.prove(probe.as_bytes());
            assert_eq!(
                proof.verify(&root, probe.as_bytes()).unwrap(),
                None,
                "{probe}"
            );
        }
    }

    #[test]
    fn proof_rejects_wrong_root() {
        let mut trie = Mpt::new();
        trie.insert(b"a", b"1".to_vec());
        let proof = trie.prove(b"a");
        assert!(proof.verify(&Hash::ZERO, b"a").is_err());
    }

    #[test]
    fn proof_for_one_key_fails_for_another() {
        let mut trie = Mpt::new();
        trie.insert(b"alice", b"1".to_vec());
        trie.insert(b"bob", b"2".to_vec());
        let root = trie.root();
        let proof = trie.prove(b"alice");
        // Verifying a different key with this proof either errors or proves
        // nothing about bob's value.
        if let Ok(Some(vh)) = proof.verify(&root, b"bob") {
            assert_ne!(vh, hash_bytes(b"2"))
        }
    }

    #[test]
    fn stateless_update_existing_key() {
        let mut trie = Mpt::new();
        for i in 0..30u32 {
            trie.insert(format!("key-{i}").as_bytes(), vec![i as u8]);
        }
        let root = trie.root();
        let proof = trie.prove(b"key-7");
        let predicted = proof
            .updated_root(&root, b"key-7", &hash_bytes(b"new"))
            .unwrap();
        trie.insert(b"key-7", b"new".to_vec());
        assert_eq!(predicted, trie.root());
    }

    #[test]
    fn stateless_insert_fresh_key() {
        let mut trie = Mpt::new();
        for i in 0..30u32 {
            trie.insert(format!("key-{i}").as_bytes(), vec![i as u8]);
        }
        let root = trie.root();
        let proof = trie.prove(b"brand-new-key");
        let predicted = proof
            .updated_root(&root, b"brand-new-key", &hash_bytes(b"v"))
            .unwrap();
        trie.insert(b"brand-new-key", b"v".to_vec());
        assert_eq!(predicted, trie.root());
    }

    #[test]
    fn stateless_insert_into_empty_trie() {
        let trie = Mpt::new();
        let proof = trie.prove(b"first");
        let predicted = proof
            .updated_root(&Hash::ZERO, b"first", &hash_bytes(b"v"))
            .unwrap();
        let mut real = Mpt::new();
        real.insert(b"first", b"v".to_vec());
        assert_eq!(predicted, real.root());
    }

    #[test]
    fn proof_codec_round_trip() {
        let mut trie = Mpt::new();
        for i in 0..10u32 {
            trie.insert(format!("key-{i}").as_bytes(), vec![i as u8]);
        }
        let proof = trie.prove(b"key-3");
        let decoded = MptProof::decode_all(&proof.to_encoded_bytes()).unwrap();
        assert_eq!(decoded, proof);
    }

    fn arb_key() -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(0u8..8, 0..5)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The trie agrees with a BTreeMap model and roots are
        /// insertion-order independent.
        #[test]
        fn prop_model_agreement(entries in proptest::collection::vec((arb_key(), any::<u8>()), 0..40)) {
            let mut trie = Mpt::new();
            let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
            for (k, v) in &entries {
                trie.insert(k, vec![*v]);
                model.insert(k.clone(), vec![*v]);
            }
            prop_assert_eq!(trie.len(), model.len());
            for (k, v) in &model {
                prop_assert_eq!(trie.get(k), Some(v.as_slice()));
            }
            // Rebuild in sorted order: same root.
            let mut sorted = Mpt::new();
            for (k, v) in &model {
                sorted.insert(k, v.clone());
            }
            prop_assert_eq!(trie.root(), sorted.root());
        }

        /// Every key (present or absent) yields a verifying proof, and
        /// stateless upserts agree with real inserts.
        #[test]
        fn prop_proofs_and_stateless_updates(
            entries in proptest::collection::vec((arb_key(), any::<u8>()), 0..30),
            probe in arb_key(),
            new_val in any::<u8>(),
        ) {
            let mut trie = Mpt::new();
            for (k, v) in &entries {
                trie.insert(k, vec![*v]);
            }
            let root = trie.root();
            let proof = trie.prove(&probe);
            let res = proof.verify(&root, &probe).unwrap();
            prop_assert_eq!(res, trie.get(&probe).map(hash_bytes));

            let predicted = proof
                .updated_root(&root, &probe, &hash_bytes([new_val]))
                .unwrap();
            trie.insert(&probe, vec![new_val]);
            prop_assert_eq!(predicted, trie.root());
        }
    }
}
