//! Stack-machine (op-stream) proof encoding, after the Merk/GroveDB
//! design, generalized to DCert's n-ary authenticated trees.
//!
//! The per-path encodings in [`mbtree`](crate::mbtree) /
//! [`aggmb`](crate::aggmb) / [`mht`](crate::mht) serialize one pruned
//! tree per query, so a window touching k adjacent keys pays k·log n
//! hashes. An **op stream** instead serializes a single partial tree as
//! a post-order program for a tiny stack machine:
//!
//! - [`ProofOp::Push`] — push a node (an opened leaf, a pruned subtree
//!   hash, or an internal-node shell) onto the stack;
//! - [`ProofOp::PushInverted`] — like `Push`, but the shell collects its
//!   children right-to-left (they are reversed when the node closes);
//! - [`ProofOp::Parent`] — pop a shell, pop the node below it, attach the
//!   node as the shell's first child, push the shell back;
//! - [`ProofOp::Child`] — pop a node, attach it as the next child of the
//!   shell now on top.
//!
//! The verifier executes the program with a bounded stack
//! ([`MAX_OP_STACK`]) and a bounded reconstruction depth
//! ([`MAX_PROOF_DEPTH`]), re-derives the root hash of the reconstructed
//! partial tree, and then runs exactly the same completeness walk as the
//! per-path verifiers — so one compact stream covers an arbitrary key
//! set or contiguous range, and rejection behavior is identical to the
//! legacy encoding by construction.
//!
//! Every malformed program — stack underflow, overflow, arity mismatch,
//! a family mix (MB-tree ops inside an aggregate proof), trailing
//! operands — returns a typed [`ProofError`]; the executor never panics
//! on attacker-controlled input.

use dcert_primitives::codec::{decode_seq, encode_seq, Decode, Encode, Reader};
use dcert_primitives::error::CodecError;
use dcert_primitives::hash::Hash;

use crate::aggmb::{self, AggProof, Aggregate};
use crate::mbtree::{self, MbRangeProof};
use crate::ProofError;

/// Maximum operand-stack height while executing an op stream.
///
/// A left-to-right post-order encoding of a tree needs at most
/// `depth + 1` slots; DCert's B-trees (order ≥ 3 over u64 keys) and
/// Merkle hash trees never exceed ~64 levels, so an honest proof stays
/// far below this. Deeper programs are rejected, not executed.
pub const MAX_OP_STACK: usize = 64;

/// Maximum depth of the reconstructed partial tree.
///
/// The stack bound alone does not bound reconstruction depth (a
/// `Push`/`Parent` loop deepens the tree with a two-high stack), and the
/// completeness walk over the reconstructed tree is recursive — so the
/// executor tracks subtree depth at every attach and rejects programs
/// that nest deeper than any honest tree can.
pub const MAX_PROOF_DEPTH: usize = 64;

/// One node pushed by a [`ProofOp`]. The variant family must be
/// homogeneous within a proof and match the structure being verified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpNode {
    /// An unopened MB-tree subtree: hash only.
    Pruned(Hash),
    /// An opened MB-tree leaf: `(timestamp, value_hash)` entries.
    Leaf(Vec<(u64, Hash)>),
    /// An MB-tree internal-node shell: separators; children are attached
    /// by subsequent `Parent`/`Child` ops.
    Internal(Vec<u64>),
    /// An unopened aggregate subtree: hash + certified annotation.
    AggPruned(Hash, Aggregate),
    /// An opened aggregate leaf: `(timestamp, value)` entries.
    AggLeaf(Vec<(u64, u64)>),
    /// An aggregate internal-node shell.
    AggInternal(Vec<u64>),
    /// An unopened static-Merkle-tree subtree hash.
    MhtPruned(Hash),
    /// An opened static-Merkle-tree leaf (leaf-level hash).
    MhtLeaf(Hash),
    /// A binary static-Merkle-tree node shell (exactly two children;
    /// odd promoted nodes are collapsed into their child).
    MhtNode,
}

impl OpNode {
    /// Whether this node kind accepts children.
    fn is_shell(&self) -> bool {
        matches!(
            self,
            OpNode::Internal(_) | OpNode::AggInternal(_) | OpNode::MhtNode
        )
    }
}

/// One instruction of the proof program. See the
/// [module documentation](self) for the machine's semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofOp {
    /// Push a node; a shell collects children left-to-right.
    Push(OpNode),
    /// Push a shell that collects children right-to-left.
    PushInverted(OpNode),
    /// Pop the shell on top, then the node below it; attach the node as
    /// the shell's first child and push the shell back.
    Parent,
    /// Pop the node on top; attach it as the next child of the shell now
    /// on top.
    Child,
}

/// A node of the reconstructed partial tree.
#[derive(Debug, Clone)]
pub(crate) struct Partial {
    pub(crate) node: OpNode,
    pub(crate) children: Vec<Partial>,
    /// Children were collected right-to-left; reversed at close.
    inverted: bool,
    /// Height of this subtree (leaf = 1); bounded by [`MAX_PROOF_DEPTH`].
    depth: usize,
}

/// Closes a node: checks arity against its shell kind and restores
/// left-to-right child order for inverted shells.
fn close(mut p: Partial) -> Result<Partial, ProofError> {
    match &p.node {
        OpNode::Internal(seps) | OpNode::AggInternal(seps) => {
            if p.children.len() != seps.len() + 1 {
                return Err(ProofError::Malformed("op-stream arity mismatch"));
            }
        }
        OpNode::MhtNode => {
            if p.children.len() != 2 {
                return Err(ProofError::Malformed("mht op node needs two children"));
            }
        }
        _ => {
            // Attach already rejects non-shell parents, so a closed
            // leaf/pruned node can never hold children.
            if !p.children.is_empty() {
                return Err(ProofError::Malformed("non-shell node has children"));
            }
        }
    }
    if p.inverted {
        p.children.reverse();
        p.inverted = false;
    }
    Ok(p)
}

/// Attaches `child` (closing it) as the next child of `parent`.
fn attach(mut parent: Partial, child: Partial) -> Result<Partial, ProofError> {
    if !parent.node.is_shell() {
        return Err(ProofError::Malformed("attach to non-shell node"));
    }
    let child = close(child)?;
    let lifted = child.depth.saturating_add(1);
    if lifted > MAX_PROOF_DEPTH {
        return Err(ProofError::Malformed("op-stream proof too deep"));
    }
    parent.depth = parent.depth.max(lifted);
    parent.children.push(child);
    Ok(parent)
}

/// Executes an op program and returns the closed root of the partial
/// tree. All failure modes are typed [`ProofError`]s.
pub(crate) fn execute(ops: &[ProofOp]) -> Result<Partial, ProofError> {
    let mut stack: Vec<Partial> = Vec::new();
    for op in ops {
        match op {
            ProofOp::Push(node) | ProofOp::PushInverted(node) => {
                if stack.len() >= MAX_OP_STACK {
                    return Err(ProofError::Malformed("op stack overflow"));
                }
                let inverted = matches!(op, ProofOp::PushInverted(_));
                if inverted && !node.is_shell() {
                    return Err(ProofError::Malformed("inverted push of non-shell node"));
                }
                stack.push(Partial {
                    node: node.clone(),
                    children: Vec::new(),
                    inverted,
                    depth: 1,
                });
            }
            ProofOp::Parent => {
                let parent = stack
                    .pop()
                    .ok_or(ProofError::Malformed("op stack underflow"))?;
                let child = stack
                    .pop()
                    .ok_or(ProofError::Malformed("op stack underflow"))?;
                stack.push(attach(parent, child)?);
            }
            ProofOp::Child => {
                let child = stack
                    .pop()
                    .ok_or(ProofError::Malformed("op stack underflow"))?;
                let parent = stack
                    .pop()
                    .ok_or(ProofError::Malformed("op stack underflow"))?;
                stack.push(attach(parent, child)?);
            }
        }
    }
    let root = stack
        .pop()
        .ok_or(ProofError::Malformed("empty op stream"))?;
    if !stack.is_empty() {
        return Err(ProofError::Malformed("trailing operands on op stack"));
    }
    close(root)
}

/// Converts a reconstructed partial tree into the MB-tree verifier's
/// node form. Depth is bounded by [`MAX_PROOF_DEPTH`], so the recursion
/// cannot exhaust the call stack.
fn to_mb_node(p: &Partial) -> Result<mbtree::ProofNode, ProofError> {
    match &p.node {
        OpNode::Leaf(entries) => Ok(mbtree::ProofNode::Leaf {
            entries: entries.clone(),
        }),
        OpNode::Internal(separators) => {
            let mut children = Vec::with_capacity(p.children.len());
            for child in &p.children {
                children.push(match &child.node {
                    OpNode::Pruned(h) => mbtree::ProofChild::Pruned(*h),
                    _ => mbtree::ProofChild::Open(Box::new(to_mb_node(child)?)),
                });
            }
            Ok(mbtree::ProofNode::Internal {
                separators: separators.clone(),
                children,
            })
        }
        OpNode::Pruned(_) => Err(ProofError::Malformed("op proof root is pruned")),
        _ => Err(ProofError::Malformed("op node family mismatch")),
    }
}

/// Converts a reconstructed partial tree into the aggregate verifier's
/// node form.
fn to_agg_node(p: &Partial) -> Result<aggmb::ProofNode, ProofError> {
    match &p.node {
        OpNode::AggLeaf(entries) => Ok(aggmb::ProofNode::Leaf {
            entries: entries.clone(),
        }),
        OpNode::AggInternal(separators) => {
            let mut children = Vec::with_capacity(p.children.len());
            for child in &p.children {
                children.push(match &child.node {
                    OpNode::AggPruned(h, a) => aggmb::ProofChild::Pruned(*h, *a),
                    _ => aggmb::ProofChild::Open(Box::new(to_agg_node(child)?)),
                });
            }
            Ok(aggmb::ProofNode::Internal {
                separators: separators.clone(),
                children,
            })
        }
        OpNode::AggPruned(..) => Err(ProofError::Malformed("op proof root is pruned")),
        _ => Err(ProofError::Malformed("op node family mismatch")),
    }
}

/// Collects the tightest opened keys bracketing `ts` (strict
/// predecessor/successor) from the partial tree's opened leaves.
fn collect_bracket(p: &Partial, ts: u64, pred: &mut Option<u64>, succ: &mut Option<u64>) {
    if let OpNode::Leaf(entries) = &p.node {
        for (key, _) in entries {
            if *key < ts && pred.map_or(true, |b| *key > b) {
                *pred = Some(*key);
            }
            if *key > ts && succ.map_or(true, |b| *key < b) {
                *succ = Some(*key);
            }
        }
    }
    for child in &p.children {
        collect_bracket(child, ts, pred, succ);
    }
}

/// A single op-stream proof for an MB-tree query over an arbitrary key
/// set or contiguous range — the op-encoding counterpart of
/// [`MbRangeProof`].
///
/// An empty stream is the proof for the empty tree (root
/// [`Hash::ZERO`]), mirroring the per-path encoding's `None` root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MbOpProof {
    ops: Vec<ProofOp>,
}

impl MbOpProof {
    pub(crate) fn from_ops(ops: Vec<ProofOp>) -> Self {
        MbOpProof { ops }
    }

    /// The proof program.
    pub fn ops(&self) -> &[ProofOp] {
        &self.ops
    }

    /// Serialized size in bytes (exactly the encoded length).
    pub fn size_bytes(&self) -> usize {
        self.encoded_len()
    }

    /// Executes the program and lifts the result into the per-path
    /// verifier's proof form, so verification semantics are shared.
    fn to_range_proof(&self) -> Result<MbRangeProof, ProofError> {
        if self.ops.is_empty() {
            return Ok(MbRangeProof { root: None });
        }
        let partial = execute(&self.ops)?;
        Ok(MbRangeProof {
            root: Some(to_mb_node(&partial)?),
        })
    }

    /// Verifies that `results` is exactly the set of entries with
    /// timestamps in `[lo, hi]`, against the trusted `root`.
    ///
    /// # Errors
    ///
    /// Same contract as [`MbRangeProof::verify`], plus
    /// [`ProofError::Malformed`] for invalid op programs.
    pub fn verify(
        &self,
        root: &Hash,
        lo: u64,
        hi: u64,
        results: &[(u64, Vec<u8>)],
    ) -> Result<(), ProofError> {
        self.to_range_proof()?.verify(root, lo, hi, results)
    }

    /// Verifies that no entry exists at timestamp `ts` and returns the
    /// proven bracket: the two adjacent proven keys strictly below and
    /// above `ts` (a side is `None` exactly when the tree is proven to
    /// hold nothing on that side).
    ///
    /// Non-membership is the empty-result range proof over `[ts, ts]`:
    /// completeness of the range walk guarantees nothing in the window
    /// was omitted. The bracket keys are read from the opened boundary
    /// leaves, and *adjacency* is then proven by re-running the same
    /// partial tree as an empty-range proof over the open intervals
    /// `(pred, ts]` and `[ts, succ)` — so a prover cannot exhibit a
    /// distant key pair as the bracket.
    ///
    /// # Errors
    ///
    /// Any [`ProofError`] from [`MbOpProof::verify`]; in particular a
    /// proof whose opened boundary leaves actually contain `ts` fails
    /// with [`ProofError::Incomplete`], as does a bracket with unproven
    /// gaps on either side.
    pub fn verify_non_membership(
        &self,
        root: &Hash,
        ts: u64,
    ) -> Result<(Option<u64>, Option<u64>), ProofError> {
        let proof = self.to_range_proof()?;
        proof.verify(root, ts, ts, &[])?;
        let mut pred = None;
        let mut succ = None;
        if !self.ops.is_empty() {
            // A second execution; programs are tiny and already
            // validated by `to_range_proof` above.
            let partial = execute(&self.ops)?;
            collect_bracket(&partial, ts, &mut pred, &mut succ);
        }
        // Adjacency: `(pred, ts]` and `[ts, succ)` are empty windows of
        // the same proven tree (with a `None` side widening to the
        // domain end). `pred < ts < succ`, so neither bound arithmetic
        // can wrap.
        let below_lo = pred.map_or(0, |p| p.saturating_add(1));
        proof.verify(root, below_lo, ts, &[])?;
        let above_hi = succ.map_or(u64::MAX, |s| s.saturating_sub(1));
        proof.verify(root, ts, above_hi, &[])?;
        Ok((pred, succ))
    }
}

/// A single op-stream proof for a window aggregate — the op-encoding
/// counterpart of [`AggProof`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggOpProof {
    ops: Vec<ProofOp>,
}

impl AggOpProof {
    pub(crate) fn from_ops(ops: Vec<ProofOp>) -> Self {
        AggOpProof { ops }
    }

    /// The proof program.
    pub fn ops(&self) -> &[ProofOp] {
        &self.ops
    }

    /// Serialized size in bytes (exactly the encoded length).
    pub fn size_bytes(&self) -> usize {
        self.encoded_len()
    }

    fn to_agg_proof(&self) -> Result<AggProof, ProofError> {
        if self.ops.is_empty() {
            return Ok(AggProof { root: None });
        }
        let partial = execute(&self.ops)?;
        Ok(AggProof {
            root: Some(to_agg_node(&partial)?),
        })
    }

    /// Verifies that `claimed` is exactly the aggregate of entries in
    /// `[lo, hi]`, against the trusted `root`.
    ///
    /// # Errors
    ///
    /// Same contract as [`AggProof::verify`], plus
    /// [`ProofError::Malformed`] for invalid op programs.
    pub fn verify(
        &self,
        root: &Hash,
        lo: u64,
        hi: u64,
        claimed: &Aggregate,
    ) -> Result<(), ProofError> {
        self.to_agg_proof()?.verify(root, lo, hi, claimed)
    }
}

// --- serialization ---------------------------------------------------------

impl Encode for OpNode {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            OpNode::Pruned(h) => {
                out.push(0);
                h.encode(out);
            }
            OpNode::Leaf(entries) => {
                out.push(1);
                encode_seq(entries, out);
            }
            OpNode::Internal(separators) => {
                out.push(2);
                encode_seq(separators, out);
            }
            OpNode::AggPruned(h, agg) => {
                out.push(3);
                h.encode(out);
                agg.encode(out);
            }
            OpNode::AggLeaf(entries) => {
                out.push(4);
                encode_seq(entries, out);
            }
            OpNode::AggInternal(separators) => {
                out.push(5);
                encode_seq(separators, out);
            }
            OpNode::MhtPruned(h) => {
                out.push(6);
                h.encode(out);
            }
            OpNode::MhtLeaf(h) => {
                out.push(7);
                h.encode(out);
            }
            OpNode::MhtNode => out.push(8),
        }
    }
}

impl Decode for OpNode {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_byte()? {
            0 => Ok(OpNode::Pruned(Hash::decode(r)?)),
            1 => Ok(OpNode::Leaf(decode_seq(r)?)),
            2 => Ok(OpNode::Internal(decode_seq(r)?)),
            3 => Ok(OpNode::AggPruned(Hash::decode(r)?, Aggregate::decode(r)?)),
            4 => Ok(OpNode::AggLeaf(decode_seq(r)?)),
            5 => Ok(OpNode::AggInternal(decode_seq(r)?)),
            6 => Ok(OpNode::MhtPruned(Hash::decode(r)?)),
            7 => Ok(OpNode::MhtLeaf(Hash::decode(r)?)),
            8 => Ok(OpNode::MhtNode),
            other => Err(CodecError::InvalidTag(other)),
        }
    }
}

impl Encode for ProofOp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ProofOp::Push(node) => {
                out.push(0);
                node.encode(out);
            }
            ProofOp::PushInverted(node) => {
                out.push(1);
                node.encode(out);
            }
            ProofOp::Parent => out.push(2),
            ProofOp::Child => out.push(3),
        }
    }
}

impl Decode for ProofOp {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_byte()? {
            0 => Ok(ProofOp::Push(OpNode::decode(r)?)),
            1 => Ok(ProofOp::PushInverted(OpNode::decode(r)?)),
            2 => Ok(ProofOp::Parent),
            3 => Ok(ProofOp::Child),
            other => Err(CodecError::InvalidTag(other)),
        }
    }
}

impl Encode for MbOpProof {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_seq(&self.ops, out);
    }
}

impl Decode for MbOpProof {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(MbOpProof {
            ops: decode_seq(r)?,
        })
    }
}

impl Encode for AggOpProof {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_seq(&self.ops, out);
    }
}

impl Decode for AggOpProof {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(AggOpProof {
            ops: decode_seq(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcert_primitives::hash::hash_bytes;

    fn leaf(keys: &[u64]) -> OpNode {
        OpNode::Leaf(
            keys.iter()
                .map(|k| (*k, hash_bytes(&k.to_be_bytes())))
                .collect(),
        )
    }

    #[test]
    fn underflow_is_typed() {
        for program in [
            vec![ProofOp::Parent],
            vec![ProofOp::Child],
            vec![ProofOp::Push(leaf(&[1])), ProofOp::Parent],
        ] {
            assert!(matches!(
                execute(&program),
                Err(ProofError::Malformed("op stack underflow"))
            ));
        }
    }

    #[test]
    fn overflow_is_typed() {
        let program: Vec<ProofOp> = (0..=MAX_OP_STACK as u64)
            .map(|k| ProofOp::Push(leaf(&[k])))
            .collect();
        assert!(matches!(
            execute(&program),
            Err(ProofError::Malformed("op stack overflow"))
        ));
    }

    #[test]
    fn trailing_operands_rejected() {
        let program = vec![ProofOp::Push(leaf(&[1])), ProofOp::Push(leaf(&[2]))];
        assert!(matches!(
            execute(&program),
            Err(ProofError::Malformed("trailing operands on op stack"))
        ));
    }

    #[test]
    fn over_deep_program_rejected() {
        // Push/Parent loop: two ops per level, stack never above two,
        // tree depth grows unbounded without the depth check.
        let mut program = vec![ProofOp::Push(leaf(&[1]))];
        for _ in 0..MAX_PROOF_DEPTH + 1 {
            program.push(ProofOp::Push(OpNode::Internal(Vec::new())));
            program.push(ProofOp::Parent);
        }
        assert!(matches!(
            execute(&program),
            Err(ProofError::Malformed("op-stream proof too deep"))
        ));
    }

    #[test]
    fn arity_mismatch_rejected() {
        // Shell with one separator needs two children, gets one.
        let program = vec![
            ProofOp::Push(leaf(&[1])),
            ProofOp::Push(OpNode::Internal(vec![5])),
            ProofOp::Parent,
        ];
        assert!(matches!(
            execute(&program),
            Err(ProofError::Malformed("op-stream arity mismatch"))
        ));
    }

    #[test]
    fn attach_to_leaf_rejected() {
        let program = vec![
            ProofOp::Push(leaf(&[1])),
            ProofOp::Push(leaf(&[2])),
            ProofOp::Parent,
        ];
        assert!(matches!(
            execute(&program),
            Err(ProofError::Malformed("attach to non-shell node"))
        ));
    }

    #[test]
    fn inverted_push_of_leaf_rejected() {
        let program = vec![ProofOp::PushInverted(leaf(&[1]))];
        assert!(matches!(
            execute(&program),
            Err(ProofError::Malformed("inverted push of non-shell node"))
        ));
    }

    #[test]
    fn family_mix_rejected() {
        // An aggregate leaf under an MB-tree shell executes fine but
        // fails the family check when lifted for MB verification.
        let program = vec![
            ProofOp::Push(OpNode::AggLeaf(vec![(1, 10)])),
            ProofOp::Push(OpNode::Internal(Vec::new())),
            ProofOp::Parent,
        ];
        let partial = execute(&program).expect("structurally valid");
        assert!(matches!(
            to_mb_node(&partial),
            Err(ProofError::Malformed("op node family mismatch"))
        ));
    }

    #[test]
    fn inverted_stream_verifies_like_plain() {
        let mut tree = crate::MbTree::new(4);
        for ts in 0..8u64 {
            tree.insert(ts, vec![ts as u8]);
        }
        let (results, _) = tree.range(0, 7);
        let plain = tree.prove_ops(&[(0, 7)]);
        plain.verify(&tree.root(), 0, 7, &results).expect("plain");

        // Re-encode the same partial tree right-to-left by hand: the
        // root shell is pushed inverted after its *last* child.
        let partial = execute(plain.ops()).expect("valid program");
        let mut ops = Vec::new();
        fn emit_inverted(p: &Partial, ops: &mut Vec<ProofOp>) {
            if p.children.is_empty() {
                ops.push(ProofOp::Push(p.node.clone()));
                return;
            }
            for (i, child) in p.children.iter().rev().enumerate() {
                emit_inverted(child, ops);
                if i == 0 {
                    ops.push(ProofOp::PushInverted(p.node.clone()));
                    ops.push(ProofOp::Parent);
                } else {
                    ops.push(ProofOp::Child);
                }
            }
        }
        emit_inverted(&partial, &mut ops);
        let inverted = MbOpProof::from_ops(ops);
        assert_ne!(inverted.ops(), plain.ops(), "distinct programs");
        inverted
            .verify(&tree.root(), 0, 7, &results)
            .expect("inverted program reconstructs the same tree");
    }

    #[test]
    fn op_roundtrip_codec() {
        let ops = vec![
            ProofOp::Push(leaf(&[3, 9])),
            ProofOp::PushInverted(OpNode::Internal(vec![7])),
            ProofOp::Parent,
            ProofOp::Push(OpNode::AggPruned(hash_bytes(b"x"), Aggregate::of(4))),
            ProofOp::Child,
            ProofOp::Push(OpNode::MhtNode),
            ProofOp::Push(OpNode::MhtLeaf(hash_bytes(b"l"))),
            ProofOp::Push(OpNode::MhtPruned(hash_bytes(b"p"))),
        ];
        let proof = MbOpProof::from_ops(ops.clone());
        let bytes = proof.to_encoded_bytes();
        assert_eq!(bytes.len(), proof.size_bytes(), "size accounting is exact");
        let back = MbOpProof::decode_all(&bytes).expect("roundtrip");
        assert_eq!(back.ops(), &ops[..]);
    }
}
