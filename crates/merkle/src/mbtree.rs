//! Merkle B-tree (authenticated B+-tree, after Li et al. SIGMOD'06).
//!
//! The lower level of DCert's two-level historical query index (Fig. 5 of
//! the paper): for each account, a Merkle B-tree keyed by *timestamp*
//! (block height) stores the account's versioned states. It answers
//! **authenticated range queries** — "all versions in the window
//! `[t1, t2]`" — with proofs that guarantee both correctness and
//! *completeness* (no in-range version can be omitted), and supports
//! **stateless rightmost appends** so the SGX enclave can certify index
//! updates (new versions always carry the highest timestamp) from a proof
//! alone.
//!
//! # Example
//!
//! ```
//! use dcert_merkle::MbTree;
//!
//! let mut tree = MbTree::new(4);
//! for ts in 0..20u64 {
//!     tree.insert(ts, format!("v{ts}").into_bytes());
//! }
//! let (results, proof) = tree.range(5, 8);
//! assert_eq!(results.len(), 4);
//! proof.verify(&tree.root(), 5, 8, &results)?;
//! # Ok::<(), dcert_merkle::ProofError>(())
//! ```

use dcert_primitives::codec::{decode_seq, encode_seq, Decode, Encode, Reader};
use dcert_primitives::error::CodecError;
use dcert_primitives::hash::{hash_bytes, Hash};

use crate::domain;
use crate::ops::{MbOpProof, OpNode, ProofOp};
use crate::ProofError;

/// Node arity as a u32 for the hash preimage. Arities are bounded by the
/// tree order (decoded proofs are bounded by the codec's 64 MiB cap), so
/// saturation is unreachable; saturating keeps distinct lengths from
/// colliding in the preimage.
fn len_u32(len: usize) -> u32 {
    u32::try_from(len).unwrap_or(u32::MAX)
}

fn leaf_hash(entries: &[(u64, Hash)]) -> Hash {
    let mut buf = Vec::with_capacity(1 + 4 + entries.len() * 40);
    buf.push(domain::MBT_LEAF);
    buf.extend_from_slice(&len_u32(entries.len()).to_be_bytes());
    for (ts, vh) in entries {
        buf.extend_from_slice(&ts.to_be_bytes());
        buf.extend_from_slice(vh.as_bytes());
    }
    hash_bytes(&buf)
}

fn node_hash(separators: &[u64], children: &[Hash]) -> Hash {
    let mut buf = Vec::with_capacity(1 + 4 + separators.len() * 8 + children.len() * 32);
    buf.push(domain::MBT_NODE);
    buf.extend_from_slice(&len_u32(separators.len()).to_be_bytes());
    for sep in separators {
        buf.extend_from_slice(&sep.to_be_bytes());
    }
    for child in children {
        buf.extend_from_slice(child.as_bytes());
    }
    hash_bytes(&buf)
}

#[derive(Debug, Clone)]
enum MbNode {
    Leaf {
        entries: Vec<(u64, Vec<u8>)>,
        hash: Hash,
    },
    Internal {
        /// `children[i]` holds keys `< separators[i]`;
        /// `children[i+1]` holds keys `>= separators[i]`.
        separators: Vec<u64>,
        children: Vec<MbNode>,
        hash: Hash,
    },
}

impl MbNode {
    fn hash(&self) -> Hash {
        match self {
            MbNode::Leaf { hash, .. } | MbNode::Internal { hash, .. } => *hash,
        }
    }

    fn new_leaf(entries: Vec<(u64, Vec<u8>)>) -> MbNode {
        let hashed: Vec<(u64, Hash)> = entries.iter().map(|(ts, v)| (*ts, hash_bytes(v))).collect();
        let hash = leaf_hash(&hashed);
        MbNode::Leaf { entries, hash }
    }

    fn new_internal(separators: Vec<u64>, children: Vec<MbNode>) -> MbNode {
        debug_assert_eq!(children.len(), separators.len() + 1);
        let child_hashes: Vec<Hash> = children.iter().map(|c| c.hash()).collect();
        let hash = node_hash(&separators, &child_hashes);
        MbNode::Internal {
            separators,
            children,
            hash,
        }
    }
}

/// An authenticated B+-tree keyed by `u64` timestamps.
///
/// See the [module documentation](self) for context and an example.
#[derive(Debug, Clone)]
pub struct MbTree {
    root: Option<MbNode>,
    /// Maximum fanout (children per internal node and entries per leaf).
    order: usize,
    len: usize,
}

impl MbTree {
    /// Default fanout used by the DCert indexes.
    pub const DEFAULT_ORDER: usize = 16;

    /// Creates an empty tree with the given fanout.
    ///
    /// # Panics
    ///
    /// Panics if `order < 3`.
    pub fn new(order: usize) -> Self {
        assert!(order >= 3, "MbTree order must be at least 3");
        MbTree {
            root: None,
            order,
            len: 0,
        }
    }

    /// Number of entries stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The root commitment ([`Hash::ZERO`] when empty).
    pub fn root(&self) -> Hash {
        self.root.as_ref().map_or(Hash::ZERO, |n| n.hash())
    }

    /// The largest timestamp stored, if any.
    pub fn max_key(&self) -> Option<u64> {
        let mut node = self.root.as_ref()?;
        loop {
            match node {
                MbNode::Leaf { entries, .. } => return entries.last().map(|(ts, _)| *ts),
                MbNode::Internal { children, .. } => {
                    node = children.last()?;
                }
            }
        }
    }

    /// The root a fresh tree would have after inserting a single entry —
    /// used by stateless verifiers when a brand-new per-account tree is
    /// created.
    pub fn singleton_root(ts: u64, value_hash: &Hash) -> Hash {
        leaf_hash(&[(ts, *value_hash)])
    }

    /// Inserts `(ts, value)`, replacing any existing entry at `ts`.
    pub fn insert(&mut self, ts: u64, value: Vec<u8>) -> Option<Vec<u8>> {
        let mut previous = None;
        match self.root.take() {
            None => {
                self.root = Some(MbNode::new_leaf(vec![(ts, value)]));
            }
            Some(root) => {
                let (node, split) = self.insert_rec(root, ts, value, &mut previous);
                self.root = Some(match split {
                    None => node,
                    Some((sep, right)) => MbNode::new_internal(vec![sep], vec![node, right]),
                });
            }
        }
        if previous.is_none() {
            self.len += 1;
        }
        previous
    }

    #[allow(clippy::type_complexity)]
    fn insert_rec(
        &self,
        node: MbNode,
        ts: u64,
        value: Vec<u8>,
        previous: &mut Option<Vec<u8>>,
    ) -> (MbNode, Option<(u64, MbNode)>) {
        match node {
            MbNode::Leaf { mut entries, .. } => {
                match entries.binary_search_by_key(&ts, |(t, _)| *t) {
                    Ok(pos) => {
                        if let Some(entry) = entries.get_mut(pos) {
                            *previous = Some(std::mem::replace(&mut entry.1, value));
                        }
                    }
                    Err(pos) => entries.insert(pos, (ts, value)),
                }
                if entries.len() > self.order {
                    let mid = entries.len() / 2;
                    let right_entries = entries.split_off(mid);
                    let sep = right_entries.first().map_or(0, |(t, _)| *t);
                    (
                        MbNode::new_leaf(entries),
                        Some((sep, MbNode::new_leaf(right_entries))),
                    )
                } else {
                    (MbNode::new_leaf(entries), None)
                }
            }
            MbNode::Internal {
                mut separators,
                mut children,
                ..
            } => {
                let idx = separators.partition_point(|sep| *sep <= ts);
                let child = children.remove(idx);
                let (child, split) = self.insert_rec(child, ts, value, previous);
                children.insert(idx, child);
                if let Some((sep, right)) = split {
                    separators.insert(idx, sep);
                    children.insert(idx + 1, right);
                }
                if children.len() > self.order {
                    let mid = children.len() / 2;
                    let right_children = children.split_off(mid);
                    let promoted = separators
                        .get(mid.saturating_sub(1))
                        .copied()
                        .unwrap_or_default();
                    let right_seps = separators.split_off(mid);
                    separators.pop(); // drop the promoted separator
                    (
                        MbNode::new_internal(separators, children),
                        Some((promoted, MbNode::new_internal(right_seps, right_children))),
                    )
                } else {
                    (MbNode::new_internal(separators, children), None)
                }
            }
        }
    }

    /// Returns the value at exactly `ts`, if present.
    pub fn get(&self, ts: u64) -> Option<&[u8]> {
        let mut node = self.root.as_ref()?;
        loop {
            match node {
                MbNode::Leaf { entries, .. } => {
                    return entries
                        .binary_search_by_key(&ts, |(t, _)| *t)
                        .ok()
                        .and_then(|pos| entries.get(pos))
                        .map(|(_, v)| v.as_slice());
                }
                MbNode::Internal {
                    separators,
                    children,
                    ..
                } => {
                    let idx = separators.partition_point(|sep| *sep <= ts);
                    node = children.get(idx)?;
                }
            }
        }
    }

    /// Answers the range query `[lo, hi]` (inclusive), returning the
    /// matching entries and a completeness proof.
    pub fn range(&self, lo: u64, hi: u64) -> (Vec<(u64, Vec<u8>)>, MbRangeProof) {
        let mut results = Vec::new();
        let root_node = self
            .root
            .as_ref()
            .map(|root| Self::range_rec(root, lo, hi, &mut results));
        (results, MbRangeProof { root: root_node })
    }

    fn range_rec(node: &MbNode, lo: u64, hi: u64, results: &mut Vec<(u64, Vec<u8>)>) -> ProofNode {
        match node {
            MbNode::Leaf { entries, .. } => {
                for (ts, v) in entries {
                    if *ts >= lo && *ts <= hi {
                        results.push((*ts, v.clone()));
                    }
                }
                ProofNode::Leaf {
                    entries: entries.iter().map(|(ts, v)| (*ts, hash_bytes(v))).collect(),
                }
            }
            MbNode::Internal {
                separators,
                children,
                ..
            } => {
                let kids = children
                    .iter()
                    .enumerate()
                    .map(|(i, child)| {
                        let child_lo = i.checked_sub(1).and_then(|j| separators.get(j)).copied();
                        let child_hi = separators.get(i).copied();
                        if interval_intersects(child_lo, child_hi, lo, hi) {
                            ProofChild::Open(Box::new(Self::range_rec(child, lo, hi, results)))
                        } else {
                            ProofChild::Pruned(child.hash())
                        }
                    })
                    .collect();
                ProofNode::Internal {
                    separators: separators.clone(),
                    children: kids,
                }
            }
        }
    }

    /// Emits a single op-stream proof opening every subtree that
    /// intersects *any* of the inclusive query `windows` — one compact
    /// program for an arbitrary key set (singleton windows) or a
    /// contiguous range, the op-encoding counterpart of
    /// [`MbTree::range`]. Pruning follows exactly the per-path prover's
    /// rule, so [`MbOpProof::verify`] yields byte-identical results.
    pub fn prove_ops(&self, windows: &[(u64, u64)]) -> MbOpProof {
        let mut ops = Vec::new();
        if let Some(root) = &self.root {
            Self::emit_ops(root, windows, &mut ops);
        }
        MbOpProof::from_ops(ops)
    }

    /// One proof program whose [`MbOpProof::verify_non_membership`]
    /// check establishes the absence of `ts`, bracketed by the two
    /// adjacent proven keys. The window spans from the predecessor to
    /// the successor of `ts` (widened to the domain ends when a side
    /// has no neighbor), so the verifier's adjacency checks hold.
    pub fn prove_non_membership(&self, ts: u64) -> MbOpProof {
        let lo = self.predecessor(ts).unwrap_or(0);
        let hi = self.successor(ts).unwrap_or(u64::MAX);
        self.prove_ops(&[(lo, hi)])
    }

    /// Largest stored key strictly below `ts`.
    fn predecessor(&self, ts: u64) -> Option<u64> {
        Self::pred_rec(self.root.as_ref()?, ts)
    }

    fn pred_rec(node: &MbNode, ts: u64) -> Option<u64> {
        match node {
            MbNode::Leaf { entries, .. } => {
                entries.iter().rev().find(|(t, _)| *t < ts).map(|(t, _)| *t)
            }
            MbNode::Internal {
                separators,
                children,
                ..
            } => {
                // Children at or left of the first separator >= ts can
                // hold keys < ts; scan right-to-left (at most two
                // descents per level: a candidate child either yields a
                // key or everything left of it is strictly smaller).
                let start = separators.partition_point(|sep| *sep < ts);
                children
                    .iter()
                    .take(start + 1)
                    .rev()
                    .find_map(|child| Self::pred_rec(child, ts))
            }
        }
    }

    /// Smallest stored key strictly above `ts`.
    fn successor(&self, ts: u64) -> Option<u64> {
        Self::succ_rec(self.root.as_ref()?, ts)
    }

    fn succ_rec(node: &MbNode, ts: u64) -> Option<u64> {
        match node {
            MbNode::Leaf { entries, .. } => entries.iter().find(|(t, _)| *t > ts).map(|(t, _)| *t),
            MbNode::Internal {
                separators,
                children,
                ..
            } => {
                // Children at or right of the last separator <= ts can
                // hold keys > ts.
                let start = separators.partition_point(|sep| *sep <= ts);
                children
                    .iter()
                    .skip(start)
                    .find_map(|child| Self::succ_rec(child, ts))
            }
        }
    }

    fn emit_ops(node: &MbNode, windows: &[(u64, u64)], ops: &mut Vec<ProofOp>) {
        match node {
            MbNode::Leaf { entries, .. } => ops.push(ProofOp::Push(OpNode::Leaf(
                entries.iter().map(|(ts, v)| (*ts, hash_bytes(v))).collect(),
            ))),
            MbNode::Internal {
                separators,
                children,
                ..
            } => {
                for (i, child) in children.iter().enumerate() {
                    let child_lo = i.checked_sub(1).and_then(|j| separators.get(j)).copied();
                    let child_hi = separators.get(i).copied();
                    let open = windows
                        .iter()
                        .any(|(lo, hi)| interval_intersects(child_lo, child_hi, *lo, *hi));
                    if open {
                        Self::emit_ops(child, windows, ops);
                    } else {
                        ops.push(ProofOp::Push(OpNode::Pruned(child.hash())));
                    }
                    if i == 0 {
                        ops.push(ProofOp::Push(OpNode::Internal(separators.clone())));
                        ops.push(ProofOp::Parent);
                    } else {
                        ops.push(ProofOp::Child);
                    }
                }
            }
        }
    }

    /// Produces a proof of the rightmost path, enabling a stateless
    /// verifier to append an entry with a timestamp strictly greater than
    /// every stored one ([`MbAppendProof::appended_root`]).
    pub fn prove_append(&self) -> MbAppendProof {
        let mut path = Vec::new();
        let mut node = self.root.as_ref();
        while let Some(n) = node {
            match n {
                MbNode::Leaf { entries, .. } => {
                    path.push(AppendNode::Leaf {
                        entries: entries.iter().map(|(ts, v)| (*ts, hash_bytes(v))).collect(),
                    });
                    node = None;
                }
                MbNode::Internal {
                    separators,
                    children,
                    ..
                } => {
                    let Some((rightmost, rest)) = children.split_last() else {
                        node = None;
                        continue;
                    };
                    let inner: Vec<Hash> = rest.iter().map(|c| c.hash()).collect();
                    path.push(AppendNode::Internal {
                        separators: separators.clone(),
                        left_siblings: inner,
                    });
                    node = Some(rightmost);
                }
            }
        }
        MbAppendProof { path }
    }
}

fn interval_intersects(child_lo: Option<u64>, child_hi: Option<u64>, lo: u64, hi: u64) -> bool {
    // Child covers [child_lo, child_hi) with None = unbounded.
    let below = matches!(child_hi, Some(h) if h <= lo);
    let above = matches!(child_lo, Some(l) if l > hi);
    !(below || above)
}

// --- range proof ----------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ProofChild {
    Pruned(Hash),
    Open(Box<ProofNode>),
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ProofNode {
    Leaf {
        entries: Vec<(u64, Hash)>,
    },
    Internal {
        separators: Vec<u64>,
        children: Vec<ProofChild>,
    },
}

/// A completeness proof for a time-window range query over an [`MbTree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MbRangeProof {
    pub(crate) root: Option<ProofNode>,
}

impl MbRangeProof {
    /// Size of the serialized proof in bytes.
    pub fn size_bytes(&self) -> usize {
        self.encoded_len()
    }

    /// Verifies that `results` is exactly the set of entries with
    /// timestamps in `[lo, hi]`, against the trusted `root`.
    ///
    /// # Errors
    ///
    /// - [`ProofError::RootMismatch`] if the proof does not recompute to
    ///   `root`,
    /// - [`ProofError::Incomplete`] if the claimed results omit or add
    ///   entries relative to the proof,
    /// - [`ProofError::Malformed`] on structural violations.
    pub fn verify(
        &self,
        root: &Hash,
        lo: u64,
        hi: u64,
        results: &[(u64, Vec<u8>)],
    ) -> Result<(), ProofError> {
        let mut in_range: Vec<(u64, Hash)> = Vec::new();
        let computed = match &self.root {
            None => Hash::ZERO,
            Some(node) => Self::verify_rec(node, None, None, lo, hi, &mut in_range)?,
        };
        if computed != *root {
            return Err(ProofError::RootMismatch);
        }
        if in_range.len() != results.len() {
            return Err(ProofError::Incomplete("result count mismatch"));
        }
        for ((ts, vh), (rts, rv)) in in_range.iter().zip(results) {
            if ts != rts || *vh != hash_bytes(rv) {
                return Err(ProofError::Incomplete("result entry mismatch"));
            }
        }
        Ok(())
    }

    fn verify_rec(
        node: &ProofNode,
        bound_lo: Option<u64>,
        bound_hi: Option<u64>,
        lo: u64,
        hi: u64,
        in_range: &mut Vec<(u64, Hash)>,
    ) -> Result<Hash, ProofError> {
        match node {
            ProofNode::Leaf { entries } => {
                let mut prev: Option<u64> = None;
                for (ts, vh) in entries {
                    if let Some(p) = prev {
                        if *ts <= p {
                            return Err(ProofError::Malformed("leaf entries not sorted"));
                        }
                    }
                    prev = Some(*ts);
                    if matches!(bound_lo, Some(b) if *ts < b)
                        || matches!(bound_hi, Some(b) if *ts >= b)
                    {
                        return Err(ProofError::Malformed("leaf entry outside bounds"));
                    }
                    if *ts >= lo && *ts <= hi {
                        in_range.push((*ts, *vh));
                    }
                }
                Ok(leaf_hash(entries))
            }
            ProofNode::Internal {
                separators,
                children,
            } => {
                if children.len() != separators.len() + 1 {
                    return Err(ProofError::Malformed("arity mismatch"));
                }
                if separators.windows(2).any(|w| matches!(w, [a, b] if a >= b)) {
                    return Err(ProofError::Malformed("separators not sorted"));
                }
                let mut hashes = Vec::with_capacity(children.len());
                for (i, child) in children.iter().enumerate() {
                    let child_lo = match i.checked_sub(1) {
                        None => bound_lo,
                        Some(j) => Some(
                            *separators
                                .get(j)
                                .ok_or(ProofError::Malformed("arity mismatch"))?,
                        ),
                    };
                    let child_hi = separators.get(i).copied().or(bound_hi);
                    match child {
                        ProofChild::Pruned(h) => {
                            if interval_intersects(child_lo, child_hi, lo, hi) {
                                return Err(ProofError::Incomplete(
                                    "pruned subtree overlaps query range",
                                ));
                            }
                            hashes.push(*h);
                        }
                        ProofChild::Open(sub) => {
                            hashes
                                .push(Self::verify_rec(sub, child_lo, child_hi, lo, hi, in_range)?);
                        }
                    }
                }
                Ok(node_hash(separators, &hashes))
            }
        }
    }
}

// --- append proof ----------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum AppendNode {
    Internal {
        separators: Vec<u64>,
        /// Hashes of all children except the rightmost (which the next path
        /// element recomputes).
        left_siblings: Vec<Hash>,
    },
    Leaf {
        entries: Vec<(u64, Hash)>,
    },
}

/// A proof of the rightmost path of an [`MbTree`], enabling stateless
/// appends.
///
/// The verifier replays the exact split logic of [`MbTree::insert`], so the
/// computed root matches what the real tree produces after appending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MbAppendProof {
    /// Root-to-leaf path along the rightmost spine; empty for an empty tree.
    path: Vec<AppendNode>,
}

/// Outcome of replaying an append at one level.
enum Applied {
    /// The subtree absorbed the entry.
    Single(Hash),
    /// The subtree split; `(left_hash, promoted_separator, right_hash)`.
    Split(Hash, u64, Hash),
}

impl MbAppendProof {
    /// Size of the serialized proof in bytes.
    pub fn size_bytes(&self) -> usize {
        self.encoded_len()
    }

    /// Verifies the proof against `root` and computes the root after
    /// appending `(ts, value_hash)`.
    ///
    /// `order` must equal the tree's fanout. `ts` must be strictly greater
    /// than every timestamp in the tree.
    ///
    /// # Errors
    ///
    /// - [`ProofError::RootMismatch`] if the path does not authenticate,
    /// - [`ProofError::Malformed`] if `ts` is not strictly larger than the
    ///   current maximum or the path shape is invalid.
    pub fn appended_root(
        &self,
        root: &Hash,
        order: usize,
        ts: u64,
        value_hash: &Hash,
    ) -> Result<Hash, ProofError> {
        if order < 3 {
            return Err(ProofError::Malformed("order must be at least 3"));
        }
        let Some((last_node, upper)) = self.path.split_last() else {
            if !root.is_zero() {
                return Err(ProofError::RootMismatch);
            }
            return Ok(leaf_hash(&[(ts, *value_hash)]));
        };
        let AppendNode::Leaf { entries } = last_node else {
            return Err(ProofError::Malformed("append path must end in a leaf"));
        };
        // Authenticate: compute each path node's hash from the bottom up,
        // then compare the top with `root`.
        let mut below = leaf_hash(entries);
        for node in upper.iter().rev() {
            let AppendNode::Internal {
                separators,
                left_siblings,
            } = node
            else {
                return Err(ProofError::Malformed("leaf in the middle of path"));
            };
            if left_siblings.len() != separators.len() {
                return Err(ProofError::Malformed("append path arity"));
            }
            let mut children = left_siblings.clone();
            children.push(below);
            below = node_hash(separators, &children);
        }
        if below != *root {
            return Err(ProofError::RootMismatch);
        }

        // Replay the append bottom-up with splits.
        if let Some((last_ts, _)) = entries.last() {
            if ts <= *last_ts {
                return Err(ProofError::Malformed("append timestamp not increasing"));
            }
        }
        let mut new_entries = entries.clone();
        new_entries.push((ts, *value_hash));
        let mut applied = if new_entries.len() > order {
            let mid = new_entries.len() / 2;
            let right = new_entries.split_off(mid);
            let sep = right.first().map_or(0, |(t, _)| *t);
            Applied::Split(leaf_hash(&new_entries), sep, leaf_hash(&right))
        } else {
            Applied::Single(leaf_hash(&new_entries))
        };

        for node in upper.iter().rev() {
            let AppendNode::Internal {
                separators,
                left_siblings,
            } = node
            else {
                return Err(ProofError::Malformed("leaf in the middle of path"));
            };
            let mut separators = separators.clone();
            let mut children = left_siblings.clone();
            match applied {
                Applied::Single(h) => children.push(h),
                Applied::Split(l, sep, r) => {
                    children.push(l);
                    separators.push(sep);
                    children.push(r);
                }
            }
            applied = if children.len() > order {
                let mid = children.len() / 2;
                let right_children = children.split_off(mid);
                let promoted = separators
                    .get(mid.saturating_sub(1))
                    .copied()
                    .ok_or(ProofError::Malformed("append split arity"))?;
                let right_seps = separators.split_off(mid);
                separators.pop();
                Applied::Split(
                    node_hash(&separators, &children),
                    promoted,
                    node_hash(&right_seps, &right_children),
                )
            } else {
                Applied::Single(node_hash(&separators, &children))
            };
        }

        Ok(match applied {
            Applied::Single(h) => h,
            Applied::Split(l, sep, r) => node_hash(&[sep], &[l, r]),
        })
    }
}

// --- serialization ---------------------------------------------------------

impl Encode for ProofChild {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ProofChild::Pruned(h) => {
                out.push(0);
                h.encode(out);
            }
            ProofChild::Open(node) => {
                out.push(1);
                node.encode(out);
            }
        }
    }
}

impl Decode for ProofChild {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_byte()? {
            0 => Ok(ProofChild::Pruned(Hash::decode(r)?)),
            1 => Ok(ProofChild::Open(Box::new(ProofNode::decode(r)?))),
            other => Err(CodecError::InvalidTag(other)),
        }
    }
}

impl Encode for ProofNode {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ProofNode::Leaf { entries } => {
                out.push(0);
                encode_seq(entries, out);
            }
            ProofNode::Internal {
                separators,
                children,
            } => {
                out.push(1);
                encode_seq(separators, out);
                encode_seq(children, out);
            }
        }
    }
}

impl Decode for ProofNode {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_byte()? {
            0 => Ok(ProofNode::Leaf {
                entries: decode_seq(r)?,
            }),
            1 => Ok(ProofNode::Internal {
                separators: decode_seq(r)?,
                children: decode_seq(r)?,
            }),
            other => Err(CodecError::InvalidTag(other)),
        }
    }
}

impl Encode for MbRangeProof {
    fn encode(&self, out: &mut Vec<u8>) {
        self.root.encode(out);
    }
}

impl Decode for MbRangeProof {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(MbRangeProof {
            root: Option::<ProofNode>::decode(r)?,
        })
    }
}

impl Encode for AppendNode {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            AppendNode::Internal {
                separators,
                left_siblings,
            } => {
                out.push(0);
                encode_seq(separators, out);
                encode_seq(left_siblings, out);
            }
            AppendNode::Leaf { entries } => {
                out.push(1);
                encode_seq(entries, out);
            }
        }
    }
}

impl Decode for AppendNode {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_byte()? {
            0 => Ok(AppendNode::Internal {
                separators: decode_seq(r)?,
                left_siblings: decode_seq(r)?,
            }),
            1 => Ok(AppendNode::Leaf {
                entries: decode_seq(r)?,
            }),
            other => Err(CodecError::InvalidTag(other)),
        }
    }
}

impl Encode for MbAppendProof {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_seq(&self.path, out);
    }
}

impl Decode for MbAppendProof {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(MbAppendProof {
            path: decode_seq(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn build(n: u64, order: usize) -> MbTree {
        let mut tree = MbTree::new(order);
        for ts in 0..n {
            tree.insert(ts, format!("value-{ts}").into_bytes());
        }
        tree
    }

    #[test]
    fn empty_tree_basics() {
        let tree = MbTree::new(4);
        assert_eq!(tree.root(), Hash::ZERO);
        assert_eq!(tree.len(), 0);
        assert_eq!(tree.max_key(), None);
        let (results, proof) = tree.range(0, 100);
        assert!(results.is_empty());
        proof.verify(&Hash::ZERO, 0, 100, &results).unwrap();
    }

    #[test]
    fn insert_get_replace() {
        let mut tree = MbTree::new(4);
        assert_eq!(tree.insert(5, b"a".to_vec()), None);
        assert_eq!(tree.insert(5, b"b".to_vec()), Some(b"a".to_vec()));
        assert_eq!(tree.get(5), Some(b"b".as_slice()));
        assert_eq!(tree.get(6), None);
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn grows_through_splits() {
        let tree = build(100, 4);
        assert_eq!(tree.len(), 100);
        for ts in 0..100u64 {
            assert_eq!(
                tree.get(ts),
                Some(format!("value-{ts}").as_bytes()),
                "ts={ts}"
            );
        }
        assert_eq!(tree.max_key(), Some(99));
    }

    #[test]
    fn range_queries_are_exact_and_verify() {
        let tree = build(64, 5);
        let root = tree.root();
        for (lo, hi) in [(0, 63), (10, 20), (5, 5), (60, 200), (100, 200), (0, 0)] {
            let (results, proof) = tree.range(lo, hi);
            let expected: Vec<u64> = (lo..=hi.min(63)).collect();
            assert_eq!(
                results.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
                expected,
                "window [{lo},{hi}]"
            );
            proof.verify(&root, lo, hi, &results).unwrap();
        }
    }

    #[test]
    fn verify_rejects_omitted_result() {
        let tree = build(30, 4);
        let (mut results, proof) = tree.range(5, 15);
        results.remove(3);
        assert!(matches!(
            proof.verify(&tree.root(), 5, 15, &results),
            Err(ProofError::Incomplete(_))
        ));
    }

    #[test]
    fn verify_rejects_tampered_value() {
        let tree = build(30, 4);
        let (mut results, proof) = tree.range(5, 15);
        results[0].1 = b"forged".to_vec();
        assert!(matches!(
            proof.verify(&tree.root(), 5, 15, &results),
            Err(ProofError::Incomplete(_))
        ));
    }

    #[test]
    fn verify_rejects_wrong_root() {
        let tree = build(30, 4);
        let (results, proof) = tree.range(5, 15);
        assert_eq!(
            proof.verify(&Hash::ZERO, 5, 15, &results),
            Err(ProofError::RootMismatch)
        );
    }

    #[test]
    fn verify_rejects_pruned_overlap() {
        // Proof generated for a narrow window cannot be replayed for a
        // wider window (pruned subtrees would overlap it).
        let tree = build(64, 4);
        let (results, proof) = tree.range(10, 12);
        assert!(matches!(
            proof.verify(&tree.root(), 5, 20, &results),
            Err(ProofError::Incomplete(_)) | Err(ProofError::RootMismatch)
        ));
    }

    #[test]
    fn singleton_root_matches_real_tree() {
        let mut tree = MbTree::new(4);
        tree.insert(9, b"v".to_vec());
        assert_eq!(tree.root(), MbTree::singleton_root(9, &hash_bytes(b"v")));
    }

    #[test]
    fn append_proof_tracks_real_inserts() {
        for order in [3usize, 4, 16] {
            let mut tree = MbTree::new(order);
            for ts in 0..200u64 {
                let proof = tree.prove_append();
                let old_root = tree.root();
                let value = format!("v{ts}").into_bytes();
                let predicted = proof
                    .appended_root(&old_root, order, ts, &hash_bytes(&value))
                    .unwrap_or_else(|e| panic!("order={order} ts={ts}: {e}"));
                tree.insert(ts, value);
                assert_eq!(predicted, tree.root(), "order={order} ts={ts}");
            }
        }
    }

    #[test]
    fn append_proof_rejects_non_increasing_ts() {
        let tree = build(10, 4);
        let proof = tree.prove_append();
        assert!(matches!(
            proof.appended_root(&tree.root(), 4, 9, &Hash::ZERO),
            Err(ProofError::Malformed(_))
        ));
        assert!(matches!(
            proof.appended_root(&tree.root(), 4, 5, &Hash::ZERO),
            Err(ProofError::Malformed(_))
        ));
    }

    #[test]
    fn append_proof_rejects_wrong_root() {
        let tree = build(10, 4);
        let proof = tree.prove_append();
        assert_eq!(
            proof.appended_root(&Hash::ZERO, 4, 100, &Hash::ZERO),
            Err(ProofError::RootMismatch)
        );
    }

    #[test]
    fn range_proof_codec_round_trip() {
        let tree = build(40, 4);
        let (results, proof) = tree.range(10, 25);
        let decoded = MbRangeProof::decode_all(&proof.to_encoded_bytes()).unwrap();
        assert_eq!(decoded, proof);
        decoded.verify(&tree.root(), 10, 25, &results).unwrap();
    }

    #[test]
    fn append_proof_codec_round_trip() {
        let tree = build(40, 4);
        let proof = tree.prove_append();
        let decoded = MbAppendProof::decode_all(&proof.to_encoded_bytes()).unwrap();
        assert_eq!(decoded, proof);
    }

    #[test]
    fn empty_window_is_provable_not_assumable() {
        // Satellite audit: an empty result set must be *proven* empty.
        let tree = build(30, 4);

        // lo beyond max_key: the proof opens the rightmost boundary and
        // verifies the window is empty.
        let (results, proof) = tree.range(100, 200);
        assert!(results.is_empty());
        proof.verify(&tree.root(), 100, 200, &results).unwrap();

        // The same empty-window proof cannot stand in for a window that
        // does contain entries: its pruned subtrees overlap it.
        assert!(matches!(
            proof.verify(&tree.root(), 5, 200, &[]),
            Err(ProofError::Incomplete(_))
        ));

        // Inverted window (lo > hi) is provably empty too.
        let (results, proof) = tree.range(20, 10);
        assert!(results.is_empty());
        proof.verify(&tree.root(), 20, 10, &results).unwrap();
    }

    #[test]
    fn omitted_tail_at_window_edge_rejected() {
        // Regression: a proof honestly generated for [5, 9] replayed for
        // the wider window [5, 15] with the tail results omitted must
        // fail — the subtrees holding 10..=15 are pruned but overlap the
        // claimed window, so truncation is distinguishable from "no
        // entries past 9".
        let tree = build(30, 4);
        let (truncated, narrow_proof) = tree.range(5, 9);
        assert_eq!(truncated.len(), 5);
        assert!(matches!(
            narrow_proof.verify(&tree.root(), 5, 15, &truncated),
            Err(ProofError::Incomplete(_)) | Err(ProofError::RootMismatch)
        ));
        // Same attack through the op-stream encoding.
        let narrow_ops = tree.prove_ops(&[(5, 9)]);
        assert!(matches!(
            narrow_ops.verify(&tree.root(), 5, 15, &truncated),
            Err(ProofError::Incomplete(_)) | Err(ProofError::RootMismatch)
        ));
    }

    #[test]
    fn op_proof_matches_per_path_results() {
        for (n, order) in [(0u64, 4usize), (1, 4), (30, 4), (64, 3), (200, 16)] {
            let tree = build(n, order);
            for (lo, hi) in [(0u64, 0u64), (5, 15), (0, 300), (150, 90), (199, 260)] {
                let (results, per_path) = tree.range(lo, hi);
                per_path.verify(&tree.root(), lo, hi, &results).unwrap();
                let op = tree.prove_ops(&[(lo, hi)]);
                op.verify(&tree.root(), lo, hi, &results)
                    .unwrap_or_else(|e| panic!("n={n} order={order} [{lo},{hi}]: {e}"));
                assert_eq!(op.size_bytes(), op.to_encoded_bytes().len());
                assert_eq!(per_path.size_bytes(), per_path.to_encoded_bytes().len());
            }
        }
    }

    #[test]
    fn one_op_proof_serves_disjoint_windows() {
        // Cross-query batching: a single program built for several
        // windows verifies each window independently...
        let tree = build(64, 4);
        let proof = tree.prove_ops(&[(2, 4), (20, 22)]);
        let (r1, _) = tree.range(2, 4);
        let (r2, _) = tree.range(20, 22);
        proof.verify(&tree.root(), 2, 4, &r1).unwrap();
        proof.verify(&tree.root(), 20, 22, &r2).unwrap();
        // ...but not the hull between them: the gap is pruned.
        let hull: Vec<(u64, Vec<u8>)> = r1.iter().chain(&r2).cloned().collect();
        assert!(matches!(
            proof.verify(&tree.root(), 2, 22, &hull),
            Err(ProofError::Incomplete(_))
        ));
    }

    #[test]
    fn non_membership_brackets_absent_key() {
        let mut tree = MbTree::new(4);
        for ts in (0..40u64).map(|t| t * 2) {
            tree.insert(ts, format!("v{ts}").into_bytes());
        }
        let proof = tree.prove_non_membership(13);
        let (pred, succ) = proof.verify_non_membership(&tree.root(), 13).unwrap();
        assert_eq!((pred, succ), (Some(12), Some(14)));

        // Beyond either end, the missing side of the bracket is open.
        let proof = tree.prove_non_membership(1000);
        let (pred, succ) = proof.verify_non_membership(&tree.root(), 1000).unwrap();
        assert_eq!((pred, succ), (Some(78), None));

        // A present key has no non-membership proof.
        let proof = tree.prove_non_membership(12);
        assert!(matches!(
            proof.verify_non_membership(&tree.root(), 12),
            Err(ProofError::Incomplete(_))
        ));

        // Empty tree: everything is absent, bracket fully open.
        let empty = MbTree::new(4);
        let proof = empty.prove_non_membership(7);
        let (pred, succ) = proof.verify_non_membership(&Hash::ZERO, 7).unwrap();
        assert_eq!((pred, succ), (None, None));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Range query + proof verifies for arbitrary windows, tree sizes
        /// and fanouts.
        #[test]
        fn prop_ranges_verify(
            n in 0u64..120,
            order in 3usize..12,
            lo in 0u64..150,
            width in 0u64..60,
        ) {
            let tree = build(n, order);
            let hi = lo + width;
            let (results, proof) = tree.range(lo, hi);
            let expected: Vec<u64> = (lo..=hi).filter(|t| *t < n).collect();
            prop_assert_eq!(
                results.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
                expected
            );
            prop_assert!(proof.verify(&tree.root(), lo, hi, &results).is_ok());
        }

        /// Stateless appends always agree with real inserts under random
        /// fanouts and skip patterns.
        #[test]
        fn prop_append_agrees(
            order in 3usize..10,
            steps in proptest::collection::vec(1u64..5, 1..60),
        ) {
            let mut tree = MbTree::new(order);
            let mut ts = 0u64;
            for step in steps {
                ts += step;
                let proof = tree.prove_append();
                let predicted = proof
                    .appended_root(&tree.root(), order, ts, &hash_bytes(ts.to_be_bytes()))
                    .unwrap();
                tree.insert(ts, ts.to_be_bytes().to_vec());
                prop_assert_eq!(predicted, tree.root());
            }
        }
    }
}
