//! Compact sparse Merkle tree with stateless multiproofs.
//!
//! This is the commitment behind the global-state root `H_state` in every
//! block header, and the machinery behind the enclave's *stateless*
//! verification in Algorithm 2 of the paper: the Certificate Issuer's
//! untrusted half extracts a proof ([`SmtProof`]) covering the block's read
//! and write sets, and the enclave — holding nothing but the previous state
//! root — can
//!
//! 1. authenticate the read set (`verify_mht(H_{i-1}^s, π_i^r, {r}_i)`),
//! 2. authenticate the pre-state neighborhood of the write set
//!    (`verify_mht(H_{i-1}^s, π_i^w, {w}_i)`), and
//! 3. compute the post-write root (`update(π_i^w, {w}_i)`) to compare
//!    against `H_i^s` in the new block,
//!
//! all from the proof alone.
//!
//! # Structure
//!
//! The tree is *compact*: a subtree containing a single leaf hashes to
//! `H(SMT_LEAF || key || value_hash)` regardless of its height (after
//! Dahlberg et al.), and a subtree whose leaves all fall on one side hashes
//! to that side's hash (empty siblings are transparent). In memory this is
//! a binary Patricia trie — each branch records the bit index at which its
//! two sides diverge — holding ~2·n nodes for n keys. Hash rules:
//!
//! - empty subtree → [`Hash::ZERO`],
//! - single-leaf subtree → `H(SMT_LEAF || key || value_hash)`,
//! - diverging subtree → `H(SMT_BRANCH || left || right)`.
//!
//! Keys are 256-bit [`struct@Hash`]es (callers hash their logical keys first), and
//! the key is bound inside the leaf hash, so leaves cannot be repositioned.
//!
//! # Example
//!
//! ```
//! use dcert_merkle::SparseMerkleTree;
//! use dcert_primitives::hash::hash_bytes;
//!
//! let mut tree = SparseMerkleTree::new();
//! let key = hash_bytes(b"account/alice");
//! tree.insert(key, b"100".to_vec());
//! let root = tree.root();
//!
//! // A stateless verifier authenticates the read and applies a write.
//! let proof = tree.prove(&[key]);
//! proof.verify(&root)?;
//! assert_eq!(proof.pre_value_hash(&key)?, Some(hash_bytes(b"100")));
//! let new_root = proof.updated_root(&[(key, Some(hash_bytes(b"42")))])?;
//!
//! tree.insert(key, b"42".to_vec());
//! assert_eq!(tree.root(), new_root);
//! # Ok::<(), dcert_merkle::ProofError>(())
//! ```

use std::collections::{BTreeMap, HashMap};

use dcert_primitives::codec::{Decode, Encode, Reader};
use dcert_primitives::error::CodecError;
use dcert_primitives::hash::{hash_bytes, hash_concat, Hash};

use crate::domain;
use crate::ProofError;

/// Depth of the key space in bits.
pub const KEY_BITS: usize = 256;

/// Hash of a single-leaf subtree.
pub fn leaf_hash(key: &Hash, value_hash: &Hash) -> Hash {
    hash_concat([
        std::slice::from_ref(&domain::SMT_LEAF),
        key.as_bytes(),
        value_hash.as_bytes(),
    ])
}

/// Hash of a subtree whose two sides both hold leaves.
pub fn branch_hash(left: &Hash, right: &Hash) -> Hash {
    hash_concat([
        std::slice::from_ref(&domain::SMT_BRANCH),
        left.as_bytes(),
        right.as_bytes(),
    ])
}

/// Returns the index of the first bit at which `a` and `b` differ, or
/// [`KEY_BITS`] if equal.
fn diverge_bit(a: &Hash, b: &Hash) -> usize {
    for (i, (x, y)) in a.as_bytes().iter().zip(b.as_bytes()).enumerate() {
        let diff = x ^ y;
        if diff != 0 {
            // `leading_zeros` of a non-zero u8 is at most 7.
            let zeros = usize::try_from(diff.leading_zeros()).unwrap_or(0);
            return i * 8 + zeros;
        }
    }
    KEY_BITS
}

#[derive(Debug, Clone, Default)]
enum Node {
    #[default]
    Empty,
    Leaf {
        key: Hash,
        value_hash: Hash,
    },
    Branch {
        /// The bit index at which the two children diverge. All leaf keys
        /// beneath this node agree on bits `0..bit`; the left child's keys
        /// have bit `bit` = 0, the right child's = 1.
        bit: u16,
        /// A representative leaf key beneath this node (the leftmost),
        /// giving traversal access to the shared prefix.
        rep: Hash,
        left: Box<Node>,
        right: Box<Node>,
        hash: Hash,
    },
}

impl Node {
    fn hash(&self) -> Hash {
        match self {
            Node::Empty => Hash::ZERO,
            Node::Leaf { key, value_hash } => leaf_hash(key, value_hash),
            Node::Branch { hash, .. } => *hash,
        }
    }

    fn is_empty(&self) -> bool {
        matches!(self, Node::Empty)
    }

    /// A leaf key beneath this node (`None` for `Empty`).
    fn rep(&self) -> Option<&Hash> {
        match self {
            Node::Empty => None,
            Node::Leaf { key, .. } => Some(key),
            Node::Branch { rep, .. } => Some(rep),
        }
    }
}

fn make_branch(bit: usize, left: Node, right: Node) -> Node {
    debug_assert!(!left.is_empty() && !right.is_empty());
    debug_assert!(
        left.rep().is_some_and(|r| !r.bit(bit)) && right.rep().is_some_and(|r| r.bit(bit))
    );
    let hash = branch_hash(&left.hash(), &right.hash());
    Node::Branch {
        // `bit` indexes into a 256-bit key, so it always fits u16.
        bit: u16::try_from(bit).unwrap_or(u16::MAX),
        rep: left.rep().copied().unwrap_or(Hash::ZERO),
        left: Box::new(left),
        right: Box::new(right),
        hash,
    }
}

/// Arranges `a` (whose keys have bit `bit` equal to `a_bit`) and `b` into a
/// branch at `bit`.
fn branch_by_bit(bit: usize, a: Node, a_bit: bool, b: Node) -> Node {
    if a_bit {
        make_branch(bit, b, a)
    } else {
        make_branch(bit, a, b)
    }
}

/// A compact sparse Merkle tree mapping 256-bit keys to byte values.
///
/// See the [module documentation](self) for the hashing rules and the
/// stateless-proof workflow.
#[derive(Debug, Clone, Default)]
pub struct SparseMerkleTree {
    root: Node,
    values: HashMap<Hash, Vec<u8>>,
}

impl SparseMerkleTree {
    /// Creates an empty tree (root = [`Hash::ZERO`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of keys in the tree.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the tree holds no keys.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The current root commitment.
    pub fn root(&self) -> Hash {
        self.root.hash()
    }

    /// Returns the value stored under `key`, if any.
    pub fn get(&self, key: &Hash) -> Option<&[u8]> {
        self.values.get(key).map(Vec::as_slice)
    }

    /// Iterates over all `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Hash, &[u8])> {
        self.values.iter().map(|(k, v)| (k, v.as_slice()))
    }

    /// Inserts or updates `key`, returning the previous value if present.
    pub fn insert(&mut self, key: Hash, value: Vec<u8>) -> Option<Vec<u8>> {
        let value_hash = hash_bytes(&value);
        let root = std::mem::take(&mut self.root);
        self.root = Self::insert_rec(root, key, value_hash);
        self.values.insert(key, value)
    }

    /// Removes `key`, returning its value if it was present.
    pub fn remove(&mut self, key: &Hash) -> Option<Vec<u8>> {
        let prev = self.values.remove(key)?;
        let root = std::mem::take(&mut self.root);
        self.root = Self::remove_rec(root, key);
        Some(prev)
    }

    fn insert_rec(node: Node, key: Hash, value_hash: Hash) -> Node {
        match node {
            Node::Empty => Node::Leaf { key, value_hash },
            Node::Leaf { key: existing, .. } if existing == key => Node::Leaf { key, value_hash },
            Node::Leaf {
                key: existing,
                value_hash: existing_vh,
            } => {
                let d = diverge_bit(&existing, &key);
                let old_leaf = Node::Leaf {
                    key: existing,
                    value_hash: existing_vh,
                };
                let new_leaf = Node::Leaf { key, value_hash };
                branch_by_bit(d, new_leaf, key.bit(d), old_leaf)
            }
            Node::Branch {
                bit,
                rep,
                left,
                right,
                hash,
            } => {
                let bit_ix = usize::from(bit);
                let d = diverge_bit(&rep, &key);
                if d < bit_ix {
                    // The key leaves the shared prefix above this branch:
                    // the existing branch moves intact under a new branch.
                    let branch = Node::Branch {
                        bit,
                        rep,
                        left,
                        right,
                        hash,
                    };
                    let new_leaf = Node::Leaf { key, value_hash };
                    branch_by_bit(d, new_leaf, key.bit(d), branch)
                } else {
                    // Shared prefix holds through `bit`; descend.
                    let (left, right) = if key.bit(bit_ix) {
                        (*left, Self::insert_rec(*right, key, value_hash))
                    } else {
                        (Self::insert_rec(*left, key, value_hash), *right)
                    };
                    make_branch(bit_ix, left, right)
                }
            }
        }
    }

    fn remove_rec(node: Node, key: &Hash) -> Node {
        match node {
            Node::Empty => Node::Empty,
            Node::Leaf { key: existing, .. } if existing == *key => Node::Empty,
            leaf @ Node::Leaf { .. } => leaf,
            Node::Branch {
                bit, left, right, ..
            } => {
                let bit_ix = usize::from(bit);
                let (left, right) = if key.bit(bit_ix) {
                    (*left, Self::remove_rec(*right, key))
                } else {
                    (Self::remove_rec(*left, key), *right)
                };
                // Canonical form: collapse a branch with an empty child.
                match (left.is_empty(), right.is_empty()) {
                    (true, true) => Node::Empty,
                    (true, false) => right,
                    (false, true) => left,
                    (false, false) => make_branch(bit_ix, left, right),
                }
            }
        }
    }

    /// Produces a multiproof covering `keys` against the current root.
    ///
    /// The proof authenticates, for every requested key, whether it is
    /// present and with which value hash, and carries exactly the sibling
    /// evidence needed to recompute the root — including after arbitrary
    /// writes (update/insert/delete) to the covered keys.
    ///
    /// Duplicate keys are deduplicated.
    pub fn prove(&self, keys: &[Hash]) -> SmtProof {
        let mut sorted: Vec<Hash> = keys.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut pre = Vec::with_capacity(sorted.len());
        let mut evidence = Vec::new();
        Self::prove_rec(
            NodeView::from(&self.root),
            0,
            &sorted,
            &mut pre,
            &mut evidence,
        );
        debug_assert_eq!(pre.len(), sorted.len());
        SmtProof {
            keys: sorted,
            pre,
            evidence,
        }
    }

    fn prove_rec(
        node: NodeView<'_>,
        depth: usize,
        keys: &[Hash],
        pre: &mut Vec<Option<Hash>>,
        evidence: &mut Vec<Evidence>,
    ) {
        if keys.is_empty() {
            evidence.push(match node {
                NodeView::Empty => Evidence::Empty,
                NodeView::Leaf { key, value_hash } => Evidence::Leaf {
                    key: *key,
                    value_hash: *value_hash,
                },
                NodeView::Branch(branch) => Evidence::Node(branch.hash()),
            });
            return;
        }
        if depth == KEY_BITS {
            debug_assert_eq!(keys.len(), 1, "sorted unique keys collide only at 256 bits");
            pre.push(match (node, keys.first()) {
                (NodeView::Leaf { key, value_hash }, Some(wanted)) if key == wanted => {
                    Some(*value_hash)
                }
                _ => None,
            });
            return;
        }
        let split = keys.partition_point(|k| !k.bit(depth));
        let (lkeys, rkeys) = keys.split_at(split);
        let (lchild, rchild) = node.children(depth);
        Self::prove_rec(lchild, depth + 1, lkeys, pre, evidence);
        Self::prove_rec(rchild, depth + 1, rkeys, pre, evidence);
    }
}

/// A borrowed view of a subtree, able to "virtually" descend through the
/// compact representation bit by bit.
#[derive(Clone, Copy)]
enum NodeView<'a> {
    Empty,
    Leaf { key: &'a Hash, value_hash: &'a Hash },
    Branch(&'a Node),
}

impl<'a> From<&'a Node> for NodeView<'a> {
    fn from(node: &'a Node) -> Self {
        match node {
            Node::Empty => NodeView::Empty,
            Node::Leaf { key, value_hash } => NodeView::Leaf { key, value_hash },
            branch @ Node::Branch { .. } => NodeView::Branch(branch),
        }
    }
}

impl<'a> NodeView<'a> {
    /// The (left, right) children when viewed at `depth`.
    ///
    /// A leaf or a branch that diverges deeper than `depth` occupies a
    /// single side (by its shared-prefix bit); the other side is empty.
    fn children(self, depth: usize) -> (NodeView<'a>, NodeView<'a>) {
        match self {
            NodeView::Empty => (NodeView::Empty, NodeView::Empty),
            NodeView::Leaf { key, .. } => {
                if key.bit(depth) {
                    (NodeView::Empty, self)
                } else {
                    (self, NodeView::Empty)
                }
            }
            NodeView::Branch(node) => {
                let Node::Branch {
                    bit,
                    rep,
                    left,
                    right,
                    ..
                } = node
                else {
                    // `NodeView::Branch` only ever wraps `Node::Branch`
                    // (see the `From<&Node>` impl above).
                    return (NodeView::Empty, NodeView::Empty);
                };
                let bit = usize::from(*bit);
                debug_assert!(depth <= bit);
                if depth < bit {
                    // The whole branch lives on one side at this depth.
                    if rep.bit(depth) {
                        (NodeView::Empty, self)
                    } else {
                        (self, NodeView::Empty)
                    }
                } else {
                    (
                        NodeView::from(left.as_ref()),
                        NodeView::from(right.as_ref()),
                    )
                }
            }
        }
    }
}

/// Evidence for one maximal untouched subtree adjacent to the proof paths.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Evidence {
    /// The subtree is empty.
    Empty,
    /// The subtree contains exactly one leaf (content disclosed so that
    /// inserts/deletes near it can recompute divergence points).
    Leaf { key: Hash, value_hash: Hash },
    /// The subtree contains two or more leaves; only its root hash matters.
    Node(Hash),
}

/// A stateless multiproof over a set of keys of a [`SparseMerkleTree`].
///
/// Construct with [`SparseMerkleTree::prove`], ship to a verifier, then:
///
/// 1. [`SmtProof::verify`] against the trusted root,
/// 2. [`SmtProof::pre_value_hash`] to read authenticated pre-state,
/// 3. [`SmtProof::updated_root`] to compute the root after writes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmtProof {
    /// Sorted, deduplicated touched keys.
    keys: Vec<Hash>,
    /// Pre-state value hash per touched key (`None` = absent).
    pre: Vec<Option<Hash>>,
    /// DFS-ordered sibling evidence.
    evidence: Vec<Evidence>,
}

/// Result category of a recomputed subtree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Subtree {
    Empty,
    /// A single leaf; carries the *leaf hash*.
    One(Hash),
    /// Two or more leaves; carries the branch hash.
    Many(Hash),
}

impl Subtree {
    fn hash(self) -> Hash {
        match self {
            Subtree::Empty => Hash::ZERO,
            Subtree::One(h) | Subtree::Many(h) => h,
        }
    }
}

fn combine(left: Subtree, right: Subtree) -> Subtree {
    match (left, right) {
        (Subtree::Empty, Subtree::Empty) => Subtree::Empty,
        // Pass-through: empty siblings are transparent in the compact tree.
        (Subtree::Empty, other) | (other, Subtree::Empty) => other,
        (l, r) => Subtree::Many(branch_hash(&l.hash(), &r.hash())),
    }
}

impl SmtProof {
    /// The sorted set of keys this proof covers.
    pub fn keys(&self) -> &[Hash] {
        &self.keys
    }

    /// Size of the serialized proof in bytes (empty-evidence runs are
    /// run-length encoded).
    pub fn size_bytes(&self) -> usize {
        self.encoded_len()
    }

    /// The authenticated pre-state value hash of a covered key
    /// (`Ok(None)` = key proven absent).
    ///
    /// Only meaningful after [`SmtProof::verify`] has succeeded against a
    /// trusted root.
    ///
    /// # Errors
    ///
    /// Returns [`ProofError::MissingKey`] if `key` is not covered.
    pub fn pre_value_hash(&self, key: &Hash) -> Result<Option<Hash>, ProofError> {
        let idx = self
            .keys
            .binary_search(key)
            .map_err(|_| ProofError::MissingKey)?;
        self.pre
            .get(idx)
            .copied()
            .ok_or(ProofError::Malformed("pre/keys length mismatch"))
    }

    /// Verifies the proof against a trusted `root`.
    ///
    /// # Errors
    ///
    /// Returns [`ProofError::RootMismatch`] if the recomputed commitment
    /// differs, or [`ProofError::Malformed`] on structural problems.
    pub fn verify(&self, root: &Hash) -> Result<(), ProofError> {
        let computed = self.compute_root(None)?;
        if computed == *root {
            Ok(())
        } else {
            Err(ProofError::RootMismatch)
        }
    }

    /// Computes the root after applying `writes` to the covered keys.
    ///
    /// Each write is `(key, Some(new_value_hash))` for an upsert or
    /// `(key, None)` for a deletion. Every written key must be covered by
    /// the proof. Call [`SmtProof::verify`] first; the returned root is only
    /// trustworthy if the proof verified against a trusted pre-state root.
    ///
    /// # Errors
    ///
    /// Returns [`ProofError::MissingKey`] if a write touches an uncovered
    /// key, or [`ProofError::Malformed`] on structural problems.
    pub fn updated_root(&self, writes: &[(Hash, Option<Hash>)]) -> Result<Hash, ProofError> {
        let mut overrides: BTreeMap<Hash, Option<Hash>> = BTreeMap::new();
        for (key, value_hash) in writes {
            if self.keys.binary_search(key).is_err() {
                return Err(ProofError::MissingKey);
            }
            overrides.insert(*key, *value_hash);
        }
        self.compute_root(Some(&overrides))
    }

    fn compute_root(
        &self,
        overrides: Option<&BTreeMap<Hash, Option<Hash>>>,
    ) -> Result<Hash, ProofError> {
        if self.pre.len() != self.keys.len() {
            return Err(ProofError::Malformed("pre/keys length mismatch"));
        }
        if self.keys.windows(2).any(|w| matches!(w, [a, b] if a >= b)) {
            return Err(ProofError::Malformed("keys not sorted unique"));
        }
        let mut cursor = 0usize;
        let mut prefix = [0u8; 32];
        let subtree =
            self.compute_rec(0, 0, self.keys.len(), &mut cursor, &mut prefix, overrides)?;
        if cursor != self.evidence.len() {
            return Err(ProofError::Malformed("unconsumed evidence"));
        }
        Ok(subtree.hash())
    }

    fn compute_rec(
        &self,
        depth: usize,
        key_lo: usize,
        key_hi: usize,
        cursor: &mut usize,
        prefix: &mut [u8; 32],
        overrides: Option<&BTreeMap<Hash, Option<Hash>>>,
    ) -> Result<Subtree, ProofError> {
        if key_lo == key_hi {
            // Untouched subtree: consume one evidence item.
            let item = self
                .evidence
                .get(*cursor)
                .ok_or(ProofError::Malformed("missing evidence"))?;
            *cursor += 1;
            return Ok(match item {
                Evidence::Empty => Subtree::Empty,
                Evidence::Leaf { key, value_hash } => {
                    // Fail fast when the prover placed a leaf outside its
                    // subtree; root comparison would also catch this.
                    if !prefix_matches(key, prefix, depth) {
                        return Err(ProofError::Malformed("leaf evidence outside subtree"));
                    }
                    Subtree::One(leaf_hash(key, value_hash))
                }
                Evidence::Node(hash) => Subtree::Many(*hash),
            });
        }
        if depth == KEY_BITS {
            if key_hi - key_lo != 1 {
                return Err(ProofError::Malformed("key collision at max depth"));
            }
            let key = self
                .keys
                .get(key_lo)
                .ok_or(ProofError::Malformed("key range out of bounds"))?;
            let value_hash = match overrides.and_then(|o| o.get(key)) {
                Some(over) => *over,
                None => self.pre.get(key_lo).copied().flatten(),
            };
            return Ok(match value_hash {
                None => Subtree::Empty,
                Some(vh) => Subtree::One(leaf_hash(key, &vh)),
            });
        }
        let split = key_lo
            + self
                .keys
                .get(key_lo..key_hi)
                .map_or(0, |range| range.partition_point(|k| !k.bit(depth)));
        set_bit(prefix, depth, false);
        let left = self.compute_rec(depth + 1, key_lo, split, cursor, prefix, overrides)?;
        set_bit(prefix, depth, true);
        let right = self.compute_rec(depth + 1, split, key_hi, cursor, prefix, overrides)?;
        set_bit(prefix, depth, false);
        Ok(combine(left, right))
    }
}

fn set_bit(bytes: &mut [u8; 32], i: usize, value: bool) {
    let mask = 1u8 << (7 - i % 8);
    // `i < KEY_BITS` always holds; an out-of-range index is a no-op.
    if let Some(byte) = bytes.get_mut(i / 8) {
        if value {
            *byte |= mask;
        } else {
            *byte &= !mask;
        }
    }
}

fn prefix_matches(key: &Hash, prefix: &[u8; 32], depth: usize) -> bool {
    (0..depth).all(|i| {
        let byte = prefix.get(i / 8).copied().unwrap_or(0);
        key.bit(i) == ((byte >> (7 - i % 8)) & 1 == 1)
    })
}

// --- serialization -------------------------------------------------------
//
// Evidence vectors are dominated by long runs of `Empty` (one per tree
// level along each proof path), so runs are length-encoded: tag 0 is
// followed by a u16 run length.

const TAG_EMPTY_RUN: u8 = 0;
const TAG_LEAF: u8 = 1;
const TAG_NODE: u8 = 2;

impl Encode for SmtProof {
    fn encode(&self, out: &mut Vec<u8>) {
        dcert_primitives::codec::encode_seq(&self.keys, out);
        dcert_primitives::codec::encode_seq(&self.pre, out);
        let mut i = 0usize;
        let mut chunks: u32 = 0;
        let mut body = Vec::new();
        while let Some(item) = self.evidence.get(i) {
            match item {
                Evidence::Empty => {
                    let mut run = 0u16;
                    while matches!(self.evidence.get(i), Some(Evidence::Empty)) && run < u16::MAX {
                        run += 1;
                        i += 1;
                    }
                    body.push(TAG_EMPTY_RUN);
                    run.encode(&mut body);
                }
                Evidence::Leaf { key, value_hash } => {
                    body.push(TAG_LEAF);
                    key.encode(&mut body);
                    value_hash.encode(&mut body);
                    i += 1;
                }
                Evidence::Node(hash) => {
                    body.push(TAG_NODE);
                    hash.encode(&mut body);
                    i += 1;
                }
            }
            chunks += 1;
        }
        chunks.encode(out);
        out.extend_from_slice(&body);
    }
}

impl Decode for SmtProof {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let keys = dcert_primitives::codec::decode_seq(r)?;
        let pre = dcert_primitives::codec::decode_seq(r)?;
        let chunks = u32::decode(r)?;
        let mut evidence = Vec::new();
        for _ in 0..chunks {
            match r.take_byte()? {
                TAG_EMPTY_RUN => {
                    let run = u16::decode(r)?;
                    for _ in 0..run {
                        evidence.push(Evidence::Empty);
                    }
                }
                TAG_LEAF => evidence.push(Evidence::Leaf {
                    key: Hash::decode(r)?,
                    value_hash: Hash::decode(r)?,
                }),
                TAG_NODE => evidence.push(Evidence::Node(Hash::decode(r)?)),
                other => return Err(CodecError::InvalidTag(other)),
            }
        }
        Ok(SmtProof {
            keys,
            pre,
            evidence,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn key(label: &str) -> Hash {
        hash_bytes(label.as_bytes())
    }

    /// Reference oracle: recompute the root from scratch, recursively, from
    /// the full sorted key/value-hash map — an independent code path from
    /// the incremental tree.
    fn reference_root(entries: &BTreeMap<Hash, Hash>) -> Hash {
        fn rec(depth: usize, entries: &[(&Hash, &Hash)]) -> Subtree {
            match entries.len() {
                0 => Subtree::Empty,
                1 => Subtree::One(leaf_hash(entries[0].0, entries[0].1)),
                _ => {
                    let split = entries.partition_point(|(k, _)| !k.bit(depth));
                    combine(
                        rec(depth + 1, &entries[..split]),
                        rec(depth + 1, &entries[split..]),
                    )
                }
            }
        }
        let list: Vec<(&Hash, &Hash)> = entries.iter().collect();
        rec(0, &list).hash()
    }

    #[test]
    fn empty_tree_root_is_zero() {
        assert_eq!(SparseMerkleTree::new().root(), Hash::ZERO);
    }

    #[test]
    fn single_key_root_is_leaf_hash() {
        let mut tree = SparseMerkleTree::new();
        tree.insert(key("a"), b"1".to_vec());
        assert_eq!(tree.root(), leaf_hash(&key("a"), &hash_bytes(b"1")));
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut tree = SparseMerkleTree::new();
        assert_eq!(tree.insert(key("a"), b"1".to_vec()), None);
        assert_eq!(tree.insert(key("a"), b"2".to_vec()), Some(b"1".to_vec()));
        assert_eq!(tree.get(&key("a")), Some(b"2".as_slice()));
        assert_eq!(tree.remove(&key("a")), Some(b"2".to_vec()));
        assert_eq!(tree.get(&key("a")), None);
        assert_eq!(tree.root(), Hash::ZERO);
    }

    #[test]
    fn root_matches_reference_oracle_incrementally() {
        let mut tree = SparseMerkleTree::new();
        let mut model = BTreeMap::new();
        for i in 0..200u32 {
            let k = key(&format!("k{i}"));
            let v = format!("v{i}").into_bytes();
            model.insert(k, hash_bytes(&v));
            tree.insert(k, v);
            assert_eq!(tree.root(), reference_root(&model), "after insert {i}");
        }
        for i in (0..200u32).step_by(3) {
            let k = key(&format!("k{i}"));
            model.remove(&k);
            tree.remove(&k);
            assert_eq!(tree.root(), reference_root(&model), "after remove {i}");
        }
    }

    #[test]
    fn order_independence() {
        let mut a = SparseMerkleTree::new();
        let mut b = SparseMerkleTree::new();
        for i in 0..50u32 {
            a.insert(key(&i.to_string()), vec![i as u8]);
        }
        for i in (0..50u32).rev() {
            b.insert(key(&i.to_string()), vec![i as u8]);
        }
        assert_eq!(a.root(), b.root());
    }

    #[test]
    fn proof_verifies_present_and_absent_keys() {
        let mut tree = SparseMerkleTree::new();
        for i in 0..32u32 {
            tree.insert(key(&format!("k{i}")), vec![i as u8]);
        }
        let present = key("k7");
        let absent = key("nope");
        let proof = tree.prove(&[present, absent]);
        proof.verify(&tree.root()).unwrap();
        assert_eq!(
            proof.pre_value_hash(&present).unwrap(),
            Some(hash_bytes([7u8]))
        );
        assert_eq!(proof.pre_value_hash(&absent).unwrap(), None);
        assert_eq!(
            proof.pre_value_hash(&key("uncovered")),
            Err(ProofError::MissingKey)
        );
    }

    #[test]
    fn proof_rejects_wrong_root() {
        let mut tree = SparseMerkleTree::new();
        tree.insert(key("a"), b"1".to_vec());
        let proof = tree.prove(&[key("a")]);
        assert_eq!(proof.verify(&Hash::ZERO), Err(ProofError::RootMismatch));
    }

    #[test]
    fn tampered_pre_value_rejected() {
        let mut tree = SparseMerkleTree::new();
        for i in 0..8u32 {
            tree.insert(key(&format!("k{i}")), vec![i as u8]);
        }
        let mut proof = tree.prove(&[key("k3")]);
        proof.pre[0] = Some(hash_bytes(b"forged"));
        assert_eq!(proof.verify(&tree.root()), Err(ProofError::RootMismatch));
    }

    #[test]
    fn updated_root_matches_real_update() {
        let mut tree = SparseMerkleTree::new();
        for i in 0..64u32 {
            tree.insert(key(&format!("k{i}")), vec![i as u8]);
        }
        let old_root = tree.root();
        let k_upd = key("k10");
        let k_new = key("brand-new");
        let k_del = key("k20");
        let proof = tree.prove(&[k_upd, k_new, k_del]);
        proof.verify(&old_root).unwrap();
        let predicted = proof
            .updated_root(&[
                (k_upd, Some(hash_bytes(b"updated"))),
                (k_new, Some(hash_bytes(b"created"))),
                (k_del, None),
            ])
            .unwrap();
        tree.insert(k_upd, b"updated".to_vec());
        tree.insert(k_new, b"created".to_vec());
        tree.remove(&k_del);
        assert_eq!(predicted, tree.root());
    }

    #[test]
    fn updated_root_rejects_uncovered_write() {
        let mut tree = SparseMerkleTree::new();
        tree.insert(key("a"), b"1".to_vec());
        let proof = tree.prove(&[key("a")]);
        assert_eq!(
            proof.updated_root(&[(key("b"), Some(Hash::ZERO))]),
            Err(ProofError::MissingKey)
        );
    }

    #[test]
    fn insert_into_empty_tree_via_proof() {
        let tree = SparseMerkleTree::new();
        let k = key("genesis");
        let proof = tree.prove(&[k]);
        proof.verify(&Hash::ZERO).unwrap();
        let new_root = proof.updated_root(&[(k, Some(hash_bytes(b"v")))]).unwrap();
        let mut real = SparseMerkleTree::new();
        real.insert(k, b"v".to_vec());
        assert_eq!(new_root, real.root());
    }

    #[test]
    fn proof_codec_round_trip() {
        let mut tree = SparseMerkleTree::new();
        for i in 0..20u32 {
            tree.insert(key(&format!("k{i}")), vec![i as u8]);
        }
        let proof = tree.prove(&[key("k3"), key("absent"), key("k19")]);
        let bytes = proof.to_encoded_bytes();
        let decoded = SmtProof::decode_all(&bytes).unwrap();
        assert_eq!(decoded, proof);
        decoded.verify(&tree.root()).unwrap();
    }

    #[test]
    fn evidence_cannot_be_dropped() {
        let mut tree = SparseMerkleTree::new();
        for i in 0..16u32 {
            tree.insert(key(&format!("k{i}")), vec![i as u8]);
        }
        let mut proof = tree.prove(&[key("k0")]);
        proof.evidence.pop();
        assert!(matches!(
            proof.verify(&tree.root()),
            Err(ProofError::Malformed(_)) | Err(ProofError::RootMismatch)
        ));
    }

    #[test]
    fn proof_size_is_compact() {
        let mut tree = SparseMerkleTree::new();
        for i in 0..1000u32 {
            tree.insert(key(&format!("k{i}")), vec![0]);
        }
        let proof = tree.prove(&[key("k500")]);
        // A single-key proof should be a few sibling hashes plus RLE-encoded
        // empty runs — far below a full 256-level path of hashes.
        assert!(proof.size_bytes() < 1200, "size = {}", proof.size_bytes());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Incremental root always equals the reference recomputation.
        #[test]
        fn prop_root_matches_reference(ops in proptest::collection::vec((any::<u8>(), any::<bool>()), 1..120)) {
            let mut tree = SparseMerkleTree::new();
            let mut model: BTreeMap<Hash, Hash> = BTreeMap::new();
            for (label, is_insert) in ops {
                let k = key(&format!("key-{}", label % 32));
                if is_insert {
                    let v = vec![label];
                    model.insert(k, hash_bytes(&v));
                    tree.insert(k, v);
                } else {
                    model.remove(&k);
                    tree.remove(&k);
                }
            }
            prop_assert_eq!(tree.root(), reference_root(&model));
        }

        /// Any key subset proves and verifies; stateless updates agree with
        /// the real tree.
        #[test]
        fn prop_stateless_update_agrees(
            initial in proptest::collection::btree_map(0u8..40, any::<u8>(), 0..30),
            touched in proptest::collection::btree_map(0u8..48, proptest::option::of(any::<u8>()), 1..10),
        ) {
            let mut tree = SparseMerkleTree::new();
            for (k, v) in &initial {
                tree.insert(key(&format!("key-{k}")), vec![*v]);
            }
            let old_root = tree.root();
            let touched_keys: Vec<Hash> =
                touched.keys().map(|k| key(&format!("key-{k}"))).collect();
            let proof = tree.prove(&touched_keys);
            prop_assert!(proof.verify(&old_root).is_ok());

            let writes: Vec<(Hash, Option<Hash>)> = touched
                .iter()
                .map(|(k, v)| {
                    (key(&format!("key-{k}")), v.map(|b| hash_bytes([b])))
                })
                .collect();
            let predicted = proof.updated_root(&writes).unwrap();

            for (k, v) in &touched {
                let kh = key(&format!("key-{k}"));
                match v {
                    Some(b) => { tree.insert(kh, vec![*b]); }
                    None => { tree.remove(&kh); }
                }
            }
            prop_assert_eq!(predicted, tree.root());
        }

        /// Proofs for random key sets never panic on junk roots.
        #[test]
        fn prop_verify_never_panics(
            n in 0usize..20,
            probe in 0u8..255,
        ) {
            let mut tree = SparseMerkleTree::new();
            for i in 0..n {
                tree.insert(key(&format!("k{i}")), vec![i as u8]);
            }
            let proof = tree.prove(&[key(&format!("probe-{probe}"))]);
            let _ = proof.verify(&hash_bytes([probe]));
        }
    }
}
