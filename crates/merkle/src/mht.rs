//! Static binary Merkle hash tree (Fig. 1 of the paper).
//!
//! Commits to an ordered list of byte strings. Used for the per-block
//! transaction root `H_tx` and for posting lists in the inverted keyword
//! index. Odd nodes at a level are *promoted* (carried up unpaired) rather
//! than duplicated, which avoids the classic CVE-2012-2459 duplication
//! ambiguity.

use dcert_primitives::codec::{decode_seq, encode_seq, Decode, Encode, Reader};
use dcert_primitives::error::CodecError;
use dcert_primitives::hash::{hash_concat, Hash};

use crate::domain;
use crate::ProofError;

fn leaf_hash(item: &[u8]) -> Hash {
    hash_concat([std::slice::from_ref(&domain::MHT_LEAF), item])
}

fn node_hash(left: &Hash, right: &Hash) -> Hash {
    hash_concat([
        std::slice::from_ref(&domain::MHT_NODE),
        left.as_bytes(),
        right.as_bytes(),
    ])
}

/// A static Merkle hash tree over a list of items.
///
/// The tree stores every level so that membership proofs are O(log n)
/// lookups. The empty tree has root [`Hash::ZERO`].
///
/// ```
/// use dcert_merkle::MerkleTree;
///
/// let tree = MerkleTree::from_items([b"tx1".as_slice(), b"tx2", b"tx3"]);
/// let proof = tree.prove(1).unwrap();
/// assert!(proof.verify(&tree.root(), b"tx2").is_ok());
/// assert!(proof.verify(&tree.root(), b"tx9").is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleTree {
    /// `levels[0]` = leaf hashes, last level = single root (unless empty).
    levels: Vec<Vec<Hash>>,
}

impl MerkleTree {
    /// Builds a tree over the given items.
    pub fn from_items<I, T>(items: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: AsRef<[u8]>,
    {
        let leaves: Vec<Hash> = items.into_iter().map(|i| leaf_hash(i.as_ref())).collect();
        Self::from_leaf_hashes(leaves)
    }

    /// Builds a tree over pre-hashed leaves.
    ///
    /// The caller is responsible for having produced the leaf hashes with a
    /// suitable domain-separated hash; [`MerkleTree::from_items`] does this
    /// automatically.
    pub fn from_leaf_hashes(leaves: Vec<Hash>) -> Self {
        let mut levels = vec![leaves];
        while let Some(prev) = levels.last() {
            if prev.len() <= 1 {
                break;
            }
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                match pair {
                    [l, r] => next.push(node_hash(l, r)),
                    // Odd node: promote unchanged. `chunks(2)` yields no
                    // other widths, so the catch-all arm is dead.
                    [single] => next.push(*single),
                    _ => continue,
                }
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels.first().map_or(0, Vec::len)
    }

    /// Returns `true` if the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The root commitment ([`Hash::ZERO`] for an empty tree).
    pub fn root(&self) -> Hash {
        self.levels
            .last()
            .and_then(|level| level.first())
            .copied()
            .unwrap_or(Hash::ZERO)
    }

    /// Produces a membership proof for the leaf at `index`.
    ///
    /// Returns `None` if `index` is out of bounds.
    pub fn prove(&self, index: usize) -> Option<MhtProof> {
        if index >= self.len() {
            return None;
        }
        let mut siblings = Vec::new();
        let mut pos = index;
        let above_leaves = self.levels.len().saturating_sub(1);
        for level in self.levels.iter().take(above_leaves) {
            // `None` where the node was promoted unpaired at this level.
            siblings.push(level.get(pos ^ 1).copied());
            pos /= 2;
        }
        Some(MhtProof {
            index: index as u64,
            leaf_count: self.len() as u64,
            siblings,
        })
    }
}

/// A membership proof for one leaf of a [`MerkleTree`].
///
/// The proof pins down the leaf *position* as well as its content, so it can
/// be used to authenticate "transaction #i of block b is tx".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MhtProof {
    index: u64,
    leaf_count: u64,
    /// Sibling hash per level; `None` where the node was promoted unpaired.
    siblings: Vec<Option<Hash>>,
}

impl MhtProof {
    /// The leaf index this proof speaks about.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// The total number of leaves in the committed tree.
    pub fn leaf_count(&self) -> u64 {
        self.leaf_count
    }

    /// Size of the proof when serialized, in bytes.
    pub fn size_bytes(&self) -> usize {
        self.encoded_len()
    }

    /// Verifies that `item` is the leaf at `self.index()` under `root`.
    ///
    /// # Errors
    ///
    /// Returns [`ProofError::RootMismatch`] when the recomputed root differs
    /// and [`ProofError::Malformed`] when the proof shape is inconsistent
    /// with the claimed tree size.
    pub fn verify(&self, root: &Hash, item: &[u8]) -> Result<(), ProofError> {
        self.verify_leaf_hash(root, leaf_hash(item))
    }

    /// Verifies a pre-hashed leaf. See [`MhtProof::verify`].
    pub fn verify_leaf_hash(&self, root: &Hash, leaf: Hash) -> Result<(), ProofError> {
        if self.leaf_count == 0 || self.index >= self.leaf_count {
            return Err(ProofError::Malformed("index out of bounds"));
        }
        // The number of levels above the leaves.
        let expected_levels = {
            let mut n = self.leaf_count;
            let mut levels = 0usize;
            while n > 1 {
                n = n.div_ceil(2);
                levels += 1;
            }
            levels
        };
        if self.siblings.len() != expected_levels {
            return Err(ProofError::Malformed("wrong number of proof levels"));
        }
        let mut acc = leaf;
        let mut pos = self.index;
        let mut width = self.leaf_count;
        for sibling in &self.siblings {
            match sibling {
                Some(sib) => {
                    // A sibling must actually exist at this level.
                    if (pos ^ 1) >= width {
                        return Err(ProofError::Malformed("sibling beyond level width"));
                    }
                    acc = if pos.is_multiple_of(2) {
                        node_hash(&acc, sib)
                    } else {
                        node_hash(sib, &acc)
                    };
                }
                None => {
                    // Promotion is only legal for the last odd node.
                    if !pos.is_multiple_of(2) || pos + 1 != width {
                        return Err(ProofError::Malformed("illegal promotion"));
                    }
                }
            }
            pos /= 2;
            width = width.div_ceil(2);
        }
        if acc == *root {
            Ok(())
        } else {
            Err(ProofError::RootMismatch)
        }
    }
}

impl Encode for MhtProof {
    fn encode(&self, out: &mut Vec<u8>) {
        self.index.encode(out);
        self.leaf_count.encode(out);
        encode_seq(&self.siblings, out);
    }
}

impl Decode for MhtProof {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(MhtProof {
            index: u64::decode(r)?,
            leaf_count: u64::decode(r)?,
            siblings: decode_seq(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn items(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("item-{i}").into_bytes()).collect()
    }

    #[test]
    fn empty_tree_has_zero_root() {
        let tree = MerkleTree::from_items(Vec::<Vec<u8>>::new());
        assert_eq!(tree.root(), Hash::ZERO);
        assert!(tree.is_empty());
        assert!(tree.prove(0).is_none());
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let tree = MerkleTree::from_items([b"only"]);
        assert_eq!(tree.root(), leaf_hash(b"only"));
        let proof = tree.prove(0).unwrap();
        assert!(proof.verify(&tree.root(), b"only").is_ok());
    }

    #[test]
    fn two_leaves_match_fig1_rule() {
        // h_root = H(dom || H(dom_l || a) || H(dom_l || b))
        let tree = MerkleTree::from_items([b"a".as_slice(), b"b"]);
        assert_eq!(tree.root(), node_hash(&leaf_hash(b"a"), &leaf_hash(b"b")));
    }

    #[test]
    fn proofs_verify_for_every_leaf_and_size() {
        for n in 1..=17 {
            let data = items(n);
            let tree = MerkleTree::from_items(&data);
            for (i, item) in data.iter().enumerate() {
                let proof = tree.prove(i).unwrap();
                proof
                    .verify(&tree.root(), item)
                    .unwrap_or_else(|e| panic!("n={n} i={i}: {e}"));
            }
        }
    }

    #[test]
    fn proof_rejects_wrong_item() {
        let tree = MerkleTree::from_items(items(8));
        let proof = tree.prove(3).unwrap();
        assert_eq!(
            proof.verify(&tree.root(), b"evil"),
            Err(ProofError::RootMismatch)
        );
    }

    #[test]
    fn proof_rejects_wrong_root() {
        let tree = MerkleTree::from_items(items(8));
        let proof = tree.prove(3).unwrap();
        assert!(proof.verify(&Hash::ZERO, b"item-3").is_err());
    }

    #[test]
    fn proof_does_not_transfer_between_positions() {
        let data = items(8);
        let tree = MerkleTree::from_items(&data);
        let proof = tree.prove(3).unwrap();
        // Same item content claimed at the proven position only.
        assert!(proof.verify(&tree.root(), &data[4]).is_err());
    }

    #[test]
    fn tampered_leaf_count_rejected() {
        let data = items(5);
        let tree = MerkleTree::from_items(&data);
        let mut proof = tree.prove(2).unwrap();
        proof.leaf_count = 4;
        assert!(proof.verify(&tree.root(), &data[2]).is_err());
    }

    #[test]
    fn odd_promotion_is_not_duplication() {
        // With duplication (Bitcoin-style), [a, b, b] and [a, b] can collide.
        // With promotion they must differ.
        let t2 = MerkleTree::from_items([b"a".as_slice(), b"b"]);
        let t3 = MerkleTree::from_items([b"a".as_slice(), b"b", b"b"]);
        assert_ne!(t2.root(), t3.root());
    }

    #[test]
    fn proof_codec_round_trip() {
        let tree = MerkleTree::from_items(items(11));
        let proof = tree.prove(10).unwrap();
        let bytes = proof.to_encoded_bytes();
        assert_eq!(MhtProof::decode_all(&bytes).unwrap(), proof);
    }

    proptest! {
        #[test]
        fn prop_any_leaf_verifies(n in 1usize..80, pick in 0usize..80) {
            let pick = pick % n;
            let data = items(n);
            let tree = MerkleTree::from_items(&data);
            let proof = tree.prove(pick).unwrap();
            prop_assert!(proof.verify(&tree.root(), &data[pick]).is_ok());
        }

        #[test]
        fn prop_distinct_lists_have_distinct_roots(
            a in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..8), 1..8),
            b in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..8), 1..8),
        ) {
            let ta = MerkleTree::from_items(&a);
            let tb = MerkleTree::from_items(&b);
            if a != b {
                prop_assert_ne!(ta.root(), tb.root());
            } else {
                prop_assert_eq!(ta.root(), tb.root());
            }
        }
    }
}
