//! Static binary Merkle hash tree (Fig. 1 of the paper).
//!
//! Commits to an ordered list of byte strings. Used for the per-block
//! transaction root `H_tx` and for posting lists in the inverted keyword
//! index. Odd nodes at a level are *promoted* (carried up unpaired) rather
//! than duplicated, which avoids the classic CVE-2012-2459 duplication
//! ambiguity.
//!
//! # Parallel construction
//!
//! Tree building is a pure per-level map (`next[i] = H(prev[2i] ||
//! prev[2i+1])`), so it parallelises without changing a single output
//! byte: [`MerkleTree::from_leaf_hashes_with_threads`] splits each level
//! into contiguous chunks hashed by scoped threads and reassembles them
//! in order. The result is structurally byte-identical to the sequential
//! build for every leaf count and thread count — pinned by
//! `tests/parallel_merkle.rs`. The process-global default used by
//! [`MerkleTree::from_items`]/[`MerkleTree::from_leaf_hashes`] is set
//! with [`set_build_threads`].

use std::sync::atomic::{AtomicUsize, Ordering};

use dcert_primitives::codec::{decode_seq, encode_seq, Decode, Encode, Reader};
use dcert_primitives::error::CodecError;
use dcert_primitives::hash::{Hash, Hasher};

use crate::domain;
use crate::ops::{self, OpNode, ProofOp};
use crate::ProofError;

fn leaf_hash(item: &[u8]) -> Hash {
    Hasher::with_domain(domain::MHT_LEAF).chain(item).finalize()
}

fn node_hash(left: &Hash, right: &Hash) -> Hash {
    Hasher::with_domain(domain::MHT_NODE)
        .chain(left)
        .chain(right)
        .finalize()
}

/// Process-global default thread count for tree construction. `1` keeps
/// every build sequential (the seed behaviour).
static BUILD_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Hard cap on worker threads per build; keeps a misconfigured knob from
/// spawning an unbounded number of scoped threads per level.
const MAX_BUILD_THREADS: usize = 64;

/// Minimum nodes at a level (or leaves in a batch) before chunked
/// parallel hashing is worth the thread hand-off; below this the
/// sequential loop wins.
const PARALLEL_MIN_NODES: usize = 1024;

/// Sets the process-global default thread count used by
/// [`MerkleTree::from_items`] and [`MerkleTree::from_leaf_hashes`].
///
/// Values are clamped to `1..=64`. The output is byte-identical for every
/// setting, so this is purely a throughput knob — racing configurations
/// across threads cannot change any digest.
pub fn set_build_threads(threads: usize) {
    BUILD_THREADS.store(threads.clamp(1, MAX_BUILD_THREADS), Ordering::Relaxed);
}

/// Returns the process-global default thread count for tree construction.
pub fn build_threads() -> usize {
    BUILD_THREADS.load(Ordering::Relaxed)
}

/// Computes one tree level above `prev`, hashing adjacent pairs and
/// promoting a trailing odd node unchanged. With `threads > 1` and a wide
/// enough level, pair hashing is split across scoped threads; chunk
/// boundaries fall on pair boundaries, so the output is byte-identical to
/// the sequential loop.
fn build_level(prev: &[Hash], threads: usize) -> Vec<Hash> {
    let pairs = prev.len() / 2;
    let (paired, promoted) = prev.split_at(pairs * 2);
    let mut next = vec![Hash::ZERO; pairs];
    if threads > 1 && prev.len() >= PARALLEL_MIN_NODES {
        let chunk_pairs = pairs.div_ceil(threads).max(1);
        std::thread::scope(|scope| {
            for (out_chunk, in_chunk) in next
                .chunks_mut(chunk_pairs)
                .zip(paired.chunks(chunk_pairs * 2))
            {
                scope.spawn(move || {
                    for (out, pair) in out_chunk.iter_mut().zip(in_chunk.chunks_exact(2)) {
                        if let [l, r] = pair {
                            *out = node_hash(l, r);
                        }
                    }
                });
            }
        });
    } else {
        for (out, pair) in next.iter_mut().zip(paired.chunks_exact(2)) {
            if let [l, r] = pair {
                *out = node_hash(l, r);
            }
        }
    }
    next.extend(promoted.iter().copied());
    next
}

/// A static Merkle hash tree over a list of items.
///
/// The tree stores every level so that membership proofs are O(log n)
/// lookups. The empty tree has root [`Hash::ZERO`].
///
/// ```
/// use dcert_merkle::MerkleTree;
///
/// let tree = MerkleTree::from_items([b"tx1".as_slice(), b"tx2", b"tx3"]);
/// let proof = tree.prove(1).unwrap();
/// assert!(proof.verify(&tree.root(), b"tx2").is_ok());
/// assert!(proof.verify(&tree.root(), b"tx9").is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleTree {
    /// `levels[0]` = leaf hashes, last level = single root (unless empty).
    levels: Vec<Vec<Hash>>,
}

impl MerkleTree {
    /// Builds a tree over the given items, using the process-global
    /// thread default (see [`set_build_threads`]).
    pub fn from_items<I, T>(items: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: AsRef<[u8]> + Sync,
    {
        Self::from_items_with_threads(items, build_threads())
    }

    /// Builds a tree over the given items with an explicit thread count.
    ///
    /// Leaf hashing and every level above it are chunk-parallelised when
    /// `threads > 1` and the batch is wide enough; the resulting tree is
    /// byte-identical to the sequential build.
    pub fn from_items_with_threads<I, T>(items: I, threads: usize) -> Self
    where
        I: IntoIterator<Item = T>,
        T: AsRef<[u8]> + Sync,
    {
        let threads = threads.clamp(1, MAX_BUILD_THREADS);
        let items: Vec<T> = items.into_iter().collect();
        let leaves: Vec<Hash> = if threads > 1 && items.len() >= PARALLEL_MIN_NODES {
            let chunk = items.len().div_ceil(threads).max(1);
            let mut leaves = vec![Hash::ZERO; items.len()];
            std::thread::scope(|scope| {
                for (out_chunk, in_chunk) in leaves.chunks_mut(chunk).zip(items.chunks(chunk)) {
                    scope.spawn(move || {
                        for (out, item) in out_chunk.iter_mut().zip(in_chunk) {
                            *out = leaf_hash(item.as_ref());
                        }
                    });
                }
            });
            leaves
        } else {
            items.iter().map(|i| leaf_hash(i.as_ref())).collect()
        };
        Self::from_leaf_hashes_with_threads(leaves, threads)
    }

    /// Builds a tree over pre-hashed leaves, using the process-global
    /// thread default (see [`set_build_threads`]).
    ///
    /// The caller is responsible for having produced the leaf hashes with a
    /// suitable domain-separated hash; [`MerkleTree::from_items`] does this
    /// automatically.
    pub fn from_leaf_hashes(leaves: Vec<Hash>) -> Self {
        Self::from_leaf_hashes_with_threads(leaves, build_threads())
    }

    /// Builds a tree over pre-hashed leaves with an explicit thread count.
    ///
    /// Output is byte-identical to the sequential build for every leaf
    /// count and thread count (`tests/parallel_merkle.rs` pins this).
    pub fn from_leaf_hashes_with_threads(leaves: Vec<Hash>, threads: usize) -> Self {
        let threads = threads.clamp(1, MAX_BUILD_THREADS);
        let mut levels = vec![leaves];
        while let Some(prev) = levels.last() {
            if prev.len() <= 1 {
                break;
            }
            let next = build_level(prev, threads);
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels.first().map_or(0, Vec::len)
    }

    /// Returns `true` if the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The root commitment ([`Hash::ZERO`] for an empty tree).
    pub fn root(&self) -> Hash {
        self.levels
            .last()
            .and_then(|level| level.first())
            .copied()
            .unwrap_or(Hash::ZERO)
    }

    /// Produces a membership proof for the leaf at `index`.
    ///
    /// Returns `None` if `index` is out of bounds.
    pub fn prove(&self, index: usize) -> Option<MhtProof> {
        if index >= self.len() {
            return None;
        }
        let mut siblings = Vec::new();
        let mut pos = index;
        let above_leaves = self.levels.len().saturating_sub(1);
        for level in self.levels.iter().take(above_leaves) {
            // `None` where the node was promoted unpaired at this level.
            siblings.push(level.get(pos ^ 1).copied());
            pos /= 2;
        }
        Some(MhtProof {
            index: index as u64,
            leaf_count: self.len() as u64,
            siblings,
        })
    }

    /// Emits a single op-stream proof for the contiguous leaf range
    /// `[first, first + count)` — one program replacing `count`
    /// independent [`MhtProof`]s, sharing every interior hash between
    /// adjacent leaves.
    ///
    /// Returns `None` for an empty range or one out of bounds.
    pub fn prove_range_ops(&self, first: usize, count: usize) -> Option<MhtOpProof> {
        let len = self.len();
        if count == 0 || first >= len || len - first < count {
            return None;
        }
        let mut ops = Vec::new();
        let top = self.levels.len().saturating_sub(1);
        self.emit_range_ops(top, 0, first, first + count - 1, &mut ops);
        Some(MhtOpProof {
            first: first as u64,
            leaf_count: len as u64,
            ops,
        })
    }

    fn emit_range_ops(
        &self,
        level: usize,
        pos: usize,
        lo: usize,
        hi: usize,
        ops: &mut Vec<ProofOp>,
    ) {
        let hash = self
            .levels
            .get(level)
            .and_then(|l| l.get(pos))
            .copied()
            .unwrap_or(Hash::ZERO);
        let span_lo = (pos as u128) << level;
        let span_hi = (((pos as u128) + 1) << level).saturating_sub(1);
        if span_hi < lo as u128 || span_lo > hi as u128 {
            ops.push(ProofOp::Push(OpNode::MhtPruned(hash)));
            return;
        }
        if level == 0 {
            ops.push(ProofOp::Push(OpNode::MhtLeaf(hash)));
            return;
        }
        let below = self.levels.get(level - 1).map_or(0, Vec::len);
        let left = 2 * pos;
        if left + 1 >= below {
            // Promoted odd node: the partial tree collapses it into its
            // single child, exactly as the hash does.
            self.emit_range_ops(level - 1, left, lo, hi, ops);
            return;
        }
        self.emit_range_ops(level - 1, left, lo, hi, ops);
        ops.push(ProofOp::Push(OpNode::MhtNode));
        ops.push(ProofOp::Parent);
        self.emit_range_ops(level - 1, left + 1, lo, hi, ops);
        ops.push(ProofOp::Child);
    }
}

/// A membership proof for one leaf of a [`MerkleTree`].
///
/// The proof pins down the leaf *position* as well as its content, so it can
/// be used to authenticate "transaction #i of block b is tx".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MhtProof {
    index: u64,
    leaf_count: u64,
    /// Sibling hash per level; `None` where the node was promoted unpaired.
    siblings: Vec<Option<Hash>>,
}

impl MhtProof {
    /// The leaf index this proof speaks about.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// The total number of leaves in the committed tree.
    pub fn leaf_count(&self) -> u64 {
        self.leaf_count
    }

    /// Size of the proof when serialized, in bytes.
    pub fn size_bytes(&self) -> usize {
        self.encoded_len()
    }

    /// Verifies that `item` is the leaf at `self.index()` under `root`.
    ///
    /// # Errors
    ///
    /// Returns [`ProofError::RootMismatch`] when the recomputed root differs
    /// and [`ProofError::Malformed`] when the proof shape is inconsistent
    /// with the claimed tree size.
    pub fn verify(&self, root: &Hash, item: &[u8]) -> Result<(), ProofError> {
        self.verify_leaf_hash(root, leaf_hash(item))
    }

    /// Verifies a pre-hashed leaf. See [`MhtProof::verify`].
    pub fn verify_leaf_hash(&self, root: &Hash, leaf: Hash) -> Result<(), ProofError> {
        if self.leaf_count == 0 || self.index >= self.leaf_count {
            return Err(ProofError::Malformed("index out of bounds"));
        }
        // The number of levels above the leaves.
        let expected_levels = {
            let mut n = self.leaf_count;
            let mut levels = 0usize;
            while n > 1 {
                n = n.div_ceil(2);
                levels += 1;
            }
            levels
        };
        if self.siblings.len() != expected_levels {
            return Err(ProofError::Malformed("wrong number of proof levels"));
        }
        let mut acc = leaf;
        let mut pos = self.index;
        let mut width = self.leaf_count;
        for sibling in &self.siblings {
            match sibling {
                Some(sib) => {
                    // A sibling must actually exist at this level.
                    if (pos ^ 1) >= width {
                        return Err(ProofError::Malformed("sibling beyond level width"));
                    }
                    acc = if pos.is_multiple_of(2) {
                        node_hash(&acc, sib)
                    } else {
                        node_hash(sib, &acc)
                    };
                }
                None => {
                    // Promotion is only legal for the last odd node.
                    if !pos.is_multiple_of(2) || pos + 1 != width {
                        return Err(ProofError::Malformed("illegal promotion"));
                    }
                }
            }
            pos /= 2;
            width = width.div_ceil(2);
        }
        if acc == *root {
            Ok(())
        } else {
            Err(ProofError::RootMismatch)
        }
    }
}

/// An op-stream proof for a contiguous leaf range of a [`MerkleTree`].
///
/// The verifier recomputes the tree *shape* from `leaf_count` alone
/// (level widths, promotion points), so the program cannot lie about
/// structure: every node of the reconstructed partial tree is checked
/// against its expected coordinate, opened leaves must cover exactly
/// `[first, first + k)` in order, and everything else must be pruned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MhtOpProof {
    first: u64,
    leaf_count: u64,
    ops: Vec<ProofOp>,
}

impl MhtOpProof {
    /// First leaf index the proof speaks about.
    pub fn first(&self) -> u64 {
        self.first
    }

    /// The total number of leaves in the committed tree.
    pub fn leaf_count(&self) -> u64 {
        self.leaf_count
    }

    /// The proof program.
    pub fn ops(&self) -> &[ProofOp] {
        &self.ops
    }

    /// Serialized size in bytes (exactly the encoded length).
    pub fn size_bytes(&self) -> usize {
        self.encoded_len()
    }

    /// Verifies that `items` are the leaves at positions
    /// `first..first + items.len()` under `root`.
    ///
    /// # Errors
    ///
    /// [`ProofError`] on root mismatch, malformed programs, or any
    /// structural lie (pruned in-range subtree, opened out-of-range
    /// leaf, wrong shape for the claimed `leaf_count`).
    pub fn verify<T: AsRef<[u8]>>(&self, root: &Hash, items: &[T]) -> Result<(), ProofError> {
        let hashes: Vec<Hash> = items.iter().map(|i| leaf_hash(i.as_ref())).collect();
        self.verify_leaf_hashes(root, &hashes)
    }

    /// Verifies pre-hashed leaves. See [`MhtOpProof::verify`].
    pub fn verify_leaf_hashes(&self, root: &Hash, leaves: &[Hash]) -> Result<(), ProofError> {
        if leaves.is_empty() {
            return Err(ProofError::Malformed("empty leaf range"));
        }
        let count = leaves.len() as u64;
        if self.leaf_count == 0
            || self.first >= self.leaf_count
            || self.leaf_count - self.first < count
        {
            return Err(ProofError::Malformed("leaf range out of bounds"));
        }
        let partial = ops::execute(&self.ops)?;
        let mut widths = vec![self.leaf_count];
        while let Some(&w) = widths.last() {
            if w <= 1 {
                break;
            }
            widths.push(w.div_ceil(2));
        }
        let top = widths.len().saturating_sub(1);
        let mut expect = leaves.iter();
        let computed = Self::walk(
            &partial,
            top,
            0,
            &widths,
            self.first,
            self.first + count - 1,
            &mut expect,
        )?;
        if expect.next().is_some() {
            return Err(ProofError::Incomplete("results exceed proven range"));
        }
        if computed == *root {
            Ok(())
        } else {
            Err(ProofError::RootMismatch)
        }
    }

    fn walk(
        p: &ops::Partial,
        level: usize,
        pos: u64,
        widths: &[u64],
        lo: u64,
        hi: u64,
        expect: &mut std::slice::Iter<'_, Hash>,
    ) -> Result<Hash, ProofError> {
        let span_lo = (pos as u128) << level;
        let span_hi = (((pos as u128) + 1) << level).saturating_sub(1);
        let in_range = !(span_hi < lo as u128 || span_lo > hi as u128);
        if level == 0 {
            return match &p.node {
                OpNode::MhtLeaf(h) => {
                    if !in_range {
                        return Err(ProofError::Malformed("opened leaf outside range"));
                    }
                    let want = expect
                        .next()
                        .ok_or(ProofError::Incomplete("more opened leaves than results"))?;
                    if h != want {
                        return Err(ProofError::Incomplete("leaf hash mismatch"));
                    }
                    Ok(*h)
                }
                OpNode::MhtPruned(h) => {
                    if in_range {
                        return Err(ProofError::Incomplete("pruned leaf in proven range"));
                    }
                    Ok(*h)
                }
                _ => Err(ProofError::Malformed("op node family mismatch")),
            };
        }
        let below = *widths
            .get(level - 1)
            .ok_or(ProofError::Malformed("level underflow"))?;
        let left = 2 * pos;
        if left + 1 >= below {
            // Promoted coordinate: the hash (and hence the partial-tree
            // node) is the single child's, one level down.
            return Self::walk(p, level - 1, left, widths, lo, hi, expect);
        }
        match &p.node {
            OpNode::MhtPruned(h) => {
                if in_range {
                    return Err(ProofError::Incomplete(
                        "pruned subtree overlaps proven range",
                    ));
                }
                Ok(*h)
            }
            OpNode::MhtNode => {
                let lc = p
                    .children
                    .first()
                    .ok_or(ProofError::Malformed("mht op node needs two children"))?;
                let rc = p
                    .children
                    .get(1)
                    .ok_or(ProofError::Malformed("mht op node needs two children"))?;
                let lh = Self::walk(lc, level - 1, left, widths, lo, hi, expect)?;
                let rh = Self::walk(rc, level - 1, left + 1, widths, lo, hi, expect)?;
                Ok(node_hash(&lh, &rh))
            }
            OpNode::MhtLeaf(_) => Err(ProofError::Malformed("leaf at internal level")),
            _ => Err(ProofError::Malformed("op node family mismatch")),
        }
    }
}

impl Encode for MhtOpProof {
    fn encode(&self, out: &mut Vec<u8>) {
        self.first.encode(out);
        self.leaf_count.encode(out);
        encode_seq(&self.ops, out);
    }
}

impl Decode for MhtOpProof {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(MhtOpProof {
            first: u64::decode(r)?,
            leaf_count: u64::decode(r)?,
            ops: decode_seq(r)?,
        })
    }
}

impl Encode for MhtProof {
    fn encode(&self, out: &mut Vec<u8>) {
        self.index.encode(out);
        self.leaf_count.encode(out);
        encode_seq(&self.siblings, out);
    }
}

impl Decode for MhtProof {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(MhtProof {
            index: u64::decode(r)?,
            leaf_count: u64::decode(r)?,
            siblings: decode_seq(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn items(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("item-{i}").into_bytes()).collect()
    }

    #[test]
    fn empty_tree_has_zero_root() {
        let tree = MerkleTree::from_items(Vec::<Vec<u8>>::new());
        assert_eq!(tree.root(), Hash::ZERO);
        assert!(tree.is_empty());
        assert!(tree.prove(0).is_none());
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let tree = MerkleTree::from_items([b"only"]);
        assert_eq!(tree.root(), leaf_hash(b"only"));
        let proof = tree.prove(0).unwrap();
        assert!(proof.verify(&tree.root(), b"only").is_ok());
    }

    #[test]
    fn two_leaves_match_fig1_rule() {
        // h_root = H(dom || H(dom_l || a) || H(dom_l || b))
        let tree = MerkleTree::from_items([b"a".as_slice(), b"b"]);
        assert_eq!(tree.root(), node_hash(&leaf_hash(b"a"), &leaf_hash(b"b")));
    }

    #[test]
    fn proofs_verify_for_every_leaf_and_size() {
        for n in 1..=17 {
            let data = items(n);
            let tree = MerkleTree::from_items(&data);
            for (i, item) in data.iter().enumerate() {
                let proof = tree.prove(i).unwrap();
                proof
                    .verify(&tree.root(), item)
                    .unwrap_or_else(|e| panic!("n={n} i={i}: {e}"));
            }
        }
    }

    #[test]
    fn proof_rejects_wrong_item() {
        let tree = MerkleTree::from_items(items(8));
        let proof = tree.prove(3).unwrap();
        assert_eq!(
            proof.verify(&tree.root(), b"evil"),
            Err(ProofError::RootMismatch)
        );
    }

    #[test]
    fn proof_rejects_wrong_root() {
        let tree = MerkleTree::from_items(items(8));
        let proof = tree.prove(3).unwrap();
        assert!(proof.verify(&Hash::ZERO, b"item-3").is_err());
    }

    #[test]
    fn proof_does_not_transfer_between_positions() {
        let data = items(8);
        let tree = MerkleTree::from_items(&data);
        let proof = tree.prove(3).unwrap();
        // Same item content claimed at the proven position only.
        assert!(proof.verify(&tree.root(), &data[4]).is_err());
    }

    #[test]
    fn tampered_leaf_count_rejected() {
        let data = items(5);
        let tree = MerkleTree::from_items(&data);
        let mut proof = tree.prove(2).unwrap();
        proof.leaf_count = 4;
        assert!(proof.verify(&tree.root(), &data[2]).is_err());
    }

    #[test]
    fn odd_promotion_is_not_duplication() {
        // With duplication (Bitcoin-style), [a, b, b] and [a, b] can collide.
        // With promotion they must differ.
        let t2 = MerkleTree::from_items([b"a".as_slice(), b"b"]);
        let t3 = MerkleTree::from_items([b"a".as_slice(), b"b", b"b"]);
        assert_ne!(t2.root(), t3.root());
    }

    #[test]
    fn proof_codec_round_trip() {
        let tree = MerkleTree::from_items(items(11));
        let proof = tree.prove(10).unwrap();
        let bytes = proof.to_encoded_bytes();
        assert_eq!(MhtProof::decode_all(&bytes).unwrap(), proof);
    }

    #[test]
    fn range_ops_verify_for_every_span_and_size() {
        for n in 1..=17usize {
            let data = items(n);
            let tree = MerkleTree::from_items(&data);
            for first in 0..n {
                for count in 1..=(n - first) {
                    let proof = tree.prove_range_ops(first, count).unwrap();
                    proof
                        .verify(&tree.root(), &data[first..first + count])
                        .unwrap_or_else(|e| panic!("n={n} first={first} count={count}: {e}"));
                    assert_eq!(proof.size_bytes(), proof.to_encoded_bytes().len());
                }
            }
        }
    }

    #[test]
    fn range_ops_out_of_bounds_is_none() {
        let tree = MerkleTree::from_items(items(5));
        assert!(tree.prove_range_ops(0, 0).is_none());
        assert!(tree.prove_range_ops(5, 1).is_none());
        assert!(tree.prove_range_ops(3, 3).is_none());
        assert!(MerkleTree::from_items(Vec::<Vec<u8>>::new())
            .prove_range_ops(0, 1)
            .is_none());
    }

    #[test]
    fn range_ops_reject_tampering_and_truncation() {
        let data = items(11);
        let tree = MerkleTree::from_items(&data);
        let proof = tree.prove_range_ops(2, 4).unwrap();
        proof.verify(&tree.root(), &data[2..6]).unwrap();

        // Wrong item content at a proven position.
        let mut forged = data[2..6].to_vec();
        forged[1] = b"evil".to_vec();
        assert!(proof.verify(&tree.root(), &forged).is_err());

        // Truncated result set: the still-opened tail leaves fall
        // outside the narrower claimed range.
        assert!(matches!(
            proof.verify(&tree.root(), &data[2..4]),
            Err(ProofError::Malformed(_)) | Err(ProofError::Incomplete(_))
        ));

        // Extended result set: the extra positions are pruned.
        assert!(matches!(
            proof.verify(&tree.root(), &data[2..8]),
            Err(ProofError::Incomplete(_))
        ));

        // Wrong root.
        assert!(proof.verify(&Hash::ZERO, &data[2..6]).is_err());
    }

    #[test]
    fn range_ops_codec_round_trip() {
        let data = items(9);
        let tree = MerkleTree::from_items(&data);
        let proof = tree.prove_range_ops(3, 4).unwrap();
        let decoded = MhtOpProof::decode_all(&proof.to_encoded_bytes()).unwrap();
        assert_eq!(decoded, proof);
        decoded.verify(&tree.root(), &data[3..7]).unwrap();
    }

    #[test]
    fn range_ops_share_interior_hashes() {
        // One program for k adjacent leaves beats k separate proofs.
        let data = items(256);
        let tree = MerkleTree::from_items(&data);
        for k in [4usize, 8, 16] {
            let op = tree.prove_range_ops(100, k).unwrap();
            let per_path: usize = (100..100 + k)
                .map(|i| tree.prove(i).unwrap().size_bytes())
                .sum();
            assert!(
                op.size_bytes() < per_path,
                "k={k}: op={} per-path={per_path}",
                op.size_bytes()
            );
        }
    }

    #[test]
    fn build_threads_knob_clamps_and_round_trips() {
        let original = build_threads();
        set_build_threads(0);
        assert_eq!(build_threads(), 1);
        set_build_threads(4);
        assert_eq!(build_threads(), 4);
        set_build_threads(usize::MAX);
        assert_eq!(build_threads(), MAX_BUILD_THREADS);
        set_build_threads(original);
    }

    #[test]
    fn explicit_thread_counts_agree_on_small_trees() {
        // Below PARALLEL_MIN_NODES the parallel gate stays closed, but the
        // delegation path must still produce the identical tree.
        for n in [0usize, 1, 2, 3, 7, 33] {
            let data = items(n);
            let sequential = MerkleTree::from_items_with_threads(&data, 1);
            for threads in [2usize, 4, 8] {
                assert_eq!(
                    MerkleTree::from_items_with_threads(&data, threads),
                    sequential,
                    "n={n} threads={threads}"
                );
            }
        }
    }

    #[cfg(not(miri))] // wide enough to open the parallel gate; too slow under Miri
    #[test]
    fn parallel_gate_produces_identical_wide_trees() {
        let data = items(1100);
        let sequential = MerkleTree::from_items_with_threads(&data, 1);
        for threads in [2usize, 3, 4, 8] {
            let parallel = MerkleTree::from_items_with_threads(&data, threads);
            assert_eq!(parallel, sequential, "threads={threads}");
            let leaves: Vec<Hash> = data.iter().map(|i| leaf_hash(i)).collect();
            assert_eq!(
                MerkleTree::from_leaf_hashes_with_threads(leaves, threads),
                sequential,
                "pre-hashed, threads={threads}"
            );
        }
    }

    proptest! {
        #[test]
        fn prop_any_leaf_verifies(n in 1usize..80, pick in 0usize..80) {
            let pick = pick % n;
            let data = items(n);
            let tree = MerkleTree::from_items(&data);
            let proof = tree.prove(pick).unwrap();
            prop_assert!(proof.verify(&tree.root(), &data[pick]).is_ok());
        }

        #[test]
        fn prop_distinct_lists_have_distinct_roots(
            a in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..8), 1..8),
            b in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..8), 1..8),
        ) {
            let ta = MerkleTree::from_items(&a);
            let tb = MerkleTree::from_items(&b);
            if a != b {
                prop_assert_ne!(ta.root(), tb.root());
            } else {
                prop_assert_eq!(ta.root(), tb.root());
            }
        }
    }
}
