//! Authenticated data structures for the DCert framework.
//!
//! The paper builds every integrity argument on Merkle-style commitments
//! (Section 2.1). This crate implements, from scratch, each structure the
//! system needs:
//!
//! - [`mht`]: the classic static **Merkle hash tree** over a list of items —
//!   used for the per-block transaction commitment `H_tx` and for posting
//!   lists in the inverted keyword index.
//! - [`smt`]: a compact **sparse Merkle tree** over an unbounded key space —
//!   the global-state commitment `H_state`. Crucially it supports *stateless*
//!   multiproofs ([`smt::SmtProof`]): given only a proof, a verifier (the
//!   enclave in Algorithm 2) can (a) authenticate a read set, (b)
//!   authenticate the neighborhood of a write set, and (c) compute the
//!   post-write root without holding the tree — the `verify_mht`/`update`
//!   pair of the paper.
//! - [`mpt`]: a hex-nibble **Merkle Patricia trie** with membership and
//!   non-membership proofs — the upper level of the two-level historical
//!   query index (Fig. 5).
//! - [`mbtree`]: a **Merkle B-tree** (B+-tree with per-entry digests, after
//!   Li et al. SIGMOD'06) keyed by timestamp — the lower level of the
//!   two-level index, answering authenticated time-window range queries with
//!   completeness guarantees.
//!
//! All node hashes are domain-separated (see [`domain`]) so that a node of
//! one structure can never be confused with a node of another.

#![forbid(unsafe_code)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)
)]

pub mod aggmb;
pub mod mbtree;
pub mod mht;
pub mod mpt;
pub mod ops;
pub mod smt;

pub use aggmb::{AggMbTree, AggProof, Aggregate};
pub use mbtree::{MbAppendProof, MbRangeProof, MbTree};
pub use mht::{build_threads, set_build_threads, MerkleTree, MhtOpProof, MhtProof};
pub use mpt::{Mpt, MptProof};
pub use ops::{AggOpProof, MbOpProof, OpNode, ProofOp, MAX_OP_STACK, MAX_PROOF_DEPTH};
pub use smt::{SmtProof, SparseMerkleTree};

/// Which wire encoding a proof uses.
///
/// Both encodings share verification semantics — the op-stream executor
/// lifts its reconstructed partial tree into the per-path verifier's
/// node form — so the choice is purely a wire-size/batching trade-off:
/// per-path pays k·log n hashes for a window of k adjacent keys, the op
/// stream shares every interior hash across the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProofEncoding {
    /// One pruned tree (or sibling path) per query — the original
    /// encoding; smallest for point queries.
    #[default]
    PerPath,
    /// A single stack-machine program covering the whole key set — see
    /// [`ops`]; strictly smaller for contiguous windows of four or more
    /// adjacent keys.
    OpStream,
}

/// Domain-separation tags for node hashing.
///
/// Each authenticated structure hashes its nodes as
/// `H(tag || payload)`, with a tag unique to the structure and node kind.
pub mod domain {
    /// Sparse-Merkle-tree leaf: `H(tag || key || value_hash)`.
    pub const SMT_LEAF: u8 = 0x01;
    /// Sparse-Merkle-tree branch: `H(tag || left || right)`.
    pub const SMT_BRANCH: u8 = 0x02;
    /// Static Merkle-tree leaf: `H(tag || item)`.
    pub const MHT_LEAF: u8 = 0x03;
    /// Static Merkle-tree inner node: `H(tag || left || right)`.
    pub const MHT_NODE: u8 = 0x04;
    /// Patricia-trie leaf node.
    pub const MPT_LEAF: u8 = 0x05;
    /// Patricia-trie extension node.
    pub const MPT_EXT: u8 = 0x06;
    /// Patricia-trie branch node.
    pub const MPT_BRANCH: u8 = 0x07;
    /// Merkle-B-tree leaf node.
    pub const MBT_LEAF: u8 = 0x08;
    /// Merkle-B-tree internal node.
    pub const MBT_NODE: u8 = 0x09;
    /// Authenticated skip-list node (used by the LineageChain baseline).
    pub const SKIP_NODE: u8 = 0x0a;
    /// Inverted-index dictionary entry.
    pub const INV_ENTRY: u8 = 0x0b;
}

/// Errors returned when verifying or applying Merkle proofs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofError {
    /// The recomputed root does not match the trusted commitment.
    RootMismatch,
    /// The proof is structurally malformed (wrong arity, missing evidence).
    Malformed(&'static str),
    /// The proof does not cover a key that the operation needs.
    MissingKey,
    /// The claimed result set is inconsistent with the proof contents
    /// (e.g. an omitted in-range entry in a range query).
    Incomplete(&'static str),
}

impl std::fmt::Display for ProofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProofError::RootMismatch => write!(f, "recomputed root does not match commitment"),
            ProofError::Malformed(what) => write!(f, "malformed proof: {what}"),
            ProofError::MissingKey => write!(f, "proof does not cover a required key"),
            ProofError::Incomplete(what) => write!(f, "incomplete result: {what}"),
        }
    }
}

impl std::error::Error for ProofError {}
