//! SHA-256 digests and domain-separated hashing helpers.

use std::fmt;

use serde::{Deserialize, Serialize};
use sha2::{Digest, Sha256};

use crate::codec::{Decode, Encode, Reader};
use crate::error::CodecError;
use crate::hex;

/// A 32-byte SHA-256 digest.
///
/// `Hash` is the universal commitment type of the framework: block digests,
/// Merkle roots, enclave measurements, and certificate digests are all
/// `Hash`es.
///
/// ```
/// use dcert_primitives::hash::hash_bytes;
///
/// let h = hash_bytes(b"abc");
/// assert_eq!(
///     h.to_string(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Hash([u8; 32]);

impl Hash {
    /// The all-zero digest, used as the "absent" marker (e.g. empty subtree).
    pub const ZERO: Hash = Hash([0u8; 32]);

    /// Number of bytes in a digest.
    pub const LEN: usize = 32;

    /// Wraps raw digest bytes.
    pub const fn from_bytes(bytes: [u8; 32]) -> Self {
        Hash(bytes)
    }

    /// Returns the digest as a byte slice.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Returns the raw digest array.
    pub const fn to_array(self) -> [u8; 32] {
        self.0
    }

    /// Returns `true` if this is the all-zero "absent" digest.
    pub fn is_zero(&self) -> bool {
        self.0 == [0u8; 32]
    }

    /// Returns bit `i` (0 = most significant bit of byte 0).
    ///
    /// Used by the sparse Merkle tree to turn a hashed key into a path.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 256`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < 256, "bit index {i} out of range");
        // The assert guarantees `i / 8 < 32`, so the lookup never misses.
        let byte = self.0.get(i / 8).copied().unwrap_or(0);
        (byte >> (7 - i % 8)) & 1 == 1
    }

    /// Parses a digest from a 64-character hex string.
    ///
    /// # Errors
    ///
    /// Returns an error if the string is not exactly 64 hex characters.
    pub fn from_hex(s: &str) -> Result<Self, CodecError> {
        let bytes = hex::decode(s)?;
        if bytes.len() != 32 {
            return Err(CodecError::Invalid("hash hex must be 64 characters"));
        }
        let mut out = [0u8; 32];
        out.copy_from_slice(&bytes);
        Ok(Hash(out))
    }
}

impl fmt::Display for Hash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&hex::encode(self.0))
    }
}

impl fmt::Debug for Hash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let full = hex::encode(self.0);
        write!(f, "Hash({}..)", full.get(..12).unwrap_or(&full))
    }
}

impl AsRef<[u8]> for Hash {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Hash {
    fn from(bytes: [u8; 32]) -> Self {
        Hash(bytes)
    }
}

impl Encode for Hash {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0);
    }
}

impl Decode for Hash {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let bytes = r.take(32)?;
        let mut out = [0u8; 32];
        out.copy_from_slice(bytes);
        Ok(Hash(out))
    }
}

impl Encode for Vec<Hash> {
    fn encode(&self, out: &mut Vec<u8>) {
        crate::codec::encode_seq(self, out);
    }
}

impl Decode for Vec<Hash> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        crate::codec::decode_seq(r)
    }
}

/// A 20-byte account address, in the style of Ethereum addresses.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Address([u8; 20]);

impl Address {
    /// Number of bytes in an address.
    pub const LEN: usize = 20;

    /// Wraps raw address bytes.
    pub const fn from_bytes(bytes: [u8; 20]) -> Self {
        Address(bytes)
    }

    /// Derives an address deterministically from a 64-bit seed.
    ///
    /// Convenient for workload generators that need many distinct accounts.
    pub fn from_seed(seed: u64) -> Self {
        let h = hash_bytes(seed.to_be_bytes());
        let mut out = [0u8; 20];
        for (dst, src) in out.iter_mut().zip(h.as_bytes()) {
            *dst = *src;
        }
        Address(out)
    }

    /// Returns the address as a byte slice.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", hex::encode(self.0))
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let full = hex::encode(self.0);
        write!(f, "Address(0x{}..)", full.get(..8).unwrap_or(&full))
    }
}

impl AsRef<[u8]> for Address {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 20]> for Address {
    fn from(bytes: [u8; 20]) -> Self {
        Address(bytes)
    }
}

impl Encode for Address {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0);
    }
}

impl Decode for Address {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let bytes = r.take(20)?;
        let mut out = [0u8; 20];
        out.copy_from_slice(bytes);
        Ok(Address(out))
    }
}

/// Hashes a byte string with SHA-256.
pub fn hash_bytes(bytes: impl AsRef<[u8]>) -> Hash {
    let mut hasher = Sha256::new();
    hasher.update(bytes.as_ref());
    Hash(hasher.finalize().into())
}

/// Hashes the concatenation `left || right` — the Merkle inner-node rule
/// `h = H(h_l || h_r)` from the paper (Fig. 1).
pub fn hash_pair(left: &Hash, right: &Hash) -> Hash {
    let mut hasher = Sha256::new();
    hasher.update(left.as_bytes());
    hasher.update(right.as_bytes());
    Hash(hasher.finalize().into())
}

/// Hashes the concatenation of an arbitrary number of byte strings.
pub fn hash_concat<'a>(parts: impl IntoIterator<Item = &'a [u8]>) -> Hash {
    let mut hasher = Sha256::new();
    for part in parts {
        hasher.update(part);
    }
    Hash(hasher.finalize().into())
}

/// Hashes a value through its canonical [`Encode`] representation.
///
/// All structural digests in the framework (`H(hdr)`, transaction ids,
/// state-leaf hashes, ...) are computed this way so that hashing is
/// deterministic across processes.
pub fn hash_encoded<T: Encode + ?Sized>(value: &T) -> Hash {
    hash_bytes(value.to_encoded_bytes())
}

/// Domain-separated hash: `H(domain_tag || payload)`.
///
/// Distinct Merkle structures use distinct domains so that, e.g., an SMT
/// leaf can never be confused with an MB-tree node.
pub fn hash_domain(domain: u8, payload: &[u8]) -> Hash {
    let mut hasher = Sha256::new();
    hasher.update([domain]);
    hasher.update(payload);
    Hash(hasher.finalize().into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_matches_known_vector() {
        // NIST test vector for "abc".
        assert_eq!(
            hash_bytes(b"abc").to_string(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn hash_pair_is_concatenation() {
        let a = hash_bytes(b"a");
        let b = hash_bytes(b"b");
        let mut concat = Vec::new();
        concat.extend_from_slice(a.as_bytes());
        concat.extend_from_slice(b.as_bytes());
        assert_eq!(hash_pair(&a, &b), hash_bytes(&concat));
        assert_ne!(hash_pair(&a, &b), hash_pair(&b, &a));
    }

    #[test]
    fn bit_indexing_is_msb_first() {
        let mut bytes = [0u8; 32];
        bytes[0] = 0b1000_0001;
        let h = Hash::from_bytes(bytes);
        assert!(h.bit(0));
        assert!(!h.bit(1));
        assert!(h.bit(7));
        assert!(!h.bit(8));
    }

    #[test]
    fn hex_round_trip() {
        let h = hash_bytes(b"round trip");
        assert_eq!(Hash::from_hex(&h.to_string()).unwrap(), h);
    }

    #[test]
    fn from_hex_rejects_wrong_length() {
        assert!(Hash::from_hex("abcd").is_err());
    }

    #[test]
    fn domain_separation_changes_digest() {
        assert_ne!(hash_domain(0, b"x"), hash_domain(1, b"x"));
    }

    #[test]
    fn address_from_seed_is_deterministic_and_distinct() {
        assert_eq!(Address::from_seed(7), Address::from_seed(7));
        assert_ne!(Address::from_seed(7), Address::from_seed(8));
    }

    #[test]
    fn zero_hash_is_zero() {
        assert!(Hash::ZERO.is_zero());
        assert!(!hash_bytes(b"x").is_zero());
    }
}
