//! SHA-256 digests and domain-separated hashing helpers.
//!
//! All hashing in the workspace funnels through the zero-allocation
//! [`Hasher`] kernel: callers stream slices into the compression function
//! directly instead of concatenating them into intermediate `Vec`s.

use std::cell::RefCell;
use std::fmt;

use serde::{Deserialize, Serialize};
use sha2::{Digest, Sha256};

use crate::codec::{Decode, Encode, Reader};
use crate::error::CodecError;
use crate::hex;

/// A 32-byte SHA-256 digest.
///
/// `Hash` is the universal commitment type of the framework: block digests,
/// Merkle roots, enclave measurements, and certificate digests are all
/// `Hash`es.
///
/// ```
/// use dcert_primitives::hash::hash_bytes;
///
/// let h = hash_bytes(b"abc");
/// assert_eq!(
///     h.to_string(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Hash([u8; 32]);

impl Hash {
    /// The all-zero digest, used as the "absent" marker (e.g. empty subtree).
    pub const ZERO: Hash = Hash([0u8; 32]);

    /// Number of bytes in a digest.
    pub const LEN: usize = 32;

    /// Wraps raw digest bytes.
    pub const fn from_bytes(bytes: [u8; 32]) -> Self {
        Hash(bytes)
    }

    /// Returns the digest as a byte slice.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Returns the raw digest array.
    pub const fn to_array(self) -> [u8; 32] {
        self.0
    }

    /// Returns `true` if this is the all-zero "absent" digest.
    pub fn is_zero(&self) -> bool {
        self.0 == [0u8; 32]
    }

    /// Returns bit `i mod 256` (0 = most significant bit of byte 0).
    ///
    /// Used by the sparse Merkle tree to turn a hashed key into a path.
    /// The index is masked into range rather than asserted, so the SMT
    /// verifier path stays panic-free on adversarial input; callers always
    /// pass `i < 256` (a digest has exactly 256 bits), making the mask a
    /// no-op in practice.
    pub fn bit(&self, i: usize) -> bool {
        let i = i % 256;
        // After the mask, `i / 8 < 32`, so the lookup never misses.
        let byte = self.0.get(i / 8).copied().unwrap_or(0);
        (byte >> (7 - i % 8)) & 1 == 1
    }

    /// Parses a digest from a 64-character hex string.
    ///
    /// # Errors
    ///
    /// Returns an error if the string is not exactly 64 hex characters.
    pub fn from_hex(s: &str) -> Result<Self, CodecError> {
        let bytes = hex::decode(s)?;
        if bytes.len() != 32 {
            return Err(CodecError::Invalid("hash hex must be 64 characters"));
        }
        let mut out = [0u8; 32];
        out.copy_from_slice(&bytes);
        Ok(Hash(out))
    }
}

impl fmt::Display for Hash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&hex::encode(self.0))
    }
}

impl fmt::Debug for Hash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let full = hex::encode(self.0);
        write!(f, "Hash({}..)", full.get(..12).unwrap_or(&full))
    }
}

impl AsRef<[u8]> for Hash {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Hash {
    fn from(bytes: [u8; 32]) -> Self {
        Hash(bytes)
    }
}

impl Encode for Hash {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0);
    }
    fn encoded_len(&self) -> usize {
        Hash::LEN
    }
}

impl Decode for Hash {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let bytes = r.take(32)?;
        let mut out = [0u8; 32];
        out.copy_from_slice(bytes);
        Ok(Hash(out))
    }
}

impl Encode for Vec<Hash> {
    fn encode(&self, out: &mut Vec<u8>) {
        crate::codec::encode_seq(self, out);
    }
    fn encoded_len(&self) -> usize {
        4 + Hash::LEN * self.len()
    }
}

impl Decode for Vec<Hash> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        crate::codec::decode_seq(r)
    }
}

/// A 20-byte account address, in the style of Ethereum addresses.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Address([u8; 20]);

impl Address {
    /// Number of bytes in an address.
    pub const LEN: usize = 20;

    /// Wraps raw address bytes.
    pub const fn from_bytes(bytes: [u8; 20]) -> Self {
        Address(bytes)
    }

    /// Derives an address deterministically from a 64-bit seed.
    ///
    /// Convenient for workload generators that need many distinct accounts.
    pub fn from_seed(seed: u64) -> Self {
        let h = hash_bytes(seed.to_be_bytes());
        let mut out = [0u8; 20];
        for (dst, src) in out.iter_mut().zip(h.as_bytes()) {
            *dst = *src;
        }
        Address(out)
    }

    /// Returns the address as a byte slice.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", hex::encode(self.0))
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let full = hex::encode(self.0);
        write!(f, "Address(0x{}..)", full.get(..8).unwrap_or(&full))
    }
}

impl AsRef<[u8]> for Address {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 20]> for Address {
    fn from(bytes: [u8; 20]) -> Self {
        Address(bytes)
    }
}

impl Encode for Address {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0);
    }
    fn encoded_len(&self) -> usize {
        Address::LEN
    }
}

impl Decode for Address {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let bytes = r.take(20)?;
        let mut out = [0u8; 20];
        out.copy_from_slice(bytes);
        Ok(Address(out))
    }
}

/// Zero-allocation streaming SHA-256 kernel with built-in domain separation.
///
/// Every digest in the workspace is produced by streaming slices into this
/// kernel — no intermediate concatenation buffers. The free functions below
/// ([`hash_bytes`], [`hash_pair`], [`hash_concat`], [`hash_domain`],
/// [`hash_encoded`]) are thin wrappers; hot loops that hash many values can
/// hold one `Hasher` and use [`Hasher::finalize_reset`] to avoid
/// re-initialising the state per digest.
///
/// ```
/// use dcert_primitives::hash::{hash_domain, Hasher};
///
/// let streamed = Hasher::with_domain(7).chain(b"payload").finalize();
/// assert_eq!(streamed, hash_domain(7, b"payload"));
/// ```
#[derive(Clone, Default)]
pub struct Hasher(Sha256);

impl Hasher {
    /// Creates a fresh kernel with no input absorbed.
    pub fn new() -> Self {
        Hasher(Sha256::new())
    }

    /// Creates a kernel with a one-byte domain-separation tag already
    /// absorbed: subsequent input is hashed as `H(domain || ...)`.
    pub fn with_domain(domain: u8) -> Self {
        let mut hasher = Sha256::new();
        hasher.update([domain]);
        Hasher(hasher)
    }

    /// Absorbs `bytes` into the state. Returns `&mut self` for loop-style
    /// chaining.
    pub fn update(&mut self, bytes: impl AsRef<[u8]>) -> &mut Self {
        self.0.update(bytes.as_ref());
        self
    }

    /// Absorbs `bytes` and returns the kernel by value, for
    /// expression-style chaining into [`Hasher::finalize`].
    #[must_use]
    pub fn chain(mut self, bytes: impl AsRef<[u8]>) -> Self {
        self.0.update(bytes.as_ref());
        self
    }

    /// Consumes the kernel and returns the digest.
    #[must_use]
    pub fn finalize(self) -> Hash {
        Hash(self.0.finalize().into())
    }

    /// Returns the digest and resets the state to empty, keeping the
    /// kernel alive for the next value — the amortised path for loops.
    pub fn finalize_reset(&mut self) -> Hash {
        Hash(self.0.finalize_reset().into())
    }
}

impl fmt::Debug for Hasher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Hasher(..)")
    }
}

/// Hashes a byte string with SHA-256.
pub fn hash_bytes(bytes: impl AsRef<[u8]>) -> Hash {
    Hasher::new().chain(bytes).finalize()
}

/// Hashes the concatenation `left || right` — the Merkle inner-node rule
/// `h = H(h_l || h_r)` from the paper (Fig. 1).
pub fn hash_pair(left: &Hash, right: &Hash) -> Hash {
    Hasher::new().chain(left).chain(right).finalize()
}

/// Hashes the concatenation of an arbitrary number of byte strings.
pub fn hash_concat<'a>(parts: impl IntoIterator<Item = &'a [u8]>) -> Hash {
    let mut hasher = Hasher::new();
    for part in parts {
        hasher.update(part);
    }
    hasher.finalize()
}

thread_local! {
    /// Reusable encode buffer for [`hash_encoded`]: the canonical byte
    /// image is built once per thread and reused across calls, so steady-
    /// state structural hashing allocates nothing.
    static ENCODE_SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// Hashes a value through its canonical [`Encode`] representation.
///
/// All structural digests in the framework (`H(hdr)`, transaction ids,
/// state-leaf hashes, ...) are computed this way so that hashing is
/// deterministic across processes. The encode buffer is a thread-local
/// scratch vector, so repeated calls do not allocate.
pub fn hash_encoded<T: Encode + ?Sized>(value: &T) -> Hash {
    ENCODE_SCRATCH.with(|cell| {
        // `take`/`replace` instead of `borrow_mut` so a re-entrant
        // `encode` impl (one that itself calls `hash_encoded`) simply
        // sees a fresh empty buffer instead of panicking.
        let mut buf = cell.take();
        buf.clear();
        value.encode(&mut buf);
        let digest = hash_bytes(&buf);
        buf.clear();
        cell.replace(buf);
        digest
    })
}

/// Domain-separated hash: `H(domain_tag || payload)`.
///
/// Distinct Merkle structures use distinct domains so that, e.g., an SMT
/// leaf can never be confused with an MB-tree node.
pub fn hash_domain(domain: u8, payload: &[u8]) -> Hash {
    Hasher::with_domain(domain).chain(payload).finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_matches_known_vector() {
        // NIST test vector for "abc".
        assert_eq!(
            hash_bytes(b"abc").to_string(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn hash_pair_is_concatenation() {
        let a = hash_bytes(b"a");
        let b = hash_bytes(b"b");
        let mut concat = Vec::new();
        concat.extend_from_slice(a.as_bytes());
        concat.extend_from_slice(b.as_bytes());
        assert_eq!(hash_pair(&a, &b), hash_bytes(&concat));
        assert_ne!(hash_pair(&a, &b), hash_pair(&b, &a));
    }

    #[test]
    fn bit_indexing_is_msb_first() {
        let mut bytes = [0u8; 32];
        bytes[0] = 0b1000_0001;
        let h = Hash::from_bytes(bytes);
        assert!(h.bit(0));
        assert!(!h.bit(1));
        assert!(h.bit(7));
        assert!(!h.bit(8));
    }

    #[test]
    fn hex_round_trip() {
        let h = hash_bytes(b"round trip");
        assert_eq!(Hash::from_hex(&h.to_string()).unwrap(), h);
    }

    #[test]
    fn from_hex_rejects_wrong_length() {
        assert!(Hash::from_hex("abcd").is_err());
    }

    #[test]
    fn domain_separation_changes_digest() {
        assert_ne!(hash_domain(0, b"x"), hash_domain(1, b"x"));
    }

    #[test]
    fn address_from_seed_is_deterministic_and_distinct() {
        assert_eq!(Address::from_seed(7), Address::from_seed(7));
        assert_ne!(Address::from_seed(7), Address::from_seed(8));
    }

    #[test]
    fn zero_hash_is_zero() {
        assert!(Hash::ZERO.is_zero());
        assert!(!hash_bytes(b"x").is_zero());
    }

    #[test]
    fn bit_out_of_range_is_masked_not_panicking() {
        let mut bytes = [0u8; 32];
        bytes[0] = 0b1000_0001;
        let h = Hash::from_bytes(bytes);
        // 256 wraps to 0, 263 wraps to 7, usize::MAX wraps to MAX % 256.
        assert_eq!(h.bit(256), h.bit(0));
        assert_eq!(h.bit(263), h.bit(7));
        assert_eq!(h.bit(usize::MAX), h.bit(usize::MAX % 256));
    }

    #[test]
    fn hasher_streaming_matches_one_shot() {
        let one_shot = hash_bytes(b"hello world");
        let mut streamed = Hasher::new();
        streamed.update(b"hello").update(b" ").update(b"world");
        assert_eq!(streamed.finalize(), one_shot);
        assert_eq!(
            Hasher::new().chain(b"hello ").chain(b"world").finalize(),
            one_shot
        );
    }

    #[test]
    fn hasher_with_domain_matches_hash_domain() {
        assert_eq!(
            Hasher::with_domain(9).chain(b"payload").finalize(),
            hash_domain(9, b"payload")
        );
    }

    #[test]
    fn hasher_finalize_reset_is_a_fresh_state() {
        let mut hasher = Hasher::new();
        hasher.update(b"first");
        assert_eq!(hasher.finalize_reset(), hash_bytes(b"first"));
        hasher.update(b"second");
        assert_eq!(hasher.finalize_reset(), hash_bytes(b"second"));
    }

    #[test]
    fn hash_concat_matches_manual_concatenation() {
        let parts: [&[u8]; 3] = [b"a", b"bc", b"def"];
        assert_eq!(hash_concat(parts), hash_bytes(b"abcdef"));
    }

    #[test]
    fn hash_encoded_scratch_reuse_is_observationally_pure() {
        // Interleaved calls with different types/lengths must all match
        // the naive allocate-per-call formulation.
        for round in 0..3u8 {
            let v: Vec<u8> = vec![round; 100];
            assert_eq!(hash_encoded(&v), hash_bytes(v.to_encoded_bytes()));
            let x = u64::from(round) * 7;
            assert_eq!(hash_encoded(&x), hash_bytes(x.to_encoded_bytes()));
        }
    }

    #[test]
    fn encoded_len_overrides_match_bytes() {
        let h = hash_bytes(b"len");
        assert_eq!(h.encoded_len(), h.to_encoded_bytes().len());
        let a = Address::from_seed(3);
        assert_eq!(a.encoded_len(), a.to_encoded_bytes().len());
        let v = vec![h, Hash::ZERO, hash_bytes(b"more")];
        assert_eq!(v.encoded_len(), v.to_encoded_bytes().len());
        let empty: Vec<Hash> = Vec::new();
        assert_eq!(empty.encoded_len(), empty.to_encoded_bytes().len());
    }
}
