//! Foundational primitives shared by every DCert crate.
//!
//! This crate provides the building blocks on which the whole DCert
//! reproduction is assembled:
//!
//! - [`struct@Hash`]: a 32-byte SHA-256 digest newtype together with domain-separated
//!   hashing helpers ([`hash::hash_bytes`], [`hash::hash_pair`], ...),
//! - [`Address`]: a 20-byte account identifier,
//! - [`codec`]: a small canonical binary serialization framework used both for
//!   hashing structures deterministically and for accounting the *exact* byte
//!   sizes the paper reports (e.g. the 2.97 KB superlight-client state),
//! - [`keys`]: Ed25519 key pairs and signatures wrapping `ed25519-dalek`,
//!   used for the enclave key, the simulated platform key, and the simulated
//!   Intel Attestation Service root key,
//! - [`hex`]: minimal hexadecimal encoding/decoding (implemented from
//!   scratch; no extra dependency).
//!
//! # Example
//!
//! ```
//! use dcert_primitives::{hash::hash_bytes, keys::Keypair};
//!
//! let digest = hash_bytes(b"hello dcert");
//! let kp = Keypair::generate(&mut rand::thread_rng());
//! let sig = kp.sign(digest.as_bytes());
//! assert!(kp.public().verify(digest.as_bytes(), &sig).is_ok());
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)
)]

pub mod codec;
pub mod error;
pub mod hash;
pub mod hex;
pub mod keys;

pub use codec::{Decode, Encode};
pub use error::{CodecError, CryptoError};
pub use hash::{Address, Hash, Hasher};
pub use keys::{Keypair, PublicKey, Signature};
