//! Error types for the primitives crate.

use std::fmt;

/// An error produced while decoding canonical binary data.
///
/// Returned by [`crate::Decode::decode`] implementations when the input is
/// truncated, malformed, or violates a canonicality rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value was fully decoded.
    UnexpectedEof {
        /// How many more bytes were needed.
        needed: usize,
        /// How many bytes remained.
        remaining: usize,
    },
    /// A length prefix exceeded the configured sanity limit.
    LengthOverflow(u64),
    /// A tag byte (e.g. for `Option` or an enum) was not a legal value.
    InvalidTag(u8),
    /// A `bool` byte was neither 0 nor 1.
    InvalidBool(u8),
    /// String data was not valid UTF-8.
    InvalidUtf8,
    /// Extra bytes remained after a value that must consume its whole input.
    TrailingBytes(usize),
    /// A domain-specific invariant failed while decoding.
    Invalid(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of input: needed {needed} bytes, {remaining} remaining"
            ),
            CodecError::LengthOverflow(len) => write!(f, "length prefix {len} exceeds limit"),
            CodecError::InvalidTag(tag) => write!(f, "invalid tag byte {tag:#04x}"),
            CodecError::InvalidBool(b) => write!(f, "invalid bool byte {b:#04x}"),
            CodecError::InvalidUtf8 => write!(f, "string data was not valid UTF-8"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            CodecError::Invalid(what) => write!(f, "invalid encoding: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// An error produced by cryptographic operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A signature failed to verify against the given public key and message.
    BadSignature,
    /// Key material had the wrong length or was otherwise malformed.
    MalformedKey,
    /// Signature bytes had the wrong length or were otherwise malformed.
    MalformedSignature,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::BadSignature => write!(f, "signature verification failed"),
            CryptoError::MalformedKey => write!(f, "malformed key material"),
            CryptoError::MalformedSignature => write!(f, "malformed signature bytes"),
        }
    }
}

impl std::error::Error for CryptoError {}
