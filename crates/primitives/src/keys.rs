//! Ed25519 key pairs and signatures.
//!
//! Three distinct parties in DCert hold signing keys, all instantiated with
//! this module:
//!
//! 1. the **enclave key** `(sk_enc, pk_enc)` generated *inside* the enclave
//!    during initialization — `sk_enc` never leaves the enclave,
//! 2. the **platform key** that signs enclave quotes (standing in for the
//!    SGX hardware attestation key), and
//! 3. the **IAS root key** with which the simulated Intel Attestation
//!    Service countersigns attestation reports.
//!
//! The wrappers keep `ed25519-dalek` out of the public API of downstream
//! crates and give the types canonical [`Encode`]/[`Decode`] forms so they
//! can appear inside certificates.

use std::fmt;

use ed25519_dalek::{Signer, Verifier};
use rand::{CryptoRng, RngCore};

use crate::codec::{Decode, Encode, Reader};
use crate::error::{CodecError, CryptoError};
use crate::hex;

/// An Ed25519 signing key pair.
pub struct Keypair {
    signing: ed25519_dalek::SigningKey,
}

impl Keypair {
    /// Generates a fresh key pair from the given randomness source.
    pub fn generate<R: RngCore + CryptoRng>(rng: &mut R) -> Self {
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        Keypair {
            signing: ed25519_dalek::SigningKey::from_bytes(&seed),
        }
    }

    /// Deterministically derives a key pair from a 32-byte seed.
    ///
    /// Used by tests and by the simulated platform/IAS roots so that
    /// verification material is reproducible.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        Keypair {
            signing: ed25519_dalek::SigningKey::from_bytes(&seed),
        }
    }

    /// Returns the public half of the key pair.
    pub fn public(&self) -> PublicKey {
        PublicKey(self.signing.verifying_key())
    }

    /// Exports the 32-byte secret seed.
    ///
    /// Exists solely so trusted code can hand the secret to a *sealing*
    /// mechanism (encrypted storage bound to the enclave); never write the
    /// result anywhere in the clear.
    // dcert-lint: allow(r1-enclave-secrecy, reason = "definition site of the secret-key abstraction; call sites are confined to the trusted program modules by this same rule")
    pub fn to_secret_bytes(&self) -> [u8; 32] {
        self.signing.to_bytes()
    }

    /// Signs a message.
    pub fn sign(&self, message: &[u8]) -> Signature {
        Signature(self.signing.sign(message))
    }
}

impl fmt::Debug for Keypair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print secret material.
        write!(f, "Keypair(public = {:?})", self.public())
    }
}

/// An Ed25519 public key.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct PublicKey(ed25519_dalek::VerifyingKey);

impl PublicKey {
    /// Size of the encoded key in bytes.
    pub const LEN: usize = 32;

    /// Verifies `signature` over `message`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::BadSignature`] if verification fails.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), CryptoError> {
        self.0
            .verify(message, &signature.0)
            .map_err(|_| CryptoError::BadSignature)
    }

    /// Returns the key as raw bytes.
    pub fn to_array(self) -> [u8; 32] {
        self.0.to_bytes()
    }

    /// Reconstructs a key from raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MalformedKey`] if the bytes are not a valid
    /// curve point.
    pub fn from_bytes(bytes: [u8; 32]) -> Result<Self, CryptoError> {
        ed25519_dalek::VerifyingKey::from_bytes(&bytes)
            .map(PublicKey)
            .map_err(|_| CryptoError::MalformedKey)
    }
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let full = hex::encode(self.0.to_bytes());
        write!(f, "PublicKey({}..)", full.get(..12).unwrap_or(&full))
    }
}

impl fmt::Display for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&hex::encode(self.0.to_bytes()))
    }
}

impl Encode for PublicKey {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_bytes());
    }
    fn encoded_len(&self) -> usize {
        Self::LEN
    }
}

impl Decode for PublicKey {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let bytes: [u8; 32] = r
            .take(32)?
            .try_into()
            .map_err(|_| CodecError::Invalid("short read for public key"))?;
        PublicKey::from_bytes(bytes).map_err(|_| CodecError::Invalid("invalid ed25519 point"))
    }
}

/// An Ed25519 signature.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Signature(ed25519_dalek::Signature);

impl Signature {
    /// Size of the encoded signature in bytes.
    pub const LEN: usize = 64;

    /// Returns the signature as raw bytes.
    pub fn to_array(self) -> [u8; 64] {
        self.0.to_bytes()
    }

    /// Reconstructs a signature from raw bytes.
    pub fn from_bytes(bytes: [u8; 64]) -> Self {
        Signature(ed25519_dalek::Signature::from_bytes(&bytes))
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let full = hex::encode(self.0.to_bytes());
        write!(f, "Signature({}..)", full.get(..12).unwrap_or(&full))
    }
}

impl Encode for Signature {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_bytes());
    }
    fn encoded_len(&self) -> usize {
        Self::LEN
    }
}

impl Decode for Signature {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let bytes: [u8; 64] = r
            .take(64)?
            .try_into()
            .map_err(|_| CodecError::Invalid("short read for signature"))?;
        Ok(Signature::from_bytes(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kp(seed: u8) -> Keypair {
        Keypair::from_seed([seed; 32])
    }

    #[test]
    fn sign_verify_round_trip() {
        let kp = kp(1);
        let sig = kp.sign(b"message");
        assert!(kp.public().verify(b"message", &sig).is_ok());
    }

    #[test]
    fn verification_fails_on_wrong_message() {
        let kp = kp(1);
        let sig = kp.sign(b"message");
        assert_eq!(
            kp.public().verify(b"other", &sig),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn verification_fails_on_wrong_key() {
        let sig = kp(1).sign(b"message");
        assert_eq!(
            kp(2).public().verify(b"message", &sig),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn public_key_codec_round_trip() {
        let pk = kp(3).public();
        let bytes = pk.to_encoded_bytes();
        assert_eq!(bytes.len(), PublicKey::LEN);
        assert_eq!(PublicKey::decode_all(&bytes).unwrap(), pk);
    }

    #[test]
    fn signature_codec_round_trip() {
        let sig = kp(4).sign(b"x");
        let bytes = sig.to_encoded_bytes();
        assert_eq!(bytes.len(), Signature::LEN);
        assert_eq!(Signature::decode_all(&bytes).unwrap(), sig);
    }

    #[test]
    fn debug_never_leaks_secret() {
        let kp = kp(5);
        let debug = format!("{kp:?}");
        assert!(debug.contains("PublicKey"));
        // The seed is all-0x05; its hex must not appear.
        assert!(!debug.contains("0505050505"));
    }

    #[test]
    fn from_seed_is_deterministic() {
        assert_eq!(kp(6).public(), kp(6).public());
        assert_ne!(kp(6).public(), kp(7).public());
    }
}
