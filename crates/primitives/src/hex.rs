//! Minimal hexadecimal encoding and decoding.
//!
//! Implemented from scratch so the workspace does not need an extra
//! dependency for something this small. Lower-case output, case-insensitive
//! input.

use crate::error::CodecError;

/// Maps a value in `0..16` to its lower-case hex digit without a table
/// lookup, so the encoder stays free of slice indexing.
const fn digit(nibble: u8) -> char {
    let n = nibble & 0x0f;
    (if n < 10 { b'0' + n } else { b'a' + (n - 10) }) as char
}

/// Encodes `bytes` as a lower-case hexadecimal string.
///
/// ```
/// assert_eq!(dcert_primitives::hex::encode([0xde, 0xad]), "dead");
/// ```
pub fn encode(bytes: impl AsRef<[u8]>) -> String {
    let bytes = bytes.as_ref();
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(digit(b >> 4));
        out.push(digit(b & 0x0f));
    }
    out
}

/// Decodes a hexadecimal string (upper- or lower-case) into bytes.
///
/// # Errors
///
/// Returns [`CodecError::Invalid`] if the input has odd length or contains a
/// non-hex character.
///
/// ```
/// assert_eq!(dcert_primitives::hex::decode("DEad").unwrap(), vec![0xde, 0xad]);
/// ```
pub fn decode(s: &str) -> Result<Vec<u8>, CodecError> {
    let s = s.as_bytes();
    if !s.len().is_multiple_of(2) {
        return Err(CodecError::Invalid("odd-length hex string"));
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in s.chunks_exact(2) {
        // Slice patterns keep this free of panicking indexing; chunks of
        // any other width are impossible out of `chunks_exact(2)`.
        let [hi, lo] = pair else {
            return Err(CodecError::Invalid("odd-length hex string"));
        };
        out.push((nibble(*hi)? << 4) | nibble(*lo)?);
    }
    Ok(out)
}

fn nibble(c: u8) -> Result<u8, CodecError> {
    match c {
        b'0'..=b'9' => Ok(c - b'0'),
        b'a'..=b'f' => Ok(c - b'a' + 10),
        b'A'..=b'F' => Ok(c - b'A' + 10),
        _ => Err(CodecError::Invalid("non-hex character")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_empty() {
        assert_eq!(encode([]), "");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn encodes_known_vector() {
        assert_eq!(encode([0x00, 0x01, 0xff, 0x7a]), "0001ff7a");
    }

    #[test]
    fn decodes_mixed_case() {
        assert_eq!(decode("aAbBcC").unwrap(), vec![0xaa, 0xbb, 0xcc]);
    }

    #[test]
    fn rejects_odd_length() {
        assert!(decode("abc").is_err());
    }

    #[test]
    fn rejects_bad_character() {
        assert!(decode("zz").is_err());
    }

    #[test]
    fn round_trips_all_bytes() {
        let all: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&all)).unwrap(), all);
    }
}
