//! Canonical binary serialization.
//!
//! Every structure that is hashed, signed, stored, or size-accounted in the
//! framework encodes through this module, guaranteeing a single
//! deterministic byte representation per value. The format is deliberately
//! simple:
//!
//! - fixed-width integers are big-endian,
//! - `bool` is one byte (0/1),
//! - variable-length data (`Vec`, `String`, maps) carries a `u32` big-endian
//!   length prefix,
//! - `Option<T>` is a 0/1 tag byte followed by the value,
//! - fixed-size digests/addresses are raw bytes (no prefix).
//!
//! Canonicality matters for security: if two byte strings decoded to the
//! same value, an adversary could present a "different" block with the same
//! digest. [`Decode`] implementations therefore reject non-minimal or
//! malformed inputs.
//!
//! # Example
//!
//! ```
//! use dcert_primitives::{Encode, Decode};
//!
//! let value: (u64, Vec<u8>) = (7, vec![1, 2, 3]);
//! let bytes = value.to_encoded_bytes();
//! let back = <(u64, Vec<u8>)>::decode_all(&bytes)?;
//! assert_eq!(back, value);
//! # Ok::<(), dcert_primitives::CodecError>(())
//! ```

use crate::error::CodecError;

/// Maximum length accepted for any length-prefixed collection (64 MiB of
/// elements). Prevents memory-exhaustion on malformed input.
pub const MAX_LEN: u64 = 1 << 26;

/// A cursor over input bytes used by [`Decode`] implementations.
#[derive(Debug)]
pub struct Reader<'a> {
    input: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Creates a reader over `input`.
    pub fn new(input: &'a [u8]) -> Self {
        Reader { input }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.input.len()
    }

    /// Consumes and returns exactly `n` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.input.len() < n {
            return Err(CodecError::UnexpectedEof {
                needed: n,
                remaining: self.input.len(),
            });
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    /// Consumes a single byte.
    pub fn take_byte(&mut self) -> Result<u8, CodecError> {
        self.take(1)?
            .first()
            .copied()
            .ok_or(CodecError::UnexpectedEof {
                needed: 1,
                remaining: 0,
            })
    }

    /// Consumes a `u32` big-endian length prefix, enforcing [`MAX_LEN`].
    pub fn take_len(&mut self) -> Result<usize, CodecError> {
        let len = u64::from(u32::decode(self)?);
        if len > MAX_LEN {
            return Err(CodecError::LengthOverflow(len));
        }
        usize::try_from(len).map_err(|_| CodecError::LengthOverflow(len))
    }
}

/// Serializes a value into the canonical binary format.
pub trait Encode {
    /// Appends the canonical encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Returns the canonical encoding as a fresh byte vector.
    fn to_encoded_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Returns the size of the canonical encoding in bytes.
    ///
    /// Used throughout the benchmark harness to report storage/proof sizes.
    fn encoded_len(&self) -> usize {
        self.to_encoded_bytes().len()
    }
}

/// Deserializes a value from the canonical binary format.
pub trait Decode: Sized {
    /// Decodes a value, advancing the reader.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the input is truncated or malformed.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Decodes a value that must consume the entire input.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::TrailingBytes`] if bytes remain after decoding.
    fn decode_all(input: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(input);
        let value = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(CodecError::TrailingBytes(r.remaining()));
        }
        Ok(value)
    }
}

macro_rules! impl_codec_uint {
    ($($ty:ty),*) => {$(
        impl Encode for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_be_bytes());
            }
            fn encoded_len(&self) -> usize {
                std::mem::size_of::<$ty>()
            }
        }
        impl Decode for $ty {
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                const WIDTH: usize = std::mem::size_of::<$ty>();
                let bytes = r.take(WIDTH)?;
                let fixed: [u8; WIDTH] =
                    bytes.try_into().map_err(|_| CodecError::UnexpectedEof {
                        needed: WIDTH,
                        remaining: 0,
                    })?;
                Ok(<$ty>::from_be_bytes(fixed))
            }
        }
    )*};
}

impl_codec_uint!(u8, u16, u32, u64, u128, i64);

impl Encode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_byte()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::InvalidBool(other)),
        }
    }
}

impl Encode for [u8] {
    fn encode(&self, out: &mut Vec<u8>) {
        // dcert-lint: allow(r2-panic-freedom, reason = "encoder half runs on locally produced data; MAX_LEN (64 MiB) bounds every collection the workspace encodes")
        (self.len() as u32).encode(out);
        out.extend_from_slice(self);
    }
    fn encoded_len(&self) -> usize {
        4 + self.len()
    }
}

impl Encode for Vec<u8> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_slice().encode(out);
    }
    fn encoded_len(&self) -> usize {
        4 + self.len()
    }
}

impl Decode for Vec<u8> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = r.take_len()?;
        Ok(r.take(len)?.to_vec())
    }
}

impl Encode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_bytes().encode(out);
    }
    fn encoded_len(&self) -> usize {
        4 + self.len()
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let bytes = Vec::<u8>::decode(r)?;
        String::from_utf8(bytes).map_err(|_| CodecError::InvalidUtf8)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        match self {
            None => 1,
            Some(v) => 1 + v.encoded_len(),
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_byte()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => Err(CodecError::InvalidTag(other)),
        }
    }
}

/// Generic `Vec<T>` encoding. `Vec<u8>` has a specialized impl above, so this
/// wrapper type is used for element vectors to avoid overlap.
impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len()
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Encode, B: Encode, C: Encode> Encode for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len() + self.2.encoded_len()
    }
}

impl<A: Decode, B: Decode, C: Decode> Decode for (A, B, C) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

/// Encodes a slice of encodable elements with a `u32` count prefix.
pub fn encode_seq<T: Encode>(items: &[T], out: &mut Vec<u8>) {
    // dcert-lint: allow(r2-panic-freedom, reason = "encoder half runs on locally produced data; MAX_LEN (64 MiB) bounds every collection the workspace encodes")
    (items.len() as u32).encode(out);
    for item in items {
        item.encode(out);
    }
}

/// Decodes a vector of elements with a `u32` count prefix.
///
/// # Errors
///
/// Propagates element decode errors and rejects oversized counts.
pub fn decode_seq<T: Decode>(r: &mut Reader<'_>) -> Result<Vec<T>, CodecError> {
    let len = r.take_len()?;
    let mut out = Vec::with_capacity(len.min(1024));
    for _ in 0..len {
        out.push(T::decode(r)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uints_are_big_endian() {
        assert_eq!(0x0102u16.to_encoded_bytes(), vec![1, 2]);
        assert_eq!(0x01020304u32.to_encoded_bytes(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn bool_rejects_junk() {
        assert!(bool::decode_all(&[1]).unwrap());
        assert!(matches!(
            bool::decode_all(&[2]),
            Err(CodecError::InvalidBool(2))
        ));
    }

    #[test]
    fn option_round_trip() {
        let some: Option<u64> = Some(42);
        let none: Option<u64> = None;
        assert_eq!(
            Option::<u64>::decode_all(&some.to_encoded_bytes()).unwrap(),
            some
        );
        assert_eq!(
            Option::<u64>::decode_all(&none.to_encoded_bytes()).unwrap(),
            none
        );
    }

    #[test]
    fn option_rejects_bad_tag() {
        assert!(matches!(
            Option::<u64>::decode_all(&[7]),
            Err(CodecError::InvalidTag(7))
        ));
    }

    #[test]
    fn decode_all_rejects_trailing() {
        assert!(matches!(
            u8::decode_all(&[1, 2]),
            Err(CodecError::TrailingBytes(1))
        ));
    }

    #[test]
    fn truncated_input_errors() {
        assert!(matches!(
            u64::decode_all(&[0, 1, 2]),
            Err(CodecError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn string_rejects_invalid_utf8() {
        let mut bytes = Vec::new();
        vec![0xffu8, 0xfe].encode(&mut bytes);
        assert!(matches!(
            String::decode_all(&bytes),
            Err(CodecError::InvalidUtf8)
        ));
    }

    #[test]
    fn length_prefix_overflow_rejected() {
        let mut bytes = Vec::new();
        (u32::MAX).encode(&mut bytes);
        assert!(matches!(
            Vec::<u8>::decode_all(&bytes),
            Err(CodecError::LengthOverflow(_))
        ));
    }

    #[test]
    fn seq_round_trip() {
        let items: Vec<u64> = vec![1, 2, 3, u64::MAX];
        let mut out = Vec::new();
        encode_seq(&items, &mut out);
        let mut r = Reader::new(&out);
        assert_eq!(decode_seq::<u64>(&mut r).unwrap(), items);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn encoded_len_matches_bytes() {
        let v: (u64, Vec<u8>) = (9, vec![1, 2, 3, 4, 5]);
        assert_eq!(v.encoded_len(), v.to_encoded_bytes().len());
        let triple: (u8, String, bool) = (1, "abc".to_owned(), true);
        assert_eq!(triple.encoded_len(), triple.to_encoded_bytes().len());
        let some: Option<(u64, Vec<u8>)> = Some((3, vec![9; 7]));
        assert_eq!(some.encoded_len(), some.to_encoded_bytes().len());
        let none: Option<u64> = None;
        assert_eq!(none.encoded_len(), none.to_encoded_bytes().len());
    }

    proptest! {
        #[test]
        fn prop_u64_round_trip(x: u64) {
            prop_assert_eq!(u64::decode_all(&x.to_encoded_bytes()).unwrap(), x);
        }

        #[test]
        fn prop_bytes_round_trip(v: Vec<u8>) {
            prop_assert_eq!(Vec::<u8>::decode_all(&v.to_encoded_bytes()).unwrap(), v);
        }

        #[test]
        fn prop_string_round_trip(s: String) {
            prop_assert_eq!(String::decode_all(&s.to_encoded_bytes()).unwrap(), s);
        }

        #[test]
        fn prop_tuple_round_trip(a: u32, b: Vec<u8>, c: bool) {
            let v = (a, b.clone(), c);
            let back = <(u32, Vec<u8>, bool)>::decode_all(&v.to_encoded_bytes()).unwrap();
            prop_assert_eq!(back, v);
        }

        #[test]
        fn prop_decoding_random_junk_never_panics(junk: Vec<u8>) {
            let _ = Vec::<u8>::decode_all(&junk);
            let _ = String::decode_all(&junk);
            let _ = Option::<u64>::decode_all(&junk);
        }
    }
}
