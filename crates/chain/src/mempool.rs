//! A transaction mempool.
//!
//! Miners "collect transactions from the blockchain network" (Section 2.1
//! of the paper) before proposing blocks. This pool provides that staging
//! area: signature-checked admission, duplicate rejection, FIFO block
//! assembly with a size limit, and pruning of committed transactions.

use std::collections::{HashSet, VecDeque};

use dcert_primitives::hash::Hash;

use crate::block::Block;
use crate::error::ChainError;
use crate::tx::Transaction;

/// A FIFO transaction pool with signature-checked admission.
#[derive(Debug, Clone, Default)]
pub struct Mempool {
    queue: VecDeque<Transaction>,
    known: HashSet<Hash>,
    capacity: usize,
}

impl Mempool {
    /// Default maximum number of pending transactions.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// Creates a pool with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates a pool holding at most `capacity` pending transactions.
    pub fn with_capacity(capacity: usize) -> Self {
        Mempool {
            queue: VecDeque::new(),
            known: HashSet::new(),
            capacity,
        }
    }

    /// Number of pending transactions.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Admits a transaction after verifying its signature; duplicates (by
    /// transaction id) are rejected idempotently.
    ///
    /// Returns `true` if the transaction was newly admitted.
    ///
    /// # Errors
    ///
    /// Propagates signature/sender validation failures, and
    /// [`ChainError::MempoolFull`] at capacity.
    pub fn submit(&mut self, tx: Transaction) -> Result<bool, ChainError> {
        tx.verify()?;
        let id = tx.id();
        if self.known.contains(&id) {
            return Ok(false);
        }
        if self.queue.len() >= self.capacity {
            return Err(ChainError::MempoolFull(self.capacity));
        }
        self.known.insert(id);
        self.queue.push_back(tx);
        Ok(true)
    }

    /// Takes up to `max` transactions for block assembly (FIFO). Taken
    /// transactions leave the pool; their ids stay known until
    /// [`Mempool::prune_committed`] or [`Mempool::forget`].
    pub fn take(&mut self, max: usize) -> Vec<Transaction> {
        let n = max.min(self.queue.len());
        self.queue.drain(..n).collect()
    }

    /// Forgets the ids of `block`'s transactions so re-submissions of
    /// *new* transactions are unaffected by the known-set growing forever.
    pub fn prune_committed(&mut self, block: &Block) {
        for tx in &block.txs {
            self.known.remove(&tx.id());
        }
    }

    /// Drops a pending transaction by id (e.g. after it appeared in a
    /// block mined elsewhere). Returns `true` if it was pending.
    pub fn forget(&mut self, id: &Hash) -> bool {
        let before = self.queue.len();
        self.queue.retain(|tx| tx.id() != *id);
        self.known.remove(id);
        self.queue.len() != before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcert_primitives::keys::Keypair;

    fn tx(seed: u8, nonce: u64) -> Transaction {
        Transaction::sign(&Keypair::from_seed([seed; 32]), nonce, "kv", vec![seed])
    }

    #[test]
    fn admits_and_takes_fifo() {
        let mut pool = Mempool::new();
        for nonce in 0..5 {
            assert!(pool.submit(tx(1, nonce)).unwrap());
        }
        assert_eq!(pool.len(), 5);
        let batch = pool.take(3);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0].nonce, 0);
        assert_eq!(batch[2].nonce, 2);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn duplicates_are_idempotent() {
        let mut pool = Mempool::new();
        let t = tx(1, 0);
        assert!(pool.submit(t.clone()).unwrap());
        assert!(!pool.submit(t).unwrap());
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn invalid_signatures_rejected() {
        let mut pool = Mempool::new();
        let mut bad = tx(1, 0);
        bad.nonce = 99;
        assert!(pool.submit(bad).is_err());
        assert!(pool.is_empty());
    }

    #[test]
    fn capacity_is_enforced() {
        let mut pool = Mempool::with_capacity(2);
        pool.submit(tx(1, 0)).unwrap();
        pool.submit(tx(1, 1)).unwrap();
        assert!(matches!(
            pool.submit(tx(1, 2)),
            Err(ChainError::MempoolFull(2))
        ));
    }

    #[test]
    fn taken_ids_stay_known_until_pruned() {
        let mut pool = Mempool::new();
        let t = tx(1, 0);
        pool.submit(t.clone()).unwrap();
        let batch = pool.take(1);
        // Still known: re-gossip of the same tx is ignored.
        assert!(!pool.submit(t.clone()).unwrap());
        // After the block commits, the id can be forgotten.
        let block = Block {
            header: crate::block::BlockHeader {
                height: 1,
                prev_hash: Hash::ZERO,
                state_root: Hash::ZERO,
                tx_root: Block::tx_root(&batch),
                timestamp: 0,
                miner: dcert_primitives::hash::Address::default(),
                consensus: crate::consensus::ConsensusProof::Pow {
                    difficulty_bits: 0,
                    nonce: 0,
                },
            },
            txs: batch,
        };
        pool.prune_committed(&block);
        assert!(pool.submit(t).unwrap(), "forgotten id can be resubmitted");
    }

    #[test]
    fn forget_drops_pending() {
        let mut pool = Mempool::new();
        let t = tx(1, 0);
        let id = t.id();
        pool.submit(t).unwrap();
        assert!(pool.forget(&id));
        assert!(pool.is_empty());
        assert!(!pool.forget(&id));
    }
}
