//! Ed25519-signed transactions.

use dcert_primitives::codec::{Decode, Encode, Reader};
use dcert_primitives::error::CodecError;
use dcert_primitives::hash::{hash_encoded, Address, Hash};
use dcert_primitives::keys::{Keypair, PublicKey, Signature};
use dcert_vm::Call;

use crate::error::ChainError;

/// Derives the account address of a public key (first 20 bytes of its
/// hash, Ethereum-style).
pub fn address_of(public_key: &PublicKey) -> Address {
    let digest = dcert_primitives::hash::hash_bytes(public_key.to_array());
    let mut bytes = [0u8; 20];
    for (b, d) in bytes.iter_mut().zip(digest.as_bytes()) {
        *b = *d;
    }
    Address::from_bytes(bytes)
}

/// A signed transaction: a VM [`Call`] plus sender authentication.
///
/// The sender address inside the call must be [`address_of`] the signing
/// key; [`Transaction::verify`] checks both the binding and the signature —
/// the "validity is checked using the senders' public keys" step the paper
/// assigns to miners and to `blk_verify_t` (Algorithm 2, line 19).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// Sender-chosen sequence number (used for request uniqueness).
    pub nonce: u64,
    /// The contract invocation.
    pub call: Call,
    /// The sender's public key.
    pub public_key: PublicKey,
    /// Ed25519 signature over the signing digest.
    pub signature: Signature,
}

impl Transaction {
    /// Builds and signs a transaction. The call's sender is forced to the
    /// key's address.
    pub fn sign(
        keypair: &Keypair,
        nonce: u64,
        contract: impl Into<String>,
        payload: Vec<u8>,
    ) -> Self {
        let public_key = keypair.public();
        let call = Call::new(address_of(&public_key), contract, payload);
        let digest = Self::signing_digest(nonce, &call);
        let signature = keypair.sign(digest.as_bytes());
        Transaction {
            nonce,
            call,
            public_key,
            signature,
        }
    }

    /// The digest the sender signs: `H(nonce || call)`.
    pub fn signing_digest(nonce: u64, call: &Call) -> Hash {
        let mut buf = Vec::new();
        nonce.encode(&mut buf);
        call.encode(&mut buf);
        dcert_primitives::hash::hash_bytes(&buf)
    }

    /// The transaction id: the hash of the full canonical encoding.
    pub fn id(&self) -> Hash {
        hash_encoded(self)
    }

    /// Verifies sender binding and signature.
    ///
    /// # Errors
    ///
    /// [`ChainError::SenderMismatch`] if the call's sender is not the
    /// public key's address; [`ChainError::BadTxSignature`] if the
    /// signature is invalid.
    pub fn verify(&self) -> Result<(), ChainError> {
        if self.call.sender != address_of(&self.public_key) {
            return Err(ChainError::SenderMismatch);
        }
        let digest = Self::signing_digest(self.nonce, &self.call);
        self.public_key
            .verify(digest.as_bytes(), &self.signature)
            .map_err(|_| ChainError::BadTxSignature)
    }
}

impl Encode for Transaction {
    fn encode(&self, out: &mut Vec<u8>) {
        self.nonce.encode(out);
        self.call.encode(out);
        self.public_key.encode(out);
        self.signature.encode(out);
    }
}

impl Decode for Transaction {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Transaction {
            nonce: u64::decode(r)?,
            call: Call::decode(r)?,
            public_key: PublicKey::decode(r)?,
            signature: Signature::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keypair(seed: u8) -> Keypair {
        Keypair::from_seed([seed; 32])
    }

    #[test]
    fn signed_tx_verifies() {
        let tx = Transaction::sign(&keypair(1), 0, "kv", b"put".to_vec());
        tx.verify().unwrap();
    }

    #[test]
    fn address_is_first_twenty_bytes_of_key_hash() {
        let pk = keypair(7).public();
        let digest = dcert_primitives::hash::hash_bytes(pk.to_array());
        let addr = address_of(&pk);
        assert_eq!(addr.as_bytes(), &digest.as_bytes()[..20]);
    }

    #[test]
    fn tampered_payload_rejected() {
        let mut tx = Transaction::sign(&keypair(1), 0, "kv", b"put".to_vec());
        tx.call.payload = b"evil".to_vec();
        assert_eq!(tx.verify(), Err(ChainError::BadTxSignature));
    }

    #[test]
    fn tampered_nonce_rejected() {
        let mut tx = Transaction::sign(&keypair(1), 0, "kv", b"put".to_vec());
        tx.nonce = 7;
        assert_eq!(tx.verify(), Err(ChainError::BadTxSignature));
    }

    #[test]
    fn sender_spoofing_rejected() {
        let mut tx = Transaction::sign(&keypair(1), 0, "kv", b"put".to_vec());
        tx.call.sender = address_of(&keypair(2).public());
        assert_eq!(tx.verify(), Err(ChainError::SenderMismatch));
    }

    #[test]
    fn signature_swap_rejected() {
        let tx1 = Transaction::sign(&keypair(1), 0, "kv", b"a".to_vec());
        let mut tx2 = Transaction::sign(&keypair(1), 0, "kv", b"b".to_vec());
        tx2.signature = tx1.signature;
        assert_eq!(tx2.verify(), Err(ChainError::BadTxSignature));
    }

    #[test]
    fn ids_are_unique_per_content() {
        let tx1 = Transaction::sign(&keypair(1), 0, "kv", b"a".to_vec());
        let tx2 = Transaction::sign(&keypair(1), 1, "kv", b"a".to_vec());
        assert_ne!(tx1.id(), tx2.id());
        assert_eq!(tx1.id(), tx1.clone().id());
    }

    #[test]
    fn codec_round_trip() {
        let tx = Transaction::sign(&keypair(3), 9, "bank", b"pay".to_vec());
        let decoded = Transaction::decode_all(&tx.to_encoded_bytes()).unwrap();
        assert_eq!(decoded, tx);
        decoded.verify().unwrap();
    }

    #[test]
    fn address_derivation_is_stable() {
        let pk = keypair(5).public();
        assert_eq!(address_of(&pk), address_of(&pk));
        assert_ne!(address_of(&pk), address_of(&keypair(6).public()));
    }
}
