//! Fork-aware block store with longest-chain selection.

use std::collections::HashMap;

use dcert_primitives::hash::Hash;

use crate::block::BlockHeader;
use crate::error::ChainError;

/// Stores headers of all observed branches and tracks the canonical tip by
/// the longest-chain rule (height, ties broken by smaller digest for
/// determinism).
///
/// This is the header-level view that both the traditional light client
/// baseline and fork/chain-selection tests build on; full block bodies live
/// with [`FullNode`](crate::FullNode).
#[derive(Debug, Clone)]
pub struct ChainStore {
    headers: HashMap<Hash, BlockHeader>,
    genesis: Hash,
    best: Hash,
}

impl ChainStore {
    /// Creates a store rooted at `genesis`.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::BadGenesis`] if the header is not a genesis
    /// header (height 0, zero `prev_hash`).
    pub fn new(genesis: BlockHeader) -> Result<Self, ChainError> {
        if genesis.height != 0 {
            return Err(ChainError::BadGenesis("height must be 0"));
        }
        if !genesis.prev_hash.is_zero() {
            return Err(ChainError::BadGenesis("prev hash must be zero"));
        }
        let digest = genesis.hash();
        let mut headers = HashMap::new();
        headers.insert(digest, genesis);
        Ok(ChainStore {
            headers,
            genesis: digest,
            best: digest,
        })
    }

    /// The genesis digest.
    pub fn genesis_hash(&self) -> Hash {
        self.genesis
    }

    /// The canonical tip header.
    pub fn best_header(&self) -> &BlockHeader {
        &self.headers[&self.best]
    }

    /// The canonical tip digest.
    pub fn best_hash(&self) -> Hash {
        self.best
    }

    /// Number of stored headers (all branches).
    pub fn len(&self) -> usize {
        self.headers.len()
    }

    /// Returns `true` if only genesis is stored... never: genesis is always
    /// present, so this is always `false`; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Looks up a header by digest.
    pub fn header(&self, hash: &Hash) -> Option<&BlockHeader> {
        self.headers.get(hash)
    }

    /// Inserts a header whose parent is already stored, updating the
    /// canonical tip per the longest-chain rule.
    ///
    /// Only *structural* checks happen here (linkage, height); consensus
    /// and state validation belong to the full node.
    ///
    /// # Errors
    ///
    /// - [`ChainError::UnknownParent`] if the parent is absent,
    /// - [`ChainError::Duplicate`] if the header is already stored,
    /// - [`ChainError::BadHeight`] if `height != parent.height + 1`.
    pub fn insert(&mut self, header: BlockHeader) -> Result<Hash, ChainError> {
        let digest = header.hash();
        if self.headers.contains_key(&digest) {
            return Err(ChainError::Duplicate(digest));
        }
        let parent = self
            .headers
            .get(&header.prev_hash)
            .ok_or(ChainError::UnknownParent(header.prev_hash))?;
        if header.height != parent.height + 1 {
            return Err(ChainError::BadHeight {
                parent: parent.height,
                child: header.height,
            });
        }
        let candidate = (header.height, digest);
        let best = self.best_header();
        let current = (best.height, self.best);
        self.headers.insert(digest, header);
        if candidate.0 > current.0 || (candidate.0 == current.0 && candidate.1 < current.1) {
            self.best = digest;
        }
        Ok(digest)
    }

    /// Walks the canonical chain from the tip back to genesis, returning
    /// digests tip-first.
    pub fn canonical_chain(&self) -> Vec<Hash> {
        let mut out = Vec::new();
        let mut cursor = self.best;
        loop {
            out.push(cursor);
            let header = &self.headers[&cursor];
            if header.height == 0 {
                break;
            }
            cursor = header.prev_hash;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consensus::ConsensusProof;
    use dcert_primitives::hash::Address;

    fn genesis() -> BlockHeader {
        BlockHeader {
            height: 0,
            prev_hash: Hash::ZERO,
            state_root: Hash::ZERO,
            tx_root: Hash::ZERO,
            timestamp: 0,
            miner: Address::default(),
            consensus: ConsensusProof::Pow {
                difficulty_bits: 0,
                nonce: 0,
            },
        }
    }

    fn child(parent: &BlockHeader, salt: u64) -> BlockHeader {
        BlockHeader {
            height: parent.height + 1,
            prev_hash: parent.hash(),
            state_root: Hash::ZERO,
            tx_root: Hash::ZERO,
            timestamp: salt,
            miner: Address::default(),
            consensus: ConsensusProof::Pow {
                difficulty_bits: 0,
                nonce: salt,
            },
        }
    }

    #[test]
    fn rejects_bad_genesis() {
        let mut g = genesis();
        g.height = 1;
        assert!(matches!(ChainStore::new(g), Err(ChainError::BadGenesis(_))));
    }

    #[test]
    fn linear_growth_updates_tip() {
        let g = genesis();
        let mut store = ChainStore::new(g.clone()).unwrap();
        let b1 = child(&g, 1);
        let b2 = child(&b1, 2);
        store.insert(b1.clone()).unwrap();
        store.insert(b2.clone()).unwrap();
        assert_eq!(store.best_hash(), b2.hash());
        assert_eq!(store.best_header().height, 2);
        assert_eq!(store.canonical_chain().len(), 3);
    }

    #[test]
    fn longest_chain_wins_fork() {
        let g = genesis();
        let mut store = ChainStore::new(g.clone()).unwrap();
        // Branch A: one block. Branch B: two blocks.
        let a1 = child(&g, 10);
        let b1 = child(&g, 20);
        let b2 = child(&b1, 21);
        store.insert(a1.clone()).unwrap();
        assert_eq!(store.best_hash(), a1.hash());
        store.insert(b1.clone()).unwrap();
        // Same height: deterministic tie-break, tip is one of the two.
        let tip_at_1 = store.best_hash();
        assert!(tip_at_1 == a1.hash() || tip_at_1 == b1.hash());
        store.insert(b2.clone()).unwrap();
        assert_eq!(store.best_hash(), b2.hash(), "longer branch must win");
    }

    #[test]
    fn equal_height_tie_break_is_deterministic() {
        let g = genesis();
        let a1 = child(&g, 10);
        let b1 = child(&g, 20);
        let mut store1 = ChainStore::new(g.clone()).unwrap();
        store1.insert(a1.clone()).unwrap();
        store1.insert(b1.clone()).unwrap();
        let mut store2 = ChainStore::new(g).unwrap();
        store2.insert(b1).unwrap();
        store2.insert(a1).unwrap();
        assert_eq!(store1.best_hash(), store2.best_hash());
    }

    #[test]
    fn rejects_orphans_duplicates_and_bad_heights() {
        let g = genesis();
        let mut store = ChainStore::new(g.clone()).unwrap();
        let b1 = child(&g, 1);
        let orphan = child(&b1, 2); // parent not yet inserted
        assert!(matches!(
            store.insert(orphan.clone()),
            Err(ChainError::UnknownParent(_))
        ));
        store.insert(b1.clone()).unwrap();
        assert!(matches!(
            store.insert(b1.clone()),
            Err(ChainError::Duplicate(_))
        ));
        let mut skip = child(&b1, 3);
        skip.height = 5;
        assert!(matches!(
            store.insert(skip),
            Err(ChainError::BadHeight {
                parent: 1,
                child: 5
            })
        ));
    }
}
