//! Pluggable consensus engines.
//!
//! The enclave's `verify_cons(π_cons)` (Algorithm 2, line 15) and the full
//! node's block validation both go through [`ConsensusEngine::verify`]. Two
//! engines are provided: nonce-searching proof-of-work (what the paper's
//! Bitcoin/Ethereum-style discussion assumes) and proof-of-authority (fast
//! and deterministic, used by tests and large chain builds).

use dcert_primitives::codec::{Decode, Encode, Reader};
use dcert_primitives::error::CodecError;
use dcert_primitives::hash::{Hash, Hasher};
use dcert_primitives::keys::{Keypair, PublicKey, Signature};

use crate::block::BlockHeader;
use crate::error::ChainError;

/// `π_cons`: the consensus proof carried in every header.
// A PoA proof (96 B) dwarfs a PoW proof (9 B); headers are long-lived
// values where layout clarity beats boxing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConsensusProof {
    /// Proof-of-work: `H(sealing_digest || nonce)` has at least
    /// `difficulty_bits` leading zero bits.
    Pow {
        /// The difficulty this proof claims to satisfy.
        difficulty_bits: u8,
        /// The mined nonce.
        nonce: u64,
    },
    /// Proof-of-authority: an authorized signer's signature over the
    /// sealing digest.
    Authority {
        /// The signer's public key.
        signer: PublicKey,
        /// Signature over the sealing digest.
        signature: Signature,
    },
}

impl Encode for ConsensusProof {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ConsensusProof::Pow {
                difficulty_bits,
                nonce,
            } => {
                out.push(0);
                difficulty_bits.encode(out);
                nonce.encode(out);
            }
            ConsensusProof::Authority { signer, signature } => {
                out.push(1);
                signer.encode(out);
                signature.encode(out);
            }
        }
    }
}

impl Decode for ConsensusProof {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_byte()? {
            0 => Ok(ConsensusProof::Pow {
                difficulty_bits: u8::decode(r)?,
                nonce: u64::decode(r)?,
            }),
            1 => Ok(ConsensusProof::Authority {
                signer: PublicKey::decode(r)?,
                signature: Signature::decode(r)?,
            }),
            other => Err(CodecError::InvalidTag(other)),
        }
    }
}

/// Number of leading zero bits of a digest.
pub fn leading_zero_bits(hash: &Hash) -> u32 {
    let mut bits = 0;
    for &byte in hash.as_bytes() {
        if byte == 0 {
            bits += 8;
        } else {
            bits += byte.leading_zeros();
            break;
        }
    }
    bits
}

/// Seals headers and verifies consensus proofs.
pub trait ConsensusEngine: Send + Sync {
    /// Human-readable engine name.
    fn name(&self) -> &str;

    /// Fills `header.consensus` with a valid proof.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::BadConsensus`] when the engine cannot seal
    /// (e.g. a PoA engine without a signing key).
    fn seal(&self, header: &mut BlockHeader) -> Result<(), ChainError>;

    /// Verifies `header.consensus`. Genesis headers (height 0) are exempt —
    /// their digest is pinned instead (Algorithm 2, line 4).
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::BadConsensus`] on an invalid proof.
    fn verify(&self, header: &BlockHeader) -> Result<(), ChainError>;
}

/// Nonce-searching proof-of-work over the sealing digest.
#[derive(Debug, Clone)]
pub struct ProofOfWork {
    difficulty_bits: u8,
}

impl ProofOfWork {
    /// Creates a PoW engine requiring `difficulty_bits` leading zero bits.
    pub fn new(difficulty_bits: u8) -> Self {
        ProofOfWork { difficulty_bits }
    }

    /// The configured difficulty.
    pub fn difficulty_bits(&self) -> u8 {
        self.difficulty_bits
    }

    fn pow_digest(sealing: &Hash, nonce: u64) -> Hash {
        Hasher::new()
            .chain(sealing.as_bytes())
            .chain(nonce.to_be_bytes())
            .finalize()
    }
}

impl ConsensusEngine for ProofOfWork {
    fn name(&self) -> &str {
        "pow"
    }

    fn seal(&self, header: &mut BlockHeader) -> Result<(), ChainError> {
        let sealing = header.sealing_digest();
        // Absorb the sealing digest once; each candidate nonce only clones
        // the midstate instead of rehashing the 32-byte prefix.
        let base = Hasher::new().chain(sealing.as_bytes());
        let mut nonce = 0u64;
        loop {
            let digest = base.clone().chain(nonce.to_be_bytes()).finalize();
            if leading_zero_bits(&digest) >= self.difficulty_bits as u32 {
                header.consensus = ConsensusProof::Pow {
                    difficulty_bits: self.difficulty_bits,
                    nonce,
                };
                return Ok(());
            }
            nonce = nonce
                .checked_add(1)
                .ok_or(ChainError::BadConsensus("nonce space exhausted"))?;
        }
    }

    fn verify(&self, header: &BlockHeader) -> Result<(), ChainError> {
        if header.height == 0 {
            return Ok(());
        }
        let ConsensusProof::Pow {
            difficulty_bits,
            nonce,
        } = &header.consensus
        else {
            return Err(ChainError::BadConsensus("expected a PoW proof"));
        };
        if *difficulty_bits != self.difficulty_bits {
            return Err(ChainError::BadConsensus("wrong difficulty"));
        }
        let digest = Self::pow_digest(&header.sealing_digest(), *nonce);
        if leading_zero_bits(&digest) >= self.difficulty_bits as u32 {
            Ok(())
        } else {
            Err(ChainError::BadConsensus("insufficient work"))
        }
    }
}

/// Proof-of-authority: any of a fixed set of signers may seal blocks.
///
/// Fast and deterministic — used by tests and by benchmark chain builds
/// where PoW mining time would only add noise.
pub struct ProofOfAuthority {
    authorized: Vec<PublicKey>,
    signer: Option<Keypair>,
}

impl std::fmt::Debug for ProofOfAuthority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProofOfAuthority")
            .field("authorized", &self.authorized)
            .field("can_seal", &self.signer.is_some())
            .finish()
    }
}

impl ProofOfAuthority {
    /// Creates a sealing engine: `signer` must be in `authorized`.
    pub fn new_sealer(authorized: Vec<PublicKey>, signer: Keypair) -> Self {
        ProofOfAuthority {
            authorized,
            signer: Some(signer),
        }
    }

    /// Creates a verify-only engine.
    pub fn new_verifier(authorized: Vec<PublicKey>) -> Self {
        ProofOfAuthority {
            authorized,
            signer: None,
        }
    }
}

impl ConsensusEngine for ProofOfAuthority {
    fn name(&self) -> &str {
        "poa"
    }

    fn seal(&self, header: &mut BlockHeader) -> Result<(), ChainError> {
        let signer = self
            .signer
            .as_ref()
            .ok_or(ChainError::BadConsensus("verify-only PoA engine"))?;
        let sealing = header.sealing_digest();
        header.consensus = ConsensusProof::Authority {
            signer: signer.public(),
            signature: signer.sign(sealing.as_bytes()),
        };
        Ok(())
    }

    fn verify(&self, header: &BlockHeader) -> Result<(), ChainError> {
        if header.height == 0 {
            return Ok(());
        }
        let ConsensusProof::Authority { signer, signature } = &header.consensus else {
            return Err(ChainError::BadConsensus("expected a PoA proof"));
        };
        if !self.authorized.contains(signer) {
            return Err(ChainError::BadConsensus("unauthorized signer"));
        }
        signer
            .verify(header.sealing_digest().as_bytes(), signature)
            .map_err(|_| ChainError::BadConsensus("bad authority signature"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcert_primitives::hash::Address;

    fn draft_header() -> BlockHeader {
        BlockHeader {
            height: 1,
            prev_hash: Hash::ZERO,
            state_root: Hash::ZERO,
            tx_root: Hash::ZERO,
            timestamp: 1,
            miner: Address::from_seed(0),
            consensus: ConsensusProof::Pow {
                difficulty_bits: 0,
                nonce: 0,
            },
        }
    }

    #[test]
    fn leading_zero_bits_counts_correctly() {
        assert_eq!(leading_zero_bits(&Hash::ZERO), 256);
        let mut bytes = [0u8; 32];
        bytes[0] = 0b0001_0000;
        assert_eq!(leading_zero_bits(&Hash::from_bytes(bytes)), 3);
        bytes[0] = 0xff;
        assert_eq!(leading_zero_bits(&Hash::from_bytes(bytes)), 0);
    }

    #[test]
    fn pow_seal_then_verify() {
        let engine = ProofOfWork::new(8);
        let mut header = draft_header();
        engine.seal(&mut header).unwrap();
        engine.verify(&header).unwrap();
    }

    #[test]
    fn pow_rejects_wrong_nonce() {
        let engine = ProofOfWork::new(12);
        let mut header = draft_header();
        engine.seal(&mut header).unwrap();
        if let ConsensusProof::Pow { nonce, .. } = &mut header.consensus {
            *nonce = nonce.wrapping_add(1);
        }
        // A nonce off by one almost certainly fails a 12-bit target.
        assert!(engine.verify(&header).is_err());
    }

    #[test]
    fn pow_rejects_weaker_difficulty_claim() {
        let lenient = ProofOfWork::new(2);
        let strict = ProofOfWork::new(20);
        let mut header = draft_header();
        lenient.seal(&mut header).unwrap();
        assert_eq!(
            strict.verify(&header),
            Err(ChainError::BadConsensus("wrong difficulty"))
        );
    }

    #[test]
    fn pow_resealing_needed_after_header_change() {
        let engine = ProofOfWork::new(10);
        let mut header = draft_header();
        engine.seal(&mut header).unwrap();
        header.state_root = dcert_primitives::hash::hash_bytes(b"tampered");
        assert!(engine.verify(&header).is_err());
    }

    #[test]
    fn genesis_is_exempt() {
        let engine = ProofOfWork::new(200); // impossible difficulty
        let mut header = draft_header();
        header.height = 0;
        engine.verify(&header).unwrap();
    }

    #[test]
    fn poa_seal_then_verify() {
        let kp = Keypair::from_seed([1; 32]);
        let authorized = vec![kp.public()];
        let sealer = ProofOfAuthority::new_sealer(authorized.clone(), kp);
        let verifier = ProofOfAuthority::new_verifier(authorized);
        let mut header = draft_header();
        sealer.seal(&mut header).unwrap();
        verifier.verify(&header).unwrap();
    }

    #[test]
    fn poa_rejects_unauthorized_signer() {
        let good = Keypair::from_seed([1; 32]);
        let rogue = Keypair::from_seed([2; 32]);
        let sealer = ProofOfAuthority::new_sealer(vec![rogue.public()], rogue);
        let verifier = ProofOfAuthority::new_verifier(vec![good.public()]);
        let mut header = draft_header();
        sealer.seal(&mut header).unwrap();
        assert_eq!(
            verifier.verify(&header),
            Err(ChainError::BadConsensus("unauthorized signer"))
        );
    }

    #[test]
    fn poa_verify_only_engine_cannot_seal() {
        let kp = Keypair::from_seed([1; 32]);
        let verifier = ProofOfAuthority::new_verifier(vec![kp.public()]);
        let mut header = draft_header();
        assert!(verifier.seal(&mut header).is_err());
    }

    #[test]
    fn proof_codec_round_trip() {
        let pow = ConsensusProof::Pow {
            difficulty_bits: 7,
            nonce: 12345,
        };
        assert_eq!(
            ConsensusProof::decode_all(&pow.to_encoded_bytes()).unwrap(),
            pow
        );
        let kp = Keypair::from_seed([3; 32]);
        let poa = ConsensusProof::Authority {
            signer: kp.public(),
            signature: kp.sign(b"x"),
        };
        assert_eq!(
            ConsensusProof::decode_all(&poa.to_encoded_bytes()).unwrap(),
            poa
        );
    }
}
