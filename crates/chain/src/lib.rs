//! Blockchain substrate for DCert.
//!
//! DCert is "compatible with existing blockchain systems" (design goal G2
//! of the paper): it treats the chain as a black box exposing block headers
//! `⟨H_prev, π_cons, H_state, H_tx⟩`, Merkle-authenticated global state,
//! and deterministic transaction execution. This crate provides that black
//! box — an Ethereum-style prototype chain:
//!
//! - [`tx`]: Ed25519-signed transactions wrapping VM [`Call`]s,
//! - [`block`]: headers and blocks with the exact four header fields of
//!   Fig. 1 (plus height/timestamp/miner metadata),
//! - [`consensus`]: pluggable consensus engines — proof-of-work with a
//!   leading-zero-bits difficulty target, and proof-of-authority for tests,
//! - [`state`]: the global state as a sparse-Merkle-tree commitment
//!   implementing the VM's [`StateReader`],
//! - [`store`]: a fork-aware header/block store with longest-chain
//!   selection,
//! - [`node`]: a mining/validating full node that executes blocks and
//!   maintains tip state,
//! - [`genesis`]: deterministic genesis construction.
//!
//! [`Call`]: dcert_vm::Call
//! [`StateReader`]: dcert_vm::StateReader

#![forbid(unsafe_code)]

pub mod block;
pub mod consensus;
pub mod error;
pub mod genesis;
pub mod mempool;
pub mod node;
pub mod state;
pub mod store;
pub mod tx;

pub use block::{Block, BlockHeader};
pub use consensus::{ConsensusEngine, ConsensusProof, ProofOfAuthority, ProofOfWork};
pub use error::ChainError;
pub use genesis::GenesisBuilder;
pub use mempool::Mempool;
pub use node::FullNode;
pub use state::ChainState;
pub use store::ChainStore;
pub use tx::{address_of, Transaction};
