//! Chain error types.

use std::fmt;

use dcert_primitives::hash::Hash;

/// An error raised while validating transactions, headers, or blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// A transaction signature failed to verify.
    BadTxSignature,
    /// A transaction's sender address does not match its public key.
    SenderMismatch,
    /// The header's `prev_hash` does not match the parent header.
    BrokenLink {
        /// What the header claims.
        claimed: Hash,
        /// The actual parent digest.
        actual: Hash,
    },
    /// The header's height is not parent height + 1.
    BadHeight {
        /// Parent height.
        parent: u64,
        /// Child's claimed height.
        child: u64,
    },
    /// The consensus proof failed verification.
    BadConsensus(&'static str),
    /// The header's transaction root does not match the block's body.
    TxRootMismatch,
    /// The header's state root does not match the executed post-state.
    StateRootMismatch,
    /// A block references an unknown parent.
    UnknownParent(Hash),
    /// The block is already stored.
    Duplicate(Hash),
    /// A genesis block was malformed (e.g. non-zero height or prev hash).
    BadGenesis(&'static str),
    /// The mempool is at capacity.
    MempoolFull(usize),
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::BadTxSignature => write!(f, "transaction signature invalid"),
            ChainError::SenderMismatch => {
                write!(f, "transaction sender does not match public key")
            }
            ChainError::BrokenLink { claimed, actual } => write!(
                f,
                "previous-hash link broken: claimed {claimed}, actual {actual}"
            ),
            ChainError::BadHeight { parent, child } => {
                write!(f, "bad height: parent {parent}, child {child}")
            }
            ChainError::BadConsensus(why) => write!(f, "consensus proof invalid: {why}"),
            ChainError::TxRootMismatch => write!(f, "transaction root mismatch"),
            ChainError::StateRootMismatch => write!(f, "state root mismatch"),
            ChainError::UnknownParent(hash) => write!(f, "unknown parent {hash}"),
            ChainError::Duplicate(hash) => write!(f, "duplicate block {hash}"),
            ChainError::BadGenesis(why) => write!(f, "bad genesis: {why}"),
            ChainError::MempoolFull(cap) => write!(f, "mempool full (capacity {cap})"),
        }
    }
}

impl std::error::Error for ChainError {}
