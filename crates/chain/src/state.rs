//! The global state as a sparse-Merkle commitment.

use dcert_merkle::{SmtProof, SparseMerkleTree};
use dcert_primitives::hash::Hash;
use dcert_vm::{StateKey, StateReader, VmError};

/// The authenticated global state: a key-value map committed by a sparse
/// Merkle tree whose root is the header field `H_state`.
///
/// Implements the VM's [`StateReader`], so blocks execute directly against
/// it, and exposes [`ChainState::prove`] for the Certificate Issuer to
/// build the update proofs `π_i` of Algorithm 1.
#[derive(Debug, Clone, Default)]
pub struct ChainState {
    tree: SparseMerkleTree,
}

impl ChainState {
    /// Creates an empty state (root = [`Hash::ZERO`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The state commitment `H_state`.
    pub fn root(&self) -> Hash {
        self.tree.root()
    }

    /// Number of live state entries.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Returns `true` if the state holds no entries.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Reads a value directly.
    pub fn get(&self, key: &StateKey) -> Option<&[u8]> {
        self.tree.get(key.as_hash())
    }

    /// Sets `key` to `value` (used for genesis allocation).
    pub fn set(&mut self, key: StateKey, value: Vec<u8>) {
        self.tree.insert((*key.as_hash()).to_owned(), value);
    }

    /// Applies a block's write set (`None` deletes).
    pub fn apply_writes<'a>(
        &mut self,
        writes: impl IntoIterator<Item = (&'a StateKey, &'a Option<Vec<u8>>)>,
    ) {
        for (key, value) in writes {
            match value {
                Some(v) => {
                    self.tree.insert(*key.as_hash(), v.clone());
                }
                None => {
                    self.tree.remove(key.as_hash());
                }
            }
        }
    }

    /// Dumps every `(tree path, value)` entry — used by the naive
    /// full-state-in-enclave ablation and by state-sync tooling. Note the
    /// paths are the hashed [`StateKey`]s.
    pub fn dump_entries(&self) -> Vec<(Hash, Vec<u8>)> {
        let mut entries: Vec<(Hash, Vec<u8>)> =
            self.tree.iter().map(|(k, v)| (*k, v.to_vec())).collect();
        entries.sort_by_key(|(k, _)| *k);
        entries
    }

    /// Builds a multiproof over `keys` against the current root — the
    /// update proof `π_i` the CI ships into the enclave.
    pub fn prove(&self, keys: &[StateKey]) -> SmtProof {
        let hashes: Vec<Hash> = keys.iter().map(|k| *k.as_hash()).collect();
        self.tree.prove(&hashes)
    }
}

impl StateReader for ChainState {
    fn read(&self, key: &StateKey) -> Result<Option<Vec<u8>>, VmError> {
        Ok(self.tree.get(key.as_hash()).map(<[u8]>::to_vec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcert_primitives::hash::hash_bytes;

    #[test]
    fn state_reader_round_trip() {
        let mut state = ChainState::new();
        let key = StateKey::new("kv", b"x");
        assert_eq!(state.read(&key).unwrap(), None);
        state.set(key, b"v".to_vec());
        assert_eq!(state.read(&key).unwrap(), Some(b"v".to_vec()));
        assert_eq!(state.get(&key), Some(b"v".as_slice()));
    }

    #[test]
    fn root_changes_with_writes() {
        let mut state = ChainState::new();
        let r0 = state.root();
        state.set(StateKey::new("kv", b"x"), b"1".to_vec());
        let r1 = state.root();
        assert_ne!(r0, r1);
    }

    #[test]
    fn apply_writes_matches_proof_update() {
        let mut state = ChainState::new();
        for i in 0..20u32 {
            state.set(StateKey::new("kv", &i.to_be_bytes()), vec![i as u8]);
        }
        let old_root = state.root();

        let touched = vec![
            StateKey::new("kv", &3u32.to_be_bytes()),
            StateKey::new("kv", b"fresh"),
        ];
        let proof = state.prove(&touched);
        proof.verify(&old_root).unwrap();

        let writes = vec![
            (*touched[0].as_hash(), Some(hash_bytes(b"updated"))),
            (*touched[1].as_hash(), Some(hash_bytes(b"created"))),
        ];
        let predicted = proof.updated_root(&writes).unwrap();

        let block_writes: Vec<(StateKey, Option<Vec<u8>>)> = vec![
            (touched[0], Some(b"updated".to_vec())),
            (touched[1], Some(b"created".to_vec())),
        ];
        state.apply_writes(block_writes.iter().map(|(k, v)| (k, v)));
        assert_eq!(state.root(), predicted);
    }
}
