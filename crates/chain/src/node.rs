//! A mining/validating full node.

use std::sync::Arc;

use dcert_primitives::hash::{Address, Hash};
use dcert_vm::{BlockExecution, Call, Executor, StateKey};

use crate::block::{Block, BlockHeader};
use crate::consensus::{ConsensusEngine, ConsensusProof};
use crate::error::ChainError;
use crate::state::ChainState;
use crate::tx::Transaction;

/// A full node: executes, validates, and (optionally) proposes blocks,
/// maintaining the canonical-chain tip state.
///
/// In DCert's system model (Fig. 2 of the paper) both the miner and the
/// Certificate Issuer are full nodes; the CI (`dcert-core`) wraps this type
/// and adds the enclave-backed certification pipeline.
#[derive(Clone)]
pub struct FullNode {
    executor: Executor,
    engine: Arc<dyn ConsensusEngine>,
    tip: BlockHeader,
    state: ChainState,
    miner: Address,
}

impl std::fmt::Debug for FullNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FullNode")
            .field("height", &self.tip.height)
            .field("tip", &self.tip.hash())
            .field("engine", &self.engine.name())
            .finish()
    }
}

impl FullNode {
    /// Creates a node at the given genesis block and state.
    ///
    /// # Panics
    ///
    /// Panics if the genesis state root does not match the genesis header —
    /// that is a construction bug, not a runtime condition.
    pub fn new(
        genesis: &Block,
        genesis_state: ChainState,
        executor: Executor,
        engine: Arc<dyn ConsensusEngine>,
        miner: Address,
    ) -> Self {
        assert_eq!(
            genesis.header.state_root,
            genesis_state.root(),
            "genesis state root mismatch"
        );
        FullNode {
            executor,
            engine,
            tip: genesis.header.clone(),
            state: genesis_state,
            miner,
        }
    }

    /// Creates a node at an arbitrary checkpoint `(header, state)` instead
    /// of genesis — used when bootstrapping from a snapshot whose
    /// authenticity the caller has already established (e.g. through a
    /// DCert certificate).
    ///
    /// # Panics
    ///
    /// Panics if `state`'s root does not match the checkpoint header —
    /// callers must verify the snapshot before constructing a node on it.
    pub fn new_at_checkpoint(
        header: BlockHeader,
        state: ChainState,
        executor: Executor,
        engine: Arc<dyn ConsensusEngine>,
        miner: Address,
    ) -> Self {
        assert_eq!(
            header.state_root,
            state.root(),
            "checkpoint state root mismatch"
        );
        FullNode {
            executor,
            engine,
            tip: header,
            state,
            miner,
        }
    }

    /// The current tip header.
    pub fn tip(&self) -> &BlockHeader {
        &self.tip
    }

    /// The current chain height.
    pub fn height(&self) -> u64 {
        self.tip.height
    }

    /// The tip state.
    pub fn state(&self) -> &ChainState {
        &self.state
    }

    /// The node's executor (shared contract semantics).
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// The node's consensus engine.
    pub fn engine(&self) -> &Arc<dyn ConsensusEngine> {
        &self.engine
    }

    /// Executes `txs` against the tip state without committing anything,
    /// returning the block execution (read/write sets).
    pub fn execute(&self, txs: &[Transaction]) -> BlockExecution {
        let calls: Vec<Call> = txs.iter().map(|tx| tx.call.clone()).collect();
        self.executor.execute_block(&self.state, &calls)
    }

    /// Predicts the post-state root of `execution` without mutating state.
    pub fn predicted_state_root(&self, execution: &BlockExecution) -> Hash {
        let touched = execution.touched_keys();
        let proof = self.state.prove(&touched);
        let writes: Vec<(Hash, Option<Hash>)> = execution
            .writes
            .iter()
            .map(|(k, v)| {
                (
                    *k.as_hash(),
                    v.as_ref().map(dcert_primitives::hash::hash_bytes),
                )
            })
            .collect();
        proof
            .updated_root(&writes)
            // dcert-lint: allow(r5-panic-reachability, reason = "the proof was generated two lines up against this node's own tree over exactly the touched keys, so every written key is covered")
            .expect("proof covers every written key")
    }

    /// Builds and seals the next block from `txs` (transactions with
    /// invalid signatures are rejected up front). Does **not** advance the
    /// chain — call [`FullNode::apply`] with the returned block.
    ///
    /// # Errors
    ///
    /// Returns the first transaction validation error, or a consensus
    /// sealing error.
    pub fn propose(&self, txs: Vec<Transaction>, timestamp: u64) -> Result<Block, ChainError> {
        for tx in &txs {
            tx.verify()?;
        }
        let execution = self.execute(&txs);
        let state_root = self.predicted_state_root(&execution);
        let mut header = BlockHeader {
            height: self.tip.height + 1,
            prev_hash: self.tip.hash(),
            state_root,
            tx_root: Block::tx_root(&txs),
            timestamp,
            miner: self.miner,
            consensus: ConsensusProof::Pow {
                difficulty_bits: 0,
                nonce: 0,
            },
        };
        self.engine.seal(&mut header)?;
        Ok(Block { header, txs })
    }

    /// Fully validates `block` against the tip and commits it: header
    /// linkage and height, consensus proof, transaction root and
    /// signatures, re-execution, and state-root agreement.
    ///
    /// # Errors
    ///
    /// Any [`ChainError`] leaves the node unchanged.
    pub fn apply(&mut self, block: &Block) -> Result<(), ChainError> {
        let tip_hash = self.tip.hash();
        if block.header.prev_hash != tip_hash {
            return Err(ChainError::BrokenLink {
                claimed: block.header.prev_hash,
                actual: tip_hash,
            });
        }
        if block.header.height != self.tip.height + 1 {
            return Err(ChainError::BadHeight {
                parent: self.tip.height,
                child: block.header.height,
            });
        }
        self.engine.verify(&block.header)?;
        block.verify_tx_root()?;
        for tx in &block.txs {
            tx.verify()?;
        }
        let execution = self.execute(&block.txs);
        if self.predicted_state_root(&execution) != block.header.state_root {
            return Err(ChainError::StateRootMismatch);
        }
        self.state.apply_writes(execution.writes.iter());
        debug_assert_eq!(self.state.root(), block.header.state_root);
        self.tip = block.header.clone();
        Ok(())
    }

    /// Convenience: propose and immediately apply a block, returning it.
    ///
    /// # Errors
    ///
    /// Propagates proposal and validation errors.
    pub fn mine(&mut self, txs: Vec<Transaction>, timestamp: u64) -> Result<Block, ChainError> {
        let block = self.propose(txs, timestamp)?;
        self.apply(&block)?;
        Ok(block)
    }

    /// Replaces the tip and state wholesale, asserting only root
    /// consistency. The caller must have validated the whole transition by
    /// other means — DCert's CI uses this after the *enclave* has verified
    /// a batch of blocks, avoiding a redundant local re-execution.
    ///
    /// # Panics
    ///
    /// Panics if `state`'s root does not match `header.state_root`.
    pub fn adopt_validated(&mut self, header: BlockHeader, state: ChainState) {
        assert_eq!(
            header.state_root,
            state.root(),
            "adopted state root mismatch"
        );
        self.tip = header;
        self.state = state;
    }

    /// Direct state write used only when bootstrapping test fixtures; not
    /// reachable from block processing.
    #[doc(hidden)]
    pub fn state_mut_for_tests(&mut self) -> &mut ChainState {
        &mut self.state
    }

    /// Reads a state value at the tip.
    pub fn read_state(&self, key: &StateKey) -> Option<Vec<u8>> {
        self.state.get(key).map(<[u8]>::to_vec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consensus::{ProofOfAuthority, ProofOfWork};
    use crate::genesis::GenesisBuilder;
    use dcert_primitives::keys::Keypair;
    use dcert_vm::ContractRegistry;

    fn node(engine: Arc<dyn ConsensusEngine>) -> FullNode {
        let (genesis, state) = GenesisBuilder::new().build();
        let mut registry = ContractRegistry::new();
        registry.register(Arc::new(dcert_vm::testing::CounterContract));
        FullNode::new(
            &genesis,
            state,
            Executor::new(Arc::new(registry)),
            engine,
            Address::from_seed(99),
        )
    }

    fn bump_tx(seed: u8, nonce: u64) -> Transaction {
        Transaction::sign(
            &Keypair::from_seed([seed; 32]),
            nonce,
            "counter",
            b"bump".to_vec(),
        )
    }

    #[test]
    fn mine_and_apply_advances_chain() {
        let mut node = node(Arc::new(ProofOfWork::new(4)));
        let b1 = node.mine(vec![bump_tx(1, 0)], 1).unwrap();
        assert_eq!(node.height(), 1);
        assert_eq!(node.tip().hash(), b1.hash());
        let b2 = node.mine(vec![bump_tx(1, 1), bump_tx(2, 0)], 2).unwrap();
        assert_eq!(node.height(), 2);
        assert_eq!(b2.header.prev_hash, b1.hash());
        // Counter bumped three times in total.
        let value = node
            .read_state(&StateKey::new("counter", b"value"))
            .unwrap();
        assert_eq!(value, 3u64.to_be_bytes().to_vec());
    }

    #[test]
    fn empty_blocks_are_fine() {
        let mut node = node(Arc::new(ProofOfWork::new(2)));
        let b1 = node.mine(Vec::new(), 1).unwrap();
        assert_eq!(b1.header.tx_root, Hash::ZERO);
        assert_eq!(b1.header.state_root, node.state().root());
    }

    #[test]
    fn rejects_tampered_state_root() {
        let mut node = node(Arc::new(ProofOfAuthority::new_sealer(
            vec![Keypair::from_seed([9; 32]).public()],
            Keypair::from_seed([9; 32]),
        )));
        let mut block = node.propose(vec![bump_tx(1, 0)], 1).unwrap();
        block.header.state_root = Hash::ZERO;
        // Reseal so consensus passes and the state check is what trips.
        node.engine().seal(&mut block.header).unwrap();
        assert_eq!(node.apply(&block), Err(ChainError::StateRootMismatch));
        assert_eq!(node.height(), 0, "node must be unchanged");
    }

    #[test]
    fn rejects_broken_link_and_height() {
        let mut node = node(Arc::new(ProofOfWork::new(2)));
        let block = node.propose(Vec::new(), 1).unwrap();
        let mut wrong_link = block.clone();
        wrong_link.header.prev_hash = Hash::ZERO;
        assert!(matches!(
            node.apply(&wrong_link),
            Err(ChainError::BrokenLink { .. })
        ));
        let mut wrong_height = block;
        wrong_height.header.height = 7;
        assert!(matches!(
            node.apply(&wrong_height),
            Err(ChainError::BadHeight { .. })
        ));
    }

    #[test]
    fn rejects_bad_tx_signature_in_block() {
        let mut node = node(Arc::new(ProofOfWork::new(2)));
        let mut tx = bump_tx(1, 0);
        tx.nonce = 99; // invalidates the signature
        let block = Block {
            header: BlockHeader {
                height: 1,
                prev_hash: node.tip().hash(),
                state_root: node.state().root(),
                tx_root: Block::tx_root(std::slice::from_ref(&tx)),
                timestamp: 1,
                miner: Address::default(),
                consensus: ConsensusProof::Pow {
                    difficulty_bits: 0,
                    nonce: 0,
                },
            },
            txs: vec![tx],
        };
        let mut sealed = block;
        node.engine().seal(&mut sealed.header).unwrap();
        // Need matching difficulty: engine is PoW(2), seal produced that.
        assert_eq!(node.apply(&sealed), Err(ChainError::BadTxSignature));
    }

    #[test]
    fn rejects_unsealed_block() {
        let mut node = node(Arc::new(ProofOfWork::new(16)));
        let block = node.propose(Vec::new(), 1).unwrap();
        let mut unsealed = block;
        unsealed.header.consensus = ConsensusProof::Pow {
            difficulty_bits: 16,
            nonce: 0,
        };
        // Nonce 0 almost certainly fails a 16-bit target; if it passes by
        // luck the block is simply valid, so only assert on the common case.
        if node.apply(&unsealed).is_ok() {
            return;
        }
        assert_eq!(node.height(), 0);
    }

    #[test]
    fn predicted_root_matches_committed_root() {
        let mut node = node(Arc::new(ProofOfWork::new(2)));
        for i in 0..10u64 {
            let block = node.mine(vec![bump_tx(1, i)], i).unwrap();
            assert_eq!(block.header.state_root, node.state().root());
        }
    }
}
