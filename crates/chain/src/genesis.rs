//! Deterministic genesis construction.

use dcert_primitives::hash::{Address, Hash};
use dcert_vm::StateKey;

use crate::block::{Block, BlockHeader};
use crate::consensus::ConsensusProof;
use crate::state::ChainState;

/// Builds a genesis block plus its initial state.
///
/// The genesis digest is the trust anchor of the whole certificate chain:
/// Algorithm 2 hard-codes `H_genesis` inside the enclave (line 4), so every
/// party — miner, full nodes, CI, enclave, clients — must derive the exact
/// same block from the same allocation.
///
/// ```
/// use dcert_chain::GenesisBuilder;
/// use dcert_vm::StateKey;
///
/// let (block_a, _) = GenesisBuilder::new()
///     .allocate(StateKey::new("bank", b"alice"), b"100".to_vec())
///     .build();
/// let (block_b, _) = GenesisBuilder::new()
///     .allocate(StateKey::new("bank", b"alice"), b"100".to_vec())
///     .build();
/// assert_eq!(block_a.hash(), block_b.hash());
/// ```
#[derive(Debug, Clone, Default)]
pub struct GenesisBuilder {
    allocations: Vec<(StateKey, Vec<u8>)>,
    timestamp: u64,
}

impl GenesisBuilder {
    /// Creates a builder with no allocations and timestamp 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-populates a state entry.
    pub fn allocate(mut self, key: StateKey, value: Vec<u8>) -> Self {
        self.allocations.push((key, value));
        self
    }

    /// Sets the genesis timestamp.
    pub fn timestamp(mut self, timestamp: u64) -> Self {
        self.timestamp = timestamp;
        self
    }

    /// Builds the genesis block and its state.
    pub fn build(self) -> (Block, ChainState) {
        let mut state = ChainState::new();
        for (key, value) in self.allocations {
            state.set(key, value);
        }
        let header = BlockHeader {
            height: 0,
            prev_hash: Hash::ZERO,
            state_root: state.root(),
            tx_root: Hash::ZERO,
            timestamp: self.timestamp,
            miner: Address::default(),
            consensus: ConsensusProof::Pow {
                difficulty_bits: 0,
                nonce: 0,
            },
        };
        (
            Block {
                header,
                txs: Vec::new(),
            },
            state,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_genesis_is_deterministic() {
        let (a, _) = GenesisBuilder::new().build();
        let (b, _) = GenesisBuilder::new().build();
        assert_eq!(a.hash(), b.hash());
        assert_eq!(a.height(), 0);
        assert!(a.header.prev_hash.is_zero());
        assert!(a.txs.is_empty());
    }

    #[test]
    fn allocations_change_the_digest() {
        let (plain, _) = GenesisBuilder::new().build();
        let (funded, state) = GenesisBuilder::new()
            .allocate(StateKey::new("bank", b"alice"), b"100".to_vec())
            .build();
        assert_ne!(plain.hash(), funded.hash());
        assert_eq!(funded.header.state_root, state.root());
        assert_eq!(
            state.get(&StateKey::new("bank", b"alice")),
            Some(b"100".as_slice())
        );
    }

    #[test]
    fn timestamp_changes_the_digest() {
        let (a, _) = GenesisBuilder::new().timestamp(1).build();
        let (b, _) = GenesisBuilder::new().timestamp(2).build();
        assert_ne!(a.hash(), b.hash());
    }
}
