//! Block headers and blocks.

use dcert_merkle::MerkleTree;
use dcert_primitives::codec::{decode_seq, encode_seq, Decode, Encode, Reader};
use dcert_primitives::error::CodecError;
use dcert_primitives::hash::{hash_bytes, hash_encoded, Address, Hash};

use crate::consensus::ConsensusProof;
use crate::error::ChainError;
use crate::tx::Transaction;

/// A block header — the four fields of Fig. 1 of the paper
/// (`H_prev`, `π_cons`, `H_state`, `H_tx`) plus chain metadata.
///
/// This is everything a traditional light client stores per block, and the
/// *only* block a DCert superlight client stores at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockHeader {
    /// Block height (genesis = 0).
    pub height: u64,
    /// `H_{prev_blk}`: digest of the previous block's header.
    pub prev_hash: Hash,
    /// `H_state`: sparse-Merkle root of the post-block global state.
    pub state_root: Hash,
    /// `H_tx`: Merkle root of the block's transactions.
    pub tx_root: Hash,
    /// Wall-clock seconds (miner-declared; informational).
    pub timestamp: u64,
    /// The proposing miner's address.
    pub miner: Address,
    /// `π_cons`: the consensus proof.
    pub consensus: ConsensusProof,
}

impl BlockHeader {
    /// The header digest `H(hdr)` — the chain-link and certificate digest.
    pub fn hash(&self) -> Hash {
        hash_encoded(self)
    }

    /// The digest sealed by consensus: all fields *except* the consensus
    /// proof (which would otherwise be circular).
    pub fn sealing_digest(&self) -> Hash {
        let mut buf = Vec::new();
        self.encode_sans_consensus(&mut buf);
        hash_bytes(&buf)
    }

    /// Serialized size in bytes — what a light client pays per header.
    pub fn size_bytes(&self) -> usize {
        self.encoded_len()
    }

    fn encode_sans_consensus(&self, out: &mut Vec<u8>) {
        self.height.encode(out);
        self.prev_hash.encode(out);
        self.state_root.encode(out);
        self.tx_root.encode(out);
        self.timestamp.encode(out);
        self.miner.encode(out);
    }
}

impl Encode for BlockHeader {
    fn encode(&self, out: &mut Vec<u8>) {
        self.encode_sans_consensus(out);
        self.consensus.encode(out);
    }
}

impl Decode for BlockHeader {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(BlockHeader {
            height: u64::decode(r)?,
            prev_hash: Hash::decode(r)?,
            state_root: Hash::decode(r)?,
            tx_root: Hash::decode(r)?,
            timestamp: u64::decode(r)?,
            miner: Address::decode(r)?,
            consensus: ConsensusProof::decode(r)?,
        })
    }
}

/// A full block: header plus transaction body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The header.
    pub header: BlockHeader,
    /// The ordered transactions.
    pub txs: Vec<Transaction>,
}

impl Block {
    /// Computes the Merkle root (`H_tx`) of a transaction list.
    pub fn tx_root(txs: &[Transaction]) -> Hash {
        MerkleTree::from_items(txs.iter().map(|tx| tx.to_encoded_bytes())).root()
    }

    /// The block digest (= header digest; bodies are bound via `H_tx`).
    pub fn hash(&self) -> Hash {
        self.header.hash()
    }

    /// Block height.
    pub fn height(&self) -> u64 {
        self.header.height
    }

    /// Checks that the header's `tx_root` commits to the body.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::TxRootMismatch`] when it does not.
    pub fn verify_tx_root(&self) -> Result<(), ChainError> {
        if Self::tx_root(&self.txs) == self.header.tx_root {
            Ok(())
        } else {
            Err(ChainError::TxRootMismatch)
        }
    }

    /// Serialized size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.encoded_len()
    }
}

impl Encode for Block {
    fn encode(&self, out: &mut Vec<u8>) {
        self.header.encode(out);
        encode_seq(&self.txs, out);
    }
}

impl Decode for Block {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Block {
            header: BlockHeader::decode(r)?,
            txs: decode_seq(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcert_primitives::keys::Keypair;
    use proptest::prelude::*;

    fn arb_hash() -> impl Strategy<Value = Hash> {
        any::<[u8; 32]>().prop_map(Hash::from_bytes)
    }

    fn arb_header() -> impl Strategy<Value = BlockHeader> {
        (
            any::<u64>(),
            arb_hash(),
            arb_hash(),
            arb_hash(),
            any::<u64>(),
            any::<u64>(),
            any::<u8>(),
            any::<u64>(),
        )
            .prop_map(
                |(height, prev_hash, state_root, tx_root, timestamp, miner, bits, nonce)| {
                    BlockHeader {
                        height,
                        prev_hash,
                        state_root,
                        tx_root,
                        timestamp,
                        miner: Address::from_seed(miner),
                        consensus: ConsensusProof::Pow {
                            difficulty_bits: bits,
                            nonce,
                        },
                    }
                },
            )
    }

    proptest! {
        /// Arbitrary headers survive the wire format, and distinct headers
        /// have distinct digests (encoding is canonical and injective).
        #[test]
        fn prop_header_codec_round_trip(a in arb_header(), b in arb_header()) {
            let decoded = BlockHeader::decode_all(&a.to_encoded_bytes()).unwrap();
            prop_assert_eq!(&decoded, &a);
            if a != b {
                prop_assert_ne!(a.hash(), b.hash());
            }
        }

        /// Arbitrary signed transactions survive the wire format inside a
        /// block, and the tx root changes whenever the body changes.
        #[test]
        fn prop_block_codec_round_trip(
            header in arb_header(),
            payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..24), 0..6),
        ) {
            let kp = Keypair::from_seed([11; 32]);
            let txs: Vec<Transaction> = payloads
                .into_iter()
                .enumerate()
                .map(|(i, p)| Transaction::sign(&kp, i as u64, "kv", p))
                .collect();
            let mut header = header;
            header.tx_root = Block::tx_root(&txs);
            let block = Block { header, txs };
            let decoded = Block::decode_all(&block.to_encoded_bytes()).unwrap();
            prop_assert_eq!(&decoded, &block);
            prop_assert!(decoded.verify_tx_root().is_ok());
        }
    }

    fn header() -> BlockHeader {
        BlockHeader {
            height: 3,
            prev_hash: hash_bytes(b"prev"),
            state_root: hash_bytes(b"state"),
            tx_root: hash_bytes(b"txs"),
            timestamp: 1_700_000_000,
            miner: Address::from_seed(1),
            consensus: ConsensusProof::Pow {
                difficulty_bits: 4,
                nonce: 42,
            },
        }
    }

    #[test]
    fn header_hash_changes_with_any_field() {
        let base = header();
        let mut variants = Vec::new();
        let mut h = base.clone();
        h.height = 4;
        variants.push(h);
        let mut h = base.clone();
        h.prev_hash = hash_bytes(b"other");
        variants.push(h);
        let mut h = base.clone();
        h.state_root = hash_bytes(b"other");
        variants.push(h);
        let mut h = base.clone();
        h.tx_root = hash_bytes(b"other");
        variants.push(h);
        let mut h = base.clone();
        h.timestamp += 1;
        variants.push(h);
        let mut h = base.clone();
        h.consensus = ConsensusProof::Pow {
            difficulty_bits: 4,
            nonce: 43,
        };
        variants.push(h);
        for variant in variants {
            assert_ne!(variant.hash(), base.hash());
        }
    }

    #[test]
    fn sealing_digest_ignores_consensus() {
        let base = header();
        let mut resealed = base.clone();
        resealed.consensus = ConsensusProof::Pow {
            difficulty_bits: 9,
            nonce: 9999,
        };
        assert_eq!(base.sealing_digest(), resealed.sealing_digest());
        assert_ne!(base.hash(), resealed.hash());
    }

    #[test]
    fn header_codec_round_trip() {
        let h = header();
        assert_eq!(BlockHeader::decode_all(&h.to_encoded_bytes()).unwrap(), h);
    }

    #[test]
    fn tx_root_commits_to_body() {
        let kp = Keypair::from_seed([7; 32]);
        let txs = vec![
            Transaction::sign(&kp, 0, "kv", b"a".to_vec()),
            Transaction::sign(&kp, 1, "kv", b"b".to_vec()),
        ];
        let mut h = header();
        h.tx_root = Block::tx_root(&txs);
        let block = Block { header: h, txs };
        block.verify_tx_root().unwrap();

        let mut tampered = block.clone();
        tampered.txs[0].call.payload = b"evil".to_vec();
        assert_eq!(tampered.verify_tx_root(), Err(ChainError::TxRootMismatch));
    }

    #[test]
    fn empty_body_tx_root_is_zero() {
        assert_eq!(Block::tx_root(&[]), Hash::ZERO);
    }

    #[test]
    fn block_codec_round_trip() {
        let kp = Keypair::from_seed([7; 32]);
        let txs = vec![Transaction::sign(&kp, 0, "kv", b"a".to_vec())];
        let mut h = header();
        h.tx_root = Block::tx_root(&txs);
        let block = Block { header: h, txs };
        assert_eq!(Block::decode_all(&block.to_encoded_bytes()).unwrap(), block);
    }
}
