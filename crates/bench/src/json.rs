//! A minimal JSON value: enough to build the rows the figure binaries
//! print, to re-read `BENCH_pr10.json` for merging, and for `check_bench`
//! to assert over exported metrics. Deliberately tiny — no external
//! dependencies, deterministic output (object keys sorted by `BTreeMap`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

/// A parse failure: what went wrong and the byte offset of the first
/// problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What the parser expected or found.
    pub what: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl ParseError {
    fn new(what: impl Into<String>, at: usize) -> Self {
        ParseError {
            what: what.into(),
            at,
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.what, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Builds an object from `(key, value)` pairs.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Num(f64::from(v))
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_owned())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Arr(v)
    }
}

impl Json {
    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// [`ParseError`] locating the first problem by byte offset.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError::new("trailing data", pos));
        }
        Ok(value)
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(ParseError::new("unexpected end of input", *pos)),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, ParseError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(ParseError::new(format!("expected `{word}`"), *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|e| ParseError::new(e.to_string(), start))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| ParseError::new(format!("bad number `{text}`"), start))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(ParseError::new("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or(ParseError::new("truncated \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| ParseError::new("bad \\u escape", *pos))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(ParseError::new("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance by whole UTF-8 characters.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|e| ParseError::new(e.to_string(), *pos))?;
                let c = rest
                    .chars()
                    .next()
                    .ok_or(ParseError::new("unterminated string", *pos))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    *pos += 1; // [
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(ParseError::new("expected `,` or `]`", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    *pos += 1; // {
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(ParseError::new("expected object key", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(ParseError::new("expected `:`", *pos));
        }
        *pos += 1;
        map.insert(key, parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(ParseError::new("expected `,` or `}`", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_nested_document() {
        let doc = obj(vec![
            ("name", "fig8".into()),
            ("rows", Json::Arr(vec![obj(vec![("n", 3u64.into())])])),
            ("ok", true.into()),
            ("ratio", 1.5.into()),
            ("none", Json::Null),
        ]);
        let text = doc.to_string_pretty();
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back, doc);
        assert_eq!(back.get("name"), Some(&Json::Str("fig8".into())));
    }

    #[test]
    fn parses_the_obs_snapshot_encoding() {
        // Mirrors `dcert_obs::Snapshot::to_json` output.
        let registry = dcert_obs::Registry::new();
        registry.counter("enclave.ecalls").add(7);
        registry
            .histogram("x.bytes", dcert_obs::Buckets::from_bounds(vec![10]))
            .observe(4);
        let parsed = Json::parse(&registry.snapshot().to_json()).expect("snapshot JSON parses");
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("enclave.ecalls"))
                .and_then(Json::as_u64),
            Some(7)
        );
        assert_eq!(
            parsed
                .get("histograms")
                .and_then(|h| h.get("x.bytes"))
                .and_then(|h| h.get("count"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn escapes_and_unescapes_strings() {
        let v = Json::Str("a\"b\\c\nd\té".to_owned());
        let text = v.to_string_pretty();
        assert_eq!(Json::parse(&text).expect("parses"), v);
    }

    #[test]
    fn large_integers_print_without_exponent() {
        let mut out = String::new();
        write_num(&mut out, 1_700_000_000_000.0);
        assert_eq!(out, "1700000000000");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"open").is_err());
    }
}
