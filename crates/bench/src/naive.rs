//! The **naive** certificate program: ships the *entire* pre-block state
//! into the enclave instead of Merkle proofs.
//!
//! Section 4.1 of the paper dismisses this design ("impractical due to the
//! large size of the state data and the limited memory of the enclave")
//! before introducing the stateless approach. This module implements it
//! anyway, so the ablation benchmark (`ablation_stateless`) can *measure*
//! the difference: the naive ECall marshals the whole state (cost linear
//! in state size, with a paging cliff past the EPC budget), while DCert's
//! stateless ECall marshals only read/write sets and proofs (cost
//! independent of state size).

use std::sync::Arc;

use dcert_chain::{Block, BlockHeader, ConsensusEngine};
use dcert_core::{CertError, Certificate};
use dcert_merkle::SparseMerkleTree;
use dcert_primitives::codec::{decode_seq, encode_seq, Decode, Encode, Reader};
use dcert_primitives::error::CodecError;
use dcert_primitives::hash::Hash;
use dcert_primitives::keys::{Keypair, PublicKey, Signature};
use dcert_sgx::TrustedApp;
use dcert_vm::{Executor, StateKey, StateReader, VmError};
use rand::rngs::OsRng;

/// Code identity of the naive program (distinct measurement from the real
/// certificate program).
pub const NAIVE_CODE_IDENTITY: &[u8] = b"dcert-naive-full-state-program-v1";

/// The naive ECall request: previous block + certificate, the new block,
/// and **every** pre-block state entry.
#[derive(Debug, Clone)]
pub struct NaiveRequest {
    pub prev_header: BlockHeader,
    pub prev_cert: Option<Certificate>,
    pub block: Block,
    /// The complete pre-block state (hashed key paths → values).
    pub state: Vec<(Hash, Vec<u8>)>,
}

impl Encode for NaiveRequest {
    fn encode(&self, out: &mut Vec<u8>) {
        self.prev_header.encode(out);
        self.prev_cert.encode(out);
        self.block.encode(out);
        encode_seq(&self.state, out);
    }
}

impl Decode for NaiveRequest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(NaiveRequest {
            prev_header: BlockHeader::decode(r)?,
            prev_cert: Option::<Certificate>::decode(r)?,
            block: Block::decode(r)?,
            state: decode_seq(r)?,
        })
    }
}

/// The naive trusted program: rebuilds the state tree from the marshalled
/// state, authenticates it against `H_{i-1}^s`, re-executes the block, and
/// checks the resulting root.
pub struct NaiveCertProgram {
    genesis_digest: Hash,
    ias_key: PublicKey,
    executor: Executor,
    engine: Arc<dyn ConsensusEngine>,
    keypair: Option<Keypair>,
}

impl NaiveCertProgram {
    /// Builds the program.
    pub fn new(
        genesis_digest: Hash,
        ias_key: PublicKey,
        executor: Executor,
        engine: Arc<dyn ConsensusEngine>,
    ) -> Self {
        NaiveCertProgram {
            genesis_digest,
            ias_key,
            executor,
            engine,
            keypair: None,
        }
    }

    /// Handles one decoded request (`None` input = Init).
    fn handle(&mut self, request: Option<NaiveRequest>) -> Result<Response, CertError> {
        let Some(request) = request else {
            let kp = self
                .keypair
                .get_or_insert_with(|| Keypair::generate(&mut OsRng));
            return Ok(Response::Initialized(kp.public()));
        };
        let kp = self.keypair.as_ref().ok_or(CertError::NotInitialized)?;

        // Previous-certificate / genesis check (same as Algorithm 2).
        if request.prev_header.height == 0 {
            if request.prev_header.hash() != self.genesis_digest {
                return Err(CertError::GenesisMismatch);
            }
        } else {
            let cert = request
                .prev_cert
                .as_ref()
                .ok_or(CertError::MissingPrevCert)?;
            cert.verify(
                &self.ias_key,
                &dcert_sgx::enclave::measure(NAIVE_CODE_IDENTITY),
                &request.prev_header.hash(),
            )?;
        }

        // Header checks.
        let header = &request.block.header;
        if header.prev_hash != request.prev_header.hash()
            || header.height != request.prev_header.height + 1
        {
            return Err(CertError::Chain(dcert_chain::ChainError::BrokenLink {
                claimed: header.prev_hash,
                actual: request.prev_header.hash(),
            }));
        }
        self.engine.verify(header)?;
        request.block.verify_tx_root()?;
        for tx in &request.block.txs {
            tx.verify()?;
        }

        // The expensive part the stateless design avoids: rebuild the
        // whole authenticated state tree inside the enclave.
        let mut tree = SparseMerkleTree::new();
        let mut flat = HashKeyedState::default();
        for (key, value) in &request.state {
            tree.insert(*key, value.clone());
            flat.entries.insert(*key, value.clone());
        }
        if tree.root() != request.prev_header.state_root {
            return Err(CertError::StateRootMismatch);
        }

        // Execute and commit.
        let calls: Vec<_> = request.block.txs.iter().map(|t| t.call.clone()).collect();
        let execution = self.executor.execute_block(&flat, &calls);
        for (key, value) in &execution.writes {
            match value {
                Some(v) => {
                    tree.insert(*key.as_hash(), v.clone());
                }
                None => {
                    tree.remove(key.as_hash());
                }
            }
        }
        if tree.root() != header.state_root {
            return Err(CertError::StateRootMismatch);
        }
        Ok(Response::Signature(kp.sign(header.hash().as_bytes())))
    }
}

/// A read backend keyed by hashed state paths (the naive request cannot
/// carry pre-image [`StateKey`]s, only their tree paths).
#[derive(Debug, Default)]
struct HashKeyedState {
    entries: std::collections::HashMap<Hash, Vec<u8>>,
}

impl StateReader for HashKeyedState {
    fn read(&self, key: &StateKey) -> Result<Option<Vec<u8>>, VmError> {
        Ok(self.entries.get(key.as_hash()).cloned())
    }
}

/// The naive program's ECall response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    Initialized(PublicKey),
    Signature(Signature),
    Rejected(String),
}

impl Encode for Response {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Response::Initialized(pk) => {
                out.push(0);
                pk.encode(out);
            }
            Response::Signature(sig) => {
                out.push(1);
                sig.encode(out);
            }
            Response::Rejected(reason) => {
                out.push(2);
                reason.encode(out);
            }
        }
    }
}

impl Decode for Response {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_byte()? {
            0 => Ok(Response::Initialized(PublicKey::decode(r)?)),
            1 => Ok(Response::Signature(Signature::decode(r)?)),
            2 => Ok(Response::Rejected(String::decode(r)?)),
            other => Err(CodecError::InvalidTag(other)),
        }
    }
}

impl TrustedApp for NaiveCertProgram {
    fn code_identity(&self) -> &[u8] {
        NAIVE_CODE_IDENTITY
    }

    fn call(&mut self, input: &[u8]) -> Vec<u8> {
        // Empty input = Init; otherwise a NaiveRequest.
        let response = if input.is_empty() {
            match self.handle(None) {
                Ok(resp) => resp,
                Err(e) => Response::Rejected(e.to_string()),
            }
        } else {
            match NaiveRequest::decode_all(input) {
                Err(e) => Response::Rejected(format!("request codec: {e}")),
                Ok(req) => match self.handle(Some(req)) {
                    Ok(resp) => resp,
                    Err(e) => Response::Rejected(e.to_string()),
                },
            }
        };
        response.to_encoded_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Rig, RigConfig};
    use dcert_sgx::{CostModel, Enclave};
    use dcert_workloads::Workload;

    #[test]
    fn naive_program_certifies_and_rejects_like_the_real_one() {
        let mut rig = Rig::new(RigConfig {
            cost: CostModel::zero(),
            ..RigConfig::default()
        });
        // Seed some state via one applied block, then prepare the next.
        let mut gen = rig.generator(Workload::KvStore { keyspace: 16 }, 7);
        let b1 = rig.mine(gen.next_block(4));
        rig.ci.certify_block(&b1).unwrap();
        let b2 = rig.mine(gen.next_block(4));

        let program = NaiveCertProgram::new(
            rig.genesis.hash(),
            rig.ias.public_key(),
            rig.executor.clone(),
            rig.engine.clone(),
        );
        let enclave = Enclave::launch(program, CostModel::zero());
        let init = Response::decode_all(&enclave.ecall(&[])).unwrap();
        assert!(matches!(init, Response::Initialized(_)));

        // Full pre-state of block 2 = state after block 1 (the CI's view).
        let state: Vec<(Hash, Vec<u8>)> = rig.ci.node().state().dump_entries();
        let request = NaiveRequest {
            prev_header: b1.header.clone(),
            prev_cert: None, // prev cert came from the *real* program: use genesis-anchored path instead
            block: b2.clone(),
            state: state.clone(),
        };
        // prev is b1 (height 1) and we pass no cert → must be rejected.
        let rejected = Response::decode_all(&enclave.ecall(&request.to_encoded_bytes())).unwrap();
        assert!(matches!(rejected, Response::Rejected(_)));

        // Anchor at genesis instead: certify block 1 naively.
        let genesis_state: Vec<(Hash, Vec<u8>)> = Vec::new();
        let request = NaiveRequest {
            prev_header: rig.genesis.header.clone(),
            prev_cert: None,
            block: b1.clone(),
            state: genesis_state,
        };
        let response = Response::decode_all(&enclave.ecall(&request.to_encoded_bytes())).unwrap();
        assert!(matches!(response, Response::Signature(_)), "{response:?}");

        // Tampered state root → rejected.
        let mut bad = b1.clone();
        bad.header.state_root = Hash::ZERO;
        rig.engine.seal(&mut bad.header).unwrap();
        let request = NaiveRequest {
            prev_header: rig.genesis.header.clone(),
            prev_cert: None,
            block: bad,
            state: Vec::new(),
        };
        let response = Response::decode_all(&enclave.ecall(&request.to_encoded_bytes())).unwrap();
        assert!(matches!(response, Response::Rejected(_)));
    }
}
