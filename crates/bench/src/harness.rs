//! The shared experiment rig: miner + CI + SP + client on one genesis.

use std::sync::Arc;
use std::time::Duration;

use dcert_chain::{Block, ChainState, ConsensusEngine, FullNode, GenesisBuilder, ProofOfAuthority};
use dcert_core::{
    expected_measurement, CertBreakdown, Certificate, CertificateIssuer, SuperlightClient,
};
use dcert_obs::Registry;
use dcert_primitives::hash::Address;
use dcert_primitives::keys::Keypair;
use dcert_query::sp::IndexKind;
use dcert_query::ServiceProvider;
use dcert_sgx::{AttestationService, CostModel};
use dcert_vm::Executor;
use dcert_workloads::{blockbench_registry, Workload, WorkloadGen};

use crate::params::SENDER_ACCOUNTS;

/// Which certificate scheme the rig drives per block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Algorithm 1/2: block certificates only.
    BlockOnly,
    /// Algorithm 4: one augmented certificate per index.
    Augmented,
    /// Algorithm 5: a block certificate plus light per-index certificates.
    Hierarchical,
}

/// Rig configuration.
#[derive(Debug, Clone)]
pub struct RigConfig {
    /// The simulated SGX cost model.
    pub cost: CostModel,
    /// Indexes registered on the SP/enclave (kind, name).
    pub indexes: Vec<(IndexKind, String)>,
    /// Metric registry attached to the CI enclave and the SP; the
    /// disabled default keeps unmeasured rigs observation-free.
    pub obs: Registry,
}

impl Default for RigConfig {
    fn default() -> Self {
        RigConfig {
            cost: CostModel::calibrated(),
            indexes: Vec::new(),
            obs: Registry::disabled(),
        }
    }
}

/// A complete experiment world: one miner, one CI (with enclave + IAS),
/// one SP, one superlight client — proof-of-authority sealed so chain
/// building never dominates the measurement.
pub struct Rig {
    pub miner: FullNode,
    pub ci: CertificateIssuer,
    pub sp: ServiceProvider,
    pub ias: AttestationService,
    pub client: SuperlightClient,
    pub engine: Arc<dyn ConsensusEngine>,
    pub genesis: Block,
    pub genesis_state: ChainState,
    pub executor: Executor,
    /// The registry every instrumented component reports into.
    pub obs: Registry,
    timestamp: u64,
}

impl Rig {
    /// Builds a rig.
    pub fn new(config: RigConfig) -> Self {
        let sealer = Keypair::from_seed([0x5e; 32]);
        let authority = sealer.public();
        let engine: Arc<dyn ConsensusEngine> =
            Arc::new(ProofOfAuthority::new_sealer(vec![authority], sealer));
        let executor = Executor::new(Arc::new(blockbench_registry()));
        let (genesis, genesis_state) = GenesisBuilder::new().timestamp(1_700_000_000).build();

        let miner = FullNode::new(
            &genesis,
            genesis_state.clone(),
            executor.clone(),
            engine.clone(),
            Address::from_seed(1),
        );
        let mut sp = ServiceProvider::new(
            &genesis,
            genesis_state.clone(),
            executor.clone(),
            engine.clone(),
        );
        for (kind, name) in &config.indexes {
            sp.add_index(*kind, name);
        }
        sp.attach_obs(&config.obs);
        let mut ias = AttestationService::with_seed([0xA5; 32]);
        let ci = CertificateIssuer::new(
            &genesis,
            genesis_state.clone(),
            executor.clone(),
            engine.clone(),
            sp.verifiers(),
            &mut ias,
            config.cost,
        )
        .expect("CI boots");
        ci.attach_obs(&config.obs);
        let client = SuperlightClient::new(ias.public_key(), expected_measurement());

        Rig {
            miner,
            ci,
            sp,
            ias,
            client,
            engine,
            genesis,
            genesis_state,
            executor,
            obs: config.obs,
            timestamp: 1_700_000_000,
        }
    }

    /// Builds a workload generator with the standard sender pool.
    pub fn generator(&self, workload: Workload, seed: u64) -> WorkloadGen {
        WorkloadGen::new(workload, SENDER_ACCOUNTS, seed)
    }

    /// Mines the next block with `txs`.
    pub fn mine(&mut self, txs: Vec<dcert_chain::Transaction>) -> Block {
        self.timestamp += 15;
        self.miner
            .mine(txs, self.timestamp)
            .expect("mining succeeds")
    }

    /// Mines + certifies `blocks` blocks of `workload` under `scheme`,
    /// returning per-block breakdowns and the latest block+certificate.
    pub fn run(
        &mut self,
        workload: Workload,
        blocks: u64,
        txs_per_block: usize,
        seed: u64,
        scheme: Scheme,
    ) -> RunResult {
        let mut gen = self.generator(workload, seed);
        let mut breakdowns = Vec::with_capacity(blocks as usize);
        let mut latest: Option<(Block, Certificate)> = None;
        for _ in 0..blocks {
            let block = self.mine(gen.next_block(txs_per_block));
            match scheme {
                Scheme::BlockOnly => {
                    assert!(
                        self.sp.verifiers().is_empty(),
                        "block-only runs must not register indexes"
                    );
                    let (cert, breakdown) = self
                        .ci
                        .certify_block(&block)
                        .expect("certification succeeds");
                    breakdowns.push(breakdown);
                    latest = Some((block, cert));
                }
                Scheme::Augmented => {
                    let inputs = self.sp.stage_block(&block).expect("sp applies");
                    let (certs, breakdown) = self
                        .ci
                        .certify_augmented(&block, &inputs)
                        .expect("certification succeeds");
                    self.sp.record_certs(&certs);
                    breakdowns.push(breakdown);
                    latest = Some((block, certs.into_iter().next().expect("≥1 index")));
                }
                Scheme::Hierarchical => {
                    let inputs = self.sp.stage_block(&block).expect("sp applies");
                    let (block_cert, certs, breakdown) = self
                        .ci
                        .certify_hierarchical(&block, &inputs)
                        .expect("certification succeeds");
                    self.sp.record_certs(&certs);
                    breakdowns.push(breakdown);
                    latest = Some((block, block_cert));
                }
            }
        }
        let (block, cert) = latest.expect("at least one block");
        RunResult {
            breakdowns,
            latest_block: block,
            latest_cert: cert,
        }
    }
}

/// The outcome of [`Rig::run`].
pub struct RunResult {
    /// One breakdown per certified block.
    pub breakdowns: Vec<CertBreakdown>,
    /// The chain tip.
    pub latest_block: Block,
    /// Its certificate (block or augmented, per scheme).
    pub latest_cert: Certificate,
}

impl RunResult {
    /// Averages the breakdowns (skipping the first block as warm-up when
    /// more than two were measured).
    pub fn average(&self) -> AvgBreakdown {
        let slice = if self.breakdowns.len() > 2 {
            &self.breakdowns[1..]
        } else {
            &self.breakdowns[..]
        };
        let n = slice.len() as u32;
        let mut avg = AvgBreakdown::default();
        for b in slice {
            avg.rw_set_gen += b.rw_set_gen;
            avg.proof_gen += b.proof_gen;
            avg.enclave_total += b.enclave_total;
            avg.enclave_overhead += b.enclave_overhead;
            avg.enclave_trusted += b.enclave_trusted;
            avg.request_bytes += b.request_bytes as f64;
            avg.ecalls += b.ecalls as f64;
        }
        avg.rw_set_gen /= n;
        avg.proof_gen /= n;
        avg.enclave_total /= n;
        avg.enclave_overhead /= n;
        avg.enclave_trusted /= n;
        avg.request_bytes /= f64::from(n);
        avg.ecalls /= f64::from(n);
        avg
    }
}

/// Averaged certificate-construction breakdown.
#[derive(Debug, Clone, Copy, Default)]
pub struct AvgBreakdown {
    pub rw_set_gen: Duration,
    pub proof_gen: Duration,
    pub enclave_total: Duration,
    pub enclave_overhead: Duration,
    pub enclave_trusted: Duration,
    pub request_bytes: f64,
    pub ecalls: f64,
}

impl AvgBreakdown {
    /// Total average construction time.
    pub fn total(&self) -> Duration {
        self.rw_set_gen + self.proof_gen + self.enclave_total
    }

    /// The enclave slowdown factor: time with boundary costs over the pure
    /// trusted compute time (the paper reports ≤ ~1.8×).
    pub fn overhead_factor(&self) -> f64 {
        if self.enclave_trusted.is_zero() {
            1.0
        } else {
            self.enclave_total.as_secs_f64() / self.enclave_trusted.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rig_runs_all_schemes() {
        let mut rig = Rig::new(RigConfig {
            cost: CostModel::zero(),
            indexes: vec![(IndexKind::History, "history".into())],
            obs: Registry::disabled(),
        });
        let result = rig.run(
            Workload::KvStore { keyspace: 16 },
            3,
            2,
            1,
            Scheme::Hierarchical,
        );
        assert_eq!(result.breakdowns.len(), 3);
        assert!(result.average().total() > Duration::ZERO);

        let mut rig2 = Rig::new(RigConfig {
            cost: CostModel::zero(),
            indexes: vec![(IndexKind::History, "history".into())],
            obs: Registry::disabled(),
        });
        let result2 = rig2.run(
            Workload::KvStore { keyspace: 16 },
            2,
            2,
            1,
            Scheme::Augmented,
        );
        assert_eq!(result2.breakdowns.len(), 2);

        let mut rig3 = Rig::new(RigConfig::default());
        let result3 = rig3.run(Workload::DoNothing, 2, 1, 1, Scheme::BlockOnly);
        assert_eq!(result3.breakdowns.len(), 2);
        // The client validates the tip.
        rig3.client
            .validate_chain(&result3.latest_block.header, &result3.latest_cert)
            .unwrap();
    }

    #[test]
    fn attached_registry_sees_rig_traffic() {
        let obs = Registry::new();
        let mut rig = Rig::new(RigConfig {
            cost: CostModel::zero(),
            indexes: vec![(IndexKind::History, "history".into())],
            obs: obs.clone(),
        });
        rig.run(
            Workload::KvStore { keyspace: 16 },
            2,
            2,
            1,
            Scheme::Hierarchical,
        );
        let snapshot = obs.snapshot();
        assert!(
            snapshot.counter("enclave.ecalls") > 0,
            "CI enclave reports its ECalls through the rig's registry"
        );
        assert!(snapshot.counter("enclave.bytes_in") > 0);
        let cert_bytes = snapshot
            .histograms
            .get("sp.cert_bytes")
            .expect("SP records certificate sizes");
        assert!(cert_bytes.count > 0);
    }
}
