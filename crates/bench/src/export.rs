//! `BENCH_pr10.json`: the merged metrics export every figure binary writes.
//!
//! Each binary contributes one section under `figures.<name>` holding the
//! figure's printed rows plus a full [`dcert_obs::Snapshot`] of its metric
//! registry, so downstream tooling (and the `check_bench` gate in CI) reads
//! one machine-readable file instead of scraping stdout. Binaries run as
//! separate processes, so the writer is read-merge-write against whatever
//! sections already exist; set `DCERT_BENCH_OUT` to redirect the file.

use std::collections::BTreeMap;
use std::path::PathBuf;

use dcert_obs::Registry;

use crate::json::{obj, Json};
use crate::params::scale;

/// Schema tag stamped into the export.
pub const SCHEMA: &str = "dcert-bench/pr10";

/// Default output file, relative to the working directory.
pub const DEFAULT_OUT: &str = "BENCH_pr10.json";

/// Where the export goes: `DCERT_BENCH_OUT` or [`DEFAULT_OUT`].
pub fn bench_out_path() -> PathBuf {
    std::env::var_os("DCERT_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(DEFAULT_OUT))
}

/// Builds one figure section: the printed rows plus the registry snapshot
/// (parsed into the same value space so the file nests cleanly).
pub fn figure_section(registry: &Registry, rows: Json) -> Json {
    let metrics = Json::parse(&registry.snapshot().to_json())
        .expect("dcert-obs snapshot JSON is well-formed by construction");
    obj(vec![
        ("dcert_scale", scale().into()),
        ("rows", rows),
        ("metrics", metrics),
    ])
}

/// Merges `figures.<figure>` into the export file and reports the path on
/// stderr (stdout stays reserved for the human-readable tables).
pub fn export_figure(figure: &str, registry: &Registry, rows: Json) {
    let path = bench_out_path();
    let section = figure_section(registry, rows);
    match merge_section(&path, figure, section) {
        Ok(()) => eprintln!("metrics: merged `{figure}` into {}", path.display()),
        Err(err) => eprintln!("metrics: FAILED to write {}: {err}", path.display()),
    }
}

/// Read-merge-write of one section. A missing or unparseable existing file
/// starts a fresh document rather than failing the benchmark run.
fn merge_section(
    path: &std::path::Path,
    figure: &str,
    section: Json,
) -> Result<(), std::io::Error> {
    let mut doc = match std::fs::read_to_string(path).ok().map(|t| Json::parse(&t)) {
        Some(Ok(existing)) if existing.get("schema") == Some(&Json::Str(SCHEMA.into())) => existing,
        _ => obj(vec![
            ("schema", SCHEMA.into()),
            ("figures", Json::Obj(BTreeMap::new())),
        ]),
    };
    if let Json::Obj(ref mut top) = doc {
        match top
            .entry("figures".to_owned())
            .or_insert_with(|| Json::Obj(BTreeMap::new()))
        {
            Json::Obj(figures) => {
                figures.insert(figure.to_owned(), section);
            }
            other => {
                *other = Json::Obj(BTreeMap::from([(figure.to_owned(), section)]));
            }
        }
    }
    // Atomic-enough for CI: write a sibling temp file, then rename over.
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, doc.to_string_pretty())?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_file(name: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!("dcert-bench-export-{name}.json"));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn sections_from_separate_writes_accumulate() {
        let path = tmp_file("accumulate");
        let registry = Registry::new();
        registry.counter("enclave.ecalls").add(5);
        merge_section(
            &path,
            "fig8_cert_construction",
            figure_section(&registry, Json::Arr(Vec::new())),
        )
        .expect("first write");
        merge_section(
            &path,
            "fig10_index_certs",
            figure_section(&registry, Json::Arr(Vec::new())),
        )
        .expect("second write");

        let doc = Json::parse(&std::fs::read_to_string(&path).expect("readable")).expect("parses");
        assert_eq!(doc.get("schema"), Some(&Json::Str(SCHEMA.into())));
        let figures = doc.get("figures").expect("figures object");
        for figure in ["fig8_cert_construction", "fig10_index_certs"] {
            let ecalls = figures
                .get(figure)
                .and_then(|s| s.get("metrics"))
                .and_then(|m| m.get("counters"))
                .and_then(|c| c.get("enclave.ecalls"))
                .and_then(Json::as_u64);
            assert_eq!(ecalls, Some(5), "{figure} carries the registry snapshot");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rewriting_a_section_replaces_it() {
        let path = tmp_file("replace");
        let registry = Registry::new();
        registry.counter("net.published").add(1);
        merge_section(&path, "f", figure_section(&registry, Json::Null)).expect("write");
        registry.counter("net.published").add(1);
        merge_section(&path, "f", figure_section(&registry, Json::Null)).expect("rewrite");
        let doc = Json::parse(&std::fs::read_to_string(&path).expect("readable")).expect("parses");
        let published = doc
            .get("figures")
            .and_then(|f| f.get("f"))
            .and_then(|s| s.get("metrics"))
            .and_then(|m| m.get("counters"))
            .and_then(|c| c.get("net.published"))
            .and_then(Json::as_u64);
        assert_eq!(published, Some(2), "second export wins");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_existing_file_starts_fresh() {
        let path = tmp_file("corrupt");
        std::fs::write(&path, "not json {{{").expect("seed garbage");
        merge_section(&path, "f", figure_section(&Registry::new(), Json::Null))
            .expect("recovers by rewriting");
        let doc = Json::parse(&std::fs::read_to_string(&path).expect("readable")).expect("parses");
        assert!(doc.get("figures").and_then(|f| f.get("f")).is_some());
        let _ = std::fs::remove_file(&path);
    }
}
