//! The experiment parameter grid (Table 1 of the paper) and scaling.

/// Chain lengths for the bootstrapping experiment (Fig. 7). The paper
/// sweeps up to 100 k blocks; the **bold default** here is the second
/// entry.
pub const CHAIN_LENGTHS: &[u64] = &[20_000, 40_000, 60_000, 80_000, 100_000];

/// Block sizes (#transactions) for Fig. 9; default **32**.
pub const BLOCK_SIZES: &[usize] = &[8, 16, 32, 64, 128];

/// Default block size used by Fig. 8.
pub const DEFAULT_BLOCK_SIZE: usize = 32;

/// Numbers of authenticated indexes for Fig. 10; default **1**.
pub const INDEX_COUNTS: &[usize] = &[1, 2, 3, 4, 5];

/// Chain length for the verifiable-query experiments (Fig. 11).
pub const QUERY_CHAIN_LENGTH: u64 = 10_000;

/// Number of key-value tuples for the query experiments.
pub const QUERY_ACCOUNTS: u64 = 500;

/// Time-window distances from the latest block (Fig. 11).
pub const WINDOW_DISTANCES: &[u64] = &[2_000, 4_000, 6_000, 8_000, 10_000];

/// Width of each queried time window, in blocks.
pub const WINDOW_WIDTH: u64 = 100;

/// Number of sender accounts in the paper's setup.
pub const PAPER_SENDER_ACCOUNTS: usize = 100_000;

/// Sender accounts actually generated (keypair generation is the only
/// cost that depends on it; access patterns are uniform either way).
pub const SENDER_ACCOUNTS: usize = 1_024;

/// Blocks certified per measured configuration in Figs. 8–10.
pub const BLOCKS_PER_MEASUREMENT: u64 = 20;

/// Reads `DCERT_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("DCERT_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|s: &f64| *s > 0.0)
        .unwrap_or(1.0)
}

/// Scales a count by `DCERT_SCALE`, keeping at least 1.
pub fn scaled(n: u64) -> u64 {
    ((n as f64 * scale()).round() as u64).max(1)
}

/// Reads `DCERT_MERKLE_THREADS` (default 1): the worker count for the
/// parallel Merkle builder (`dcert_merkle::set_build_threads`). Output is
/// byte-identical at every setting, so this knob only moves `*_ns`
/// wall-clock metrics — `check_bench --compare` must pass between any two
/// settings.
pub fn merkle_threads() -> usize {
    std::env::var("DCERT_MERKLE_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|t: &usize| *t >= 1)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_never_hits_zero() {
        assert!(scaled(1) >= 1);
        assert!(scaled(100_000) >= 1);
    }

    #[test]
    fn grids_are_nonempty_and_sorted() {
        assert!(CHAIN_LENGTHS.windows(2).all(|w| w[0] < w[1]));
        assert!(BLOCK_SIZES.windows(2).all(|w| w[0] < w[1]));
        assert!(INDEX_COUNTS.windows(2).all(|w| w[0] < w[1]));
        assert!(WINDOW_DISTANCES.windows(2).all(|w| w[0] < w[1]));
    }
}
