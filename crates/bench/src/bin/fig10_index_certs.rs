//! Figure 10: augmented vs. hierarchical certificate construction as the
//! number of authenticated indexes grows (1–5).
//!
//! Paper result: the augmented scheme grows steeply (it replays block
//! validation once per index), the hierarchical scheme only slightly (one
//! block certificate plus cheap per-index ECalls); with a single index the
//! augmented scheme is slightly faster (one fewer ECall).
//!
//! Run with: `cargo run --release -p dcert-bench --bin fig10_index_certs`

#![forbid(unsafe_code)]

use dcert_bench::export::export_figure;
use dcert_bench::json::{obj, Json};
use dcert_bench::params::{scaled, BLOCKS_PER_MEASUREMENT, DEFAULT_BLOCK_SIZE, INDEX_COUNTS};
use dcert_bench::report::{banner, fmt_duration, json_mode};
use dcert_bench::{Rig, RigConfig, Scheme};
use dcert_obs::Registry;
use dcert_query::sp::IndexKind;
use dcert_sgx::CostModel;
use dcert_workloads::Workload;

fn indexes(count: usize) -> Vec<(IndexKind, String)> {
    (0..count)
        .map(|i| {
            // Alternate index families, as a versatile deployment would.
            if i % 2 == 0 {
                (IndexKind::History, format!("history-{i}"))
            } else {
                (IndexKind::Inverted, format!("inverted-{i}"))
            }
        })
        .collect()
}

fn measure(
    scheme: Scheme,
    count: usize,
    blocks: u64,
    obs: &Registry,
) -> (std::time::Duration, f64) {
    let mut rig = Rig::new(RigConfig {
        cost: CostModel::calibrated(),
        indexes: indexes(count),
        obs: obs.clone(),
    });
    let result = rig.run(
        Workload::KvStore { keyspace: 500 },
        blocks,
        DEFAULT_BLOCK_SIZE,
        42,
        scheme,
    );
    let avg = result.average();
    (avg.total(), avg.ecalls)
}

fn main() {
    banner(
        "Figure 10: augmented vs hierarchical certificates vs #indexes",
        "augmented steep-linear (replays per index); hierarchical shallow; \
         augmented slightly ahead at 1 index",
    );
    let blocks = scaled(BLOCKS_PER_MEASUREMENT);
    println!(
        "{:>8} | {:>12} {:>7} | {:>12} {:>7}",
        "#indexes", "augmented", "ecalls", "hierarchical", "ecalls"
    );
    println!("{}", "-".repeat(56));
    let obs = Registry::new();
    let mut json_rows = Vec::new();
    for &count in INDEX_COUNTS {
        let (aug, aug_ecalls) = measure(Scheme::Augmented, count, blocks, &obs);
        let (hier, hier_ecalls) = measure(Scheme::Hierarchical, count, blocks, &obs);
        println!(
            "{count:>8} | {:>12} {aug_ecalls:>7.1} | {:>12} {hier_ecalls:>7.1}",
            fmt_duration(aug),
            fmt_duration(hier),
        );
        json_rows.push(obj(vec![
            ("indexes", count.into()),
            ("augmented_us", (aug.as_secs_f64() * 1e6).into()),
            ("hierarchical_us", (hier.as_secs_f64() * 1e6).into()),
            ("augmented_ecalls", aug_ecalls.into()),
            ("hierarchical_ecalls", hier_ecalls.into()),
        ]));
    }
    println!();
    println!("(KV workload, block size = {DEFAULT_BLOCK_SIZE} txs, {blocks} blocks per point)");
    let rows = Json::Arr(json_rows);
    export_figure("fig10_index_certs", &obs, rows.clone());
    if json_mode() {
        println!("{}", rows.to_string_pretty());
    }
}
