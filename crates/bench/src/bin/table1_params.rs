//! Table 1: the system parameters of the evaluation (defaults in bold in
//! the paper; marked with `*` here), plus the substitutions this
//! reproduction makes.
//!
//! Run with: `cargo run -p dcert-bench --bin table1_params`

#![forbid(unsafe_code)]

use dcert_bench::params::*;

fn main() {
    println!("== Table 1: system parameters ==\n");
    println!(
        "{:<38} {}",
        "chain length (Fig. 7)",
        list(CHAIN_LENGTHS, Some(1))
    );
    println!(
        "{:<38} {}",
        "block size / #txs (Figs. 8-9)",
        list(
            BLOCK_SIZES,
            BLOCK_SIZES.iter().position(|&b| b == DEFAULT_BLOCK_SIZE)
        )
    );
    println!(
        "{:<38} {}",
        "#authenticated indexes (Fig. 10)",
        list(INDEX_COUNTS, Some(0))
    );
    println!(
        "{:<38} {}",
        "time-window distance (Fig. 11)",
        list(WINDOW_DISTANCES, Some(0))
    );
    println!("{:<38} {}", "time-window width (blocks)", WINDOW_WIDTH);
    println!("{:<38} {}", "query chain length", QUERY_CHAIN_LENGTH);
    println!("{:<38} {}", "key-value tuples (queries)", QUERY_ACCOUNTS);
    println!(
        "{:<38} {} (paper: {})",
        "sender accounts", SENDER_ACCOUNTS, PAPER_SENDER_ACCOUNTS
    );
    println!(
        "{:<38} DN, CPU, IO (micro); KV, SB (macro)",
        "Blockbench workloads"
    );
    println!();
    println!("defaults marked with *; scale all counts with DCERT_SCALE=<f>.");
}

fn list<T: std::fmt::Display + Copy>(values: &[T], default_idx: Option<usize>) -> String {
    values
        .iter()
        .enumerate()
        .map(|(i, v)| {
            if Some(i) == default_idx {
                format!("{v}*")
            } else {
                format!("{v}")
            }
        })
        .collect::<Vec<_>>()
        .join(", ")
}
