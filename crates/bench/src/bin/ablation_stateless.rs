//! Ablation: DCert's **stateless** enclave (Algorithm 1/2) vs. the
//! **naive** full-state-in-enclave design the paper dismisses in
//! Section 4.1.
//!
//! The naive ECall marshals the complete pre-block state, so its cost
//! grows linearly with state size and falls off a cliff once the request
//! exceeds the EPC budget (paging). The stateless ECall marshals only the
//! read/write sets and their Merkle proofs, so its cost is (near-)constant
//! in state size. The EPC budget is reduced to 4 MB here so the paging
//! cliff is visible at laptop-scale state sizes — at the real 93 MB
//! budget the same cliff sits at roughly a million accounts, which is
//! exactly the paper's Ethereum-scale argument (920 GB of state).
//!
//! Run with: `cargo run --release -p dcert-bench --bin ablation_stateless`

#![forbid(unsafe_code)]

use std::sync::Arc;
use std::time::Instant;

use dcert_bench::export::export_figure;
use dcert_bench::json::{obj, Json};
use dcert_bench::naive::{NaiveCertProgram, NaiveRequest, Response};
use dcert_bench::params::scaled;
use dcert_bench::report::{banner, fmt_bytes, fmt_duration, json_mode};
use dcert_chain::{FullNode, GenesisBuilder, ProofOfAuthority};
use dcert_core::{BlockInput, CertProgram, EcallRequest, EcallResponse};
use dcert_obs::Registry;
use dcert_primitives::codec::{Decode, Encode};
use dcert_primitives::hash::Address;
use dcert_primitives::keys::Keypair;
use dcert_sgx::{AttestationService, CostModel, Enclave};
use dcert_vm::{Executor, StateKey};
use dcert_workloads::{blockbench_registry, Workload};

/// Reduced EPC budget making the paging cliff visible at bench scale.
const EPC_BUDGET: usize = 4 * 1024 * 1024;

fn cost_model() -> CostModel {
    CostModel {
        epc_budget_bytes: EPC_BUDGET,
        ..CostModel::calibrated()
    }
}

fn main() {
    banner(
        "Ablation: stateless enclave (DCert) vs naive full-state-in-enclave",
        "naive cost linear in state size with an EPC paging cliff; stateless near-constant",
    );
    println!(
        "{:>9} | {:>10} {:>12} | {:>10} {:>12} | {:>7}",
        "state", "SL request", "SL ecall", "naive req", "naive ecall", "ratio"
    );
    println!("{}", "-".repeat(72));

    let obs = Registry::new();
    let mut json_rows = Vec::new();
    for &entries in &[1_000u64, 5_000, 20_000, 60_000] {
        let entries = scaled(entries);
        // Genesis pre-populated with `entries` KV records.
        let mut genesis_builder = GenesisBuilder::new();
        for i in 0..entries {
            genesis_builder = genesis_builder.allocate(
                StateKey::new("kvstore", format!("key-{i}").as_bytes()),
                vec![0xAB; 64],
            );
        }
        let (genesis, state) = genesis_builder.build();

        let sealer = Keypair::from_seed([0x5e; 32]);
        let engine = Arc::new(ProofOfAuthority::new_sealer(vec![sealer.public()], sealer));
        let executor = Executor::new(Arc::new(blockbench_registry()));
        let ias = AttestationService::with_seed([0xA5; 32]);
        let miner = FullNode::new(
            &genesis,
            state.clone(),
            executor.clone(),
            engine.clone(),
            Address::from_seed(1),
        );

        // One block of KV traffic over the existing keyspace.
        let mut gen =
            dcert_workloads::WorkloadGen::new(Workload::KvStore { keyspace: entries }, 64, 42);
        let block = miner.propose(gen.next_block(32), 1).expect("proposes");

        // Stateless request (Algorithm 1 pre-processing).
        let execution = executor.execute_block(&state, &{
            block.txs.iter().map(|t| t.call.clone()).collect::<Vec<_>>()
        });
        let stateless_req = EcallRequest::SigGen(BlockInput {
            prev_header: genesis.header.clone(),
            prev_cert: None,
            block: block.clone(),
            reads: execution
                .reads
                .iter()
                .map(|(k, v)| (*k, v.clone()))
                .collect(),
            state_proof: state.prove(&execution.touched_keys()),
        })
        .to_encoded_bytes();

        // Naive request (full state).
        let naive_req = NaiveRequest {
            prev_header: genesis.header.clone(),
            prev_cert: None,
            block: block.clone(),
            state: state.dump_entries(),
        }
        .to_encoded_bytes();

        // Stateless enclave.
        let stateless_enclave = Enclave::launch(
            CertProgram::new(
                genesis.hash(),
                ias.public_key(),
                executor.clone(),
                engine.clone(),
                Vec::new(),
            ),
            cost_model(),
        );
        stateless_enclave.attach_obs(&obs);
        stateless_enclave.ecall(&EcallRequest::Init.to_encoded_bytes());
        let started = Instant::now();
        let resp = stateless_enclave.ecall(&stateless_req);
        let stateless_time = started.elapsed();
        assert!(matches!(
            EcallResponse::decode_all(&resp).unwrap(),
            EcallResponse::Signature(_)
        ));

        // Naive enclave.
        let naive_enclave = Enclave::launch(
            NaiveCertProgram::new(
                genesis.hash(),
                ias.public_key(),
                executor.clone(),
                engine.clone(),
            ),
            cost_model(),
        );
        naive_enclave.attach_obs(&obs);
        naive_enclave.ecall(&[]);
        let started = Instant::now();
        let resp = naive_enclave.ecall(&naive_req);
        let naive_time = started.elapsed();
        assert!(matches!(
            Response::decode_all(&resp).unwrap(),
            Response::Signature(_)
        ));

        let ratio = naive_time.as_secs_f64() / stateless_time.as_secs_f64();
        let naive_paged_bytes = naive_enclave.stats().paged_bytes;
        let paged = naive_paged_bytes > 0;
        println!(
            "{:>9} | {:>10} {:>12} | {:>10} {:>12} | {:>6.1}x{}",
            entries,
            fmt_bytes(stateless_req.len()),
            fmt_duration(stateless_time),
            fmt_bytes(naive_req.len()),
            fmt_duration(naive_time),
            ratio,
            if paged { "  (paged!)" } else { "" },
        );
        json_rows.push(obj(vec![
            ("state_entries", entries.into()),
            ("stateless_request_bytes", stateless_req.len().into()),
            (
                "stateless_ecall_us",
                (stateless_time.as_secs_f64() * 1e6).into(),
            ),
            ("naive_request_bytes", naive_req.len().into()),
            ("naive_ecall_us", (naive_time.as_secs_f64() * 1e6).into()),
            ("ratio", ratio.into()),
            ("naive_paged", paged.into()),
            ("naive_paged_bytes", naive_paged_bytes.into()),
        ]));
    }
    println!();
    println!(
        "(EPC budget reduced to {} for a visible paging cliff)",
        fmt_bytes(EPC_BUDGET)
    );
    let rows = Json::Arr(json_rows);
    export_figure("ablation_stateless", &obs, rows.clone());
    if json_mode() {
        println!("{}", rows.to_string_pretty());
    }
}
