//! TEE portability (Section 6 of the paper): certificate construction
//! under cost models flavoured after different trusted-execution
//! technologies — Intel SGX, ARM TrustZone, AMD SEV-SNP — plus the
//! zero-cost model as the un-trusted floor.
//!
//! The paper notes DCert "can be deployed using any other TEE
//! implementations"; this experiment quantifies what each one's boundary
//! costs would do to per-block certification.
//!
//! Run with: `cargo run --release -p dcert-bench --bin tee_comparison`

#![forbid(unsafe_code)]

use dcert_bench::export::export_figure;
use dcert_bench::json::{obj, Json};
use dcert_bench::params::{scaled, BLOCKS_PER_MEASUREMENT, DEFAULT_BLOCK_SIZE};
use dcert_bench::report::{banner, fmt_duration, json_mode};
use dcert_bench::{Rig, RigConfig, Scheme};
use dcert_obs::Registry;
use dcert_sgx::CostModel;
use dcert_workloads::Workload;

fn main() {
    banner(
        "TEE comparison: certificate construction under different trust hardware",
        "transition/memory costs differ per TEE; the algorithm is unchanged (Section 6)",
    );
    let blocks = scaled(BLOCKS_PER_MEASUREMENT);
    let tees: &[(&str, CostModel)] = &[
        ("none (floor)", CostModel::zero()),
        ("Intel SGX", CostModel::calibrated()),
        ("ARM TrustZone", CostModel::trustzone()),
        ("AMD SEV-SNP", CostModel::sev_snp()),
    ];
    println!(
        "{:>14} | {:>10} {:>10} {:>9} | {:>10}",
        "TEE", "enclave", "trusted", "overhead", "total"
    );
    println!("{}", "-".repeat(64));
    let obs = Registry::new();
    let mut json_rows = Vec::new();
    for (name, cost) in tees {
        let mut rig = Rig::new(RigConfig {
            cost: *cost,
            indexes: Vec::new(),
            obs: obs.clone(),
        });
        let result = rig.run(
            Workload::SmallBank { customers: 500 },
            blocks,
            DEFAULT_BLOCK_SIZE,
            42,
            Scheme::BlockOnly,
        );
        let avg = result.average();
        println!(
            "{name:>14} | {:>10} {:>10} {:>8.2}x | {:>10}",
            fmt_duration(avg.enclave_total),
            fmt_duration(avg.enclave_trusted),
            avg.overhead_factor(),
            fmt_duration(avg.total()),
        );
        json_rows.push(obj(vec![
            ("tee", (*name).into()),
            (
                "enclave_total_us",
                (avg.enclave_total.as_secs_f64() * 1e6).into(),
            ),
            (
                "enclave_trusted_us",
                (avg.enclave_trusted.as_secs_f64() * 1e6).into(),
            ),
            ("overhead_factor", avg.overhead_factor().into()),
            ("total_us", (avg.total().as_secs_f64() * 1e6).into()),
        ]));
    }
    println!();
    println!("(SmallBank, block size = {DEFAULT_BLOCK_SIZE} txs, {blocks} blocks per TEE)");
    let rows = Json::Arr(json_rows);
    export_figure("tee_comparison", &obs, rows.clone());
    if json_mode() {
        println!("{}", rows.to_string_pretty());
    }
}
