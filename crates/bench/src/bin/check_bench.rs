//! CI gate over `BENCH_pr10.json`: verifies every figure binary exported
//! its section and that the counters each experiment must move are present
//! and non-zero. With `--compare A B` it instead checks that two exports
//! from same-seed runs agree on every deterministic counter (names ending
//! in `_ns` measure wall-clock time and are exempt by convention).
//!
//! A `--figure NAME` flag (usable in both modes) restricts the gate to
//! one figure's section — partial CI jobs that only run a single binary
//! (e.g. the `serve-load` smoke) gate on their own export without
//! requiring every other figure to have run.
//!
//! Run with: `cargo run -p dcert-bench --bin check_bench [file]`
//!       or: `cargo run -p dcert-bench --bin check_bench -- --figure fig_serve [file]`
//!       or: `cargo run -p dcert-bench --bin check_bench -- --compare a.json b.json`

#![forbid(unsafe_code)]

use std::process::ExitCode;

use dcert_bench::export::{bench_out_path, SCHEMA};
use dcert_bench::json::{Json, ParseError};

/// Per-figure requirements: counters that must be non-zero and histograms
/// that must have recorded at least one observation.
const REQUIRED: &[(&str, &[&str], &[&str])] = &[
    (
        "fig7_bootstrap",
        &[
            "enclave.ecalls",
            "enclave.bytes_in",
            "bench.fig7.validations",
        ],
        &[
            "enclave.crossing_bytes",
            "bench.fig7.superlight_validate_ns",
        ],
    ),
    (
        "fig8_cert_construction",
        &[
            "enclave.ecalls",
            "enclave.bytes_in",
            "enclave.sim_charge_nanos",
            "enclave.marshal_reuse_bytes",
        ],
        &["enclave.crossing_bytes"],
    ),
    ("fig9_block_size", &["enclave.ecalls"], &[]),
    ("fig10_index_certs", &["enclave.ecalls"], &["sp.cert_bytes"]),
    (
        "fig11_queries",
        &["bench.fig11.queries"],
        &[
            "bench.fig11.dcert_proof_bytes",
            "bench.fig11.lineage_proof_bytes",
        ],
    ),
    ("ablation_batching", &["enclave.ecalls"], &[]),
    (
        "ablation_stateless",
        &["enclave.ecalls", "enclave.bytes_in"],
        &[],
    ),
    ("tee_comparison", &["enclave.ecalls"], &[]),
    (
        "fig_store_coldstart",
        &[
            "bench.fig_store.coldstarts",
            "store.appends",
            "store.recovery_replays",
            "store.fsyncs",
        ],
        &["bench.fig_store.open_ns", "bench.fig_store.verify_ns"],
    ),
    (
        "fig_proof_bytes",
        &[
            "bench.fig_proof.windows",
            "bench.fig_proof.perpath_bytes_k4",
            "bench.fig_proof.op_bytes_k4",
        ],
        &[
            "bench.fig_proof.op_proof_bytes",
            "bench.fig_proof.perpath_proof_bytes",
            "bench.fig_proof.agg_op_bytes",
        ],
    ),
    (
        "fig_shard_scaling",
        &[
            "bench.fig_shard.blocks",
            "bench.fig_shard.identical",
            "shard.ranges_certified",
            "shard.blocks_certified",
            "shard.agg.signatures",
        ],
        &["shard.agg.fold_ns"],
    ),
    (
        "fig_serve",
        &[
            "serve.requests",
            "serve.backend_calls",
            "serve.cache_hits",
            "serve.coalesce_hits",
            "serve.shed_queue_full",
            "serve.shed_rate_limited",
            "serve.invalidations",
        ],
        &["serve.wait_ticks", "serve.payload_bytes"],
    ),
];

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--figure NAME` restricts both modes to one REQUIRED entry.
    let figure = match args.iter().position(|a| a == "--figure") {
        Some(at) if at + 1 < args.len() => {
            args.remove(at);
            Some(args.remove(at))
        }
        Some(_) => {
            eprintln!("check_bench: --figure needs a figure name");
            return ExitCode::FAILURE;
        }
        None => None,
    };
    if let Some(name) = &figure {
        if !REQUIRED.iter().any(|(figure, _, _)| figure == name) {
            eprintln!("check_bench: unknown figure `{name}`");
            return ExitCode::FAILURE;
        }
    }
    let required: Vec<&(&str, &[&str], &[&str])> = REQUIRED
        .iter()
        .filter(|(name, _, _)| figure.as_deref().is_none_or(|f| f == *name))
        .collect();
    let problems = if args.first().map(String::as_str) == Some("--compare") {
        match (args.get(1), args.get(2)) {
            (Some(a), Some(b)) => compare(&required, a, b),
            _ => vec!["--compare needs two file arguments".to_owned()],
        }
    } else {
        let path = args
            .first()
            .map(std::path::PathBuf::from)
            .unwrap_or_else(bench_out_path);
        check(&required, &path)
    };
    if problems.is_empty() {
        println!("check_bench: OK");
        ExitCode::SUCCESS
    } else {
        for problem in &problems {
            eprintln!("check_bench: {problem}");
        }
        eprintln!("check_bench: {} problem(s)", problems.len());
        ExitCode::FAILURE
    }
}

/// Why an export file could not be loaded.
#[derive(Debug)]
enum LoadError {
    Io(std::io::Error),
    Parse(ParseError),
    MissingSchemaTag,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "{e}"),
            LoadError::Parse(e) => write!(f, "{e}"),
            LoadError::MissingSchemaTag => write!(f, "missing schema tag `{SCHEMA}`"),
        }
    }
}

fn load(path: &str) -> Result<Json, LoadError> {
    let text = std::fs::read_to_string(path).map_err(LoadError::Io)?;
    let doc = Json::parse(&text).map_err(LoadError::Parse)?;
    if doc.get("schema") != Some(&Json::Str(SCHEMA.into())) {
        return Err(LoadError::MissingSchemaTag);
    }
    Ok(doc)
}

fn check(required: &[&(&str, &[&str], &[&str])], path: &std::path::Path) -> Vec<String> {
    let path = path.display().to_string();
    let doc = match load(&path) {
        Ok(doc) => doc,
        Err(err) => return vec![format!("{path}: {err}")],
    };
    let mut problems = Vec::new();
    for &&(figure, counters, histograms) in required {
        let Some(section) = doc.get("figures").and_then(|f| f.get(figure)) else {
            problems.push(format!("figure `{figure}` missing — did its binary run?"));
            continue;
        };
        let metrics = section.get("metrics");
        for &name in counters {
            match metrics
                .and_then(|m| m.get("counters"))
                .and_then(|c| c.get(name))
                .and_then(Json::as_u64)
            {
                None => problems.push(format!("{figure}: counter `{name}` absent")),
                Some(0) => problems.push(format!("{figure}: counter `{name}` is zero")),
                Some(_) => {}
            }
        }
        for &name in histograms {
            match metrics
                .and_then(|m| m.get("histograms"))
                .and_then(|h| h.get(name))
                .and_then(|h| h.get("count"))
                .and_then(Json::as_u64)
            {
                None => problems.push(format!("{figure}: histogram `{name}` absent")),
                Some(0) => problems.push(format!("{figure}: histogram `{name}` recorded nothing")),
                Some(_) => {}
            }
        }
        if figure == "fig_proof_bytes" {
            problems.extend(gate_proof_bytes(metrics));
        }
        if figure == "fig_shard_scaling" {
            problems.extend(gate_shard_scaling(metrics));
        }
    }
    problems
}

/// The scaling claim `fig_shard_scaling` exists to demonstrate, gated on
/// machines with the parallelism to show it (the binary records its core
/// count; wall-clock speedup gates are meaningless on fewer cores than
/// shards):
///
/// - every swept fleet produced byte-identical output (the binary
///   asserts it per shard count and counts the passes),
/// - 4 shards certify at least 1.8× faster than the sequential issuer,
/// - a 1-shard fleet stays within 5% of sequential (sharding must not
///   tax the degenerate configuration).
fn gate_shard_scaling(metrics: Option<&Json>) -> Vec<String> {
    let counter = |name: &str| {
        metrics
            .and_then(|m| m.get("counters"))
            .and_then(|c| c.get(name))
            .and_then(Json::as_u64)
    };
    let mut problems = Vec::new();
    if counter("bench.fig_shard.identical") != Some(4) {
        problems.push(format!(
            "fig_shard_scaling: expected 4 byte-identical fleet sweeps, got {:?}",
            counter("bench.fig_shard.identical")
        ));
    }
    if counter("bench.fig_shard.cores").unwrap_or(0) < 4 {
        return problems; // too few cores for a meaningful speedup gate
    }
    let (seq, s4, s1) = (
        counter("bench.fig_shard.seq_elapsed_ns"),
        counter("bench.fig_shard.s4_elapsed_ns"),
        counter("bench.fig_shard.s1_elapsed_ns"),
    );
    match (seq, s4) {
        (Some(seq), Some(s4)) if s4 > 0 => {
            let speedup = seq as f64 / s4 as f64;
            if speedup < 1.8 {
                problems.push(format!(
                    "fig_shard_scaling: 4 shards must be >= 1.8x sequential, got {speedup:.2}x \
                     ({seq} ns vs {s4} ns)"
                ));
            }
        }
        _ => problems.push("fig_shard_scaling: elapsed counters for seq/s4 absent".to_owned()),
    }
    match (seq, s1) {
        (Some(seq), Some(s1)) if s1 as f64 > seq as f64 * 1.05 => problems.push(format!(
            "fig_shard_scaling: 1 shard must stay within 5% of sequential, got {s1} ns vs {seq} ns"
        )),
        (Some(_), Some(_)) => {}
        _ => problems.push("fig_shard_scaling: elapsed counter for s1 absent".to_owned()),
    }
    problems
}

/// The op-stream size claim `fig_proof_bytes` exists to demonstrate: for
/// every contiguous window of `k >= 4` versions, one op-stream proof must
/// be strictly smaller than the `k` per-path singleton proofs it replaces.
fn gate_proof_bytes(metrics: Option<&Json>) -> Vec<String> {
    let counter = |name: &str| {
        metrics
            .and_then(|m| m.get("counters"))
            .and_then(|c| c.get(name))
            .and_then(Json::as_u64)
    };
    let mut problems = Vec::new();
    for k in [4u64, 8, 16, 32] {
        let perpath = counter(&format!("bench.fig_proof.perpath_bytes_k{k}"));
        let op = counter(&format!("bench.fig_proof.op_bytes_k{k}"));
        match (perpath, op) {
            (Some(perpath), Some(op)) if op < perpath => {}
            (Some(perpath), Some(op)) => problems.push(format!(
                "fig_proof_bytes: op stream must beat per-path at k={k}: {op} >= {perpath} bytes"
            )),
            _ => problems.push(format!("fig_proof_bytes: size counters for k={k} absent")),
        }
    }
    problems
}

/// Deterministic counters (everything not suffixed `_ns`) must agree
/// between two same-seed exports, figure by figure.
fn compare(required: &[&(&str, &[&str], &[&str])], path_a: &str, path_b: &str) -> Vec<String> {
    let (doc_a, doc_b) = match (load(path_a), load(path_b)) {
        (Ok(a), Ok(b)) => (a, b),
        (a, b) => {
            return [(path_a, a.err()), (path_b, b.err())]
                .into_iter()
                .filter_map(|(path, err)| err.map(|e| format!("{path}: {e}")))
                .collect()
        }
    };
    let mut problems = Vec::new();
    for &&(figure, _, _) in required {
        let counters = |doc: &Json| -> Option<Json> {
            doc.get("figures")?
                .get(figure)?
                .get("metrics")?
                .get("counters")
                .cloned()
        };
        match (counters(&doc_a), counters(&doc_b)) {
            (Some(Json::Obj(a)), Some(Json::Obj(b))) => {
                let deterministic = |m: &std::collections::BTreeMap<String, Json>| {
                    m.iter()
                        .filter(|(name, _)| !name.ends_with("_ns"))
                        .map(|(name, value)| (name.clone(), value.clone()))
                        .collect::<Vec<_>>()
                };
                let (da, db) = (deterministic(&a), deterministic(&b));
                if da != db {
                    for ((name_a, val_a), (_, val_b)) in da.iter().zip(db.iter()) {
                        if val_a != val_b {
                            problems.push(format!(
                                "{figure}: counter `{name_a}` differs: {val_a:?} vs {val_b:?}"
                            ));
                        }
                    }
                    if da.len() != db.len() {
                        problems.push(format!(
                            "{figure}: counter sets differ in size ({} vs {})",
                            da.len(),
                            db.len()
                        ));
                    }
                }
            }
            (None, None) => {} // figure not exported in either run — nothing to compare
            _ => problems.push(format!("{figure}: present in only one export")),
        }
    }
    problems
}
