//! Shard-scaling figure for the sharded certification fleet: certs/sec
//! at shard counts 1, 2, 4, 8 against a sequential deterministic issuer
//! on the same chain, with the recursive-aggregation overhead split out.
//!
//! Every fleet configuration must produce a certificate stream
//! **byte-identical** to the sequential issuer's at every height — the
//! binary asserts that inline (and counts it in
//! `bench.fig_shard.identical`), so the throughput axis can never be
//! bought with output drift.
//!
//! Expected result: with enough cores, wall-clock certification scales
//! with the shard count while aggregation stays a small signing-only
//! epilogue (`check_bench` gates ≥1.8× at 4 shards on machines with ≥4
//! cores, and shard=1 within 5% of sequential). The cost model sits at
//! the severe end of published in-EPC slowdowns: the heavier the
//! enclave tax on trusted compute, the more a fleet has to parallelize
//! — which is exactly the regime this figure studies.
//!
//! Run with: `cargo run --release -p dcert-bench --bin fig_shard_scaling`

#![forbid(unsafe_code)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use dcert_bench::export::export_figure;
use dcert_bench::json::{obj, Json};
use dcert_bench::params::{scaled, SENDER_ACCOUNTS};
use dcert_bench::report::{banner, fmt_duration, json_mode};
use dcert_chain::{Block, ConsensusEngine, FullNode, GenesisBuilder, ProofOfAuthority};
use dcert_core::{Certificate, CertificateIssuer, ShardFleetConfig, ShardedCertEngine};
use dcert_obs::Registry;
use dcert_primitives::codec::Encode;
use dcert_primitives::hash::Address;
use dcert_primitives::keys::Keypair;
use dcert_sgx::{AttestationService, CostModel};
use dcert_vm::Executor;
use dcert_workloads::{blockbench_registry, Workload, WorkloadGen};

/// Shard counts swept; `check_bench` gates the 4-shard entry.
const SHARD_COUNTS: &[usize] = &[1, 2, 4, 8];

/// Blocks per `RangeSigGen` ECall inside each shard.
const CHUNK: u64 = 4;

/// Deterministic seeds shared by the sequential issuer and every fleet —
/// the precondition for byte-identical output.
const PLATFORM_SEED: [u8; 32] = [0xC1; 32];
const SIGNING_SEED: [u8; 32] = [0x51; 32];

fn main() {
    banner(
        "fig_shard_scaling: sharded fleet throughput vs the sequential issuer",
        "certification scales with shard count; aggregation is a signing-only epilogue",
    );
    let chain_len = scaled(64);
    let txs_per_block = 24;
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    // Memory-bound enclave code at the severe end of the published
    // in-EPC slowdown range: trusted compute is what the fleet
    // parallelizes, so the slowdown percentage is the knob that makes
    // the scaling regime visible at bench-sized chains.
    let cost = CostModel {
        in_enclave_slowdown_pct: 400,
        ..CostModel::calibrated()
    };

    // One deterministic world: a PoA-sealed chain both the sequential
    // issuer and every fleet certify.
    let sealer = Keypair::from_seed([0x5e; 32]);
    let engine: Arc<dyn ConsensusEngine> =
        Arc::new(ProofOfAuthority::new_sealer(vec![sealer.public()], sealer));
    let executor = Executor::new(Arc::new(blockbench_registry()));
    let (genesis, genesis_state) = GenesisBuilder::new().timestamp(1_700_000_000).build();
    let mut miner = FullNode::new(
        &genesis,
        genesis_state.clone(),
        executor.clone(),
        engine.clone(),
        Address::from_seed(1),
    );
    let mut ias = AttestationService::with_seed([0xA5; 32]);

    eprintln!("mining {chain_len} blocks ({txs_per_block} txs each)...");
    let mut gen = WorkloadGen::new(Workload::SmallBank { customers: 64 }, SENDER_ACCOUNTS, 7);
    let mut timestamp = 1_700_000_000u64;
    let blocks: Vec<Block> = (0..chain_len)
        .map(|_| {
            timestamp += 15;
            miner
                .mine(gen.next_block(txs_per_block), timestamp)
                .expect("mining succeeds")
        })
        .collect();

    // The sequential baseline: one deterministic CI, one block per ECall.
    eprintln!("sequential baseline...");
    let mut ci = CertificateIssuer::new_deterministic(
        PLATFORM_SEED,
        SIGNING_SEED,
        &genesis,
        genesis_state.clone(),
        executor.clone(),
        engine.clone(),
        Vec::new(),
        &mut ias,
        cost,
    )
    .expect("sequential CI boots");
    let started = Instant::now();
    let seq_certs: Vec<Certificate> = blocks
        .iter()
        .map(|b| ci.certify_block(b).expect("sequential certify").0)
        .collect();
    let seq_elapsed = started.elapsed();

    let obs = Registry::new();
    obs.counter("bench.fig_shard.blocks").add(chain_len);
    obs.counter("bench.fig_shard.cores")
        .add(u64::try_from(cores).unwrap_or(u64::MAX));
    obs.counter("bench.fig_shard.seq_elapsed_ns")
        .add(as_ns(seq_elapsed));
    let identical = obs.counter("bench.fig_shard.identical");

    println!(
        "{:>6} | {:>12} {:>10} {:>8} | {:>12} {:>7}",
        "shards", "elapsed", "certs/s", "speedup", "aggregation", "agg %"
    );
    println!("{}", "-".repeat(68));
    println!(
        "{:>6} | {:>12} {:>10.1} {:>7.2}x | {:>12} {:>7}",
        "seq",
        fmt_duration(seq_elapsed),
        chain_len as f64 / seq_elapsed.as_secs_f64(),
        1.0,
        "-",
        "-"
    );

    let mut json_rows = vec![obj(vec![
        ("shards", 0u64.into()),
        ("elapsed_us", (seq_elapsed.as_secs_f64() * 1e6).into()),
        (
            "certs_per_sec",
            (chain_len as f64 / seq_elapsed.as_secs_f64()).into(),
        ),
        ("speedup", 1.0f64.into()),
        ("agg_us", Json::Null),
    ])];
    for &shards in SHARD_COUNTS {
        let mut config = ShardFleetConfig::new(shards, CHUNK);
        config.registry = obs.clone();
        let mut fleet = ShardedCertEngine::new_deterministic(
            PLATFORM_SEED,
            SIGNING_SEED,
            &genesis,
            genesis_state.clone(),
            executor.clone(),
            engine.clone(),
            cost,
            config,
        )
        .expect("fleet configures");

        // Aggregation time for this run is the growth of the fold timer.
        let fold_before = fold_ns(&obs);
        let started = Instant::now();
        let certs = fleet
            .certify_chain(&blocks, &mut ias)
            .expect("fleet certifies");
        let elapsed = started.elapsed();
        let agg = Duration::from_nanos(fold_ns(&obs).saturating_sub(fold_before));

        // Byte-identity at every height, or the throughput is meaningless.
        assert_eq!(certs.len(), seq_certs.len(), "{shards} shards: cert count");
        for (at, (seq, fleet_cert)) in seq_certs.iter().zip(&certs).enumerate() {
            assert_eq!(
                seq.to_encoded_bytes(),
                fleet_cert.to_encoded_bytes(),
                "{shards} shards: certificate bytes diverge at height {}",
                at + 1
            );
        }
        identical.inc();

        obs.counter(&format!("bench.fig_shard.s{shards}_elapsed_ns"))
            .add(as_ns(elapsed));
        obs.counter(&format!("bench.fig_shard.s{shards}_agg_ns"))
            .add(as_ns(agg));

        let speedup = seq_elapsed.as_secs_f64() / elapsed.as_secs_f64();
        println!(
            "{shards:>6} | {:>12} {:>10.1} {:>7.2}x | {:>12} {:>6.1}%",
            fmt_duration(elapsed),
            chain_len as f64 / elapsed.as_secs_f64(),
            speedup,
            fmt_duration(agg),
            100.0 * agg.as_secs_f64() / elapsed.as_secs_f64(),
        );
        json_rows.push(obj(vec![
            ("shards", shards.into()),
            ("elapsed_us", (elapsed.as_secs_f64() * 1e6).into()),
            (
                "certs_per_sec",
                (chain_len as f64 / elapsed.as_secs_f64()).into(),
            ),
            ("speedup", speedup.into()),
            ("agg_us", (agg.as_secs_f64() * 1e6).into()),
        ]));
    }
    println!();
    println!(
        "({} blocks x {txs_per_block} txs, chunk {CHUNK}, {cores} core(s); \
         every fleet output byte-identical to sequential)",
        chain_len
    );
    if cores < 4 {
        println!("note: <4 cores — check_bench skips the wall-clock speedup gate");
    }
    let rows = Json::Arr(json_rows);
    export_figure("fig_shard_scaling", &obs, rows.clone());
    if json_mode() {
        println!("{}", rows.to_string_pretty());
    }
}

/// Cumulative `shard.agg.fold_ns` time recorded so far.
fn fold_ns(obs: &Registry) -> u64 {
    obs.snapshot()
        .histograms
        .get("shard.agg.fold_ns")
        .map(|h| h.sum)
        .unwrap_or(0)
}

fn as_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}
