//! Figure 8: block-certificate construction time per Blockbench workload
//! (DN, CPU, IO, KV, SB), broken into outside-enclave pre-processing
//! (read/write-set generation, Merkle-proof generation) and inside-enclave
//! certificate generation, plus the enclave overhead factor.
//!
//! Paper result: the inside-enclave part dominates; the enclave adds at
//! most ~1.8× over the same logic untrusted; Merkle-proof generation is
//! negligible; total construction stays well under the block interval.
//!
//! Run with: `cargo run --release -p dcert-bench --bin fig8_cert_construction`

#![forbid(unsafe_code)]

use dcert_bench::export::export_figure;
use dcert_bench::json::{obj, Json};
use dcert_bench::params::{merkle_threads, scaled, BLOCKS_PER_MEASUREMENT, DEFAULT_BLOCK_SIZE};
use dcert_bench::report::{banner, fmt_bytes, fmt_duration, json_mode};
use dcert_bench::{Rig, RigConfig, Scheme};
use dcert_obs::Registry;
use dcert_sgx::CostModel;
use dcert_workloads::Workload;

fn main() {
    banner(
        "Figure 8: certificate construction time by workload",
        "inside-enclave dominates; enclave overhead ≤ ~1.8×; proof-gen negligible",
    );
    // Parallel Merkle construction only moves wall-clock; exported
    // counters stay byte-identical across settings (`check_bench --compare`).
    dcert_merkle::set_build_threads(merkle_threads());
    // At least two blocks per rig: marshal-buffer reuse only starts with
    // the second request, and `enclave.marshal_reuse_bytes` is gated
    // non-zero by check_bench even at smoke scale.
    let blocks = scaled(BLOCKS_PER_MEASUREMENT).max(2);
    println!(
        "{:>4} | {:>10} {:>10} | {:>10} {:>10} {:>9} | {:>10} {:>9}",
        "", "rw-set", "proof-gen", "enclave", "trusted", "overhead", "total", "req bytes"
    );
    println!("{}", "-".repeat(86));
    let obs = Registry::new();
    let mut json_rows = Vec::new();
    for workload in Workload::paper_defaults() {
        let mut rig = Rig::new(RigConfig {
            cost: CostModel::calibrated(),
            indexes: Vec::new(),
            obs: obs.clone(),
        });
        let result = rig.run(workload, blocks, DEFAULT_BLOCK_SIZE, 42, Scheme::BlockOnly);
        let avg = result.average();
        println!(
            "{:>4} | {:>10} {:>10} | {:>10} {:>10} {:>8.2}x | {:>10} {:>9}",
            workload.label(),
            fmt_duration(avg.rw_set_gen),
            fmt_duration(avg.proof_gen),
            fmt_duration(avg.enclave_total),
            fmt_duration(avg.enclave_trusted),
            avg.overhead_factor(),
            fmt_duration(avg.total()),
            fmt_bytes(avg.request_bytes as usize),
        );
        json_rows.push(obj(vec![
            ("workload", workload.label().into()),
            ("rw_set_us", (avg.rw_set_gen.as_secs_f64() * 1e6).into()),
            ("proof_gen_us", (avg.proof_gen.as_secs_f64() * 1e6).into()),
            (
                "enclave_total_us",
                (avg.enclave_total.as_secs_f64() * 1e6).into(),
            ),
            (
                "enclave_trusted_us",
                (avg.enclave_trusted.as_secs_f64() * 1e6).into(),
            ),
            ("overhead_factor", avg.overhead_factor().into()),
            ("total_us", (avg.total().as_secs_f64() * 1e6).into()),
            ("request_bytes", avg.request_bytes.into()),
        ]));
    }
    println!();
    println!(
        "(block size = {DEFAULT_BLOCK_SIZE} txs, {blocks} blocks per workload, averages \
         exclude the first warm-up block)"
    );
    let rows = Json::Arr(json_rows);
    export_figure("fig8_cert_construction", &obs, rows.clone());
    if json_mode() {
        println!("{}", rows.to_string_pretty());
    }
}
