//! Proof-size figure for the op-stream encoding: one op-stream proof for
//! a contiguous window of `k` versions vs. `k` per-path singleton proofs
//! over the same entries, on the two-level history index and the
//! aggregate index.
//!
//! Expected result: the op stream shares every interior node the `k`
//! per-path proofs re-send, so its byte size is strictly smaller from a
//! modest window width on (`k >= 4` is the gate `check_bench` enforces).
//! Both encodings verify against the same certified digest and return
//! byte-identical results — `tests/op_proof_equivalence.rs` pins that;
//! this binary measures the size and time axes.
//!
//! Run with: `cargo run --release -p dcert-bench --bin fig_proof_bytes`

#![forbid(unsafe_code)]

use std::time::Instant;

use dcert_bench::export::export_figure;
use dcert_bench::json::{obj, Json};
use dcert_bench::params::scaled;
use dcert_bench::report::{banner, fmt_bytes, fmt_duration, json_mode};
use dcert_obs::{Buckets, Registry};
use dcert_query::aggregate::verify_aggregate_op;
use dcert_query::history::{verify_history, verify_history_op};
use dcert_query::{AggregateIndex, HistoryIndex};
use dcert_vm::StateKey;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Contiguous window widths measured; the `check_bench` gate requires the
/// op stream to win from `k = 4` on.
const WINDOW_WIDTHS: &[u64] = &[1, 2, 4, 8, 16, 32];

fn account(i: u64) -> StateKey {
    StateKey::new("kvstore", format!("key-{i}").as_bytes())
}

fn main() {
    banner(
        "fig_proof_bytes: op-stream vs per-path proof size for contiguous windows",
        "one shared-structure op proof beats k singleton proofs from k >= 4",
    );
    let chain_len = scaled(2_000);
    let accounts = 64u64;

    // Both indexes ingest the same stream: the probe account writes every
    // block (history gets a version per height, aggregate an 8-byte BE
    // amount), plus background accounts so the trees have real fan-out.
    eprintln!("building {chain_len}-block history + aggregate indexes...");
    let probe = account(0);
    let mut history = HistoryIndex::new("history");
    let mut aggregate = AggregateIndex::new("agg");
    let mut rng = StdRng::seed_from_u64(42);
    for height in 1..=chain_len {
        let mut writes: Vec<(StateKey, Option<Vec<u8>>)> =
            vec![(probe, Some((height % 1_000).to_be_bytes().to_vec()))];
        for _ in 0..4 {
            let acct = rng.gen_range(1..accounts);
            writes.push((account(acct), Some(height.to_be_bytes().to_vec())));
        }
        writes.sort_by_key(|(k, _)| *k.as_hash());
        writes.dedup_by_key(|(k, _)| *k.as_hash());
        history.apply_block(height, &writes);
        aggregate.apply_block(height, &writes);
    }
    let history_digest = history.digest();
    let aggregate_digest = aggregate.digest();

    let obs = Registry::new();
    let windows = obs.counter("bench.fig_proof.windows");
    let op_proof_bytes = obs.histogram("bench.fig_proof.op_proof_bytes", Buckets::bytes());
    let perpath_proof_bytes =
        obs.histogram("bench.fig_proof.perpath_proof_bytes", Buckets::bytes());
    let agg_op_bytes = obs.histogram("bench.fig_proof.agg_op_bytes", Buckets::bytes());
    let op_verify_ns = obs.timer("bench.fig_proof.op_verify_ns");
    let perpath_verify_ns = obs.timer("bench.fig_proof.perpath_verify_ns");

    println!(
        "{:>6} | {:>12} {:>12} {:>7} | {:>12} {:>12} | {:>12}",
        "k", "per-path", "op-stream", "ratio", "pp verify", "op verify", "agg op"
    );
    println!("{}", "-".repeat(88));
    let mut json_rows = Vec::new();
    for &k in WINDOW_WIDTHS {
        let t2 = chain_len;
        let t1 = chain_len - k + 1;

        // k singleton per-path proofs over the window, verified one by one.
        let mut perpath_bytes = 0usize;
        let started = Instant::now();
        for ts in t1..=t2 {
            let (results, proof) = history.query(&probe, ts, ts);
            verify_history(&history_digest, &probe, ts, ts, &results, &proof)
                .expect("per-path singleton verifies");
            perpath_bytes += proof.size_bytes();
        }
        let perpath_verify = started.elapsed();

        // One op-stream proof for the whole window.
        let (op_results, op_proof) = history.query_ops(&probe, t1, t2);
        let op_bytes = op_proof.size_bytes();
        let started = Instant::now();
        verify_history_op(&history_digest, &probe, t1, t2, &op_results, &op_proof)
            .expect("op-stream window verifies");
        let op_verify = started.elapsed();
        assert_eq!(op_results.len() as u64, k, "probe writes every block");

        // Aggregate op proof over the same window (no per-path singleton
        // analog: AggQueryProof already covers a window, so we report the
        // op size for scale, not a ratio).
        let (agg, agg_proof) = aggregate.query_ops(&probe, t1, t2);
        verify_aggregate_op(&aggregate_digest, &probe, t1, t2, &agg, &agg_proof)
            .expect("aggregate op window verifies");
        let agg_bytes = agg_proof.size_bytes();

        windows.inc();
        obs.counter(&format!("bench.fig_proof.perpath_bytes_k{k}"))
            .add(u64::try_from(perpath_bytes).unwrap_or(u64::MAX));
        obs.counter(&format!("bench.fig_proof.op_bytes_k{k}"))
            .add(u64::try_from(op_bytes).unwrap_or(u64::MAX));
        op_proof_bytes.observe(u64::try_from(op_bytes).unwrap_or(u64::MAX));
        perpath_proof_bytes.observe(u64::try_from(perpath_bytes).unwrap_or(u64::MAX));
        agg_op_bytes.observe(u64::try_from(agg_bytes).unwrap_or(u64::MAX));
        op_verify_ns.record(op_verify);
        perpath_verify_ns.record(perpath_verify);

        println!(
            "{k:>6} | {:>12} {:>12} {:>6.2}x | {:>12} {:>12} | {:>12}",
            fmt_bytes(perpath_bytes),
            fmt_bytes(op_bytes),
            perpath_bytes as f64 / op_bytes.max(1) as f64,
            fmt_duration(perpath_verify),
            fmt_duration(op_verify),
            fmt_bytes(agg_bytes),
        );
        json_rows.push(obj(vec![
            ("k", k.into()),
            ("window", Json::Arr(vec![t1.into(), t2.into()])),
            ("perpath_bytes", perpath_bytes.into()),
            ("op_bytes", op_bytes.into()),
            ("agg_op_bytes", agg_bytes.into()),
            (
                "perpath_verify_us",
                (perpath_verify.as_secs_f64() * 1e6).into(),
            ),
            ("op_verify_us", (op_verify.as_secs_f64() * 1e6).into()),
        ]));
    }
    println!();
    println!(
        "(window = [tip-k+1, tip]; probe writes every block; digests: history {}, aggregate {})",
        short(&history_digest),
        short(&aggregate_digest)
    );
    let rows = Json::Arr(json_rows);
    export_figure("fig_proof_bytes", &obs, rows.clone());
    if json_mode() {
        println!("{}", rows.to_string_pretty());
    }
}

fn short(h: &dcert_primitives::hash::Hash) -> String {
    h.to_string()[..12].to_owned()
}
