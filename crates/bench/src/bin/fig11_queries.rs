//! Figure 11: verifiable historical queries — latency (11a) and proof size
//! (11b) vs. the distance of the queried time window from the latest
//! block, DCert's two-level MPT+MB-tree index against the
//! LineageChain-style skip-list index.
//!
//! Paper result: DCert is faster with smaller proofs at every distance;
//! the skip-list baseline degrades as the window moves away from the tip
//! (its traversal starts at the newest version).
//!
//! Run with: `cargo run --release -p dcert-bench --bin fig11_queries`

#![forbid(unsafe_code)]

use std::time::Instant;

use dcert_baselines::lineage::{verify_lineage, LineageIndex};
use dcert_bench::export::export_figure;
use dcert_bench::json::{obj, Json};
use dcert_bench::params::{scaled, QUERY_ACCOUNTS, QUERY_CHAIN_LENGTH, WINDOW_DISTANCES};
use dcert_bench::report::{banner, fmt_bytes, fmt_duration, json_mode};
use dcert_obs::{Buckets, Registry};
use dcert_primitives::hash::Hash;
use dcert_query::history::verify_history;
use dcert_query::HistoryIndex;
use dcert_vm::StateKey;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn account(i: u64) -> StateKey {
    StateKey::new("kvstore", format!("key-{i}").as_bytes())
}

fn main() {
    banner(
        "Figure 11: verifiable query latency & proof size vs window distance",
        "DCert (MPT + MB-tree) beats the LineageChain-style skip list on both axes",
    );
    let chain_len = scaled(QUERY_CHAIN_LENGTH);
    let accounts = QUERY_ACCOUNTS;

    // Build both indexes from the same update stream: every block updates
    // a handful of the 500 tuples, and the probe account every block (so
    // every window contains versions).
    eprintln!("building {chain_len}-block indexes over {accounts} accounts...");
    let probe = account(0);
    let mut dcert_idx = HistoryIndex::new("history");
    let mut lineage_idx = LineageIndex::new();
    let mut rng = StdRng::seed_from_u64(42);
    for height in 1..=chain_len {
        let mut writes: Vec<(StateKey, Option<Vec<u8>>)> =
            vec![(probe, Some(format!("probe-balance-{height}").into_bytes()))];
        for _ in 0..4 {
            let acct = rng.gen_range(1..accounts);
            writes.push((
                account(acct),
                Some(format!("balance-{acct}-{height}").into_bytes()),
            ));
        }
        writes.sort_by_key(|(k, _)| *k.as_hash());
        writes.dedup_by_key(|(k, _)| *k.as_hash());
        dcert_idx.apply_block(height, &writes);
        lineage_idx.apply_block(height, &writes);
    }
    let dcert_digest = dcert_idx.digest();
    let lineage_digest = lineage_idx.digest();

    let obs = Registry::new();
    let queries = obs.counter("bench.fig11.queries");
    let results_hist = obs.histogram("bench.fig11.results", Buckets::exponential(1, 2, 16));
    let dcert_proof_bytes = obs.histogram("bench.fig11.dcert_proof_bytes", Buckets::bytes());
    let lineage_proof_bytes = obs.histogram("bench.fig11.lineage_proof_bytes", Buckets::bytes());
    let dcert_query_ns = obs.timer("bench.fig11.dcert_query_ns");
    let dcert_verify_ns = obs.timer("bench.fig11.dcert_verify_ns");
    let lineage_query_ns = obs.timer("bench.fig11.lineage_query_ns");
    let lineage_verify_ns = obs.timer("bench.fig11.lineage_verify_ns");

    println!(
        "{:>9} | {:>11} {:>11} {:>10} | {:>11} {:>11} {:>10}",
        "distance", "DCert query", "verify", "proof", "LC query", "verify", "proof"
    );
    println!("{}", "-".repeat(86));
    let mut json_rows = Vec::new();
    for &distance in WINDOW_DISTANCES {
        // The window reaches back `distance` blocks from the chain tip
        // (the paper grows the window away from the latest block).
        let distance = scaled(distance).min(chain_len);
        let t2 = chain_len;
        let t1 = chain_len - distance + 1;

        // DCert two-level index.
        let started = Instant::now();
        let (d_results, d_proof) = dcert_idx.query(&probe, t1, t2);
        let d_query = started.elapsed();
        let started = Instant::now();
        verify_history(&dcert_digest, &probe, t1, t2, &d_results, &d_proof)
            .expect("dcert query verifies");
        let d_verify = started.elapsed();

        // LineageChain-style baseline.
        let started = Instant::now();
        let (l_results, l_proof) = lineage_idx.query(&probe, t1, t2);
        let l_query = started.elapsed();
        let started = Instant::now();
        verify_lineage(&lineage_digest, &probe, t1, t2, &l_results, &l_proof)
            .expect("baseline query verifies");
        let l_verify = started.elapsed();

        assert_eq!(d_results, l_results, "both indexes must agree");

        queries.inc();
        results_hist.observe(u64::try_from(d_results.len()).unwrap_or(u64::MAX));
        dcert_proof_bytes.observe(u64::try_from(d_proof.size_bytes()).unwrap_or(u64::MAX));
        lineage_proof_bytes.observe(u64::try_from(l_proof.size_bytes()).unwrap_or(u64::MAX));
        dcert_query_ns.record(d_query);
        dcert_verify_ns.record(d_verify);
        lineage_query_ns.record(l_query);
        lineage_verify_ns.record(l_verify);

        println!(
            "{distance:>9} | {:>11} {:>11} {:>10} | {:>11} {:>11} {:>10}",
            fmt_duration(d_query),
            fmt_duration(d_verify),
            fmt_bytes(d_proof.size_bytes()),
            fmt_duration(l_query),
            fmt_duration(l_verify),
            fmt_bytes(l_proof.size_bytes()),
        );
        json_rows.push(obj(vec![
            ("distance", distance.into()),
            ("window", Json::Arr(vec![t1.into(), t2.into()])),
            ("results", d_results.len().into()),
            ("dcert_query_us", (d_query.as_secs_f64() * 1e6).into()),
            ("dcert_verify_us", (d_verify.as_secs_f64() * 1e6).into()),
            ("dcert_proof_bytes", d_proof.size_bytes().into()),
            ("lineage_query_us", (l_query.as_secs_f64() * 1e6).into()),
            ("lineage_verify_us", (l_verify.as_secs_f64() * 1e6).into()),
            ("lineage_proof_bytes", l_proof.size_bytes().into()),
        ]));
    }
    println!();
    println!(
        "(window = [tip-distance+1, tip]; probe account updated every block; \
         digests: dcert {}, lineage {})",
        short(&dcert_digest),
        short(&lineage_digest)
    );
    let rows = Json::Arr(json_rows);
    export_figure("fig11_queries", &obs, rows.clone());
    if json_mode() {
        println!("{}", rows.to_string_pretty());
    }
}

fn short(h: &Hash) -> String {
    h.to_string()[..12].to_owned()
}
