//! Ablation: per-block vs. batched certification.
//!
//! DCert certifies every block with one ECall; the batch extension signs a
//! single certificate for k consecutive blocks, amortizing the transition
//! and recursive-verification cost at the price of certification latency
//! (clients see one certificate per batch). This experiment measures the
//! amortization curve.
//!
//! Run with: `cargo run --release -p dcert-bench --bin ablation_batching`

#![forbid(unsafe_code)]

use std::time::Instant;

use dcert_bench::export::export_figure;
use dcert_bench::json::{obj, Json};
use dcert_bench::params::scaled;
use dcert_bench::report::{banner, fmt_duration, json_mode};
use dcert_bench::{Rig, RigConfig};
use dcert_obs::Registry;
use dcert_sgx::CostModel;
use dcert_workloads::Workload;

const TOTAL_BLOCKS: u64 = 32;

fn main() {
    banner(
        "Ablation: per-block vs batched certification",
        "batching amortizes ECall + recursive-verification cost; latency grows with batch size",
    );
    let total = scaled(TOTAL_BLOCKS).max(8);
    println!(
        "{:>10} | {:>12} {:>12} | {:>8}",
        "batch size", "per block", "whole chain", "ecalls"
    );
    println!("{}", "-".repeat(52));

    let obs = Registry::new();
    let mut json_rows = Vec::new();
    for &batch in &[1usize, 2, 4, 8, 16] {
        let mut rig = Rig::new(RigConfig {
            cost: CostModel::calibrated(),
            indexes: Vec::new(),
            obs: obs.clone(),
        });
        let mut gen = rig.generator(Workload::KvStore { keyspace: 500 }, 42);
        let blocks: Vec<_> = (0..total).map(|_| rig.mine(gen.next_block(32))).collect();

        let started = Instant::now();
        let mut ecalls = 0;
        for chunk in blocks.chunks(batch) {
            let (_, breakdown) = if chunk.len() == 1 {
                rig.ci.certify_block(&chunk[0]).expect("certifies")
            } else {
                rig.ci.certify_batch(chunk).expect("certifies")
            };
            ecalls += breakdown.ecalls;
        }
        let elapsed = started.elapsed();
        let per_block = elapsed / total as u32;
        println!(
            "{batch:>10} | {:>12} {:>12} | {ecalls:>8}",
            fmt_duration(per_block),
            fmt_duration(elapsed),
        );
        json_rows.push(obj(vec![
            ("batch_size", batch.into()),
            ("per_block_us", (per_block.as_secs_f64() * 1e6).into()),
            ("total_us", (elapsed.as_secs_f64() * 1e6).into()),
            ("ecalls", ecalls.into()),
        ]));
    }
    println!();
    println!("(KV workload, 32-tx blocks, {total} blocks per configuration)");
    let rows = Json::Arr(json_rows);
    export_figure("ablation_batching", &obs, rows.clone());
    if json_mode() {
        println!("{}", rows.to_string_pretty());
    }
}
