//! Store cold-start: how long a crashed Certificate Issuer takes to come
//! back serving resyncs, as its durable certified history grows.
//!
//! Not a paper figure — the paper's evaluation restarts from genesis.
//! This measures the two phases the `dcert-store` persistence layer adds
//! on top: **open** (segment scan + torn-tail truncation + record replay)
//! and **re-verify** (every recovered certificate checked against the
//! trust anchors before the archive serves a single resync).
//!
//! Run with: `cargo run --release -p dcert-bench --bin fig_store_coldstart`
//! (use `DCERT_SCALE=0.02` for a quick pass).

#![forbid(unsafe_code)]

use std::sync::Arc;
use std::time::Instant;

use dcert_bench::export::export_figure;
use dcert_bench::json::{obj, Json};
use dcert_bench::params::scaled;
use dcert_bench::report::{banner, fmt_bytes, fmt_duration, json_mode};
use dcert_bench::{Rig, RigConfig};
use dcert_core::{expected_measurement, CertArchive, Gossip, NetMessage};
use dcert_obs::Registry;
use dcert_primitives::codec::Encode;
use dcert_sgx::CostModel;
use dcert_store::{Record, SegmentStore, Store, StoreConfig, StreamId};

/// Certified-history sizes swept (scaled by `DCERT_SCALE`).
const HISTORY_LENGTHS: &[u64] = &[1_000, 2_000, 4_000];

fn main() {
    banner(
        "Store cold-start: archive recovery time vs durable history",
        "open (scan + replay) and re-verify scale linearly in retained certificates",
    );

    let lengths: Vec<u64> = HISTORY_LENGTHS.iter().map(|&n| scaled(n)).collect();
    let obs = Registry::new();
    // The enclave cost model is irrelevant here — the measured phases run
    // entirely outside the enclave, against the disk and the verifier.
    let mut rig = Rig::new(RigConfig {
        cost: CostModel::zero(),
        indexes: Vec::new(),
        obs: obs.clone(),
    });
    let ias_key = rig.ias.public_key();
    let measurement = expected_measurement();

    let dir = std::env::temp_dir().join(format!("dcert-bench-coldstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench scratch dir");
    let mut store: Box<dyn Store> = Box::new(
        SegmentStore::open(StoreConfig::new(&dir).obs(obs.clone())).expect("fresh store opens"),
    );

    println!(
        "{:>9} | {:>12} {:>10} | {:>12} {:>12}",
        "blocks", "disk", "replayed", "open", "re-verify"
    );
    println!("{}", "-".repeat(64));
    let mut json_rows = Vec::new();
    let mut height = 0u64;
    for &target in &lengths {
        // Grow the durable history to `target`, the way the live archive
        // does: one certificate record per block, synced before the
        // publish is acknowledged.
        while height < target {
            let block = rig.mine(Vec::new());
            height = block.header.height;
            let (cert, _) = rig.ci.certify_block(&block).expect("certifies");
            let message = NetMessage::BlockCert {
                header: block.header.clone(),
                cert,
            };
            store
                .append(&Record::new(
                    height,
                    StreamId::Cert,
                    message.to_encoded_bytes(),
                ))
                .expect("appends");
            store.sync().expect("syncs");
        }
        drop(store); // the crash: the process dies with the store

        let started = Instant::now();
        let reopened =
            SegmentStore::open(StoreConfig::new(&dir).obs(obs.clone())).expect("history recovers");
        let open_time = started.elapsed();
        let replayed = reopened.recovery().replayed;
        let disk: u64 = reopened
            .segment_paths()
            .iter()
            .filter_map(|p| std::fs::metadata(p).ok())
            .map(|m| m.len())
            .sum();

        let started = Instant::now();
        let archive = CertArchive::with_store(
            Arc::new(Gossip::new()),
            Box::new(reopened),
            &ias_key,
            &measurement,
        )
        .expect("recovered certificates re-verify");
        let verify_time = started.elapsed();
        assert_eq!(
            archive.retained_len() as u64,
            target,
            "recovery lost certificates"
        );

        obs.counter("bench.fig_store.coldstarts").inc();
        obs.timer("bench.fig_store.open_ns").record(open_time);
        obs.timer("bench.fig_store.verify_ns").record(verify_time);

        println!(
            "{target:>9} | {:>12} {replayed:>10} | {:>12} {:>12}",
            fmt_bytes(disk as usize),
            fmt_duration(open_time),
            fmt_duration(verify_time),
        );
        json_rows.push(obj(vec![
            ("blocks", target.into()),
            ("segment_bytes", disk.into()),
            ("replayed_records", replayed.into()),
            ("open_us", (open_time.as_secs_f64() * 1e6).into()),
            ("reverify_us", (verify_time.as_secs_f64() * 1e6).into()),
        ]));
        store = archive.into_store().expect("store stays attached");
    }
    let _ = std::fs::remove_dir_all(&dir);

    let rows = Json::Arr(json_rows);
    export_figure("fig_store_coldstart", &obs, rows.clone());
    if json_mode() {
        println!("{}", rows.to_string_pretty());
    }
}
