//! Serving front-end under a 10⁵-client zipfian load: how much backend
//! work coalescing and proof caching save, and what admission control
//! sheds when bursts exceed the service budget.
//!
//! Not a paper figure — the paper serves each query directly from the
//! SP's indexes. This measures the `dcert-serve` layer on top: the same
//! deterministic schedule (`ServeLoadGen`: zipfian keys, bursty
//! arrivals, slow-loris abandons) is replayed against fronts that differ
//! only in proof-cache capacity, so the backend-call column isolates
//! what the cache buys over coalescing alone.
//!
//! Run with: `cargo run --release -p dcert-bench --bin fig_serve`
//! (use `DCERT_SCALE=0.02` for a quick pass).

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::time::Instant;

use dcert_bench::export::export_figure;
use dcert_bench::json::{obj, Json};
use dcert_bench::params::scaled;
use dcert_bench::report::{banner, fmt_duration, json_mode};
use dcert_bench::{Rig, RigConfig};
use dcert_chain::Block;
use dcert_obs::Registry;
use dcert_query::sp::IndexKind;
use dcert_query::ServiceProvider;
use dcert_serve::{
    QuerySpec, RateLimit, ServeConfig, ServeFront, ServeRequest, ServeWire, Submitted,
};
use dcert_sgx::CostModel;
use dcert_workloads::{ServeEvent, ServeLoadConfig, ServeLoadGen, ServeQueryKind, Workload};

/// Blocks of indexed history behind the front (scaled by `DCERT_SCALE`).
const HISTORY_BLOCKS: u64 = 240;

/// Transactions per mined block.
const TXS_PER_BLOCK: usize = 24;

/// Requests replayed per cache configuration (scaled by `DCERT_SCALE`).
const REQUESTS: u64 = 50_000;

/// Queries the front executes per virtual tick (the service budget; a
/// burst larger than `gap × budget` backlogs into the next burst).
const PUMP_BUDGET: usize = 64;

/// Proof-cache capacities swept; 0 isolates coalescing alone.
const CACHE_CAPACITIES: &[usize] = &[0, 64, 1024];

fn main() {
    banner(
        "Serving front-end: coalescing + proof caching vs backend load",
        "zipfian traffic turns most queries into cache or coalescing hits",
    );

    let obs = Registry::new();
    let mut rig = Rig::new(RigConfig {
        cost: CostModel::zero(),
        indexes: vec![
            (IndexKind::History, "history".to_owned()),
            (IndexKind::Inverted, "inverted".to_owned()),
            (IndexKind::Aggregate, "agg".to_owned()),
        ],
        obs: obs.clone(),
    });

    let blocks = scaled(HISTORY_BLOCKS);
    eprintln!("building {blocks}-block certified history (kvstore workload)...");
    rig.run(
        Workload::KvStore { keyspace: 500 },
        blocks,
        TXS_PER_BLOCK,
        42,
        dcert_bench::Scheme::Augmented,
    );

    // One pre-mined block per swept configuration: each replay stages it
    // halfway through, exercising the strict-invalidation path under load
    // (heights stay consecutive across the sweep).
    let mut gen = rig.generator(Workload::KvStore { keyspace: 500 }, 43);
    let freshen: Vec<Block> = (0..CACHE_CAPACITIES.len())
        .map(|_| rig.mine(gen.next_block(TXS_PER_BLOCK)))
        .collect();

    // The front takes ownership of the SP; leave a fresh stand-in on the
    // rig so it stays whole.
    let mut sp = std::mem::replace(
        &mut rig.sp,
        ServiceProvider::new(
            &rig.genesis,
            rig.genesis_state.clone(),
            rig.executor.clone(),
            rig.engine.clone(),
        ),
    );

    let load = ServeLoadConfig {
        requests: scaled(REQUESTS),
        ..ServeLoadConfig::default()
    };
    let schedule: Vec<ServeEvent> = ServeLoadGen::new(load, 7).collect();
    eprintln!(
        "replaying {} requests from {} clients over {} hot keys...",
        schedule.len(),
        load.clients,
        load.keyspace
    );

    println!(
        "{:>7} | {:>9} {:>7} {:>9} {:>9} | {:>7} {:>7} | {:>4} {:>4} | {:>10}",
        "cache",
        "requests",
        "hits%",
        "coalesce",
        "backend",
        "shed",
        "aband",
        "p50",
        "p99",
        "elapsed"
    );
    println!("{}", "-".repeat(96));
    let mut json_rows = Vec::new();
    for (capacity, fresh) in CACHE_CAPACITIES.iter().zip(&freshen) {
        let config = ServeConfig {
            queue_capacity: 192,
            max_waiters: 4096,
            cache_capacity: *capacity,
            rate_limit: RateLimit {
                tokens_per_tick: 2,
                burst: 8,
            },
        };
        let mut front = ServeFront::new(sp, config);
        front.attach_obs(&obs);
        let backend_before = obs.counter("serve.backend_calls").get();

        let started = Instant::now();
        let outcome = replay(&mut front, &schedule, fresh);
        let elapsed = started.elapsed();
        let backend = obs.counter("serve.backend_calls").get() - backend_before;
        outcome.check(schedule.len() as u64);

        let hit_rate = 100.0 * outcome.cache_hits as f64 / schedule.len() as f64;
        let (p50, p99) = outcome.wait_percentiles();
        println!(
            "{capacity:>7} | {:>9} {hit_rate:>6.1}% {:>9} {backend:>9} | {:>7} {:>7} | {p50:>4} {p99:>4} | {:>10}",
            schedule.len(),
            outcome.coalesce_hits,
            outcome.shed(),
            outcome.cancelled,
            fmt_duration(elapsed),
        );
        json_rows.push(obj(vec![
            ("cache_capacity", (*capacity).into()),
            ("clients", load.clients.into()),
            ("requests", schedule.len().into()),
            ("cache_hits", outcome.cache_hits.into()),
            ("coalesce_hits", outcome.coalesce_hits.into()),
            ("backend_calls", backend.into()),
            ("responses", outcome.responses.into()),
            ("refused_admission", outcome.refused_admission.into()),
            ("refused_pump", outcome.refused_pump.into()),
            ("cancelled", outcome.cancelled.into()),
            ("hit_rate_pct", hit_rate.into()),
            ("wait_ticks_p50", p50.into()),
            ("wait_ticks_p99", p99.into()),
            ("elapsed_us", (elapsed.as_secs_f64() * 1e6).into()),
        ]));

        sp = front.into_sp();
    }
    println!();
    println!(
        "(budget {PUMP_BUDGET} queries/tick; shed = typed refusals at admission + pump; \
         aband = slow-loris cancels; waits in virtual ticks)"
    );

    pin_required_counters(sp, &obs);

    let rows = Json::Arr(json_rows);
    export_figure("fig_serve", &obs, rows.clone());
    if json_mode() {
        println!("{}", rows.to_string_pretty());
    }
}

/// Terminal-outcome tallies for one replay. Every submitted request ends
/// in exactly one bucket; [`ReplayOutcome::check`] enforces it.
#[derive(Default)]
struct ReplayOutcome {
    cache_hits: u64,
    coalesce_hits: u64,
    responses: u64,
    refused_admission: u64,
    refused_pump: u64,
    cancelled: u64,
    waits: Vec<u64>,
}

impl ReplayOutcome {
    fn shed(&self) -> u64 {
        self.refused_admission + self.refused_pump
    }

    fn check(&self, submitted: u64) {
        let accounted = self.cache_hits + self.responses + self.shed() + self.cancelled;
        assert_eq!(
            accounted, submitted,
            "every request must reach exactly one terminal outcome"
        );
    }

    /// Exact wait-tick percentiles over the delivered responses.
    fn wait_percentiles(&self) -> (u64, u64) {
        if self.waits.is_empty() {
            return (0, 0);
        }
        let mut sorted = self.waits.clone();
        sorted.sort_unstable();
        let at = |pct: usize| sorted[(sorted.len() - 1) * pct / 100];
        (at(50), at(99))
    }
}

/// Replays the schedule: admit each burst, cancel its slow-loris
/// waiters, then spend `PUMP_BUDGET` queries per quiet tick. `fresh` is
/// staged halfway through to exercise cache invalidation mid-load.
fn replay(front: &mut ServeFront, schedule: &[ServeEvent], fresh: &Block) -> ReplayOutcome {
    let mut outcome = ReplayOutcome::default();
    let mut admitted: HashMap<u64, u64> = HashMap::new(); // id -> admitted tick
    let mut burst_abandons: Vec<(u64, u64)> = Vec::new(); // (client, id)
    let mut current_tick = schedule.first().map_or(0, |e| e.tick);
    let half = schedule.len() / 2;

    let mut drain = |front: &mut ServeFront,
                     outcome: &mut ReplayOutcome,
                     admitted: &mut HashMap<u64, u64>,
                     tick: u64| {
        for (_, wire) in front.pump(tick, PUMP_BUDGET) {
            match wire {
                ServeWire::Response(response) => {
                    if let Some(at) = admitted.remove(&response.id) {
                        outcome.waits.push(tick.saturating_sub(at));
                    }
                    outcome.responses += 1;
                }
                ServeWire::Refusal(refusal) => {
                    admitted.remove(&refusal.id);
                    outcome.refused_pump += 1;
                }
                ServeWire::Request(_) => unreachable!("the front never emits requests"),
            }
        }
    };

    for (i, event) in schedule.iter().enumerate() {
        if event.tick != current_tick {
            for (client, id) in burst_abandons.drain(..) {
                if front.cancel(client, id) {
                    admitted.remove(&id);
                    outcome.cancelled += 1;
                }
            }
            for tick in current_tick + 1..=event.tick {
                drain(front, &mut outcome, &mut admitted, tick);
            }
            current_tick = event.tick;
        }
        if i == half {
            front
                .stage_block(fresh)
                .expect("freshen block stages cleanly");
            front.advance_staged();
        }

        let id = i as u64;
        let request = ServeRequest {
            client: event.client,
            id,
            query: spec_for(event, front.sp().index_height()),
        };
        match front.submit(event.tick, request) {
            Ok(Submitted::CacheHit(_)) => outcome.cache_hits += 1,
            Ok(Submitted::Enqueued { coalesced }) => {
                if coalesced {
                    outcome.coalesce_hits += 1;
                }
                admitted.insert(id, event.tick);
                if event.abandon {
                    burst_abandons.push((event.client, id));
                }
            }
            Err(_) => outcome.refused_admission += 1,
        }
    }

    // Tail: cancel the last burst's abandons, then pump until dry.
    for (client, id) in burst_abandons.drain(..) {
        if front.cancel(client, id) {
            admitted.remove(&id);
            outcome.cancelled += 1;
        }
    }
    let mut tick = current_tick;
    while front.inflight_entries() > 0 {
        tick += 1;
        drain(front, &mut outcome, &mut admitted, tick);
    }
    assert!(admitted.is_empty(), "no waiter may be silently dropped");
    outcome
}

/// Maps a schedule event to a concrete query over the rig's three
/// indexes. Windows span the full certified history so equal keys make
/// equal specs (the regime caching targets).
fn spec_for(event: &ServeEvent, height: u64) -> QuerySpec {
    let key = dcert_vm::StateKey::new("kvstore", format!("key-{}", event.key).as_bytes());
    match event.kind {
        ServeQueryKind::History => QuerySpec::History {
            index: "history".to_owned(),
            key,
            t1: 1,
            t2: height.max(1),
        },
        ServeQueryKind::Keywords => QuerySpec::Keywords {
            index: "inverted".to_owned(),
            keywords: vec![format!("key-{}", event.key)],
        },
        ServeQueryKind::Aggregate => QuerySpec::Aggregate {
            index: "agg".to_owned(),
            key,
            t1: 1,
            t2: height.max(1),
        },
        // Op-stream kinds map the schedule's nested [0,100] window onto
        // the certified height range monotonically, so containment in
        // the schedule stays containment in the spec.
        ServeQueryKind::HistoryOp => QuerySpec::HistoryOp {
            index: "history".to_owned(),
            key,
            t1: 1 + event.window.0 * height.max(1) / 100,
            t2: 1 + event.window.1 * height.max(1) / 100,
        },
        ServeQueryKind::AggregateOp => QuerySpec::AggregateOp {
            index: "agg".to_owned(),
            key,
            t1: 1 + event.window.0 * height.max(1) / 100,
            t2: 1 + event.window.1 * height.max(1) / 100,
        },
    }
}

/// Deterministic mini-scenario pinning every `check_bench`-required
/// counter independent of `DCERT_SCALE`: one coalesce, one rate-limit
/// shed, one queue-full shed, one backend call, one cache hit.
fn pin_required_counters(sp: ServiceProvider, obs: &Registry) {
    let height = sp.index_height().max(1);
    let mut front = ServeFront::new(
        sp,
        ServeConfig {
            queue_capacity: 4,
            max_waiters: 64,
            cache_capacity: 16,
            rate_limit: RateLimit {
                tokens_per_tick: 1,
                burst: 1,
            },
        },
    );
    front.attach_obs(obs);
    let probe = |t2: u64| QuerySpec::History {
        index: "history".to_owned(),
        key: dcert_vm::StateKey::new("kvstore", b"key-0"),
        t1: 1,
        t2,
    };
    let submit = |front: &mut ServeFront, client: u64, id: u64, query: QuerySpec| {
        front.submit(1, ServeRequest { client, id, query })
    };

    let first = submit(&mut front, 1, 0, probe(height));
    assert!(matches!(
        first,
        Ok(Submitted::Enqueued { coalesced: false })
    ));
    let coalesced = submit(&mut front, 2, 1, probe(height));
    assert!(matches!(
        coalesced,
        Ok(Submitted::Enqueued { coalesced: true })
    ));
    // Client 2 spent its single token on the coalesced join above.
    assert!(submit(&mut front, 2, 2, probe(height)).is_err());
    for (i, t2) in (1..=3u64).enumerate() {
        let queued = submit(&mut front, 3 + i as u64, 3 + i as u64, probe(t2));
        assert!(matches!(queued, Ok(Submitted::Enqueued { .. })));
    }
    // Queue holds 4 distinct specs now; a fifth must shed typed.
    assert!(submit(&mut front, 9, 9, probe(height + 1)).is_err());
    assert!(!front.pump(2, usize::MAX).is_empty());
    assert!(matches!(
        submit(&mut front, 10, 10, probe(height)),
        Ok(Submitted::CacheHit(_))
    ));
}
