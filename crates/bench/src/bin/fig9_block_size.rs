//! Figure 9: impact of block size (number of transactions) on certificate
//! construction, for the two macro workloads KVStore and SmallBank.
//!
//! Paper result: construction time grows with the number of transactions;
//! the enclave share grows as the marshalled read/write sets and Merkle
//! proofs grow; the total stays within a practical range.
//!
//! Run with: `cargo run --release -p dcert-bench --bin fig9_block_size`

#![forbid(unsafe_code)]

use dcert_bench::export::export_figure;
use dcert_bench::json::{obj, Json};
use dcert_bench::params::{merkle_threads, scaled, BLOCKS_PER_MEASUREMENT, BLOCK_SIZES};
use dcert_bench::report::{banner, fmt_bytes, fmt_duration, json_mode};
use dcert_bench::{Rig, RigConfig, Scheme};
use dcert_obs::Registry;
use dcert_sgx::CostModel;
use dcert_workloads::Workload;

fn main() {
    banner(
        "Figure 9: impact of block size on certificate construction (KV, SB)",
        "cost grows with #txs; enclave share grows with marshalled r/w-set bytes",
    );
    // Parallel Merkle construction only moves wall-clock; exported
    // counters stay byte-identical across settings (`check_bench --compare`).
    dcert_merkle::set_build_threads(merkle_threads());
    let blocks = scaled(BLOCKS_PER_MEASUREMENT);
    let workloads = [
        Workload::KvStore { keyspace: 500 },
        Workload::SmallBank { customers: 500 },
    ];
    println!(
        "{:>4} {:>6} | {:>10} {:>10} | {:>10} {:>9} | {:>10} {:>9}",
        "", "#txs", "rw-set", "proof-gen", "enclave", "overhead", "total", "req bytes"
    );
    println!("{}", "-".repeat(82));
    let obs = Registry::new();
    let mut json_rows = Vec::new();
    for workload in workloads {
        for &size in BLOCK_SIZES {
            let mut rig = Rig::new(RigConfig {
                cost: CostModel::calibrated(),
                indexes: Vec::new(),
                obs: obs.clone(),
            });
            let result = rig.run(workload, blocks, size, 42, Scheme::BlockOnly);
            let avg = result.average();
            println!(
                "{:>4} {size:>6} | {:>10} {:>10} | {:>10} {:>8.2}x | {:>10} {:>9}",
                workload.label(),
                fmt_duration(avg.rw_set_gen),
                fmt_duration(avg.proof_gen),
                fmt_duration(avg.enclave_total),
                avg.overhead_factor(),
                fmt_duration(avg.total()),
                fmt_bytes(avg.request_bytes as usize),
            );
            json_rows.push(obj(vec![
                ("workload", workload.label().into()),
                ("block_size", size.into()),
                ("rw_set_us", (avg.rw_set_gen.as_secs_f64() * 1e6).into()),
                ("proof_gen_us", (avg.proof_gen.as_secs_f64() * 1e6).into()),
                (
                    "enclave_total_us",
                    (avg.enclave_total.as_secs_f64() * 1e6).into(),
                ),
                ("overhead_factor", avg.overhead_factor().into()),
                ("total_us", (avg.total().as_secs_f64() * 1e6).into()),
                ("request_bytes", avg.request_bytes.into()),
            ]));
        }
        println!("{}", "-".repeat(82));
    }
    let rows = Json::Arr(json_rows);
    export_figure("fig9_block_size", &obs, rows.clone());
    if json_mode() {
        println!("{}", rows.to_string_pretty());
    }
}
