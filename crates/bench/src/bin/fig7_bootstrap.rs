//! Figure 7: bootstrapping costs — storage (7a) and chain-validation time
//! (7b) of the traditional light client vs. the DCert superlight client,
//! as the chain grows.
//!
//! Paper result: the light client grows linearly (7.93 GB of headers for
//! Ethereum); the superlight client is constant at **2.97 KB** storage and
//! **0.14 ms** validation.
//!
//! Run with: `cargo run --release -p dcert-bench --bin fig7_bootstrap`
//! (use `DCERT_SCALE=0.05` for a quick pass).

#![forbid(unsafe_code)]

use std::time::Instant;

use dcert_baselines::TraditionalLightClient;
use dcert_bench::export::export_figure;
use dcert_bench::json::{obj, Json};
use dcert_bench::params::{scaled, CHAIN_LENGTHS};
use dcert_bench::report::{banner, fmt_bytes, fmt_duration, json_mode};
use dcert_bench::{Rig, RigConfig};
use dcert_core::{expected_measurement, SuperlightClient};
use dcert_obs::Registry;
use dcert_sgx::CostModel;

fn main() {
    banner(
        "Figure 7: bootstrapping cost (storage & validation time)",
        "light client linear in chain length; superlight constant (~KB, sub-ms)",
    );

    let lengths: Vec<u64> = CHAIN_LENGTHS.iter().map(|&n| scaled(n)).collect();
    let max = *lengths.last().expect("non-empty grid");

    // Build one certified chain to the maximum length, checkpointing the
    // certificate at each measured height.
    eprintln!("building a certified {max}-block chain...");
    let obs = Registry::new();
    let mut rig = Rig::new(RigConfig {
        cost: CostModel::calibrated(),
        indexes: Vec::new(),
        obs: obs.clone(),
    });
    let mut headers = vec![rig.genesis.header.clone()];
    let mut checkpoints = std::collections::HashMap::new();
    for height in 1..=max {
        let block = rig.mine(Vec::new());
        let (cert, _) = rig.ci.certify_block(&block).expect("certifies");
        headers.push(block.header.clone());
        if lengths.contains(&height) {
            checkpoints.insert(height, (block.header.clone(), cert));
        }
        if height % 10_000 == 0 {
            eprintln!("  ... {height}/{max}");
        }
    }

    println!(
        "{:>9} | {:>12} {:>12} {:>12} | {:>10} {:>12}",
        "blocks", "LC storage", "LC (ETH eq)", "LC validate", "SL storage", "SL validate"
    );
    println!("{}", "-".repeat(80));
    let mut json_rows = Vec::new();
    for &height in &lengths {
        // Traditional light client: store + validate every header.
        let mut light = TraditionalLightClient::new(rig.genesis.header.clone()).unwrap();
        for header in &headers[1..=height as usize] {
            light
                .sync(header.clone(), rig.engine.as_ref())
                .expect("header syncs");
        }
        let started = Instant::now();
        light
            .validate_all(rig.engine.as_ref())
            .expect("chain valid");
        let light_time = started.elapsed();
        obs.timer("bench.fig7.light_validate_ns").record(light_time);

        // Superlight client: one header + one certificate.
        let (header, cert) = &checkpoints[&height];
        let mut client = SuperlightClient::new(rig.ias.public_key(), expected_measurement());
        let started = Instant::now();
        client.validate_chain(header, cert).expect("cert valid");
        let superlight_time = started.elapsed();
        obs.counter("bench.fig7.validations").inc();
        obs.timer("bench.fig7.superlight_validate_ns")
            .record(superlight_time);
        obs.gauge("bench.fig7.superlight_storage_bytes")
            .record_max(i64::try_from(client.storage_bytes()).unwrap_or(i64::MAX));

        println!(
            "{height:>9} | {:>12} {:>12} {:>12} | {:>10} {:>12}",
            fmt_bytes(light.storage_bytes()),
            fmt_bytes(light.ethereum_equivalent_bytes()),
            fmt_duration(light_time),
            fmt_bytes(client.storage_bytes()),
            fmt_duration(superlight_time),
        );
        json_rows.push(obj(vec![
            ("blocks", height.into()),
            ("light_storage_bytes", light.storage_bytes().into()),
            (
                "light_storage_eth_equiv_bytes",
                light.ethereum_equivalent_bytes().into(),
            ),
            ("light_validate_us", (light_time.as_secs_f64() * 1e6).into()),
            ("superlight_storage_bytes", client.storage_bytes().into()),
            (
                "superlight_validate_us",
                (superlight_time.as_secs_f64() * 1e6).into(),
            ),
        ]));
    }
    let rows = Json::Arr(json_rows);
    export_figure("fig7_bootstrap", &obs, rows.clone());
    if json_mode() {
        println!("{}", rows.to_string_pretty());
    }
}
