//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (Section 7).
//!
//! Two entry points per experiment:
//!
//! - a **binary** (`cargo run --release -p dcert-bench --bin figN_...`)
//!   that prints the same rows/series the paper reports (and JSON with
//!   `--json`), and
//! - a **criterion bench** (`cargo bench -p dcert-bench`) measuring the
//!   same operations statistically.
//!
//! | Experiment | Binary | Criterion bench |
//! |---|---|---|
//! | Table 1 (parameters) | `table1_params` | — |
//! | Fig. 7a/b (bootstrapping) | `fig7_bootstrap` | `bootstrap` |
//! | Fig. 8 (cert construction by workload) | `fig8_cert_construction` | `certification` |
//! | Fig. 9 (impact of block size) | `fig9_block_size` | `certification` |
//! | Fig. 10 (augmented vs hierarchical) | `fig10_index_certs` | `index_certs` |
//! | Fig. 11a/b (verifiable queries) | `fig11_queries` | `queries` |
//!
//! Scale every experiment down/up with the `DCERT_SCALE` environment
//! variable (default 1.0): chain lengths and block counts are multiplied
//! by it, so `DCERT_SCALE=0.1` gives a quick smoke run.
//!
//! Every figure binary additionally attaches a [`dcert_obs::Registry`] to
//! the components it drives and merges the resulting snapshot into
//! `BENCH_pr10.json` (see [`export`]); `check_bench` gates CI on the
//! required counters being present and non-zero.

#![forbid(unsafe_code)]

pub mod export;
pub mod harness;
pub mod json;
pub mod naive;
pub mod params;
pub mod report;

pub use harness::{Rig, RigConfig, Scheme};
pub use params::{scale, scaled};
