//! Output helpers for the figure/table binaries: aligned text rows plus
//! optional machine-readable JSON (pass `--json` to any binary).

use std::time::Duration;

/// Returns `true` if `--json` was passed on the command line.
pub fn json_mode() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Formats a duration with appropriate precision for table cells.
pub fn fmt_duration(d: Duration) -> String {
    if d >= Duration::from_secs(1) {
        format!("{:.2} s", d.as_secs_f64())
    } else if d >= Duration::from_millis(1) {
        format!("{:.2} ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.2} µs", d.as_secs_f64() * 1e6)
    }
}

/// Formats byte counts with binary units.
pub fn fmt_bytes(bytes: usize) -> String {
    if bytes >= 1024 * 1024 * 1024 {
        format!("{:.2} GB", bytes as f64 / (1024.0 * 1024.0 * 1024.0))
    } else if bytes >= 1024 * 1024 {
        format!("{:.2} MB", bytes as f64 / (1024.0 * 1024.0))
    } else if bytes >= 1024 {
        format!("{:.2} KB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

/// Prints the standard experiment banner.
pub fn banner(figure: &str, paper_expectation: &str) {
    println!("== {figure} ==");
    println!("paper expectation: {paper_expectation}");
    let scale = crate::params::scale();
    if (scale - 1.0).abs() > f64::EPSILON {
        println!("note: DCERT_SCALE={scale} — sizes scaled accordingly");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_format_by_magnitude() {
        assert!(fmt_duration(Duration::from_nanos(1_500)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(3)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with("s"));
    }

    #[test]
    fn bytes_format_by_magnitude() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KB");
        assert!(fmt_bytes(3 * 1024 * 1024).ends_with("MB"));
    }
}
