//! Criterion companion to Fig. 11: verifiable historical queries over the
//! DCert two-level index vs. the LineageChain-style skip list, at a near
//! and a far time window.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcert_baselines::lineage::{verify_lineage, LineageIndex};
use dcert_query::history::verify_history;
use dcert_query::HistoryIndex;
use dcert_vm::StateKey;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CHAIN_LEN: u64 = 5_000;
const WIDTH: u64 = 100;

fn account(i: u64) -> StateKey {
    StateKey::new("kvstore", format!("key-{i}").as_bytes())
}

fn build() -> (HistoryIndex, LineageIndex) {
    let probe = account(0);
    let mut dcert_idx = HistoryIndex::new("history");
    let mut lineage_idx = LineageIndex::new();
    let mut rng = StdRng::seed_from_u64(42);
    for height in 1..=CHAIN_LEN {
        let mut writes: Vec<(StateKey, Option<Vec<u8>>)> =
            vec![(probe, Some(format!("v{height}").into_bytes()))];
        for _ in 0..4 {
            let acct = rng.gen_range(1..500u64);
            writes.push((account(acct), Some(vec![height as u8])));
        }
        writes.sort_by_key(|(k, _)| *k.as_hash());
        writes.dedup_by_key(|(k, _)| *k.as_hash());
        dcert_idx.apply_block(height, &writes);
        lineage_idx.apply_block(height, &writes);
    }
    (dcert_idx, lineage_idx)
}

fn bench_queries(c: &mut Criterion) {
    let (dcert_idx, lineage_idx) = build();
    let dcert_digest = dcert_idx.digest();
    let lineage_digest = lineage_idx.digest();
    let probe = account(0);

    let mut group = c.benchmark_group("fig11_queries");
    for &distance in &[500u64, CHAIN_LEN] {
        let t2 = CHAIN_LEN - distance + WIDTH.min(distance);
        let t1 = t2.saturating_sub(WIDTH);

        group.bench_with_input(
            BenchmarkId::new("dcert_query_verify", distance),
            &(t1, t2),
            |b, &(t1, t2)| {
                b.iter(|| {
                    let (results, proof) = dcert_idx.query(&probe, t1, t2);
                    verify_history(&dcert_digest, &probe, t1, t2, &results, &proof).unwrap();
                    results.len()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("lineage_query_verify", distance),
            &(t1, t2),
            |b, &(t1, t2)| {
                b.iter(|| {
                    let (results, proof) = lineage_idx.query(&probe, t1, t2);
                    verify_lineage(&lineage_digest, &probe, t1, t2, &results, &proof).unwrap();
                    results.len()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
