//! Parallel Merkle construction: sequential vs. chunked scoped-thread
//! builds at 2/4/8 workers, over 1 k / 10 k / 100 k leaves — the Fig. 8
//! `merkle_threads` speedup at its source. Every configuration produces
//! byte-identical trees (`tests/parallel_merkle.rs` pins this), so the
//! only thing that may move here is wall-clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dcert_merkle::MerkleTree;
use dcert_primitives::hash::{hash_bytes, Hash};

fn leaves(n: usize) -> Vec<Hash> {
    (0..n as u64).map(|i| hash_bytes(i.to_be_bytes())).collect()
}

fn bench_leaf_hash_builds(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle_build/from_leaf_hashes");
    for &n in &[1_000usize, 10_000, 100_000] {
        let input = leaves(n);
        group.throughput(Throughput::Elements(n as u64));
        for &threads in &[1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("threads_{threads}"), n),
                &input,
                |b, input| {
                    b.iter(|| MerkleTree::from_leaf_hashes_with_threads(input.clone(), threads));
                },
            );
        }
    }
    group.finish();
}

fn bench_item_builds(c: &mut Criterion) {
    // The `from_items` path also parallelises leaf hashing itself — this
    // is what `Block::tx_root` pays per block.
    let mut group = c.benchmark_group("merkle_build/from_items");
    for &n in &[1_000usize, 10_000] {
        let items: Vec<Vec<u8>> = (0..n as u64).map(|i| i.to_be_bytes().to_vec()).collect();
        group.throughput(Throughput::Elements(n as u64));
        for &threads in &[1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("threads_{threads}"), n),
                &items,
                |b, items| {
                    b.iter(|| MerkleTree::from_items_with_threads(items.iter(), threads));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_leaf_hash_builds, bench_item_builds);
criterion_main!(benches);
