//! Keyword-extraction micro-benchmark: the inverted index runs
//! `extract_keywords` over every transaction payload of every block, so
//! its per-word allocation behaviour is hot. The extractor now clones a
//! right-sized `String` per emitted keyword and keeps the accumulator's
//! capacity across words instead of re-allocating via `mem::take`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dcert_query::extract_keywords;

fn payload(words: usize) -> Vec<u8> {
    // Realistic mixed payload: normal words, stop-length runs, digits
    // (poisoned runs), and punctuation delimiters.
    let mut out = Vec::new();
    for i in 0..words {
        match i % 5 {
            0 => out.extend_from_slice(b"transfer "),
            1 => out.extend_from_slice(format!("acct{i} ").as_bytes()),
            2 => out.extend_from_slice(b"to, "),
            3 => out.extend_from_slice(format!("{i}overdraft ").as_bytes()),
            _ => out.extend_from_slice(b"settlement-batch "),
        }
    }
    out
}

fn bench_extract(c: &mut Criterion) {
    let mut group = c.benchmark_group("keywords/extract");
    for &words in &[16usize, 128, 1_024] {
        let input = payload(words);
        group.throughput(Throughput::Bytes(input.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(words), &input, |b, input| {
            b.iter(|| extract_keywords(input));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_extract);
criterion_main!(benches);
