//! Criterion companion to Figs. 8–9: per-workload certificate
//! construction, split into the outside-enclave pre-processing and the
//! `ecall_sig_gen` enclave call (with and without the SGX cost model, so
//! the overhead factor is directly visible).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcert_bench::{Rig, RigConfig};
use dcert_core::{BlockInput, CertProgram, EcallRequest};
use dcert_primitives::codec::Encode;
use dcert_sgx::{CostModel, Enclave};
use dcert_workloads::Workload;

/// Builds an idempotent `SigGen` request for one block of `workload`.
fn prepare(workload: Workload, txs: usize) -> (Rig, EcallRequest) {
    let mut rig = Rig::new(RigConfig {
        cost: CostModel::calibrated(),
        indexes: Vec::new(),
    });
    let mut gen = rig.generator(workload, 42);
    let block = rig.mine(gen.next_block(txs));
    // The CI node is still at genesis; prepare the input exactly as
    // Algorithm 1 does.
    let execution = rig.ci.node().execute(&block.txs);
    let state_proof = rig.ci.node().state().prove(&execution.touched_keys());
    let input = BlockInput {
        prev_header: rig.genesis.header.clone(),
        prev_cert: None,
        block,
        reads: execution
            .reads
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect(),
        state_proof,
    };
    (rig, EcallRequest::SigGen(input))
}

/// A standalone initialized trusted program + enclave for replaying the
/// request.
fn enclave_for(rig: &Rig, cost: CostModel) -> Enclave<CertProgram> {
    let program = CertProgram::new(
        rig.genesis.hash(),
        rig.ias.public_key(),
        rig.executor.clone(),
        rig.engine.clone(),
        Vec::new(),
    );
    let enclave = Enclave::launch(program, cost);
    enclave.ecall(&EcallRequest::Init.to_encoded_bytes());
    enclave
}

fn bench_certification(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_cert_construction");
    group.sample_size(20);
    for workload in Workload::paper_defaults() {
        let (rig, request) = prepare(workload, 32);
        let encoded = request.to_encoded_bytes();

        let with_sgx = enclave_for(&rig, CostModel::calibrated());
        group.bench_with_input(
            BenchmarkId::new("ecall_sig_gen_sgx", workload.label()),
            &encoded,
            |b, req| b.iter(|| with_sgx.ecall(req)),
        );
        let no_sgx = enclave_for(&rig, CostModel::zero());
        group.bench_with_input(
            BenchmarkId::new("ecall_sig_gen_untrusted", workload.label()),
            &encoded,
            |b, req| b.iter(|| no_sgx.ecall(req)),
        );
        group.bench_with_input(
            BenchmarkId::new("outside_prep", workload.label()),
            &(),
            |b, _| {
                let EcallRequest::SigGen(input) = &request else {
                    unreachable!()
                };
                b.iter(|| {
                    let execution = rig.ci.node().execute(&input.block.txs);
                    rig.ci.node().state().prove(&execution.touched_keys())
                });
            },
        );
    }
    group.finish();

    // Fig. 9 companion: KV at increasing block sizes.
    let mut group = c.benchmark_group("fig9_block_size");
    group.sample_size(15);
    for &txs in &[8usize, 32, 128] {
        let (rig, request) = prepare(Workload::KvStore { keyspace: 500 }, txs);
        let encoded = request.to_encoded_bytes();
        let enclave = enclave_for(&rig, CostModel::calibrated());
        group.bench_with_input(BenchmarkId::new("KV", txs), &encoded, |b, req| {
            b.iter(|| enclave.ecall(req))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_certification);
criterion_main!(benches);
