//! Criterion companion to Fig. 7: chain-validation time of the superlight
//! client (constant) vs. the traditional light client (linear), at two
//! chain lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcert_baselines::TraditionalLightClient;
use dcert_bench::{Rig, RigConfig};
use dcert_core::{expected_measurement, SuperlightClient};
use dcert_sgx::CostModel;

fn bench_bootstrap(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_bootstrap");
    group.sample_size(20);

    for &chain_len in &[1_000u64, 4_000] {
        // Build one certified chain of this length.
        let mut rig = Rig::new(RigConfig {
            cost: CostModel::calibrated(),
            indexes: Vec::new(),
        });
        let mut headers = vec![rig.genesis.header.clone()];
        let mut tip = None;
        for _ in 0..chain_len {
            let block = rig.mine(Vec::new());
            let (cert, _) = rig.ci.certify_block(&block).expect("certifies");
            headers.push(block.header.clone());
            tip = Some((block.header.clone(), cert));
        }
        let (tip_header, tip_cert) = tip.expect("blocks mined");

        group.bench_with_input(
            BenchmarkId::new("light_client_validate", chain_len),
            &chain_len,
            |b, _| {
                let mut light = TraditionalLightClient::new(rig.genesis.header.clone()).unwrap();
                for header in &headers[1..] {
                    light.sync(header.clone(), rig.engine.as_ref()).unwrap();
                }
                b.iter(|| light.validate_all(rig.engine.as_ref()).unwrap());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("superlight_validate", chain_len),
            &chain_len,
            |b, _| {
                b.iter(|| {
                    let mut client =
                        SuperlightClient::new(rig.ias.public_key(), expected_measurement());
                    client.validate_chain(&tip_header, &tip_cert).unwrap();
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bootstrap);
criterion_main!(benches);
