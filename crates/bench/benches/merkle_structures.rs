//! Micro-benchmarks of the authenticated data structures — the ablation
//! behind the design choices in DESIGN.md: SMT multiproof cost (what every
//! certificate pays), MPT stateless updates (history-index certification),
//! and MB-tree vs. skip-list range proofs (the Fig. 11 gap at its source).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcert_baselines::AuthSkipList;
use dcert_merkle::{MbTree, Mpt, SparseMerkleTree};
use dcert_primitives::hash::{hash_bytes, Hash};

fn bench_smt(c: &mut Criterion) {
    let mut group = c.benchmark_group("smt");
    for &n in &[1_000usize, 10_000] {
        let mut tree = SparseMerkleTree::new();
        let keys: Vec<Hash> = (0..n).map(|i| hash_bytes(format!("key-{i}"))).collect();
        for (i, key) in keys.iter().enumerate() {
            tree.insert(*key, i.to_be_bytes().to_vec());
        }
        let root = tree.root();
        let touched: Vec<Hash> = keys.iter().step_by(n / 32).copied().collect();

        group.bench_with_input(BenchmarkId::new("prove_32_keys", n), &n, |b, _| {
            b.iter(|| tree.prove(&touched));
        });
        let proof = tree.prove(&touched);
        group.bench_with_input(BenchmarkId::new("verify_32_keys", n), &n, |b, _| {
            b.iter(|| proof.verify(&root).unwrap());
        });
        let writes: Vec<(Hash, Option<Hash>)> = touched
            .iter()
            .map(|k| (*k, Some(hash_bytes(b"new"))))
            .collect();
        group.bench_with_input(BenchmarkId::new("updated_root_32_keys", n), &n, |b, _| {
            b.iter(|| proof.updated_root(&writes).unwrap());
        });
    }
    group.finish();
}

fn bench_mpt(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpt");
    let mut trie = Mpt::new();
    for i in 0..10_000u32 {
        trie.insert(format!("account-{i}").as_bytes(), vec![0u8; 32]);
    }
    let root = trie.root();
    group.bench_function("prove", |b| b.iter(|| trie.prove(b"account-5000")));
    let proof = trie.prove(b"account-5000");
    group.bench_function("verify", |b| {
        b.iter(|| proof.verify(&root, b"account-5000").unwrap())
    });
    group.bench_function("stateless_update", |b| {
        b.iter(|| {
            proof
                .updated_root(&root, b"account-5000", &hash_bytes(b"new"))
                .unwrap()
        })
    });
    group.finish();
}

fn bench_range_structures(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_proofs");
    const N: u64 = 10_000;
    let mut mb = MbTree::new(MbTree::DEFAULT_ORDER);
    let mut skip = AuthSkipList::new();
    for ts in 0..N {
        mb.insert(ts, ts.to_be_bytes().to_vec());
        skip.append(ts, ts.to_be_bytes().to_vec());
    }
    for &(label, t1, t2) in &[("near_tip", N - 200, N - 100), ("far", 100u64, 200u64)] {
        group.bench_function(BenchmarkId::new("mbtree", label), |b| {
            b.iter(|| {
                let (results, proof) = mb.range(t1, t2);
                proof.verify(&mb.root(), t1, t2, &results).unwrap();
            });
        });
        group.bench_function(BenchmarkId::new("skiplist", label), |b| {
            b.iter(|| {
                let (results, proof) = skip.range(t1, t2);
                proof.verify(&skip.head(), t1, t2, &results).unwrap();
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_smt, bench_mpt, bench_range_structures);
criterion_main!(benches);
