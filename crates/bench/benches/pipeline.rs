//! Sequential vs pipelined certificate construction: the same pre-mined,
//! pre-staged chain certified by the plain [`CertificateIssuer`] loop and
//! by [`CertPipeline`] with a pool of preparer workers. The pipeline
//! overlaps untrusted preparation (execution, read sets, state proofs,
//! serialization) with the serialized enclave calls, so its wall-clock
//! per chain approaches the pure ECall time — the target is ≥ 1.5× over
//! sequential with 4 preparers under the calibrated cost model.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use dcert_bench::{Rig, RigConfig};
use dcert_chain::Block;
use dcert_core::{
    CertJob, CertPipeline, Certificate, CertificateIssuer, Gossip, IndexInput, PipelineConfig,
};
use dcert_query::sp::IndexKind;
use dcert_sgx::CostModel;
use dcert_workloads::Workload;
use std::sync::Arc;

/// Blocks per measured run: long enough for the pipeline to reach steady
/// state, short enough for criterion's sample count.
const BLOCKS: u64 = 12;
const TXS: usize = 24;
const PREPARERS: usize = 4;

#[derive(Debug, Clone, Copy)]
enum Scheme {
    Plain,
    Augmented,
    Hierarchical,
}

/// Mines the chain once and stages every block's index inputs (digest
/// bookkeeping only — certificates are either patched in by the
/// sequential reference or spliced by the pipeline's issuer stage).
fn fixture(scheme: Scheme) -> (Rig, Vec<Block>, Vec<Vec<IndexInput>>) {
    let indexes = match scheme {
        Scheme::Plain => Vec::new(),
        Scheme::Augmented | Scheme::Hierarchical => {
            vec![(IndexKind::History, "history".to_string())]
        }
    };
    let mut rig = Rig::new(RigConfig {
        cost: CostModel::calibrated(),
        indexes,
    });
    let mut gen = rig.generator(Workload::IoHeavy { batch: 4 }, 7);
    let mut blocks = Vec::with_capacity(BLOCKS as usize);
    let mut staged = Vec::with_capacity(BLOCKS as usize);
    for _ in 0..BLOCKS {
        let block = rig.mine(gen.next_block(TXS));
        let inputs = rig.sp.stage_block(&block).expect("sp stages");
        rig.sp.advance_staged();
        blocks.push(block);
        staged.push(inputs);
    }
    (rig, blocks, staged)
}

/// Fills each staged input's `prev_cert` from the certificates issued so
/// far, exactly as `ServiceProvider::record_certs` would have.
fn patch(inputs: &[IndexInput], last: &HashMap<String, Certificate>) -> Vec<IndexInput> {
    inputs
        .iter()
        .map(|input| {
            let mut input = input.clone();
            input.prev_cert = last.get(&input.index_type).cloned();
            input
        })
        .collect()
}

fn record(last: &mut HashMap<String, Certificate>, inputs: &[IndexInput], certs: Vec<Certificate>) {
    for (input, cert) in inputs.iter().zip(certs) {
        last.insert(input.index_type.clone(), cert);
    }
}

/// The sequential reference: one `certify_*` call per block, in order.
fn certify_sequential(
    mut ci: CertificateIssuer,
    scheme: Scheme,
    blocks: &[Block],
    staged: &[Vec<IndexInput>],
) -> CertificateIssuer {
    let mut last = HashMap::new();
    for (block, inputs) in blocks.iter().zip(staged) {
        match scheme {
            Scheme::Plain => {
                ci.certify_block(block).expect("certifies");
            }
            Scheme::Augmented => {
                let patched = patch(inputs, &last);
                let (certs, _) = ci.certify_augmented(block, &patched).expect("certifies");
                record(&mut last, &patched, certs);
            }
            Scheme::Hierarchical => {
                let patched = patch(inputs, &last);
                let (_, certs, _) = ci.certify_hierarchical(block, &patched).expect("certifies");
                record(&mut last, &patched, certs);
            }
        }
    }
    ci
}

/// The pipelined engine: spawn, flood, drain.
fn certify_pipelined(ci: CertificateIssuer, jobs: Vec<CertJob>) -> CertificateIssuer {
    let pipeline = CertPipeline::spawn(
        ci,
        PipelineConfig {
            preparers: PREPARERS,
            queue_depth: 8,
            ..PipelineConfig::default()
        },
        Arc::new(Gossip::new()),
    );
    for job in jobs {
        pipeline.submit(job).expect("pipeline accepts");
    }
    let (ci, report) = pipeline.shutdown();
    assert!(report.errors.is_empty(), "no job may fail");
    ci
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_vs_sequential");
    group.sample_size(10);
    for (label, scheme) in [
        ("plain", Scheme::Plain),
        ("augmented", Scheme::Augmented),
        ("hierarchical", Scheme::Hierarchical),
    ] {
        let (rig, blocks, staged) = fixture(scheme);
        // Split the rig so a fresh CI can boot per iteration (the chain
        // resets every run) while the staged fixture stays borrowed.
        let mut ias = rig.ias;
        let sp = rig.sp;
        let genesis = rig.genesis;
        let genesis_state = rig.genesis_state;
        let executor = rig.executor;
        let engine = rig.engine;
        let mut boot = move || {
            CertificateIssuer::new(
                &genesis,
                genesis_state.clone(),
                executor.clone(),
                engine.clone(),
                sp.verifiers(),
                &mut ias,
                CostModel::calibrated(),
            )
            .expect("CI boots")
        };

        group.bench_function(BenchmarkId::new("sequential", label), |b| {
            b.iter_batched(
                &mut boot,
                |ci| certify_sequential(ci, scheme, &blocks, &staged),
                BatchSize::PerIteration,
            )
        });

        let jobs: Vec<CertJob> = blocks
            .iter()
            .zip(&staged)
            .map(|(block, inputs)| match scheme {
                Scheme::Plain => CertJob::Block(block.clone()),
                Scheme::Augmented => CertJob::Augmented {
                    block: block.clone(),
                    indexes: inputs.clone(),
                },
                Scheme::Hierarchical => CertJob::Hierarchical {
                    block: block.clone(),
                    indexes: inputs.clone(),
                },
            })
            .collect();
        group.bench_function(BenchmarkId::new("pipelined4", label), |b| {
            b.iter_batched(
                || (boot(), jobs.clone()),
                |(ci, jobs)| certify_pipelined(ci, jobs),
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
