//! Criterion companion to Fig. 10: per-block certification cost of the
//! augmented vs. hierarchical schemes at 1 and 4 authenticated indexes.
//!
//! The full per-block flows (all ECalls) are measured by running each
//! scheme over a fresh chain segment per iteration batch; the figures
//! binary reports the same quantity averaged over longer runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcert_bench::{Rig, RigConfig, Scheme};
use dcert_query::sp::IndexKind;
use dcert_sgx::CostModel;
use dcert_workloads::Workload;

fn indexes(count: usize) -> Vec<(IndexKind, String)> {
    (0..count)
        .map(|i| {
            if i % 2 == 0 {
                (IndexKind::History, format!("history-{i}"))
            } else {
                (IndexKind::Inverted, format!("inverted-{i}"))
            }
        })
        .collect()
}

fn bench_index_certs(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_index_certs");
    // Each measured "iteration" is a whole block certification, so keep
    // the statistical load modest.
    group.sample_size(10);

    for &count in &[1usize, 4] {
        for (scheme, label) in [
            (Scheme::Augmented, "augmented"),
            (Scheme::Hierarchical, "hierarchical"),
        ] {
            group.bench_with_input(BenchmarkId::new(label, count), &count, |b, &count| {
                b.iter_custom(|iters| {
                    let mut total = std::time::Duration::ZERO;
                    // Amortize rig construction across the requested
                    // iterations: one rig, `iters` consecutive blocks.
                    let mut rig = Rig::new(RigConfig {
                        cost: CostModel::calibrated(),
                        indexes: indexes(count),
                    });
                    let result =
                        rig.run(Workload::KvStore { keyspace: 500 }, iters, 32, 42, scheme);
                    for breakdown in &result.breakdowns {
                        total += breakdown.total();
                    }
                    total
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_index_certs);
criterion_main!(benches);
