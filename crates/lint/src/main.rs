//! `dcert-lint` — repo-specific static analysis for the DCert workspace.
//!
//! The compiler cannot check DCert's two load-bearing security
//! invariants: the enclave secret key never crosses the `dcert-sgx` trust
//! boundary, and client-side verifiers must *reject* malformed untrusted
//! input rather than panic. This tool enforces them (plus determinism and
//! error-hygiene rules) by lexing every Rust source file in the workspace
//! — no nightly compiler plumbing, no dependencies — and fails CI on
//! violation:
//!
//! * **R1 `r1-enclave-secrecy`** — secret-key/sealing identifiers and the
//!   `TrustedApp`/`Sealable` traits are confined to the trusted modules;
//!   `Enclave` fields stay private; raw `ed25519_dalek` stays inside
//!   `primitives::keys`.
//! * **R2 `r2-panic-freedom`** — no `unwrap`/`expect`/`panic!`-family
//!   macros, slice indexing, or truncating `as` casts in designated
//!   untrusted-input modules (superlight/quorum clients, codec, Merkle
//!   proof verification, query verifiers, sealing/attestation decode).
//! * **R3 `r3-determinism`** — no ambient time or randomness
//!   (`Instant`, `SystemTime`, `thread_rng`, `OsRng`, `from_entropy`)
//!   outside `core::netsim`, `core::pipeline`, and `sgx::cost`, so seeded
//!   chaos runs stay bit-for-bit replayable.
//! * **R4 `r4-error-hygiene`** — fallible APIs return crate `Error`
//!   types, never `Result<_, String>` or `Result<_, Box<dyn ...>>`.
//!
//! Escape hatch (counted and reported, never silent):
//!
//! ```text
//! // dcert-lint: allow(r2-panic-freedom, reason = "length checked above")
//! ```
//!
//! Usage: `cargo run -p dcert-lint -- [--deny-all] [--root DIR] [--rule NAME]...`

#![forbid(unsafe_code)]

mod engine;
mod lexer;

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use engine::{analyze_source, AllowDirective, Finding, RULES};

/// Directories never scanned: build output, VCS, the linter's own
/// intentionally-violating fixtures, and vendored sources if any appear.
const SKIP_DIRS: [&str; 5] = ["target", ".git", "fixtures", "vendor", ".github"];

struct Options {
    root: PathBuf,
    deny_all: bool,
    rules: Vec<String>,
}

fn usage() -> &'static str {
    "dcert-lint: DCert workspace static analysis\n\
     \n\
     USAGE: dcert-lint [--deny-all] [--root DIR] [--rule NAME]...\n\
     \n\
     --deny-all     exit nonzero if any violation is found (CI mode)\n\
     --root DIR     workspace root to scan (default: current directory)\n\
     --rule NAME    only run the named rule (repeatable); names:\n\
                    r1-enclave-secrecy r2-panic-freedom r3-determinism\n\
                    r4-error-hygiene\n\
     -h, --help     show this help"
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        deny_all: false,
        rules: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => opts.deny_all = true,
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root requires a directory")?);
            }
            "--rule" => {
                let name = args.next().ok_or("--rule requires a rule name")?;
                let name = match name.as_str() {
                    "r1" => "r1-enclave-secrecy".to_string(),
                    "r2" => "r2-panic-freedom".to_string(),
                    "r3" => "r3-determinism".to_string(),
                    "r4" => "r4-error-hygiene".to_string(),
                    _ => name,
                };
                if !RULES.contains(&name.as_str()) {
                    return Err(format!("unknown rule `{name}`"));
                }
                opts.rules.push(name);
            }
            "-h" | "--help" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// Recursively collects workspace `.rs` files, skipping [`SKIP_DIRS`].
fn collect_sources(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            // The linter's own sources discuss directive syntax in prose;
            // scanning them would misread the docs as real directives.
            if name == "lint" && path.parent().is_some_and(|p| p.ends_with("crates")) {
                continue;
            }
            collect_sources(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };

    let mut files = Vec::new();
    if let Err(e) = collect_sources(&opts.root, &mut files) {
        eprintln!("error: walking {}: {e}", opts.root.display());
        return ExitCode::from(2);
    }

    let mut findings: Vec<(String, Finding)> = Vec::new();
    let mut allows: Vec<(String, AllowDirective)> = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(&opts.root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = match fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: reading {rel}: {e}");
                return ExitCode::from(2);
            }
        };
        scanned += 1;
        let report = analyze_source(&rel, &source);
        for f in report.findings {
            if opts.rules.is_empty() || opts.rules.iter().any(|r| r == f.rule) {
                findings.push((rel.clone(), f));
            }
        }
        for a in report.allows {
            allows.push((rel.clone(), a));
        }
    }

    findings.sort_by(|a, b| (&a.0, a.1.line, a.1.col).cmp(&(&b.0, b.1.line, b.1.col)));
    for (path, f) in &findings {
        println!("{path}:{}:{}: {}: {}", f.line, f.col, f.rule, f.msg);
    }

    if !allows.is_empty() {
        println!("\nallow directives ({}):", allows.len());
        for (path, a) in &allows {
            let status = if a.used { "used" } else { "UNUSED" };
            println!(
                "  {path}:{}: allow({}) [{status}] reason: {}",
                a.line, a.rule, a.reason
            );
        }
    }

    println!(
        "\ndcert-lint: {} file(s) scanned, {} violation(s), {} allow directive(s)",
        scanned,
        findings.len(),
        allows.len()
    );

    if opts.deny_all && !findings.is_empty() {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::engine::{analyze_source, MALFORMED_DIRECTIVE};
    use super::lexer::{lex, TokKind};

    // -- lexer ----------------------------------------------------------

    #[test]
    fn lexer_separates_idents_strings_and_comments() {
        let (toks, comments) = lex("let x = \"unwrap()\"; // .unwrap() here\nfoo.unwrap();");
        let idents: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "x", "foo", "unwrap"]);
        assert_eq!(comments.len(), 1);
        assert!(comments[0].text.contains(".unwrap()"));
        let unwrap_tok = toks.iter().find(|t| t.text == "unwrap").unwrap();
        assert_eq!((unwrap_tok.line, unwrap_tok.col), (2, 5));
    }

    #[test]
    fn lexer_handles_lifetimes_chars_and_raw_strings() {
        let (toks, _) =
            lex("fn f<'a>(x: &'a str) -> char { let c = 'x'; let s = r#\"panic!\"#; c }");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
        // `panic` inside the raw string is not an ident.
        assert!(!toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "panic"));
    }

    #[test]
    fn lexer_handles_nested_block_comments() {
        let (toks, comments) = lex("/* outer /* inner */ still */ ident");
        assert_eq!(comments.len(), 1);
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].text, "ident");
    }

    // -- test-code detection -------------------------------------------

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = "fn prod(v: &[u8]) { v.to_vec().unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t(v: Vec<u8>) { v.unwrap(); }\n}\n";
        let report = analyze_source("crates/core/src/superlight.rs", src);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].line, 1);
    }

    #[test]
    fn cfg_attr_test_is_not_exempt() {
        let src = "#[cfg_attr(test, allow(dead_code))]\nfn prod() { x.unwrap(); }\n";
        let report = analyze_source("crates/core/src/superlight.rs", src);
        assert_eq!(report.findings.len(), 1, "cfg_attr items still ship");
    }

    // -- fixtures: each rule fires with the right span ------------------

    #[test]
    fn r1_fires_on_secrecy_fixture() {
        let src = include_str!("../fixtures/r1_enclave_secrecy.rs");
        let report = analyze_source("crates/chain/src/store.rs", src);
        let r1: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.rule == "r1-enclave-secrecy")
            .collect();
        let lines: Vec<u32> = r1.iter().map(|f| f.line).collect();
        // TrustedApp import, Sealable import, to_secret_bytes call,
        // import_state call, ed25519_dalek use.
        assert_eq!(lines, vec![6, 6, 12, 15, 19]);
    }

    #[test]
    fn r1_allows_trusted_modules() {
        let src = include_str!("../fixtures/r1_enclave_secrecy.rs");
        let report = analyze_source("crates/sgx/src/sealing2.rs", src);
        // Only the ed25519_dalek confinement check applies inside sgx —
        // and it is scoped off for the sgx crate too.
        assert!(report
            .findings
            .iter()
            .all(|f| f.rule != "r1-enclave-secrecy"));
    }

    #[test]
    fn r1_fires_on_public_enclave_field() {
        let src = "pub struct Enclave<A> {\n    pub platform: u8,\n    cost: u8,\n}\n";
        let report = analyze_source("crates/sgx/src/enclave.rs", src);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].line, 2);
    }

    #[test]
    fn r2_fires_on_panic_fixture() {
        let src = include_str!("../fixtures/r2_panic_freedom.rs");
        let report = analyze_source("crates/core/src/superlight.rs", src);
        let lines: Vec<(u32, &str)> = report
            .findings
            .iter()
            .filter(|f| f.rule == "r2-panic-freedom")
            .map(|f| (f.line, f.msg.split_whitespace().next().unwrap()))
            .collect();
        // One per banned construct, in order: the regression `.unwrap()`
        // on ias.attest, `.expect`, `panic!`, `unreachable!`, indexing,
        // slicing, truncating cast.
        let expected_lines: Vec<u32> = vec![9, 14, 19, 21, 27, 29, 34];
        assert_eq!(
            lines.iter().map(|(l, _)| *l).collect::<Vec<_>>(),
            expected_lines
        );
        // And the cfg(test) module at the bottom contributed nothing.
        assert!(lines.iter().all(|(l, _)| *l < 40));
    }

    #[test]
    fn r2_ignores_files_outside_verifier_scope() {
        let src = include_str!("../fixtures/r2_panic_freedom.rs");
        let report = analyze_source("crates/workloads/src/generator.rs", src);
        assert!(report.findings.iter().all(|f| f.rule != "r2-panic-freedom"));
    }

    #[test]
    fn r3_fires_on_determinism_fixture() {
        let src = include_str!("../fixtures/r3_determinism.rs");
        let report = analyze_source("crates/chain/src/node.rs", src);
        let lines: Vec<u32> = report
            .findings
            .iter()
            .filter(|f| f.rule == "r3-determinism")
            .map(|f| f.line)
            .collect();
        // Instant import, Instant::now, SystemTime, thread_rng, OsRng,
        // from_entropy — but NOT the allow-escaped OsRng at the bottom.
        assert_eq!(lines, vec![4, 8, 12, 14, 16, 18]);
    }

    #[test]
    fn r3_allowlists_sim_clock_modules() {
        let src = include_str!("../fixtures/r3_determinism.rs");
        for path in [
            "crates/core/src/netsim.rs",
            "crates/core/src/pipeline.rs",
            "crates/sgx/src/cost.rs",
        ] {
            let report = analyze_source(path, src);
            assert!(
                report.findings.iter().all(|f| f.rule != "r3-determinism"),
                "{path} should be allowlisted"
            );
        }
    }

    #[test]
    fn r4_fires_on_error_hygiene_fixture() {
        let src = include_str!("../fixtures/r4_error_hygiene.rs");
        let report = analyze_source("crates/chain/src/state.rs", src);
        let lines: Vec<u32> = report
            .findings
            .iter()
            .filter(|f| f.rule == "r4-error-hygiene")
            .map(|f| f.line)
            .collect();
        // String error, Box<dyn Error>, trait-method String error. The
        // typed-error fn and the Result<String, Error> (String payload,
        // typed error) must not fire.
        assert_eq!(lines, vec![4, 9, 16]);
    }

    // -- allow escape hatch --------------------------------------------

    #[test]
    fn allow_directive_suppresses_counts_and_requires_reason() {
        let src = include_str!("../fixtures/allow_escape.rs");
        let report = analyze_source("crates/core/src/superlight.rs", src);
        // The documented escape suppressed its violation…
        assert!(report
            .findings
            .iter()
            .all(|f| !(f.rule == "r2-panic-freedom" && f.line == 7)));
        // …the reasonless escape did not…
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == "r2-panic-freedom" && f.line == 11));
        // …and was itself reported as malformed.
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == MALFORMED_DIRECTIVE && f.line == 10));
        // Both directives are counted; the first was used.
        assert_eq!(report.allows.len(), 2);
        assert!(report.allows[0].used);
        assert!(!report.allows[1].used);
        assert_eq!(report.allows[0].reason, "length checked on entry");
    }
}
