//! `dcert-lint` — repo-specific static analysis for the DCert workspace.
//!
//! The compiler cannot check DCert's load-bearing security invariants:
//! the enclave secret key never crosses the `dcert-sgx` trust boundary,
//! and client-side verifiers must *reject* malformed untrusted input
//! rather than panic. This tool enforces them — no nightly compiler
//! plumbing, no dependencies — and fails CI on violation. Analysis runs
//! in two phases:
//!
//! **Per-file (lexical)** — R1–R4 from PR 3:
//!
//! * **R1 `r1-enclave-secrecy`** — secret-key/sealing identifiers and the
//!   `TrustedApp`/`Sealable` traits are confined to the trusted modules;
//!   `Enclave` fields stay private; raw `ed25519_dalek` stays inside
//!   `primitives::keys`.
//! * **R2 `r2-panic-freedom`** — no `unwrap`/`expect`/`panic!`-family
//!   macros, slice indexing, or truncating `as` casts in designated
//!   untrusted-input modules.
//! * **R3 `r3-determinism`** — no ambient time or randomness outside
//!   `core::netsim`, `core::pipeline`, and `sgx::cost`.
//! * **R4 `r4-error-hygiene`** — fallible APIs return crate `Error`
//!   types, never `Result<_, String>` or `Result<_, Box<dyn ...>>`.
//!
//! **Workspace (call graph + dataflow)** — R5–R8: an item-level parser
//! builds a workspace-wide call graph with resolved cross-crate edges
//! plus per-function dataflow facts, and on top of it:
//!
//! * **R5 `r5-panic-reachability`** — no panic construct reachable
//!   (transitively, across crates) from verifier/enclave entry points;
//!   findings carry the full call-path witness.
//! * **R6 `r6-secret-taint`** — secret *values* must not flow into
//!   formatting, wire encoders, or non-allow-listed functions outside
//!   the trusted modules; taint propagates through calls with a
//!   multi-hop witness.
//! * **R7 `r7-alloc-bound`** — allocations sized from wire-decoded
//!   lengths must be dominated by a bound check.
//! * **R8 `r8-durability-order`** — in `dcert-store`, no segment
//!   unlink/truncate reachable from steady-state entry points before
//!   the head-commit `sync()`.
//!
//! Escape hatch (counted and reported, never silent), shared by all
//! eight rules:
//!
//! ```text
//! // dcert-lint: allow(r2-panic-freedom, reason = "length checked above")
//! ```
//!
//! Usage: `cargo run -p dcert-lint -- [--deny-all] [--root DIR]
//! [--rule NAME]... [--format text|github]`

#![forbid(unsafe_code)]

mod engine;
mod flow;
mod graph;
mod lexer;
mod parse;
mod rules;

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use engine::{AllowDirective, Finding, RULES};

/// Directories never scanned: build output, VCS, the linter's own
/// intentionally-violating fixtures, and vendored sources if any appear.
const SKIP_DIRS: [&str; 5] = ["target", ".git", "fixtures", "vendor", ".github"];

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Github,
}

struct Options {
    root: PathBuf,
    deny_all: bool,
    rules: Vec<String>,
    format: Format,
}

fn usage() -> &'static str {
    "dcert-lint: DCert workspace static analysis\n\
     \n\
     USAGE: dcert-lint [--deny-all] [--root DIR] [--rule NAME]... [--format MODE]\n\
     \n\
     --deny-all     exit nonzero if any violation is found (CI mode)\n\
     --root DIR     workspace root to scan (default: current directory)\n\
     --rule NAME    only run the named rule (repeatable); names:\n\
                    r1-enclave-secrecy r2-panic-freedom r3-determinism\n\
                    r4-error-hygiene r5-panic-reachability r6-secret-taint\n\
                    r7-alloc-bound r8-durability-order\n\
     --format MODE  `text` (default) or `github` (workflow-command\n\
                    annotations: `::error file=...,line=...::msg`)\n\
     -h, --help     show this help"
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        deny_all: false,
        rules: Vec::new(),
        format: Format::Text,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => opts.deny_all = true,
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root requires a directory")?);
            }
            "--rule" => {
                let name = args.next().ok_or("--rule requires a rule name")?;
                let name = match name.as_str() {
                    "r1" => "r1-enclave-secrecy".to_string(),
                    "r2" => "r2-panic-freedom".to_string(),
                    "r3" => "r3-determinism".to_string(),
                    "r4" => "r4-error-hygiene".to_string(),
                    "r5" => "r5-panic-reachability".to_string(),
                    "r6" => "r6-secret-taint".to_string(),
                    "r7" => "r7-alloc-bound".to_string(),
                    "r8" => "r8-durability-order".to_string(),
                    _ => name,
                };
                if !RULES.contains(&name.as_str()) {
                    return Err(format!("unknown rule `{name}`"));
                }
                opts.rules.push(name);
            }
            "--format" => {
                let mode = args.next().ok_or("--format requires a mode")?;
                opts.format = match mode.as_str() {
                    "text" => Format::Text,
                    "github" => Format::Github,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "-h" | "--help" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// Recursively collects workspace `.rs` files, skipping [`SKIP_DIRS`].
fn collect_sources(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            // The linter's own sources discuss directive syntax in prose;
            // scanning them would misread the docs as real directives.
            if name == "lint" && path.parent().is_some_and(|p| p.ends_with("crates")) {
                continue;
            }
            collect_sources(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Escapes a workflow-command message (`::error ...::<msg>`).
fn gh_escape_msg(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Escapes a workflow-command property value (`file=...`).
fn gh_escape_prop(s: &str) -> String {
    gh_escape_msg(s).replace(':', "%3A").replace(',', "%2C")
}

/// Per-path analysis output: surviving findings and every directive,
/// each tagged with its file.
type WorkspaceReport = (Vec<(String, Finding)>, Vec<(String, AllowDirective)>);

/// Both analysis phases plus directive application over loaded sources:
/// per-file rules (R1–R4), the workspace call graph with rules R5–R8,
/// then each file's allow directives across the merged findings. Shared
/// by `main` and the workspace-clean regression test.
fn analyze_workspace(sources: &[(String, String)]) -> (graph::Graph, WorkspaceReport) {
    // Phase 1: per-file rules + allow directives.
    let mut by_path: BTreeMap<String, (Vec<Finding>, Vec<AllowDirective>)> = BTreeMap::new();
    for (rel, source) in sources {
        let (toks, comments) = lexer::lex(source);
        let in_test = engine::mark_test_tokens(&toks);
        let findings = engine::file_rule_findings(rel, &toks, &in_test);
        let allows = engine::parse_allow_directives(&comments);
        by_path.insert(rel.clone(), (findings, allows));
    }

    // Phase 2: workspace call-graph rules.
    let ws = graph::Graph::build(sources);
    for (fi, f) in rules::run_all(&ws) {
        let path = ws.files[fi].path.clone();
        by_path.entry(path).or_default().0.push(f);
    }

    // Apply each file's allow directives across both phases.
    let mut findings: Vec<(String, Finding)> = Vec::new();
    let mut allows: Vec<(String, AllowDirective)> = Vec::new();
    for (path, (mut fs, mut als)) in by_path {
        engine::apply_allows(&mut fs, &mut als);
        for f in fs {
            findings.push((path.clone(), f));
        }
        for a in als {
            allows.push((path.clone(), a));
        }
    }
    (ws, (findings, allows))
}

/// Loads every workspace source under `root` as `(relative path, text)`.
fn load_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    collect_sources(root, &mut files)?;
    let mut sources = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, fs::read_to_string(path)?));
    }
    Ok(sources)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };

    let sources = match load_sources(&opts.root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: walking {}: {e}", opts.root.display());
            return ExitCode::from(2);
        }
    };
    let scanned = sources.len();

    let (ws, (all_findings, allows)) = analyze_workspace(&sources);
    for d in &ws.dangling {
        eprintln!(
            "warning: dangling call edge {}:{} -> `{}` (intra-workspace path did not resolve)",
            ws.files[d.file].path, d.line, d.path
        );
    }
    let mut findings: Vec<(String, Finding)> = all_findings
        .into_iter()
        .filter(|(_, f)| opts.rules.is_empty() || opts.rules.iter().any(|r| r == f.rule))
        .collect();

    findings.sort_by(|a, b| (&a.0, a.1.line, a.1.col).cmp(&(&b.0, b.1.line, b.1.col)));
    for (path, f) in &findings {
        match opts.format {
            Format::Text => println!("{path}:{}:{}: {}: {}", f.line, f.col, f.rule, f.msg),
            Format::Github => println!(
                "::error file={},line={},col={},title=dcert-lint {}::{}",
                gh_escape_prop(path),
                f.line,
                f.col,
                gh_escape_prop(f.rule),
                gh_escape_msg(&f.msg)
            ),
        }
    }

    if !allows.is_empty() {
        println!("\nallow directives ({}):", allows.len());
        for (path, a) in &allows {
            let status = if a.used { "used" } else { "UNUSED" };
            println!(
                "  {path}:{}: allow({}) [{status}] reason: {}",
                a.line, a.rule, a.reason
            );
        }
    }

    let edge_count: usize = ws.edges.iter().map(Vec::len).sum();
    println!(
        "\ndcert-lint: {} file(s) scanned, {} fn(s), {} call edge(s), {} dangling, \
         {} violation(s), {} allow directive(s)",
        scanned,
        ws.fns.len(),
        edge_count,
        ws.dangling.len(),
        findings.len(),
        allows.len()
    );

    if opts.deny_all && !findings.is_empty() {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::engine::{analyze_source, MALFORMED_DIRECTIVE};
    use super::graph::Graph;
    use super::lexer::{lex, TokKind};
    use super::rules::run_all;

    // -- lexer ----------------------------------------------------------

    #[test]
    fn lexer_separates_idents_strings_and_comments() {
        let (toks, comments) = lex("let x = \"unwrap()\"; // .unwrap() here\nfoo.unwrap();");
        let idents: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "x", "foo", "unwrap"]);
        assert_eq!(comments.len(), 1);
        assert!(comments[0].text.contains(".unwrap()"));
        let unwrap_tok = toks.iter().find(|t| t.text == "unwrap").unwrap();
        assert_eq!((unwrap_tok.line, unwrap_tok.col), (2, 5));
    }

    #[test]
    fn lexer_handles_lifetimes_chars_and_raw_strings() {
        let (toks, _) =
            lex("fn f<'a>(x: &'a str) -> char { let c = 'x'; let s = r#\"panic!\"#; c }");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
        // `panic` inside the raw string is not an ident.
        assert!(!toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "panic"));
    }

    #[test]
    fn lexer_handles_nested_block_comments() {
        let (toks, comments) = lex("/* outer /* inner */ still */ ident");
        assert_eq!(comments.len(), 1);
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].text, "ident");
    }

    // -- test-code detection -------------------------------------------

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = "fn prod(v: &[u8]) { v.to_vec().unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t(v: Vec<u8>) { v.unwrap(); }\n}\n";
        let report = analyze_source("crates/core/src/superlight.rs", src);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].line, 1);
    }

    #[test]
    fn cfg_attr_test_is_not_exempt() {
        let src = "#[cfg_attr(test, allow(dead_code))]\nfn prod() { x.unwrap(); }\n";
        let report = analyze_source("crates/core/src/superlight.rs", src);
        assert_eq!(report.findings.len(), 1, "cfg_attr items still ship");
    }

    // -- fixtures: each per-file rule fires with the right span ---------

    #[test]
    fn r1_fires_on_secrecy_fixture() {
        let src = include_str!("../fixtures/r1_enclave_secrecy.rs");
        let report = analyze_source("crates/chain/src/store.rs", src);
        let r1: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.rule == "r1-enclave-secrecy")
            .collect();
        let lines: Vec<u32> = r1.iter().map(|f| f.line).collect();
        // TrustedApp import, Sealable import, to_secret_bytes call,
        // import_state call, ed25519_dalek use.
        assert_eq!(lines, vec![6, 6, 12, 15, 19]);
    }

    #[test]
    fn r1_allows_trusted_modules() {
        let src = include_str!("../fixtures/r1_enclave_secrecy.rs");
        let report = analyze_source("crates/sgx/src/sealing2.rs", src);
        // Only the ed25519_dalek confinement check applies inside sgx —
        // and it is scoped off for the sgx crate too.
        assert!(report
            .findings
            .iter()
            .all(|f| f.rule != "r1-enclave-secrecy"));
    }

    #[test]
    fn r1_fires_on_public_enclave_field() {
        let src = "pub struct Enclave<A> {\n    pub platform: u8,\n    cost: u8,\n}\n";
        let report = analyze_source("crates/sgx/src/enclave.rs", src);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].line, 2);
    }

    #[test]
    fn r2_fires_on_panic_fixture() {
        let src = include_str!("../fixtures/r2_panic_freedom.rs");
        let report = analyze_source("crates/core/src/superlight.rs", src);
        let lines: Vec<(u32, &str)> = report
            .findings
            .iter()
            .filter(|f| f.rule == "r2-panic-freedom")
            .map(|f| (f.line, f.msg.split_whitespace().next().unwrap()))
            .collect();
        // One per banned construct, in order: the regression `.unwrap()`
        // on ias.attest, `.expect`, `panic!`, `unreachable!`, indexing,
        // slicing, truncating cast.
        let expected_lines: Vec<u32> = vec![9, 14, 19, 21, 27, 29, 34];
        assert_eq!(
            lines.iter().map(|(l, _)| *l).collect::<Vec<_>>(),
            expected_lines
        );
        // And the cfg(test) module at the bottom contributed nothing.
        assert!(lines.iter().all(|(l, _)| *l < 40));
    }

    #[test]
    fn r2_ignores_files_outside_verifier_scope() {
        let src = include_str!("../fixtures/r2_panic_freedom.rs");
        let report = analyze_source("crates/workloads/src/generator.rs", src);
        assert!(report.findings.iter().all(|f| f.rule != "r2-panic-freedom"));
    }

    #[test]
    fn r3_fires_on_determinism_fixture() {
        let src = include_str!("../fixtures/r3_determinism.rs");
        let report = analyze_source("crates/chain/src/node.rs", src);
        let lines: Vec<u32> = report
            .findings
            .iter()
            .filter(|f| f.rule == "r3-determinism")
            .map(|f| f.line)
            .collect();
        // Instant import, Instant::now, SystemTime, thread_rng, OsRng,
        // from_entropy — but NOT the allow-escaped OsRng at the bottom.
        assert_eq!(lines, vec![4, 8, 12, 14, 16, 18]);
    }

    #[test]
    fn r3_allowlists_sim_clock_modules() {
        let src = include_str!("../fixtures/r3_determinism.rs");
        for path in [
            "crates/core/src/netsim.rs",
            "crates/core/src/pipeline.rs",
            "crates/sgx/src/cost.rs",
        ] {
            let report = analyze_source(path, src);
            assert!(
                report.findings.iter().all(|f| f.rule != "r3-determinism"),
                "{path} should be allowlisted"
            );
        }
    }

    #[test]
    fn r4_fires_on_error_hygiene_fixture() {
        let src = include_str!("../fixtures/r4_error_hygiene.rs");
        let report = analyze_source("crates/chain/src/state.rs", src);
        let lines: Vec<u32> = report
            .findings
            .iter()
            .filter(|f| f.rule == "r4-error-hygiene")
            .map(|f| f.line)
            .collect();
        // String error, Box<dyn Error>, trait-method String error. The
        // typed-error fn and the Result<String, Error> (String payload,
        // typed error) must not fire.
        assert_eq!(lines, vec![4, 9, 16]);
    }

    // -- allow escape hatch --------------------------------------------

    #[test]
    fn allow_directive_suppresses_counts_and_requires_reason() {
        let src = include_str!("../fixtures/allow_escape.rs");
        let report = analyze_source("crates/core/src/superlight.rs", src);
        // The documented escape suppressed its violation…
        assert!(report
            .findings
            .iter()
            .all(|f| !(f.rule == "r2-panic-freedom" && f.line == 7)));
        // …the reasonless escape did not…
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == "r2-panic-freedom" && f.line == 11));
        // …and was itself reported as malformed.
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == MALFORMED_DIRECTIVE && f.line == 10));
        // Both directives are counted; the first was used.
        assert_eq!(report.allows.len(), 2);
        assert!(report.allows[0].used);
        assert!(!report.allows[1].used);
        assert_eq!(report.allows[0].reason, "length checked on entry");
    }

    #[test]
    fn multi_rule_allow_directive_covers_each_listed_rule() {
        // Two rules, one directive, one shared reason: both the r2 hits
        // on the next line are suppressed; an unrelated rule is not.
        let src = "fn get(v: &[u8], i: usize) -> u8 {\n\
                   \x20   // dcert-lint: allow(r2-panic-freedom, r3-determinism, reason = \"SP-side data\")\n\
                   \x20   v[i]\n\
                   }\n";
        let report = analyze_source("crates/core/src/superlight.rs", src);
        assert!(
            report.findings.is_empty(),
            "multi-rule directive must suppress: {:?}",
            report.findings
        );
        assert_eq!(report.allows.len(), 2);
        assert_eq!(report.allows[0].rule, "r2-panic-freedom");
        assert_eq!(report.allows[1].rule, "r3-determinism");
        assert_eq!(report.allows[0].reason, "SP-side data");
        assert_eq!(report.allows[1].reason, "SP-side data");
        assert!(report.allows[0].used);
        assert!(!report.allows[1].used, "no r3 finding to suppress");
    }

    // -- workspace rules: fixture workspaces ---------------------------

    fn ws(files: &[(&str, &str)]) -> Graph {
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        Graph::build(&sources)
    }

    fn rule_findings(g: &Graph, rule: &str) -> Vec<(String, u32, String)> {
        run_all(g)
            .into_iter()
            .filter(|(_, f)| f.rule == rule)
            .map(|(fi, f)| (g.files[fi].path.clone(), f.line, f.msg))
            .collect()
    }

    #[test]
    fn r5_fires_with_multi_hop_witness_and_clean_half_is_silent() {
        let entry = include_str!("../fixtures/r5_entry.rs");
        let bad = include_str!("../fixtures/r5_helper_violating.rs");
        let clean = include_str!("../fixtures/r5_helper_clean.rs");

        let g = ws(&[
            ("crates/core/src/superlight.rs", entry),
            ("crates/chain/src/helpers.rs", bad),
        ]);
        let hits = rule_findings(&g, "r5-panic-reachability");
        assert!(
            hits.iter()
                .any(|(p, _, _)| p == "crates/chain/src/helpers.rs"),
            "panic in the cross-crate helper must be reachable: {hits:?}"
        );
        // Multi-hop witness: entry method → local helper → cross-crate
        // helper → panicking leaf.
        assert!(
            hits.iter().any(|(_, _, m)| m
                .contains("Client::verify_header → check_shape → find_header → decode_at")),
            "witness should carry the full call path: {hits:?}"
        );

        let g = ws(&[
            ("crates/core/src/superlight.rs", entry),
            ("crates/chain/src/helpers.rs", clean),
        ]);
        assert!(
            rule_findings(&g, "r5-panic-reachability").is_empty(),
            "clean helper must not fire"
        );
    }

    #[test]
    fn r6_fires_with_interprocedural_witness_and_clean_half_is_silent() {
        let bad = include_str!("../fixtures/r6_taint_violating.rs");
        let clean = include_str!("../fixtures/r6_taint_clean.rs");
        let obs = include_str!("../fixtures/r6_obs_audit.rs");
        let hash = include_str!("../fixtures/r6_primitives_hash.rs");

        let g = ws(&[
            ("crates/sgx/src/keyops.rs", bad),
            ("crates/obs/src/audit.rs", obs),
        ]);
        let hits = rule_findings(&g, "r6-secret-taint");
        assert!(
            hits.iter()
                .any(|(_, _, m)| m.contains("format") && m.contains("derive_and_leak → expand")),
            "format sink must carry the multi-hop taint witness: {hits:?}"
        );
        assert!(
            hits.iter().any(|(_, _, m)| m.contains("publish_debug")),
            "cross-boundary call must fire: {hits:?}"
        );

        let g = ws(&[
            ("crates/sgx/src/keyops.rs", clean),
            ("crates/primitives/src/hash.rs", hash),
        ]);
        assert!(
            rule_findings(&g, "r6-secret-taint").is_empty(),
            "allow-listed crypto API (hash_concat) must not fire"
        );
    }

    #[test]
    fn r7_fires_on_unbounded_allocs_and_clean_half_is_silent() {
        let bad = include_str!("../fixtures/r7_alloc_violating.rs");
        let clean = include_str!("../fixtures/r7_alloc_clean.rs");

        let g = ws(&[("crates/serve/src/codec_frame.rs", bad)]);
        let hits = rule_findings(&g, "r7-alloc-bound");
        assert_eq!(hits.len(), 2, "with_capacity and vec![] sinks: {hits:?}");

        let g = ws(&[("crates/serve/src/codec_frame.rs", clean)]);
        assert!(
            rule_findings(&g, "r7-alloc-bound").is_empty(),
            "clamped/checked allocations must not fire"
        );
    }

    #[test]
    fn r8_fires_on_unlink_before_sync_and_exempts_recovery() {
        let bad = include_str!("../fixtures/r8_durability_violating.rs");
        let clean = include_str!("../fixtures/r8_durability_clean.rs");

        let g = ws(&[("crates/store/src/pruner.rs", bad)]);
        let hits = rule_findings(&g, "r8-durability-order");
        assert_eq!(hits.len(), 1, "unlink-before-sync must fire: {hits:?}");
        assert!(hits[0].2.contains("remove_file"));

        let g = ws(&[("crates/store/src/pruner.rs", clean)]);
        assert!(
            rule_findings(&g, "r8-durability-order").is_empty(),
            "sync-before-unlink and recovery-closure unlinks must not fire"
        );
    }

    // -- call-graph integrity over the real workspace ------------------

    /// Workspace root for the real-tree tests. DCERT_REPO_ROOT lets the
    /// suite run from an out-of-tree copy of the crate (the workspace's
    /// external deps may be unavailable).
    fn repo_root() -> std::path::PathBuf {
        match std::env::var_os("DCERT_REPO_ROOT") {
            Some(r) => std::path::PathBuf::from(r),
            None => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .ancestors()
                .nth(2)
                .expect("workspace root")
                .to_path_buf(),
        }
    }

    /// Every intra-workspace call edge must resolve; a dangling edge
    /// would let R5 pass vacuously on the function it failed to enter.
    #[test]
    fn workspace_call_graph_has_no_dangling_edges() {
        let sources = super::load_sources(&repo_root()).expect("walk workspace");
        let g = Graph::build(&sources);
        let dangles: Vec<String> = g
            .dangling
            .iter()
            .map(|d| format!("{}:{} {}", g.files[d.file].path, d.line, d.path))
            .collect();
        assert!(
            dangles.is_empty(),
            "dangling intra-workspace call edges:\n{}",
            dangles.join("\n")
        );
        // The graph must be substantial, not vacuously empty.
        let edges: usize = g.edges.iter().map(Vec::len).sum();
        assert!(g.fns.len() > 200, "only {} fns parsed", g.fns.len());
        assert!(edges > 300, "only {edges} call edges resolved");
    }

    /// The workspace itself must lint clean under all eight rules with
    /// directives applied — removing any in-tree fix (or its documented
    /// allow) re-triggers the rule here.
    #[test]
    fn workspace_lints_clean_under_all_rules() {
        let sources = super::load_sources(&repo_root()).expect("walk workspace");
        let (_, (findings, allows)) = super::analyze_workspace(&sources);
        let report: Vec<String> = findings
            .iter()
            .map(|(p, f)| format!("{p}:{}:{} {} {}", f.line, f.col, f.rule, f.msg))
            .collect();
        assert!(
            report.is_empty(),
            "workspace has lint findings:\n{}",
            report.join("\n")
        );
        // Every escape hatch present must actually be earning its keep.
        let unused: Vec<String> = allows
            .iter()
            .filter(|(_, a)| !a.used)
            .map(|(p, a)| format!("{p}:{} allow({})", a.line, a.rule))
            .collect();
        assert!(
            unused.is_empty(),
            "unused allow directives:\n{}",
            unused.join("\n")
        );
    }

    // -- github output escaping ----------------------------------------

    #[test]
    fn github_escaping_protects_workflow_commands() {
        assert_eq!(super::gh_escape_msg("a%b\nc"), "a%25b%0Ac");
        assert_eq!(super::gh_escape_prop("p:q,r"), "p%3Aq%2Cr");
    }
}
