//! Rule engine: scopes, test-code detection, allow directives, and the
//! four per-file DCert rules (R1–R4). The workspace-wide rules (R5–R8)
//! live in [`crate::rules`] on top of the call graph in [`crate::graph`].
//!
//! Rules are keyed by stable names so `// dcert-lint: allow(...)`
//! directives and CLI filters can reference them:
//!
//! * `r1-enclave-secrecy`
//! * `r2-panic-freedom`
//! * `r3-determinism`
//! * `r4-error-hygiene`
//! * `r5-panic-reachability`
//! * `r6-secret-taint`
//! * `r7-alloc-bound`
//! * `r8-durability-order`

use crate::lexer::{Comment, Tok, TokKind};

/// Pseudo-rule reported for `allow(...)` directives lacking a reason.
pub const MALFORMED_DIRECTIVE: &str = "malformed-directive";

/// All rule names, in report order.
pub const RULES: [&str; 8] = [
    "r1-enclave-secrecy",
    "r2-panic-freedom",
    "r3-determinism",
    "r4-error-hygiene",
    "r5-panic-reachability",
    "r6-secret-taint",
    "r7-alloc-bound",
    "r8-durability-order",
];

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub line: u32,
    pub col: u32,
    pub msg: String,
}

/// One `dcert-lint: allow(...)` escape hatch found in a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    pub rule: String,
    pub reason: String,
    pub line: u32,
    /// Whether any finding was actually suppressed by this directive.
    pub used: bool,
}

/// Result of analyzing one file. The production driver merges per-file
/// and workspace findings before applying directives, so this one-shot
/// surface only backs the test suites.
#[cfg(test)]
#[derive(Debug, Default)]
pub struct FileReport {
    pub findings: Vec<Finding>,
    pub allows: Vec<AllowDirective>,
}

// ---------------------------------------------------------------------------
// Scoping tables. Paths are workspace-relative with forward slashes.
// ---------------------------------------------------------------------------

/// Modules allowed to name enclave-secret identifiers: the enclave crate
/// itself, the trusted certificate program (the in-enclave half that, by
/// design, lives in `dcert-core`), and the naive baseline's trusted
/// program used for paper comparisons.
pub const R1_TRUSTED_MODULES: [&str; 3] = [
    "crates/sgx/",
    "crates/core/src/program.rs",
    "crates/bench/src/naive.rs",
];

/// Identifiers that must not appear outside the trusted modules: secret
/// material accessors, sealed-state plumbing, and the traits that would
/// let untrusted code drive the trusted program without crossing the
/// ECall-accounted [`Enclave`] boundary.
const R1_BANNED_IDENTS: [&str; 8] = [
    "to_secret_bytes",
    "platform_secret",
    "export_state",
    "import_state",
    "Sealable",
    "TrustedApp",
    "sealing_key",
    "keystream_block",
];

/// The raw signature crate is confined to the `primitives::keys` wrapper.
const ED25519_IDENT: &str = "ed25519_dalek";
const ED25519_HOME: &str = "crates/primitives/src/keys.rs";

/// Untrusted-input modules: every byte they verify or decode may be
/// attacker-supplied, so they must reject, never panic.
pub const R2_VERIFIER_MODULES: [&str; 19] = [
    "crates/core/src/superlight.rs",
    "crates/core/src/range.rs",
    "crates/store/src/",
    "crates/core/src/quorum.rs",
    "crates/core/src/cert.rs",
    "crates/core/src/messages.rs",
    "crates/primitives/src/codec.rs",
    "crates/primitives/src/keys.rs",
    "crates/primitives/src/hash.rs",
    "crates/primitives/src/hex.rs",
    "crates/merkle/src/mht.rs",
    "crates/merkle/src/mpt.rs",
    "crates/merkle/src/mbtree.rs",
    "crates/merkle/src/smt.rs",
    "crates/merkle/src/aggmb.rs",
    "crates/query/src/",
    "crates/serve/src/wire.rs",
    "crates/sgx/src/sealing.rs",
    "crates/sgx/src/attestation.rs",
];

/// Integer targets of `as` casts that can silently truncate or re-sign
/// attacker-controlled lengths/offsets.
const R2_TRUNCATING_CASTS: [&str; 8] = ["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

/// The only modules allowed to read wall-clock time or ambient
/// randomness: the simulated network's virtual clock, the pipeline's
/// latency accounting, and the SGX cost model's calibrated busy-wait.
const R3_ALLOWED_MODULES: [&str; 3] = [
    "crates/core/src/netsim.rs",
    "crates/core/src/pipeline.rs",
    "crates/sgx/src/cost.rs",
];

/// Crates exempt from determinism scanning: the benchmark harness exists
/// to measure wall time, and the linter is a build tool.
const R3_EXEMPT_TREES: [&str; 2] = ["crates/bench/", "crates/lint/"];

const R3_BANNED_IDENTS: [&str; 5] = [
    "Instant",
    "SystemTime",
    "thread_rng",
    "from_entropy",
    "OsRng",
];

// ---------------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------------

/// Returns true for paths whose contents are test/bench/example harness
/// code rather than shipped library code.
pub fn is_harness_path(path: &str) -> bool {
    path.starts_with("tests/")
        || path.contains("/tests/")
        || path.starts_with("benches/")
        || path.contains("/benches/")
        || path.starts_with("examples/")
        || path.contains("/examples/")
}

pub fn in_any(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

/// Analyzes one file with the per-file rules (R1–R4) and applies its
/// allow directives. `path` must be workspace-relative with `/`
/// separators; `source` is its full text. The two-phase driver in
/// `main` uses [`file_rule_findings`] + [`apply_allows`] directly so
/// workspace findings (R5–R8) share the directive contract.
#[cfg(test)]
pub fn analyze_source(path: &str, source: &str) -> FileReport {
    let (toks, comments) = crate::lexer::lex(source);
    let in_test = mark_test_tokens(&toks);
    let mut allows = parse_allow_directives(&comments);
    let mut findings = file_rule_findings(path, &toks, &in_test);
    apply_allows(&mut findings, &mut allows);
    FileReport { findings, allows }
}

/// Runs the per-file rules (R1–R4) without applying allow directives.
pub fn file_rule_findings(path: &str, toks: &[Tok], in_test: &[bool]) -> Vec<Finding> {
    let mut findings = Vec::new();
    if !is_harness_path(path) || path.starts_with("examples/") || path.contains("/examples/") {
        rule_r1(path, toks, in_test, &mut findings);
    }
    if !is_harness_path(path) {
        rule_r2(path, toks, in_test, &mut findings);
        rule_r3(path, toks, in_test, &mut findings);
        rule_r4(path, toks, in_test, &mut findings);
    }
    findings
}

/// Applies allow directives: a directive suppresses findings of its rule
/// on its own line and the line directly below it. A directive without
/// a reason suppresses nothing — it is reported instead, so the escape
/// hatch can never silently erode an invariant. Findings come back sorted
/// by position.
pub fn apply_allows(findings: &mut Vec<Finding>, allows: &mut [AllowDirective]) {
    findings.retain(|f| {
        for a in allows.iter_mut() {
            if !a.reason.is_empty()
                && (a.rule == f.rule || f.rule.get(..2).is_some_and(|prefix| a.rule == prefix))
                && (f.line == a.line || f.line == a.line + 1)
            {
                a.used = true;
                return false;
            }
        }
        true
    });
    for a in allows.iter() {
        if a.reason.is_empty() {
            findings.push(Finding {
                rule: MALFORMED_DIRECTIVE,
                line: a.line,
                col: 1,
                msg: format!(
                    "`dcert-lint: allow({})` is missing a `reason = \"...\"`; \
                     undocumented escapes are not honored",
                    a.rule
                ),
            });
        }
    }
    findings.sort_by_key(|f| (f.line, f.col));
}

// ---------------------------------------------------------------------------
// Test-code detection.
// ---------------------------------------------------------------------------

/// Marks tokens inside `#[cfg(test)]` items and `#[test]` functions, so
/// rules can exempt them. Returns one bool per token.
pub fn mark_test_tokens(toks: &[Tok]) -> Vec<bool> {
    let mut test = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].kind == TokKind::Punct && toks[i].text == "#") {
            i += 1;
            continue;
        }
        // Parse the attribute `#[...]` (or inner `#![...]`).
        let mut j = i + 1;
        if j < toks.len() && toks[j].kind == TokKind::Punct && toks[j].text == "!" {
            j += 1;
        }
        if !(j < toks.len() && toks[j].kind == TokKind::Punct && toks[j].text == "[") {
            i += 1;
            continue;
        }
        let attr_start = j + 1;
        let attr_end = match matching_bracket(toks, j, "[", "]") {
            Some(e) => e,
            None => break,
        };
        if is_test_attr(&toks[attr_start..attr_end]) {
            // Skip any further attributes, then mark the following item.
            let mut k = attr_end + 1;
            while k + 1 < toks.len() && toks[k].kind == TokKind::Punct && toks[k].text == "#" {
                let mut b = k + 1;
                if toks[b].kind == TokKind::Punct && toks[b].text == "!" {
                    b += 1;
                }
                match matching_bracket(toks, b, "[", "]") {
                    Some(e) => k = e + 1,
                    None => break,
                }
            }
            let item_end = item_extent(toks, k);
            for t in test.iter_mut().take(item_end.min(toks.len())).skip(i) {
                *t = true;
            }
            i = item_end;
        } else {
            i = attr_end + 1;
        }
    }
    test
}

/// Does this attribute body gate on test compilation? Matches
/// `cfg(test)` / `cfg(any(test, ...))` / plain `test`, but *not*
/// `cfg_attr(test, ...)` (which still compiles the item for non-test
/// builds).
fn is_test_attr(body: &[Tok]) -> bool {
    match body.first() {
        Some(t) if t.kind == TokKind::Ident => match t.text.as_str() {
            "test" => body.len() == 1,
            "cfg" => body
                .iter()
                .skip(1)
                .any(|t| t.kind == TokKind::Ident && t.text == "test"),
            _ => false,
        },
        _ => false,
    }
}

/// Index just past the end of the item starting at `start`: the matching
/// `}` of its first top-level brace block, or its terminating `;`.
fn item_extent(toks: &[Tok], start: usize) -> usize {
    let mut depth_paren = 0i32;
    let mut depth_brack = 0i32;
    let mut k = start;
    while k < toks.len() {
        if toks[k].kind == TokKind::Punct {
            match toks[k].text.as_str() {
                "(" => depth_paren += 1,
                ")" => depth_paren -= 1,
                "[" => depth_brack += 1,
                "]" => depth_brack -= 1,
                ";" if depth_paren == 0 && depth_brack == 0 => return k + 1,
                "{" if depth_paren == 0 && depth_brack == 0 => {
                    return matching_bracket(toks, k, "{", "}")
                        .map(|e| e + 1)
                        .unwrap_or(toks.len());
                }
                _ => {}
            }
        }
        k += 1;
    }
    toks.len()
}

/// Index of the bracket matching `toks[open]`.
fn matching_bracket(toks: &[Tok], open: usize, open_s: &str, close_s: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == open_s {
                depth += 1;
            } else if t.text == close_s {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Allow directives.
// ---------------------------------------------------------------------------

/// Parses `// dcert-lint: allow(<rules...>, reason = "...")` comments.
/// One or more comma-separated rule names may precede the reason clause
/// (`allow(r2-panic-freedom, r5-panic-reachability, reason = "...")`),
/// yielding one directive per rule sharing the reason and line. A
/// directive without a reason is deliberately *not* honored — the
/// escape hatch exists to document why a rule is violated, and the main
/// driver reports such malformed directives as violations of the rule
/// they tried to silence.
pub fn parse_allow_directives(comments: &[Comment]) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    for c in comments {
        let Some(pos) = c.text.find("dcert-lint:") else {
            continue;
        };
        let rest = c.text[pos + "dcert-lint:".len()..].trim_start();
        let Some(args) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.split(')').next())
        else {
            continue;
        };
        // Rule names come first, so the first `reason` is the keyword.
        let (rules_part, reason) = match args.find("reason") {
            Some(at) => {
                let reason = args[at..]
                    .strip_prefix("reason")
                    .and_then(|r| r.trim_start().strip_prefix('='))
                    .and_then(|r| r.trim().strip_prefix('"'))
                    .map(|r| r.trim_end_matches('"').to_string())
                    .unwrap_or_default();
                (args[..at].trim_end().trim_end_matches(','), reason)
            }
            None => (args, String::new()),
        };
        let mut any = false;
        for rule in rules_part.split(',') {
            let rule = rule.trim();
            if rule.is_empty() {
                continue;
            }
            any = true;
            out.push(AllowDirective {
                rule: rule.to_string(),
                reason: reason.clone(),
                line: c.line,
                used: false,
            });
        }
        if !any {
            // `allow()` / `allow(reason = "...")`: keep one (malformed)
            // entry so the directive is reported rather than ignored.
            out.push(AllowDirective {
                rule: String::new(),
                reason: String::new(),
                line: c.line,
                used: false,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// R1: enclave secrecy.
// ---------------------------------------------------------------------------

fn rule_r1(path: &str, toks: &[Tok], in_test: &[bool], findings: &mut Vec<Finding>) {
    const RULE: &str = "r1-enclave-secrecy";
    if !in_any(path, &R1_TRUSTED_MODULES) {
        for (k, t) in toks.iter().enumerate() {
            if in_test[k] || t.kind != TokKind::Ident {
                continue;
            }
            if R1_BANNED_IDENTS.contains(&t.text.as_str()) {
                findings.push(Finding {
                    rule: RULE,
                    line: t.line,
                    col: t.col,
                    msg: format!(
                        "`{}` names enclave-secret machinery outside the trusted boundary \
                         (crates/sgx + the trusted program modules); go through the \
                         `Enclave` ECall/seal API instead",
                        t.text
                    ),
                });
            }
        }
    }
    if path != ED25519_HOME && !path.starts_with("crates/sgx/") {
        for (k, t) in toks.iter().enumerate() {
            if in_test[k] || t.kind != TokKind::Ident {
                continue;
            }
            if t.text == ED25519_IDENT {
                findings.push(Finding {
                    rule: RULE,
                    line: t.line,
                    col: t.col,
                    msg: "raw `ed25519_dalek` is confined to primitives::keys; use the \
                          `Keypair`/`PublicKey`/`Signature` wrappers"
                        .to_string(),
                });
            }
        }
    }
    // Inside the enclave container itself: the `Enclave` struct must keep
    // every field private, so no code can reach around the ECall
    // accounting or touch the platform secret.
    if path == "crates/sgx/src/enclave.rs" {
        let mut k = 0usize;
        while k + 1 < toks.len() {
            if toks[k].kind == TokKind::Ident
                && toks[k].text == "struct"
                && toks[k + 1].kind == TokKind::Ident
                && toks[k + 1].text == "Enclave"
            {
                // Find the field block `{`, skipping generics.
                let mut b = k + 2;
                while b < toks.len() && !(toks[b].kind == TokKind::Punct && toks[b].text == "{") {
                    b += 1;
                }
                if let Some(end) = matching_bracket(toks, b, "{", "}") {
                    let mut depth = 0i32;
                    for t in &toks[b..end] {
                        if t.kind == TokKind::Punct {
                            match t.text.as_str() {
                                "{" | "(" | "[" => depth += 1,
                                "}" | ")" | "]" => depth -= 1,
                                _ => {}
                            }
                        }
                        if depth == 1 && t.kind == TokKind::Ident && t.text == "pub" {
                            findings.push(Finding {
                                rule: RULE,
                                line: t.line,
                                col: t.col,
                                msg: "`Enclave` fields must stay private: a public field \
                                      bypasses the ECall-accounted trust boundary"
                                    .to_string(),
                            });
                        }
                    }
                }
                k = b;
            }
            k += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// R2: panic freedom on untrusted input.
// ---------------------------------------------------------------------------

/// Identifiers after which a `[` cannot be an index expression.
const NON_INDEX_KEYWORDS: [&str; 17] = [
    "return", "break", "continue", "in", "if", "else", "match", "move", "let", "mut", "ref",
    "const", "static", "where", "for", "dyn", "impl",
];

fn rule_r2(path: &str, toks: &[Tok], in_test: &[bool], findings: &mut Vec<Finding>) {
    const RULE: &str = "r2-panic-freedom";
    if !in_any(path, &R2_VERIFIER_MODULES) {
        return;
    }
    for k in 0..toks.len() {
        if in_test[k] {
            continue;
        }
        let t = &toks[k];
        // `.unwrap(` / `.expect(`
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && k >= 1
            && toks[k - 1].kind == TokKind::Punct
            && toks[k - 1].text == "."
            && k + 1 < toks.len()
            && toks[k + 1].kind == TokKind::Punct
            && toks[k + 1].text == "("
        {
            findings.push(Finding {
                rule: RULE,
                line: t.line,
                col: t.col,
                msg: format!(
                    "`.{}()` in a verifier path can panic on attacker-supplied input; \
                     return a typed error instead",
                    t.text
                ),
            });
            continue;
        }
        // panic-family macros
        if t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && k + 1 < toks.len()
            && toks[k + 1].kind == TokKind::Punct
            && toks[k + 1].text == "!"
        {
            findings.push(Finding {
                rule: RULE,
                line: t.line,
                col: t.col,
                msg: format!(
                    "`{}!` in a verifier path is a remote DoS on malformed input; \
                     return a typed error instead",
                    t.text
                ),
            });
            continue;
        }
        // Index / slice expressions: `expr[...]`.
        if t.kind == TokKind::Punct && t.text == "[" && k >= 1 {
            let p = &toks[k - 1];
            let indexable = match p.kind {
                TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&p.text.as_str()),
                TokKind::Punct => p.text == ")" || p.text == "]" || p.text == "?",
                _ => false,
            };
            if indexable {
                findings.push(Finding {
                    rule: RULE,
                    line: t.line,
                    col: t.col,
                    msg: "slice/array indexing in a verifier path panics when out of \
                          bounds; use `.get()`/`.get_mut()` or `split_at_checked`-style \
                          accessors"
                        .to_string(),
                });
                continue;
            }
        }
        // Truncating `as` casts.
        if t.kind == TokKind::Ident
            && t.text == "as"
            && k + 1 < toks.len()
            && toks[k + 1].kind == TokKind::Ident
            && R2_TRUNCATING_CASTS.contains(&toks[k + 1].text.as_str())
        {
            findings.push(Finding {
                rule: RULE,
                line: t.line,
                col: t.col,
                msg: format!(
                    "`as {}` silently truncates attacker-controlled integers in a \
                     verifier path; use `try_into`/`try_from` with a typed error",
                    toks[k + 1].text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// R3: determinism.
// ---------------------------------------------------------------------------

fn rule_r3(path: &str, toks: &[Tok], in_test: &[bool], findings: &mut Vec<Finding>) {
    const RULE: &str = "r3-determinism";
    if in_any(path, &R3_ALLOWED_MODULES) || in_any(path, &R3_EXEMPT_TREES) {
        return;
    }
    for (k, t) in toks.iter().enumerate() {
        if in_test[k] || t.kind != TokKind::Ident {
            continue;
        }
        if R3_BANNED_IDENTS.contains(&t.text.as_str()) {
            findings.push(Finding {
                rule: RULE,
                line: t.line,
                col: t.col,
                msg: format!(
                    "`{}` is an ambient time/randomness source; outside \
                     netsim/pipeline/sgx::cost it breaks seeded bit-for-bit replay — \
                     route timing through `dcert_sgx::cost::timed` and randomness \
                     through an injected seed",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// R4: error-type hygiene.
// ---------------------------------------------------------------------------

fn rule_r4(path: &str, toks: &[Tok], in_test: &[bool], findings: &mut Vec<Finding>) {
    const RULE: &str = "r4-error-hygiene";
    if path.starts_with("crates/lint/") {
        return;
    }
    let mut k = 0usize;
    while k + 3 < toks.len() {
        // `-> Result <`
        let arrow = toks[k].kind == TokKind::Punct
            && toks[k].text == "-"
            && toks[k + 1].kind == TokKind::Punct
            && toks[k + 1].text == ">";
        if arrow
            && !in_test[k]
            && toks[k + 2].kind == TokKind::Ident
            && toks[k + 2].text == "Result"
            && toks[k + 3].kind == TokKind::Punct
            && toks[k + 3].text == "<"
        {
            // Collect the top-level generic args.
            let open = k + 3;
            let mut depth = 0i32;
            let mut e = open;
            let mut top_commas = Vec::new();
            while e < toks.len() {
                if toks[e].kind == TokKind::Punct {
                    match toks[e].text.as_str() {
                        "<" => depth += 1,
                        ">" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        "," if depth == 1 => top_commas.push(e),
                        _ => {}
                    }
                }
                e += 1;
            }
            if let Some(&comma) = top_commas.first() {
                let err_toks = &toks[comma + 1..e];
                if let Some(first) = err_toks.iter().find(|t| t.kind != TokKind::Punct) {
                    if first.text == "String" {
                        findings.push(Finding {
                            rule: RULE,
                            line: first.line,
                            col: first.col,
                            msg: "fallible API returns `Result<_, String>`; return the \
                                  crate's typed `Error` so callers can match on failure \
                                  modes"
                                .to_string(),
                        });
                    } else if first.text == "Box"
                        && err_toks
                            .iter()
                            .any(|t| t.kind == TokKind::Ident && t.text == "dyn")
                    {
                        findings.push(Finding {
                            rule: RULE,
                            line: first.line,
                            col: first.col,
                            msg: "fallible API returns `Result<_, Box<dyn ...>>`; return \
                                  the crate's typed `Error` so callers can match on \
                                  failure modes"
                                .to_string(),
                        });
                    }
                }
            }
            k = e;
        }
        k += 1;
    }
}
