//! Item-level parsing: just enough structure over the token stream to
//! build a workspace call graph.
//!
//! This is deliberately **not** a Rust grammar. It recognizes the item
//! shapes the analysis needs — `mod`/`impl`/`trait` scopes, `fn`
//! signatures with parameter names and base types, `use` imports, and
//! type definitions — and leaves everything else (expressions, generics
//! details, macros) to the token-level scans in [`crate::flow`]. Known
//! approximations are documented on [`ParsedFile`].

use crate::lexer::{Tok, TokKind};

/// One function parameter: its binding name (or `self`) and the last path
/// segment of its declared type (`Vec<u8>` → `Vec`, `&Hash` → `Hash`,
/// `&[u8; 32]` → `u8`). Empty when the pattern/type is too exotic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    pub name: String,
    pub ty: String,
}

/// One `fn` item found in a file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Self type of the enclosing `impl` block (`impl Store for
    /// SegmentStore` → `SegmentStore`), or the trait name for default
    /// methods declared inside a `trait` block, or `None` for free fns.
    pub qual: Option<String>,
    /// `pub` in any form (`pub`, `pub(crate)`, ...).
    pub is_pub: bool,
    /// Declared in an `impl Trait for Type` block or a `trait` block —
    /// callable through the trait even without `pub`.
    pub in_trait_impl: bool,
    /// Inside `#[cfg(test)]` / `#[test]` extents.
    pub is_test: bool,
    pub params: Vec<Param>,
    /// Base name of the return type (`Result` for `Result<T, E>`).
    /// Parse metadata pinned by the crate tests; parsing it is also what
    /// keeps body detection correct for returns like `-> [u8; 32]`.
    #[cfg_attr(not(test), allow(dead_code))]
    pub ret: Option<String>,
    /// Token indices of the body's `{` and matching `}` (inclusive), or
    /// `None` for bodiless trait declarations.
    pub body: Option<(usize, usize)>,
    /// Line of the `fn` keyword (diagnostics metadata).
    #[allow(dead_code)]
    pub line: u32,
}

/// One `use` leaf: the name it binds locally and its full path segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseDecl {
    pub alias: String,
    pub path: Vec<String>,
}

/// A `impl Trait for Type` link, used to resolve `Type::trait_method`
/// calls through trait default methods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraitImpl {
    pub ty: String,
    pub trait_name: String,
}

/// The parsed item skeleton of one source file.
///
/// Known approximations (all safe for the rules built on top):
/// - nested functions keep the enclosing `impl` qualifier;
/// - `mod name;` out-of-line declarations are ignored (the target file is
///   parsed on its own);
/// - macro-generated items are invisible;
/// - glob imports (`use x::*`) are ignored.
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub fns: Vec<FnItem>,
    pub uses: Vec<UseDecl>,
    pub trait_impls: Vec<TraitImpl>,
    /// Names of types (struct/enum/union/trait/type) defined here.
    pub types: Vec<String>,
    /// Names introduced by `type` aliases. Associated-fn misses on these
    /// resolve through the aliased target (often a std type with blanket
    /// trait impls), so they are assumed external rather than dangling.
    pub aliases: Vec<String>,
}

/// Maps a workspace-relative path to the crate module name used in code
/// (`crates/store/...` → `dcert_store`, `src/...` → `dcert`). Harness
/// paths (tests/benches/examples) return `None`.
pub fn crate_of_path(path: &str) -> Option<String> {
    if crate::engine::is_harness_path(path) {
        return None;
    }
    if let Some(rest) = path.strip_prefix("crates/") {
        let dir = rest.split('/').next()?;
        return Some(format!("dcert_{}", dir.replace('-', "_")));
    }
    if path.starts_with("src/") {
        return Some("dcert".to_string());
    }
    None
}

/// File stem (`crates/store/src/seg_store.rs` → `seg_store`), used to
/// resolve module-qualified calls like `sealing::seal(...)`.
pub fn stem_of_path(path: &str) -> String {
    path.rsplit('/')
        .next()
        .unwrap_or(path)
        .trim_end_matches(".rs")
        .to_string()
}

enum Scope {
    Mod,
    /// (self type, is-trait-impl)
    Impl(Option<String>, bool),
    Trait(String),
}

/// Parses the item skeleton of `toks`. `in_test` is the per-token
/// `#[cfg(test)]` marking from [`crate::engine`].
pub fn parse_items(toks: &[Tok], in_test: &[bool]) -> ParsedFile {
    let mut out = ParsedFile::default();
    // Stack of (scope, end-token-index-exclusive).
    let mut scopes: Vec<(Scope, usize)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        while let Some((_, end)) = scopes.last() {
            if i >= *end {
                scopes.pop();
            } else {
                break;
            }
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "mod" => {
                // `mod name {` opens a scope; `mod name;` is out-of-line.
                if let Some(open) = find_punct_before_semi(toks, i + 1, "{") {
                    let end = matching(toks, open, "{", "}").unwrap_or(toks.len());
                    scopes.push((Scope::Mod, end + 1));
                    i = open + 1;
                } else {
                    i += 1;
                }
            }
            "impl" => {
                let (qual, trait_name, open) = parse_impl_header(toks, i);
                let Some(open) = open else {
                    i += 1;
                    continue;
                };
                if let (Some(ty), Some(tr)) = (&qual, &trait_name) {
                    out.trait_impls.push(TraitImpl {
                        ty: ty.clone(),
                        trait_name: tr.clone(),
                    });
                }
                let end = matching(toks, open, "{", "}").unwrap_or(toks.len());
                scopes.push((Scope::Impl(qual, trait_name.is_some()), end + 1));
                i = open + 1;
            }
            "trait" => {
                let name = ident_at(toks, i + 1).unwrap_or_default();
                if !name.is_empty() {
                    out.types.push(name.clone());
                }
                if let Some(open) = find_punct_before_semi(toks, i + 1, "{") {
                    let end = matching(toks, open, "{", "}").unwrap_or(toks.len());
                    scopes.push((Scope::Trait(name), end + 1));
                    i = open + 1;
                } else {
                    i += 1;
                }
            }
            "struct" | "enum" | "union" | "type" => {
                if let Some(name) = ident_at(toks, i + 1) {
                    if t.text == "type" {
                        out.aliases.push(name.clone());
                    }
                    out.types.push(name);
                }
                i += 1;
            }
            "use" => {
                let (decls, next) = parse_use(toks, i + 1);
                out.uses.extend(decls);
                i = next;
            }
            "fn" => {
                let ctx = scopes.iter().rev().find_map(|(s, _)| match s {
                    Scope::Impl(q, is_trait) => Some((q.clone(), *is_trait)),
                    Scope::Trait(name) => Some((Some(name.clone()), true)),
                    Scope::Mod => None,
                });
                let (qual, in_trait_impl) = ctx.unwrap_or((None, false));
                let (item, next) = parse_fn(toks, in_test, i, qual, in_trait_impl);
                if let Some(item) = item {
                    out.fns.push(item);
                }
                i = next;
            }
            _ => i += 1,
        }
    }
    out
}

fn ident_at(toks: &[Tok], i: usize) -> Option<String> {
    toks.get(i)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
}

fn is_punct(toks: &[Tok], i: usize, s: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == s)
}

/// Finds the next `what` punct at nesting depth 0 before any depth-0 `;`.
fn find_punct_before_semi(toks: &[Tok], from: usize, what: &str) -> Option<usize> {
    let mut depth = 0i32;
    let mut angle = 0i32;
    for (k, t) in toks.iter().enumerate().skip(from) {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            _ if t.text == what && depth == 0 && angle <= 0 => return Some(k),
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "<" if depth == 0 => angle += 1,
            ">" if depth == 0 && !is_punct(toks, k.wrapping_sub(1), "-") => angle -= 1,
            ";" if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Index of the bracket matching `toks[open]`.
pub fn matching(toks: &[Tok], open: usize, open_s: &str, close_s: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == open_s {
                depth += 1;
            } else if t.text == close_s {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
        }
    }
    None
}

/// Skips a balanced `<...>` generic group starting at `toks[i] == "<"`,
/// returning the index just past the matching `>`. `->` arrows inside
/// (fn-pointer types) do not count as closers.
fn skip_generics(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0i32;
    let mut k = i;
    while k < toks.len() {
        if toks[k].kind == TokKind::Punct {
            match toks[k].text.as_str() {
                "<" => depth += 1,
                ">" if !is_punct(toks, k.wrapping_sub(1), "-") => {
                    depth -= 1;
                    if depth == 0 {
                        return k + 1;
                    }
                }
                _ => {}
            }
        }
        k += 1;
    }
    k
}

/// Parses an `impl` header starting at the `impl` token. Returns the self
/// type, the trait name for `impl Trait for Type`, and the `{` index.
fn parse_impl_header(toks: &[Tok], at: usize) -> (Option<String>, Option<String>, Option<usize>) {
    let mut k = at + 1;
    if is_punct(toks, k, "<") {
        k = skip_generics(toks, k);
    }
    // Collect header tokens up to the body `{` (or `;` — illegal, bail).
    let Some(open) = find_punct_before_semi(toks, k, "{") else {
        return (None, None, None);
    };
    let header = &toks[k..open];
    let for_pos = header
        .iter()
        .position(|t| t.kind == TokKind::Ident && t.text == "for");
    let (trait_part, ty_part) = match for_pos {
        Some(p) => (
            Some(header.get(..p).unwrap_or_default()),
            header.get(p + 1..).unwrap_or_default(),
        ),
        None => (None, header),
    };
    let ty = base_type_name(ty_part);
    let trait_name = trait_part.and_then(base_type_name);
    (ty, trait_name, Some(open))
}

/// The "base name" of a type token run: the last segment of its leading
/// path, ignoring references, lifetimes and qualifiers. `&mut Vec<u8>` →
/// `Vec`, `dcert_primitives::hash::Hash` → `Hash`, `[u8; 32]` → `u8`.
pub fn base_type_name(ty: &[Tok]) -> Option<String> {
    let mut last: Option<String> = None;
    let mut k = 0usize;
    while k < ty.len() {
        let t = &ty[k];
        match t.kind {
            TokKind::Ident => match t.text.as_str() {
                "mut" | "dyn" | "impl" | "const" => k += 1,
                _ => {
                    last = Some(t.text.clone());
                    // Continue through `::` path segments.
                    if k + 2 < ty.len()
                        && ty[k + 1].kind == TokKind::Punct
                        && ty[k + 1].text == ":"
                        && ty[k + 2].kind == TokKind::Punct
                        && ty[k + 2].text == ":"
                    {
                        k += 3;
                        continue;
                    }
                    return last;
                }
            },
            TokKind::Punct if t.text == "&" || t.text == "(" || t.text == "[" || t.text == "*" => {
                k += 1
            }
            TokKind::Lifetime => k += 1,
            _ => return last,
        }
    }
    last
}

/// Parses one `use` declaration starting just past the `use` keyword.
/// Returns the leaf decls and the index just past the terminating `;`.
fn parse_use(toks: &[Tok], from: usize) -> (Vec<UseDecl>, usize) {
    let mut end = from;
    let mut depth = 0i32;
    while end < toks.len() {
        if toks[end].kind == TokKind::Punct {
            match toks[end].text.as_str() {
                "{" => depth += 1,
                "}" => depth -= 1,
                ";" if depth == 0 => break,
                _ => {}
            }
        }
        end += 1;
    }
    let mut out = Vec::new();
    collect_use_leaves(&toks[from..end], &mut Vec::new(), &mut out);
    (out, end + 1)
}

fn collect_use_leaves(toks: &[Tok], prefix: &mut Vec<String>, out: &mut Vec<UseDecl>) {
    // Split the run on top-level commas; each piece is `seg::seg::leaf`,
    // `seg::{...}`, `leaf as alias`, or `*`.
    let mut start = 0usize;
    let mut depth = 0i32;
    let mut pieces: Vec<(usize, usize)> = Vec::new();
    for (k, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => depth -= 1,
                "," if depth == 0 => {
                    pieces.push((start, k));
                    start = k + 1;
                }
                _ => {}
            }
        }
    }
    pieces.push((start, toks.len()));
    for (s, e) in pieces {
        let piece = toks.get(s..e).unwrap_or_default();
        if piece.is_empty() {
            continue;
        }
        let before = prefix.len();
        let mut k = 0usize;
        let mut leaf: Option<String> = None;
        let mut alias: Option<String> = None;
        while k < piece.len() {
            let t = &piece[k];
            if t.kind == TokKind::Ident {
                if t.text == "as" {
                    alias = piece
                        .get(k + 1)
                        .filter(|a| a.kind == TokKind::Ident)
                        .map(|a| a.text.clone());
                    break;
                }
                if let Some(prev) = leaf.take() {
                    prefix.push(prev);
                }
                leaf = Some(t.text.clone());
                k += 1;
            } else if t.kind == TokKind::Punct && t.text == "{" {
                if let Some(prev) = leaf.take() {
                    prefix.push(prev);
                }
                let inner_end = matching(piece, k, "{", "}").unwrap_or(piece.len());
                collect_use_leaves(piece.get(k + 1..inner_end).unwrap_or_default(), prefix, out);
                break;
            } else {
                k += 1; // `::` colons, `*` globs
            }
        }
        if let Some(leaf) = leaf {
            let mut path = prefix.clone();
            path.push(leaf.clone());
            out.push(UseDecl {
                alias: alias.unwrap_or(leaf),
                path,
            });
        }
        prefix.truncate(before);
    }
}

/// Parses one `fn` item starting at the `fn` token. Returns the item (if
/// a name was found) and the index to continue scanning from — just past
/// the signature, so nested items inside the body are still visited.
fn parse_fn(
    toks: &[Tok],
    in_test: &[bool],
    at: usize,
    qual: Option<String>,
    in_trait_impl: bool,
) -> (Option<FnItem>, usize) {
    let Some(name) = ident_at(toks, at + 1) else {
        return (None, at + 1);
    };
    let mut k = at + 2;
    if is_punct(toks, k, "<") {
        k = skip_generics(toks, k);
    }
    if !is_punct(toks, k, "(") {
        return (None, at + 1);
    }
    let Some(close) = matching(toks, k, "(", ")") else {
        return (None, at + 1);
    };
    let params = parse_params(toks.get(k + 1..close).unwrap_or_default(), qual.as_deref());
    let mut k = close + 1;
    // Return type.
    let mut ret = None;
    if is_punct(toks, k, "-") && is_punct(toks, k + 1, ">") {
        let start = k + 2;
        let mut angle = 0i32;
        let mut e = start;
        while e < toks.len() {
            let t = &toks[e];
            if t.kind == TokKind::Ident && t.text == "where" && angle <= 0 {
                break;
            }
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "<" => angle += 1,
                    ">" if !is_punct(toks, e.wrapping_sub(1), "-") => angle -= 1,
                    "{" | ";" if angle <= 0 => break,
                    _ => {}
                }
            }
            e += 1;
        }
        ret = base_type_name(toks.get(start..e).unwrap_or_default());
        k = e;
    }
    // Skip a where clause to the body `{` or the `;`.
    while k < toks.len() {
        if is_punct(toks, k, "{") || is_punct(toks, k, ";") {
            break;
        }
        k += 1;
    }
    let body = if is_punct(toks, k, "{") {
        matching(toks, k, "{", "}").map(|end| (k, end))
    } else {
        None
    };
    // Visibility: scan back over fn-qualifier keywords.
    let mut b = at;
    let mut is_pub = false;
    while b > 0 {
        b -= 1;
        match toks[b].kind {
            TokKind::Ident => match toks[b].text.as_str() {
                "const" | "unsafe" | "async" | "extern" => continue,
                "pub" => {
                    is_pub = true;
                    break;
                }
                _ => break,
            },
            TokKind::Str => continue, // extern "C"
            TokKind::Punct if toks[b].text == ")" => {
                // pub(crate) etc: skip back to the `(` then expect pub.
                let mut depth = 0i32;
                while b > 0 {
                    if toks[b].kind == TokKind::Punct {
                        match toks[b].text.as_str() {
                            ")" => depth += 1,
                            "(" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    b -= 1;
                }
                continue;
            }
            _ => break,
        }
    }
    let item = FnItem {
        name,
        qual,
        is_pub,
        in_trait_impl,
        is_test: in_test.get(at).copied().unwrap_or(false),
        params,
        ret,
        body,
        line: toks[at].line,
    };
    // Continue just past the signature: the body is re-scanned so nested
    // fns are found (their bodies are subsets of this one's — harmless).
    (Some(item), k + 1)
}

/// Splits a parameter list on top-level commas and extracts name/type.
fn parse_params(toks: &[Tok], self_ty: Option<&str>) -> Vec<Param> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut start = 0usize;
    let mut pieces: Vec<(usize, usize)> = Vec::new();
    for (k, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "<" => angle += 1,
                ">" if !is_punct(toks, k.wrapping_sub(1), "-") => angle -= 1,
                "," if depth == 0 && angle <= 0 => {
                    pieces.push((start, k));
                    start = k + 1;
                }
                _ => {}
            }
        }
    }
    pieces.push((start, toks.len()));
    for (s, e) in pieces {
        let piece = toks.get(s..e).unwrap_or_default();
        if piece.is_empty() {
            continue;
        }
        // `self` receivers (`self`, `&self`, `&mut self`, `mut self`).
        if piece
            .iter()
            .take(4)
            .any(|t| t.kind == TokKind::Ident && t.text == "self")
        {
            out.push(Param {
                name: "self".to_string(),
                ty: self_ty.unwrap_or_default().to_string(),
            });
            continue;
        }
        // Find the top-level single `:` separating pattern from type.
        let mut depth = 0i32;
        let mut colon = None;
        let mut k = 0usize;
        while k < piece.len() {
            let t = &piece[k];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" | "<" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ">" if !is_punct(piece, k.wrapping_sub(1), "-") => depth -= 1,
                    ":" if depth == 0 => {
                        if is_punct(piece, k + 1, ":") {
                            k += 2;
                            continue;
                        }
                        colon = Some(k);
                        break;
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        let Some(colon) = colon else { continue };
        let name = piece
            .get(..colon)
            .unwrap_or_default()
            .iter()
            .rev()
            .find(|t| t.kind == TokKind::Ident && t.text != "mut" && t.text != "ref")
            .map(|t| t.text.clone())
            .unwrap_or_default();
        let ty = base_type_name(piece.get(colon + 1..).unwrap_or_default()).unwrap_or_default();
        if !name.is_empty() {
            out.push(Param { name, ty });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::mark_test_tokens;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        let (toks, _) = lex(src);
        let in_test = mark_test_tokens(&toks);
        parse_items(&toks, &in_test)
    }

    #[test]
    fn parses_free_and_impl_fns() {
        let p = parse(
            "pub fn free(a: u64, b: &Hash) -> Result<(), Error> { a }\n\
             struct S;\n\
             impl S { fn method(&self, x: Vec<u8>) {} }\n\
             impl Encode for S { fn encode(&self, out: &mut Vec<u8>) {} }\n",
        );
        assert_eq!(p.fns.len(), 3);
        let free = &p.fns[0];
        assert_eq!(free.name, "free");
        assert!(free.is_pub);
        assert_eq!(free.qual, None);
        assert_eq!(free.ret.as_deref(), Some("Result"));
        assert_eq!(
            free.params,
            vec![
                Param {
                    name: "a".into(),
                    ty: "u64".into()
                },
                Param {
                    name: "b".into(),
                    ty: "Hash".into()
                },
            ]
        );
        assert_eq!(p.fns[1].qual.as_deref(), Some("S"));
        assert_eq!(p.fns[1].params[0].name, "self");
        assert_eq!(p.fns[1].params[0].ty, "S");
        assert!(!p.fns[1].in_trait_impl);
        assert_eq!(p.fns[2].name, "encode");
        assert_eq!(p.fns[2].qual.as_deref(), Some("S"));
        assert!(p.fns[2].in_trait_impl);
        assert_eq!(
            p.trait_impls,
            vec![TraitImpl {
                ty: "S".into(),
                trait_name: "Encode".into()
            }]
        );
        assert!(p.types.contains(&"S".to_string()));
    }

    #[test]
    fn trait_default_methods_get_trait_qual() {
        let p = parse(
            "pub trait Decode: Sized {\n\
               fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;\n\
               fn decode_all(input: &[u8]) -> Result<Self, CodecError> { loop {} }\n\
             }\n",
        );
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].qual.as_deref(), Some("Decode"));
        assert!(p.fns[0].body.is_none(), "declaration has no body");
        assert!(p.fns[1].body.is_some(), "default method has a body");
        assert!(p.fns[1].in_trait_impl);
    }

    #[test]
    fn generic_impl_headers_resolve_self_type() {
        let p = parse("impl<A: TrustedApp> Enclave<A> { pub fn ecall(&self) {} }");
        assert_eq!(p.fns[0].qual.as_deref(), Some("Enclave"));
        assert!(p.fns[0].is_pub);
    }

    #[test]
    fn use_groups_and_renames() {
        let p = parse(
            "use dcert_primitives::codec::{decode_seq, Decode as D};\n\
             use crate::error::StoreError;\n",
        );
        assert!(p.uses.contains(&UseDecl {
            alias: "decode_seq".into(),
            path: vec![
                "dcert_primitives".into(),
                "codec".into(),
                "decode_seq".into()
            ],
        }));
        assert!(p.uses.contains(&UseDecl {
            alias: "D".into(),
            path: vec!["dcert_primitives".into(), "codec".into(), "Decode".into()],
        }));
        assert!(p.uses.contains(&UseDecl {
            alias: "StoreError".into(),
            path: vec!["crate".into(), "error".into(), "StoreError".into()],
        }));
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let p =
            parse("fn prod() {}\n#[cfg(test)]\nmod tests { fn helper() {} #[test] fn t() {} }\n");
        assert_eq!(p.fns.len(), 3);
        assert!(!p.fns[0].is_test);
        assert!(p.fns[1].is_test);
        assert!(p.fns[2].is_test);
    }

    #[test]
    fn crate_mapping() {
        assert_eq!(
            crate_of_path("crates/store/src/seg_store.rs").as_deref(),
            Some("dcert_store")
        );
        assert_eq!(crate_of_path("src/lib.rs").as_deref(), Some("dcert"));
        assert_eq!(crate_of_path("tests/chaos_network.rs"), None);
        assert_eq!(crate_of_path("crates/bench/benches/pipeline.rs"), None);
    }
}
