//! R8 `r8-durability-order`: in `dcert-store`, destructive file
//! operations must not be reachable from steady-state entry points
//! before the corresponding head-commit `sync()`.
//!
//! This is the exact bug class PR 6 fixed by hand in `prune_below`: if a
//! segment file is unlinked *before* the head region stops tracking it,
//! a crash between the two steps loses acknowledged data. The rule
//! walks the store's call graph from every externally callable function
//! **except** the recovery closure (`open`/`recover` — recovery
//! legitimately deletes orphans the previous head already disowned) and
//! requires every reachable `remove_file`/`set_len` call site to be
//! preceded, in the same function, by a head-commit `sync()` call.
//! `sync_all`/`sync_data` (plain fsyncs) deliberately do **not**
//! qualify — fsyncing a segment is not a head commit.

use crate::engine::Finding;
use crate::graph::Graph;

pub const RULE: &str = "r8-durability-order";

const DESTRUCTIVE: [&str; 2] = ["remove_file", "set_len"];

/// Functions that *are* the recovery closure's roots.
const RECOVERY_ROOTS: [&str; 2] = ["open", "recover"];

fn in_store(path: &str) -> bool {
    path.starts_with("crates/store/")
}

pub fn run(g: &Graph) -> Vec<(usize, Finding)> {
    let steady: Vec<usize> = (0..g.fns.len())
        .filter(|&id| {
            let n = &g.fns[id];
            !n.item.is_test
                && (n.item.is_pub || n.item.in_trait_impl)
                && in_store(&g.files[n.file].path)
                && !RECOVERY_ROOTS.contains(&n.item.name.as_str())
        })
        .collect();
    let reach = g.reachable(&steady);

    let mut out = Vec::new();
    for id in 0..g.fns.len() {
        if !reach.visited[id] || !in_store(&g.files[g.fns[id].file].path) {
            continue;
        }
        let node = &g.fns[id];
        for call in &node.flow.calls {
            if !DESTRUCTIVE.contains(&call.name()) {
                continue;
            }
            let prior_sync = node
                .flow
                .calls
                .iter()
                .any(|c| c.name() == "sync" && c.tok < call.tok);
            if prior_sync {
                continue;
            }
            let witness = g.witness(&reach, id);
            out.push((
                node.file,
                Finding {
                    rule: RULE,
                    line: call.line,
                    col: call.col,
                    msg: format!(
                        "`{}` is reachable from steady-state store entry points \
                         (path: {witness}) with no head-commit `sync()` before it; \
                         persist the shrunken head first so a crash between the two \
                         steps leaves only orphans recovery can finish",
                        call.display()
                    ),
                },
            ));
        }
    }
    out.sort_by_key(|(f, x)| (*f, x.line, x.col));
    out.dedup_by(|a, b| a.0 == b.0 && a.1.line == b.1.line && a.1.col == b.1.col);
    out
}
