//! R6 `r6-secret-taint`: secret values must not leave the trusted
//! boundary as *values*.
//!
//! R1 confines secret *identifiers* to the trusted modules; R6 tracks
//! the values. Taint seeds at parameters/locals named like secrets
//! (`platform_secret`, `sk_enc`, `*secret*`) and at calls to the
//! secret-producing API (`sealing_key`, `keystream_block`,
//! `export_state`, `to_secret_bytes`), propagates through `let`
//! bindings and call arguments into other trusted-module functions, and
//! reports when a tainted value reaches:
//!
//! * a formatting macro (`format!`/`println!`/`panic!`/asserts — Debug
//!   output is an exfiltration channel),
//! * a wire encoder (`encode`/`to_encoded_bytes`),
//! * any function outside the trusted modules except the allow-listed
//!   crypto API (`hash_*`, `seal`/`unseal`, `Keypair::from_seed`/`sign`).
//!
//! Interprocedural propagation records the call chain, so findings in a
//! callee carry a multi-hop witness back to the seeding function.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

use crate::engine::{in_any, Finding, R1_TRUSTED_MODULES};
use crate::graph::Graph;
use crate::lexer::TokKind;

pub const RULE: &str = "r6-secret-taint";

/// Calls whose *result* is secret material.
const SECRET_SOURCES: [&str; 4] = [
    "sealing_key",
    "keystream_block",
    "export_state",
    "to_secret_bytes",
];

/// Functions outside the trusted modules that legitimately consume
/// secret values: the hash kernel (key derivation), the sealing API
/// itself, the signature wrapper, and pure borrow accessors on the
/// secret's own type (`Hash::as_bytes` — the borrowed bytes stay
/// tainted in the caller, so what they subsequently reach is still
/// checked).
const ALLOWED_CALLEES: [&str; 9] = [
    "hash_concat",
    "hash_bytes",
    "seal",
    "unseal",
    "from_seed",
    "sign",
    "public",
    "verify",
    "as_bytes",
];

/// Macros whose arguments end up in human-readable output.
const FORMAT_MACROS: [&str; 19] = [
    "format",
    "print",
    "println",
    "eprint",
    "eprintln",
    "write",
    "writeln",
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "log",
    "trace",
    "info",
    "warn",
    "error",
];

/// Wire-encoder entry points: serializing a secret puts it on the wire.
const ENCODER_SINKS: [&str; 3] = ["encode", "encode_to", "to_encoded_bytes"];

fn is_secret_name(s: &str) -> bool {
    s == "platform_secret" || s == "sk_enc" || s.contains("secret")
}

fn in_trusted(path: &str) -> bool {
    in_any(path, &R1_TRUSTED_MODULES)
}

pub fn run(g: &Graph) -> Vec<(usize, Finding)> {
    // Worklist of (fn, extra tainted param indices), with the call chain
    // that introduced the extra taint (for witnesses).
    let mut seen: HashMap<usize, BTreeSet<usize>> = HashMap::new();
    let mut chains: HashMap<usize, String> = HashMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for id in 0..g.fns.len() {
        let n = &g.fns[id];
        if !n.item.is_test && in_trusted(&g.files[n.file].path) {
            seen.insert(id, BTreeSet::new());
            queue.push_back(id);
        }
    }

    let mut out = Vec::new();
    while let Some(id) = queue.pop_front() {
        let node = &g.fns[id];
        let file = &g.files[node.file];
        let toks = &file.toks;
        let extra = seen.get(&id).cloned().unwrap_or_default();

        // Seed taint: secret-named params + interprocedurally tainted
        // params.
        let mut tainted: HashSet<String> = HashSet::new();
        for (i, p) in node.item.params.iter().enumerate() {
            if !p.name.is_empty() && (is_secret_name(&p.name) || extra.contains(&i)) {
                tainted.insert(p.name.clone());
            }
        }
        // Propagate through `let` bindings to a fixpoint.
        loop {
            let mut changed = false;
            for b in &node.flow.lets {
                if tainted.contains(&b.name) {
                    continue;
                }
                let rhs_tainted = toks[b.rhs.0..b.rhs.1.min(toks.len())].iter().any(|t| {
                    t.kind == TokKind::Ident
                        && (is_secret_name(&t.text)
                            || tainted.contains(&t.text)
                            || SECRET_SOURCES.contains(&t.text.as_str()))
                });
                if rhs_tainted {
                    tainted.insert(b.name.clone());
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        let occurs = |range: (usize, usize)| -> Option<String> {
            toks.get(range.0..range.1.min(toks.len()))?
                .iter()
                .find(|t| {
                    t.kind == TokKind::Ident
                        && (is_secret_name(&t.text) || tainted.contains(&t.text))
                })
                .map(|t| t.text.clone())
        };
        // Witness prefix: the call chain that tainted this fn, if any.
        let here = match chains.get(&id) {
            Some(c) => format!("{c} → {}", g.fn_display(id)),
            None => g.fn_display(id),
        };

        // Sink: formatting macros.
        for m in &node.flow.macros {
            if !FORMAT_MACROS.contains(&m.name.as_str()) {
                continue;
            }
            if let Some(name) = occurs(m.body) {
                out.push((
                    node.file,
                    Finding {
                        rule: RULE,
                        line: m.line,
                        col: m.col,
                        msg: format!(
                            "secret-tainted value `{name}` flows into `{}!` formatting \
                             (in {here}); secrets must never reach logs or panic messages",
                            m.name,
                        ),
                    },
                ));
            }
        }

        // Sinks and propagation through calls.
        for (ci, call) in node.flow.calls.iter().enumerate() {
            let recv_tainted = call
                .recv
                .as_deref()
                .is_some_and(|r| is_secret_name(r) || tainted.contains(r));
            let arg_taints: Vec<(usize, String)> = call
                .args
                .iter()
                .enumerate()
                .filter_map(|(i, &r)| occurs(r).map(|n| (i, n)))
                .collect();
            if !recv_tainted && arg_taints.is_empty() {
                continue;
            }
            let carrier = arg_taints
                .first()
                .map(|(_, n)| n.clone())
                .or_else(|| call.recv.clone())
                .unwrap_or_default();

            if ENCODER_SINKS.contains(&call.name()) {
                out.push((
                    node.file,
                    Finding {
                        rule: RULE,
                        line: call.line,
                        col: call.col,
                        msg: format!(
                            "secret-tainted value `{carrier}` flows into wire encoder \
                             `{}` (in {here}); only sealed ciphertext may be serialized",
                            call.display(),
                        ),
                    },
                ));
                continue;
            }

            let callees: Vec<usize> = g.edges[id]
                .iter()
                .filter(|e| e.call == ci)
                .map(|e| e.callee)
                .collect();
            if callees.is_empty() {
                // External (std) call: moves/borrows inside the trusted
                // module, not a boundary crossing.
                continue;
            }
            for callee in callees {
                let cfile = &g.files[g.fns[callee].file];
                if in_trusted(&cfile.path) {
                    // Propagate taint into the callee's parameters.
                    let has_self = g.fns[callee]
                        .item
                        .params
                        .first()
                        .is_some_and(|p| p.name == "self");
                    let shift = usize::from(call.method && has_self);
                    let mut extras: BTreeSet<usize> = BTreeSet::new();
                    if recv_tainted && has_self {
                        extras.insert(0);
                    }
                    for (i, _) in &arg_taints {
                        extras.insert(i + shift);
                    }
                    let entry = seen.entry(callee).or_default();
                    let before = entry.len();
                    entry.extend(extras);
                    if entry.len() > before {
                        chains.entry(callee).or_insert_with(|| here.clone());
                        queue.push_back(callee);
                    }
                } else if !ALLOWED_CALLEES.contains(&call.name()) {
                    out.push((
                        node.file,
                        Finding {
                            rule: RULE,
                            line: call.line,
                            col: call.col,
                            msg: format!(
                                "secret-tainted value `{carrier}` passed to `{}` in \
                                 {} — outside the trusted boundary and not part of \
                                 the sealing/signing API (in {here})",
                                call.display(),
                                cfile.path,
                            ),
                        },
                    ));
                }
            }
        }
    }
    out.sort_by_key(|(f, x)| (*f, x.line, x.col));
    out.dedup_by(|a, b| a.0 == b.0 && a.1.line == b.1.line && a.1.col == b.1.col);
    out
}
