//! R7 `r7-alloc-bound`: decoder allocations sized from wire-decoded
//! lengths must be dominated by a bound check.
//!
//! The DoS class that matters at serve scale: an attacker puts `2^60` in
//! a length field and the decoder calls `Vec::with_capacity` on it. A
//! local taint pass marks `let` bindings whose initializer reads a
//! length off the wire (`take_len`, `from_be_bytes`/`from_le_bytes`,
//! `uNN::decode`), propagates through further bindings, and requires
//! every allocation sized by a tainted value (`with_capacity`,
//! `reserve`, `resize`, `vec![_; n]`) to be preceded by bounding
//! evidence: a `.min(...)`/`.clamp(...)` on a tainted value, or a
//! comparison (`<`/`>`) involving one.
//!
//! The heuristic deliberately errs toward false *negatives* (a
//! comparison anywhere before the sink counts, generics angle brackets
//! can masquerade as comparisons) — R7 exists to catch the blatant
//! unchecked path, and the fixtures pin the behavior.

use crate::engine::Finding;
use crate::graph::Graph;
use crate::lexer::{Tok, TokKind};

pub const RULE: &str = "r7-alloc-bound";

/// Calls whose results are raw wire lengths.
const WIRE_LEN_SOURCES: [&str; 3] = ["take_len", "from_be_bytes", "from_le_bytes"];

/// Integer types whose `decode` yields an attacker-chosen number.
const INT_TYPES: [&str; 10] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i16", "i32", "i64", "isize",
];

/// Allocation calls whose argument is a size.
const ALLOC_SINKS: [&str; 4] = ["with_capacity", "reserve", "reserve_exact", "resize"];

fn rhs_reads_wire_len(toks: &[Tok], rhs: (usize, usize)) -> bool {
    let range = &toks[rhs.0..rhs.1.min(toks.len())];
    for (j, t) in range.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if WIRE_LEN_SOURCES.contains(&t.text.as_str()) {
            return true;
        }
        // `u64::decode(...)` / `u32::decode_all(...)`.
        if (t.text == "decode" || t.text == "decode_all")
            && j >= 3
            && range[j - 1].text == ":"
            && range[j - 2].text == ":"
            && INT_TYPES.contains(&range[j - 3].text.as_str())
        {
            return true;
        }
    }
    false
}

pub fn run(g: &Graph) -> Vec<(usize, Finding)> {
    let mut out = Vec::new();
    for id in 0..g.fns.len() {
        let node = &g.fns[id];
        if node.item.is_test {
            continue;
        }
        let file = &g.files[node.file];
        if file.path.starts_with("crates/lint/") {
            continue;
        }
        let toks = &file.toks;

        // Taint wire-length bindings, then propagate through later lets.
        let mut tainted: Vec<String> = Vec::new();
        loop {
            let mut changed = false;
            for b in &node.flow.lets {
                if tainted.contains(&b.name) {
                    continue;
                }
                let hit = rhs_reads_wire_len(toks, b.rhs)
                    || toks[b.rhs.0..b.rhs.1.min(toks.len())]
                        .iter()
                        .any(|t| t.kind == TokKind::Ident && tainted.contains(&t.text));
                if hit {
                    tainted.push(b.name.clone());
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        if tainted.is_empty() {
            continue;
        }
        let body_start = node.item.body.map(|(s, _)| s).unwrap_or(0);

        let is_tainted_at = |k: usize| -> bool {
            toks.get(k)
                .is_some_and(|t| t.kind == TokKind::Ident && tainted.contains(&t.text))
        };
        // Bounding evidence strictly before token `sink`: a comparison
        // or `.min`/`.clamp` involving a tainted value.
        let bounded_before = |sink: usize| -> bool {
            for k in body_start..sink {
                if !is_tainted_at(k) {
                    continue;
                }
                // Clamp to the body: the fn signature's `-> Vec<u8>` must
                // not read as a comparison.
                let lo = k.saturating_sub(6).max(body_start);
                let hi = (k + 7).min(sink);
                for j in lo..hi {
                    let t = &toks[j];
                    if t.kind == TokKind::Punct
                        && (t.text == "<"
                            || (t.text == ">"
                                && !(j >= 1
                                    && toks[j - 1].kind == TokKind::Punct
                                    && toks[j - 1].text == "-")))
                    {
                        return true;
                    }
                    if t.kind == TokKind::Ident && (t.text == "min" || t.text == "clamp") {
                        return true;
                    }
                }
            }
            false
        };
        let range_tainted = |range: (usize, usize)| -> Option<String> {
            toks.get(range.0..range.1.min(toks.len()))?
                .iter()
                .find(|t| t.kind == TokKind::Ident && tainted.contains(&t.text))
                .map(|t| t.text.clone())
        };
        let range_has_clamp = |range: (usize, usize)| -> bool {
            toks.get(range.0..range.1.min(toks.len())).is_some_and(|r| {
                r.iter()
                    .any(|t| t.kind == TokKind::Ident && (t.text == "min" || t.text == "clamp"))
            })
        };

        let mut push = |line: u32, col: u32, sink: &str, name: &str| {
            out.push((
                node.file,
                Finding {
                    rule: RULE,
                    line,
                    col,
                    msg: format!(
                        "allocation `{sink}` sized from wire-decoded length `{name}` \
                         with no dominating bound check; clamp it (`.min(MAX)`) or \
                         validate against a limit before allocating"
                    ),
                },
            ));
        };

        for call in &node.flow.calls {
            if !ALLOC_SINKS.contains(&call.name()) {
                continue;
            }
            for &arg in &call.args {
                if let Some(name) = range_tainted(arg) {
                    if !range_has_clamp(arg) && !bounded_before(call.tok) {
                        push(call.line, call.col, &call.display(), &name);
                    }
                    break;
                }
            }
        }
        for m in &node.flow.macros {
            if m.name != "vec" {
                continue;
            }
            // `vec![elem; len]` — only the repeat count is a size.
            let mut depth = 0i32;
            let mut semi = None;
            for (k, t) in toks
                .iter()
                .enumerate()
                .take(m.body.1.min(toks.len()))
                .skip(m.body.0)
            {
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        ";" if depth == 0 => {
                            semi = Some(k);
                            break;
                        }
                        _ => {}
                    }
                }
            }
            if let Some(semi) = semi {
                let count = (semi + 1, m.body.1);
                if let Some(name) = range_tainted(count) {
                    if !range_has_clamp(count) && !bounded_before(m.tok) {
                        push(m.line, m.col, "vec![_; …]", &name);
                    }
                }
            }
        }
    }
    out.sort_by_key(|(f, x)| (*f, x.line, x.col));
    out.dedup_by(|a, b| a.0 == b.0 && a.1.line == b.1.line && a.1.col == b.1.col);
    out
}
