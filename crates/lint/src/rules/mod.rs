//! Workspace-wide rules R5–R8, built on the call graph ([`crate::graph`])
//! and per-function dataflow facts ([`crate::flow`]).
//!
//! Each rule returns `(file index, Finding)` pairs; the driver merges
//! them with the per-file R1–R4 findings and applies that file's
//! `allow(...)` directives, so the escape-hatch contract is identical
//! across all eight rules.

mod r5;
mod r6;
mod r7;
mod r8;

use crate::engine::Finding;
use crate::graph::Graph;

/// Runs every workspace rule over the graph.
pub fn run_all(graph: &Graph) -> Vec<(usize, Finding)> {
    let mut out = Vec::new();
    out.extend(r5::run(graph));
    out.extend(r6::run(graph));
    out.extend(r7::run(graph));
    out.extend(r8::run(graph));
    out
}
