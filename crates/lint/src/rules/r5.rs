//! R5 `r5-panic-reachability`: transitive panic freedom.
//!
//! R2 bans panic constructs *lexically inside* the verifier modules; it
//! cannot see a verifier function calling a panicking helper elsewhere.
//! R5 closes that gap: every externally callable function in the
//! verifier/enclave entry modules is an analysis root, and no function
//! reachable from a root (across files and crates) may contain
//! `unwrap`/`expect`/panic-family macros/non-literal indexing. Findings
//! carry the full call-path witness from a root to the panic site.

use crate::engine::{in_any, Finding, R2_VERIFIER_MODULES};
use crate::graph::Graph;

pub const RULE: &str = "r5-panic-reachability";

/// Entry modules: everything R2 protects, plus the enclave container
/// itself (its ECall surface is driven by untrusted host code).
fn is_entry_module(path: &str) -> bool {
    in_any(path, &R2_VERIFIER_MODULES) || path == "crates/sgx/src/enclave.rs"
}

pub fn run(g: &Graph) -> Vec<(usize, Finding)> {
    let entries: Vec<usize> = (0..g.fns.len())
        .filter(|&id| {
            let n = &g.fns[id];
            !n.item.is_test
                && (n.item.is_pub || n.item.in_trait_impl)
                && is_entry_module(&g.files[n.file].path)
        })
        .collect();
    let reach = g.reachable(&entries);

    let mut out = Vec::new();
    for id in 0..g.fns.len() {
        if !reach.visited[id] || g.fns[id].item.is_test {
            continue;
        }
        for p in &g.fns[id].flow.panics {
            let witness = g.witness(&reach, id);
            out.push((
                g.fns[id].file,
                Finding {
                    rule: RULE,
                    line: p.line,
                    col: p.col,
                    msg: format!(
                        "{} can panic and is reachable from verifier/enclave entry \
                         points (path: {witness}); return a typed error instead",
                        p.what
                    ),
                },
            ));
        }
    }
    out.sort_by_key(|(f, x)| (*f, x.line, x.col));
    out.dedup_by_key(|(f, x)| (*f, x.line, x.col));
    out
}
