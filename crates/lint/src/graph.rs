//! Workspace-wide call graph over the item skeletons from
//! [`crate::parse`] and the per-function facts from [`crate::flow`].
//!
//! # Resolution strategy
//!
//! Call sites resolve to workspace functions through, in order: same-file
//! free functions, same-crate free functions, `use`-import expansion,
//! `Self`/impl-type method lookup, receiver-type inference (`self`,
//! typed params, simple `let` bindings), trait-default and trait-impl
//! dispatch, and finally a name-based method fallback restricted to
//! crates the file actually references. Unresolvable calls are assumed
//! external (std or dependencies) — **except** paths that explicitly
//! name a workspace crate or module and still miss, which are recorded
//! as *dangling* so the integrity test can fail instead of letting R5
//! pass vacuously.
//!
//! # Known approximations
//!
//! * Generic/trait-object dispatch through type parameters (e.g.
//!   `A: TrustedApp`) resolves via the trait's impls, which
//!   over-approximates (every impl is a possible callee) — the safe
//!   direction for reachability rules.
//! * Methods invoked on unknown receivers resolve by name to every
//!   same-named workspace method in referenced crates, unless the name
//!   is a common std method (see [`COMMON_EXTERNAL_METHODS`]).
//! * Macro-generated functions are invisible; calls to them would show
//!   up as dangling and must be allow-listed explicitly.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::engine::mark_test_tokens;
use crate::flow::{scan_fn, FnFlow};
use crate::lexer::{lex, Tok};
use crate::parse::{crate_of_path, parse_items, stem_of_path, FnItem, ParsedFile};

/// Methods whose names are so common in std that a name-based fallback
/// would wire bogus edges (`.len()` on a `Vec` is not a workspace call).
/// A workspace method with one of these names is only reachable through
/// a *typed* receiver.
const COMMON_EXTERNAL_METHODS: [&str; 72] = [
    "len",
    "is_empty",
    "clone",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "contains",
    "contains_key",
    "extend",
    "to_vec",
    "as_slice",
    "as_bytes",
    "as_ref",
    "as_mut",
    "as_str",
    "to_string",
    "to_owned",
    "into",
    "from",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "default",
    "clear",
    "drain",
    "retain",
    "map",
    "map_err",
    "and_then",
    "or_else",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok_or",
    "ok_or_else",
    "ok",
    "err",
    "take",
    "filter",
    "collect",
    "min",
    "max",
    "sum",
    "count",
    "zip",
    "rev",
    "chain",
    "enumerate",
    "last",
    "first",
    "split_at",
    "copy_from_slice",
    "extend_from_slice",
    "write_all",
    "flush",
    "join",
    "lock",
    "send",
    "recv",
    "sort",
    "position",
    "find",
    "fold",
    "truncate",
];

/// Method names that usually come from `derive` or std traits, so a miss
/// on a workspace type is not a dangling edge (`Record::default()`).
const DERIVED_METHODS: [&str; 16] = [
    "clone",
    "default",
    "fmt",
    "eq",
    "ne",
    "hash",
    "cmp",
    "partial_cmp",
    "from",
    "into",
    "from_str",
    "deref",
    "deref_mut",
    "drop",
    "next",
    "into_iter",
];

/// One lexed + parsed workspace source file.
pub struct SourceFile {
    pub path: String,
    pub krate: String,
    pub stem: String,
    pub toks: Vec<Tok>,
    pub in_test: Vec<bool>,
    pub items: ParsedFile,
    /// `use` leaf alias → full path segments.
    pub use_map: HashMap<String, Vec<String>>,
    /// Workspace crates this file references (own crate + imported).
    pub ref_crates: HashSet<String>,
}

/// One function node.
pub struct FnNode {
    pub file: usize,
    pub item: FnItem,
    pub flow: FnFlow,
}

/// One resolved call edge: `fns[from].flow.calls[call]` → `callee`.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    pub callee: usize,
    pub call: usize,
}

/// An intra-workspace path call that failed to resolve.
#[derive(Debug, Clone)]
pub struct Dangling {
    pub file: usize,
    pub line: u32,
    pub path: String,
}

/// Breadth-first reachability with parent pointers (for witnesses).
pub struct Reach {
    pub visited: Vec<bool>,
    pub parent: Vec<Option<usize>>,
}

pub struct Graph {
    pub files: Vec<SourceFile>,
    pub fns: Vec<FnNode>,
    /// Out-edges per function, deduplicated per (callee, call site).
    pub edges: Vec<Vec<Edge>>,
    pub dangling: Vec<Dangling>,
}

enum Target {
    Fns(Vec<usize>),
    External,
    Dangling,
}

struct Index {
    /// (crate, name) → free fns.
    free: HashMap<(String, String), Vec<usize>>,
    /// (file idx, name) → free fns in that file.
    free_in_file: HashMap<(usize, String), Vec<usize>>,
    /// (qual, name) → methods, across all crates.
    methods: HashMap<(String, String), Vec<usize>>,
    /// name → methods (qual present), for the restricted fallback.
    methods_by_name: HashMap<String, Vec<usize>>,
    /// type name → traits it implements.
    traits_of: HashMap<String, Vec<String>>,
    /// trait name → types implementing it.
    impls_of: HashMap<String, Vec<String>>,
    /// (crate, file stem) → file indices.
    stems: HashMap<(String, String), Vec<usize>>,
    /// All type/trait names defined per crate.
    types: HashSet<(String, String)>,
    /// Type-alias names (any crate).
    aliases: HashSet<String>,
    crate_names: HashSet<String>,
    /// Defining crate of each fn id, for the restricted name fallback.
    crate_of: Vec<String>,
}

impl Graph {
    /// Builds the graph from `(workspace-relative path, source)` pairs.
    /// Harness files (tests/benches/examples) are skipped — they are not
    /// part of the shipped call graph.
    pub fn build(sources: &[(String, String)]) -> Graph {
        let mut files = Vec::new();
        for (path, source) in sources {
            let Some(krate) = crate_of_path(path) else {
                continue;
            };
            let (toks, _comments) = lex(source);
            let in_test = mark_test_tokens(&toks);
            let items = parse_items(&toks, &in_test);
            let mut use_map = HashMap::new();
            let mut ref_crates = HashSet::new();
            ref_crates.insert(krate.clone());
            for u in &items.uses {
                if let Some(head) = u.path.first() {
                    if head.starts_with("dcert_") {
                        ref_crates.insert(head.clone());
                    }
                }
                use_map.insert(u.alias.clone(), u.path.clone());
            }
            files.push(SourceFile {
                stem: stem_of_path(path),
                path: path.clone(),
                krate,
                toks,
                in_test,
                items,
                use_map,
                ref_crates,
            });
        }

        // Function nodes + flows.
        let mut fns = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            for item in &f.items.fns {
                let flow = match item.body {
                    Some(body) => scan_fn(&f.toks, &f.in_test, body),
                    None => FnFlow::default(),
                };
                fns.push(FnNode {
                    file: fi,
                    item: item.clone(),
                    flow,
                });
            }
        }

        let idx = Index::build(&files, &fns);
        let mut edges = vec![Vec::new(); fns.len()];
        let mut dangling = Vec::new();
        for id in 0..fns.len() {
            let node = &fns[id];
            let file = &files[node.file];
            for (ci, call) in node.flow.calls.iter().enumerate() {
                let target = if call.method {
                    resolve_method_call(&idx, file, node, call)
                } else {
                    resolve_path_call(&idx, file, node, &call.path)
                };
                match target {
                    Target::Fns(mut ids) => {
                        ids.sort_unstable();
                        ids.dedup();
                        for callee in ids {
                            edges[id].push(Edge { callee, call: ci });
                        }
                    }
                    Target::External => {}
                    Target::Dangling => dangling.push(Dangling {
                        file: node.file,
                        line: call.line,
                        path: call.display(),
                    }),
                }
            }
        }

        Graph {
            files,
            fns,
            edges,
            dangling,
        }
    }

    /// `Qual::name` or `name`, for witnesses and messages.
    pub fn fn_display(&self, id: usize) -> String {
        let item = &self.fns[id].item;
        match &item.qual {
            Some(q) => format!("{}::{}", q, item.name),
            None => item.name.clone(),
        }
    }

    /// BFS from `entries` over call edges, never entering test functions.
    pub fn reachable(&self, entries: &[usize]) -> Reach {
        let mut visited = vec![false; self.fns.len()];
        let mut parent = vec![None; self.fns.len()];
        let mut queue = VecDeque::new();
        for &e in entries {
            if !visited[e] && !self.fns[e].item.is_test {
                visited[e] = true;
                queue.push_back(e);
            }
        }
        while let Some(id) = queue.pop_front() {
            for edge in &self.edges[id] {
                let to = edge.callee;
                if !visited[to] && !self.fns[to].item.is_test {
                    visited[to] = true;
                    parent[to] = Some(id);
                    queue.push_back(to);
                }
            }
        }
        Reach { visited, parent }
    }

    /// The call path `entry → ... → target` recorded by [`Self::reachable`].
    pub fn witness(&self, reach: &Reach, target: usize) -> String {
        let mut chain = vec![target];
        let mut at = target;
        while let Some(p) = reach.parent[at] {
            chain.push(p);
            at = p;
            if chain.len() > 64 {
                break;
            }
        }
        chain.reverse();
        chain
            .iter()
            .map(|&id| self.fn_display(id))
            .collect::<Vec<_>>()
            .join(" → ")
    }
}

impl Index {
    fn build(files: &[SourceFile], fns: &[FnNode]) -> Index {
        let mut idx = Index {
            free: HashMap::new(),
            free_in_file: HashMap::new(),
            methods: HashMap::new(),
            methods_by_name: HashMap::new(),
            traits_of: HashMap::new(),
            impls_of: HashMap::new(),
            stems: HashMap::new(),
            types: HashSet::new(),
            aliases: HashSet::new(),
            crate_names: HashSet::new(),
            crate_of: fns.iter().map(|n| files[n.file].krate.clone()).collect(),
        };
        for (fi, f) in files.iter().enumerate() {
            idx.crate_names.insert(f.krate.clone());
            idx.stems
                .entry((f.krate.clone(), f.stem.clone()))
                .or_default()
                .push(fi);
            for t in &f.items.types {
                idx.types.insert((f.krate.clone(), t.clone()));
            }
            for a in &f.items.aliases {
                idx.aliases.insert(a.clone());
            }
            for ti in &f.items.trait_impls {
                idx.traits_of
                    .entry(ti.ty.clone())
                    .or_default()
                    .push(ti.trait_name.clone());
                idx.impls_of
                    .entry(ti.trait_name.clone())
                    .or_default()
                    .push(ti.ty.clone());
            }
        }
        for (id, node) in fns.iter().enumerate() {
            let f = &files[node.file];
            match &node.item.qual {
                Some(q) => {
                    idx.methods
                        .entry((q.clone(), node.item.name.clone()))
                        .or_default()
                        .push(id);
                    idx.methods_by_name
                        .entry(node.item.name.clone())
                        .or_default()
                        .push(id);
                }
                None => {
                    idx.free
                        .entry((f.krate.clone(), node.item.name.clone()))
                        .or_default()
                        .push(id);
                    idx.free_in_file
                        .entry((node.file, node.item.name.clone()))
                        .or_default()
                        .push(id);
                }
            }
        }
        idx
    }

    fn is_workspace_type(&self, ty: &str) -> bool {
        self.types.iter().any(|(_, t)| t == ty)
    }

    /// All methods `ty::name`, following trait defaults (when `ty`
    /// implements a trait declaring `name`) and trait dispatch (when
    /// `ty` *is* a trait, every implementing type's `name`).
    fn methods_on(&self, ty: &str, name: &str) -> Vec<usize> {
        let mut hits = Vec::new();
        if let Some(ids) = self.methods.get(&(ty.to_string(), name.to_string())) {
            hits.extend_from_slice(ids);
        }
        if let Some(traits) = self.traits_of.get(ty) {
            for t in traits {
                if let Some(ids) = self.methods.get(&(t.clone(), name.to_string())) {
                    hits.extend_from_slice(ids);
                }
            }
        }
        if let Some(impls) = self.impls_of.get(ty) {
            for t in impls {
                if let Some(ids) = self.methods.get(&(t.clone(), name.to_string())) {
                    hits.extend_from_slice(ids);
                }
            }
        }
        hits
    }
}

/// Base type of a simple initializer: `Ty::ctor(...)` / `Ty { ... }`
/// (skipping leading `&`/`mut`).
fn init_type(toks: &[Tok], rhs: (usize, usize)) -> Option<String> {
    let mut k = rhs.0;
    while k < rhs.1 {
        let t = &toks[k];
        match t.kind {
            crate::lexer::TokKind::Punct if t.text == "&" => k += 1,
            crate::lexer::TokKind::Ident if t.text == "mut" => k += 1,
            crate::lexer::TokKind::Ident => {
                let first = t.text.chars().next()?;
                if !first.is_ascii_uppercase() {
                    return None;
                }
                let next_is = |s: &str| {
                    toks.get(k + 1)
                        .is_some_and(|n| n.kind == crate::lexer::TokKind::Punct && n.text == s)
                };
                if next_is(":") || next_is("{") {
                    return Some(t.text.clone());
                }
                return None;
            }
            _ => return None,
        }
    }
    None
}

/// Infers the receiver type of a method call from `self`, typed params,
/// and simple `let` bindings earlier in the function.
fn receiver_type(node: &FnNode, call: &crate::flow::CallSite) -> Option<String> {
    let recv = call.recv.as_deref()?;
    if recv == "self" {
        return node.item.qual.clone();
    }
    if let Some(p) = node.item.params.iter().find(|p| p.name == recv) {
        if !p.ty.is_empty() {
            return Some(p.ty.clone());
        }
    }
    // Latest binding of that name before the call site.
    let mut best: Option<&crate::flow::LetBind> = None;
    for b in &node.flow.lets {
        if b.name == recv && b.tok < call.tok {
            best = Some(b);
        }
    }
    let b = best?;
    b.ty.clone()
}

fn resolve_method_call(
    idx: &Index,
    file: &SourceFile,
    node: &FnNode,
    call: &crate::flow::CallSite,
) -> Target {
    let name = call.name();
    let mut ty = receiver_type(node, call);
    // `let r = Reader::new(..); r.take(..)` — infer from the initializer
    // when no ascribed type was found.
    if ty.is_none() {
        if let Some(recv) = call.recv.as_deref() {
            for b in &node.flow.lets {
                if b.name == recv && b.tok < call.tok {
                    ty = init_type(&file.toks, b.rhs);
                }
            }
        }
    }
    if let Some(ty) = ty.filter(|t| !t.is_empty()) {
        let hits = idx.methods_on(&ty, name);
        if !hits.is_empty() {
            return Target::Fns(hits);
        }
        if idx.is_workspace_type(&ty) {
            // A workspace type without that method: derive/std-trait
            // surface (Clone, Debug, Iterator...) — external.
            return Target::External;
        }
    }
    // Unknown receiver: name-based fallback, restricted to referenced
    // crates and uncommon names.
    if COMMON_EXTERNAL_METHODS.contains(&name) {
        return Target::External;
    }
    let Some(candidates) = idx.methods_by_name.get(name) else {
        return Target::External;
    };
    let hits: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&id| file.ref_crates.contains(&idx.crate_of[id]))
        .collect();
    if hits.is_empty() {
        return Target::External;
    }
    Target::Fns(hits)
}

fn upper(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

fn resolve_path_call(idx: &Index, file: &SourceFile, node: &FnNode, segs: &[String]) -> Target {
    let Some(name) = segs.last() else {
        return Target::External;
    };
    if upper(name) {
        // Tuple-struct / enum-variant constructor (clippy enforces
        // snake_case fn names workspace-wide).
        return Target::External;
    }
    if segs.len() == 1 {
        if let Some(ids) = idx.free_in_file.get(&(node.file, name.clone())) {
            return Target::Fns(ids.clone());
        }
        if let Some(ids) = idx.free.get(&(file.krate.clone(), name.clone())) {
            return Target::Fns(ids.clone());
        }
        if let Some(path) = file.use_map.get(name) {
            return resolve_full_path(idx, file, path);
        }
        return Target::External;
    }
    let head = segs[0].as_str();
    match head {
        "Self" => match &node.item.qual {
            Some(q) => resolve_type_assoc(idx, q, name),
            None => Target::External,
        },
        "crate" | "self" | "super" => resolve_in_crate(idx, &file.krate, segs),
        "std" | "core" | "alloc" => Target::External,
        _ if idx.crate_names.contains(head) => resolve_in_crate(idx, head, segs),
        _ if file.use_map.contains_key(head) => {
            let mut full = file.use_map[head].clone();
            full.extend(segs[1..].iter().cloned());
            resolve_full_path(idx, file, &full)
        }
        _ if upper(head) => resolve_type_assoc(idx, head, name),
        _ => {
            // `module::fn` in the current crate.
            if let Some(fids) = idx.stems.get(&(file.krate.clone(), head.to_string())) {
                let mut hits = Vec::new();
                for &fi in fids {
                    if let Some(ids) = idx.free_in_file.get(&(fi, name.clone())) {
                        hits.extend_from_slice(ids);
                    }
                }
                if !hits.is_empty() {
                    return Target::Fns(hits);
                }
                return Target::Dangling;
            }
            // Inline `mod` or directory module: fall back to a crate-wide
            // free-fn lookup before assuming external.
            if let Some(ids) = idx.free.get(&(file.krate.clone(), name.clone())) {
                return Target::Fns(ids.clone());
            }
            Target::External
        }
    }
}

fn resolve_type_assoc(idx: &Index, ty: &str, name: &str) -> Target {
    let hits = idx.methods_on(ty, name);
    if !hits.is_empty() {
        return Target::Fns(hits);
    }
    if idx.is_workspace_type(ty) && !idx.aliases.contains(ty) && !DERIVED_METHODS.contains(&name) {
        return Target::Dangling;
    }
    Target::External
}

/// Resolves a path whose head segment pins the crate: either a literal
/// crate keyword already replaced, or a `use`-expanded absolute path.
fn resolve_full_path(idx: &Index, file: &SourceFile, path: &[String]) -> Target {
    let Some(head) = path.first() else {
        return Target::External;
    };
    match head.as_str() {
        "crate" | "self" | "super" => resolve_in_crate(idx, &file.krate, path),
        "std" | "core" | "alloc" => Target::External,
        _ if idx.crate_names.contains(head.as_str()) => resolve_in_crate(idx, head, path),
        _ if upper(head) => {
            // `use Type as T; T::name(...)` — the alias expanded straight
            // to a bare type name.
            let name = path.last().map(String::as_str).unwrap_or("");
            resolve_type_assoc(idx, head, name)
        }
        _ => Target::External,
    }
}

/// Resolves `<crate>::segments::name` inside a known workspace crate.
fn resolve_in_crate(idx: &Index, krate: &str, segs: &[String]) -> Target {
    let Some(name) = segs.last() else {
        return Target::External;
    };
    if upper(name) {
        return Target::External;
    }
    // `crate::module::Type::assoc`.
    if segs.len() >= 2 && upper(&segs[segs.len() - 2]) {
        return resolve_type_assoc(idx, &segs[segs.len() - 2], name);
    }
    // Prefer the named module file when the path has one.
    if segs.len() >= 3 {
        let module = &segs[segs.len() - 2];
        if let Some(fids) = idx.stems.get(&(krate.to_string(), module.clone())) {
            let mut hits = Vec::new();
            for &fi in fids {
                if let Some(ids) = idx.free_in_file.get(&(fi, name.clone())) {
                    hits.extend_from_slice(ids);
                }
            }
            if !hits.is_empty() {
                return Target::Fns(hits);
            }
        }
    }
    if let Some(ids) = idx.free.get(&(krate.to_string(), name.clone())) {
        return Target::Fns(ids.clone());
    }
    Target::Dangling
}
