//! Per-function dataflow facts: call sites (with argument spans and
//! receiver idents), macro invocations, panic sites, and `let` bindings.
//!
//! Everything here is a token-level approximation — see the module docs
//! on [`crate::parse`] for the philosophy. The facts feed the call graph
//! ([`crate::graph`]) and the workspace rules ([`crate::rules`]).

use crate::lexer::{Tok, TokKind};
use crate::parse::matching;

/// Keywords that can be followed by `(` without being a call.
const NON_CALL_KEYWORDS: [&str; 20] = [
    "if", "while", "match", "for", "return", "in", "as", "let", "mut", "ref", "move", "else", "fn",
    "impl", "pub", "use", "where", "loop", "break", "continue",
];

/// One call expression: `name(...)`, `path::name(...)`, or `.name(...)`.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Token index of the callee name.
    pub tok: usize,
    pub line: u32,
    pub col: u32,
    /// Path segments, last one being the callee name. Method calls have
    /// a single segment.
    pub path: Vec<String>,
    /// `.name(...)` form.
    pub method: bool,
    /// Simple receiver ident for method calls (`self.f(...)` → `self`,
    /// `x.f(...)` → `x`); `None` when the receiver is an expression.
    pub recv: Option<String>,
    /// Token ranges (start, end-exclusive) of top-level arguments.
    pub args: Vec<(usize, usize)>,
}

impl CallSite {
    pub fn name(&self) -> &str {
        self.path.last().map(String::as_str).unwrap_or("")
    }

    pub fn display(&self) -> String {
        if self.method {
            format!(".{}", self.name())
        } else {
            self.path.join("::")
        }
    }
}

/// One macro invocation `name!(...)` / `name![...]` / `name!{...}`.
#[derive(Debug, Clone)]
pub struct MacroSite {
    pub tok: usize,
    pub line: u32,
    pub col: u32,
    pub name: String,
    /// Token range (start, end-exclusive) of the macro body.
    pub body: (usize, usize),
}

/// One construct that can panic at runtime.
#[derive(Debug, Clone)]
pub struct PanicSite {
    pub line: u32,
    pub col: u32,
    /// Human-readable label: `.unwrap()`, `panic!`, `slice indexing`, ...
    pub what: &'static str,
}

/// One simple `let [mut] name [: Ty] = rhs;` binding.
#[derive(Debug, Clone)]
pub struct LetBind {
    pub name: String,
    /// Base name of the ascribed type, when present.
    pub ty: Option<String>,
    /// Token index of the bound name.
    pub tok: usize,
    /// Token range (start, end-exclusive) of the initializer.
    pub rhs: (usize, usize),
}

/// All facts scanned from one function body.
#[derive(Debug, Clone, Default)]
pub struct FnFlow {
    pub calls: Vec<CallSite>,
    pub macros: Vec<MacroSite>,
    pub panics: Vec<PanicSite>,
    pub lets: Vec<LetBind>,
}

fn is_p(toks: &[Tok], i: usize, s: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == s)
}

fn is_ident(toks: &[Tok], i: usize) -> bool {
    toks.get(i).is_some_and(|t| t.kind == TokKind::Ident)
}

/// Scans the body token range `(open_brace, close_brace)` of one
/// function. Tokens marked `in_test` are skipped entirely.
pub fn scan_fn(toks: &[Tok], in_test: &[bool], body: (usize, usize)) -> FnFlow {
    let mut flow = FnFlow::default();
    let (start, end) = (body.0 + 1, body.1.min(toks.len()));
    let mut k = start;
    while k < end {
        if in_test.get(k).copied().unwrap_or(false) {
            k += 1;
            continue;
        }
        let t = &toks[k];
        if t.kind == TokKind::Ident {
            // Macro invocation.
            if is_p(toks, k + 1, "!")
                && (is_p(toks, k + 2, "(") || is_p(toks, k + 2, "[") || is_p(toks, k + 2, "{"))
            {
                let (open_s, close_s) = match toks[k + 2].text.as_str() {
                    "(" => ("(", ")"),
                    "[" => ("[", "]"),
                    _ => ("{", "}"),
                };
                let close = matching(toks, k + 2, open_s, close_s).unwrap_or(end);
                if matches!(
                    t.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) {
                    flow.panics.push(PanicSite {
                        line: t.line,
                        col: t.col,
                        what: panic_macro_label(&t.text),
                    });
                }
                flow.macros.push(MacroSite {
                    tok: k,
                    line: t.line,
                    col: t.col,
                    name: t.text.clone(),
                    body: (k + 3, close),
                });
                // Scan *inside* the macro body too (vec![f(x)] etc.), so
                // just step past the `!` and opening bracket.
                k += 3;
                continue;
            }
            // `.unwrap(` / `.expect(`.
            if (t.text == "unwrap" || t.text == "expect")
                && is_p(toks, k.wrapping_sub(1), ".")
                && is_p(toks, k + 1, "(")
            {
                flow.panics.push(PanicSite {
                    line: t.line,
                    col: t.col,
                    what: if t.text == "unwrap" {
                        ".unwrap()"
                    } else {
                        ".expect()"
                    },
                });
                k += 1;
                continue;
            }
            // Call expression: ident, optional turbofish, then `(`.
            let mut paren = None;
            if is_p(toks, k + 1, "(") {
                paren = Some(k + 1);
            } else if is_p(toks, k + 1, ":") && is_p(toks, k + 2, ":") && is_p(toks, k + 3, "<") {
                let after = skip_angle(toks, k + 3, end);
                if is_p(toks, after, "(") {
                    paren = Some(after);
                }
            }
            if let Some(open) = paren {
                if !NON_CALL_KEYWORDS.contains(&t.text.as_str()) && !is_fn_decl(toks, k) {
                    let close = matching(toks, open, "(", ")").unwrap_or(end);
                    let args = split_args(toks, open, close);
                    if is_p(toks, k.wrapping_sub(1), ".") {
                        flow.calls.push(CallSite {
                            tok: k,
                            line: t.line,
                            col: t.col,
                            path: vec![t.text.clone()],
                            method: true,
                            recv: simple_receiver(toks, k),
                            args,
                        });
                    } else {
                        flow.calls.push(CallSite {
                            tok: k,
                            line: t.line,
                            col: t.col,
                            path: path_back(toks, k),
                            method: false,
                            recv: None,
                            args,
                        });
                    }
                }
                k += 1;
                continue;
            }
            // `let` binding.
            if t.text == "let" {
                if let Some(bind) = parse_let(toks, k, end) {
                    flow.lets.push(bind);
                }
                k += 1;
                continue;
            }
        }
        // Index/slice expression `expr[...]` — a panic site unless the
        // index is a single literal (fixed-size-array access like
        // `seed[0]` cannot fail at the sizes this codebase uses; range
        // and variable indexes can).
        if t.kind == TokKind::Punct && t.text == "[" && k >= 1 {
            let p = &toks[k - 1];
            let indexable = match p.kind {
                TokKind::Ident => !crate::flow::NON_INDEX_KEYWORDS.contains(&p.text.as_str()),
                TokKind::Punct => p.text == ")" || p.text == "]" || p.text == "?",
                _ => false,
            };
            if indexable {
                let close = matching(toks, k, "[", "]").unwrap_or(end);
                let single_literal = close == k + 2 && toks[k + 1].kind == TokKind::Num;
                // `&x[..]` (full-range slicing) cannot fail either.
                let full_range = close == k + 3
                    && toks[k + 1].kind == TokKind::Punct
                    && toks[k + 1].text == "."
                    && toks[k + 2].kind == TokKind::Punct
                    && toks[k + 2].text == ".";
                if !single_literal && !full_range {
                    flow.panics.push(PanicSite {
                        line: t.line,
                        col: t.col,
                        what: "slice indexing",
                    });
                }
            }
        }
        k += 1;
    }
    flow
}

/// Identifiers after which a `[` cannot be an index expression.
pub const NON_INDEX_KEYWORDS: [&str; 17] = [
    "return", "break", "continue", "in", "if", "else", "match", "move", "let", "mut", "ref",
    "const", "static", "where", "for", "dyn", "impl",
];

fn panic_macro_label(name: &str) -> &'static str {
    match name {
        "panic" => "panic!",
        "unreachable" => "unreachable!",
        "todo" => "todo!",
        _ => "unimplemented!",
    }
}

/// Is `toks[k]` the name in a nested `fn name(...)` declaration?
fn is_fn_decl(toks: &[Tok], k: usize) -> bool {
    k >= 1 && toks[k - 1].kind == TokKind::Ident && toks[k - 1].text == "fn"
}

/// Skips a balanced `<...>` starting at `toks[i] == "<"`; returns the
/// index just past the matching `>`.
fn skip_angle(toks: &[Tok], i: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut k = i;
    while k < end {
        if toks[k].kind == TokKind::Punct {
            match toks[k].text.as_str() {
                "<" => depth += 1,
                ">" if !is_p(toks, k.wrapping_sub(1), "-") => {
                    depth -= 1;
                    if depth == 0 {
                        return k + 1;
                    }
                }
                _ => {}
            }
        }
        k += 1;
    }
    end
}

/// Walks back from a callee name over `path::segments` (including
/// turbofish like `Vec::<u8>::decode`), returning the full path.
fn path_back(toks: &[Tok], name_at: usize) -> Vec<String> {
    let mut segs = vec![toks[name_at].text.clone()];
    let mut k = name_at as isize;
    let p = |i: isize, s: &str| i >= 0 && is_p(toks, i as usize, s);
    while p(k - 1, ":") && p(k - 2, ":") {
        let mut b = k - 3;
        // Skip a turbofish group `::<...>` backwards (`Vec::<u8>::decode`).
        if p(b, ">") && !p(b - 1, "-") {
            let mut depth = 0i32;
            while b >= 0 {
                if p(b, ">") && !p(b - 1, "-") {
                    depth += 1;
                } else if p(b, "<") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                b -= 1;
            }
            if depth != 0 || !(p(b - 1, ":") && p(b - 2, ":")) {
                return segs;
            }
            b -= 3;
        }
        if b >= 0 && toks[b as usize].kind == TokKind::Ident {
            segs.insert(0, toks[b as usize].text.clone());
            k = b;
        } else {
            break;
        }
    }
    segs
}

/// For `x.name(` / `self.name(`, the receiver ident — but only when it is
/// itself a bare ident (not a field chain or call result).
fn simple_receiver(toks: &[Tok], name_at: usize) -> Option<String> {
    if name_at < 2 {
        return None;
    }
    let r = &toks[name_at - 2];
    if r.kind != TokKind::Ident {
        return None;
    }
    // `a.b.name(` → receiver is the field `b`, whose type is unknown.
    // `self.x.name(` likewise. Only a bare ident (or `self`) qualifies.
    if name_at >= 3 && is_p(toks, name_at - 3, ".") {
        return None;
    }
    Some(r.text.clone())
}

fn split_args(toks: &[Tok], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = open + 1;
    let mut k = open + 1;
    while k < close {
        if toks[k].kind == TokKind::Punct {
            match toks[k].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "," if depth == 0 => {
                    if k > start {
                        out.push((start, k));
                    }
                    start = k + 1;
                }
                _ => {}
            }
        }
        k += 1;
    }
    if close > start {
        out.push((start, close));
    }
    out
}

/// Parses `let [mut] name [: Ty] = rhs ;` starting at the `let` token.
/// Complex patterns (tuples, destructuring) are skipped — the rules that
/// consume bindings only track simple names.
fn parse_let(toks: &[Tok], at: usize, end: usize) -> Option<LetBind> {
    let mut k = at + 1;
    while is_ident(toks, k) && (toks[k].text == "mut" || toks[k].text == "ref") {
        k += 1;
    }
    if !is_ident(toks, k) {
        return None;
    }
    let name_at = k;
    let name = toks[k].text.clone();
    k += 1;
    let mut ty = None;
    if is_p(toks, k, ":") && !is_p(toks, k + 1, ":") {
        // Ascribed type up to the `=` at depth 0.
        let ty_start = k + 1;
        let mut depth = 0i32;
        while k < end {
            if toks[k].kind == TokKind::Punct {
                match toks[k].text.as_str() {
                    "(" | "[" | "{" | "<" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ">" if !is_p(toks, k.wrapping_sub(1), "-") => depth -= 1,
                    "=" if depth <= 0 && !is_p(toks, k + 1, "=") => break,
                    ";" if depth <= 0 => return None,
                    _ => {}
                }
            }
            k += 1;
        }
        ty = crate::parse::base_type_name(toks.get(ty_start..k)?);
    }
    // Require a plain `=` (not `==`) at the binding position.
    if !is_p(toks, k, "=") || is_p(toks, k + 1, "=") {
        return None;
    }
    let rhs_start = k + 1;
    let mut depth = 0i32;
    let mut e = rhs_start;
    while e < end {
        if toks[e].kind == TokKind::Punct {
            match toks[e].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth <= 0 => break,
                _ => {}
            }
        }
        e += 1;
    }
    Some(LetBind {
        name,
        ty,
        tok: name_at,
        rhs: (rhs_start, e),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::mark_test_tokens;
    use crate::lexer::lex;
    use crate::parse::parse_items;

    fn flow_of(src: &str) -> FnFlow {
        let (toks, _) = lex(src);
        let in_test = mark_test_tokens(&toks);
        let items = parse_items(&toks, &in_test);
        let body = items.fns[0].body.expect("fn body");
        scan_fn(&toks, &in_test, body)
    }

    #[test]
    fn finds_calls_paths_and_receivers() {
        let f = flow_of(
            "fn f(&self, r: &mut Reader) {\n\
               let x = sealing::seal(a, b);\n\
               self.publish(x);\n\
               r.take_len()?;\n\
               Vec::<u8>::with_capacity(n);\n\
               helper(1, 2);\n\
             }",
        );
        let names: Vec<_> = f.calls.iter().map(|c| c.display()).collect();
        assert_eq!(
            names,
            [
                "sealing::seal",
                ".publish",
                ".take_len",
                "Vec::with_capacity",
                "helper"
            ]
        );
        assert_eq!(f.calls[1].recv.as_deref(), Some("self"));
        assert_eq!(f.calls[2].recv.as_deref(), Some("r"));
        assert_eq!(f.calls[0].args.len(), 2);
        assert_eq!(f.calls[4].args.len(), 2);
    }

    #[test]
    fn finds_panic_sites_but_not_literal_indexing() {
        let f = flow_of(
            "fn f(v: &[u8], i: usize) {\n\
               v.get(i).unwrap();\n\
               let _ = v[i];\n\
               let _ = v[0];\n\
               let _ = &v[..];\n\
               let _ = &v[..i];\n\
               panic!(\"no\");\n\
             }",
        );
        let what: Vec<_> = f.panics.iter().map(|p| p.what).collect();
        // `v[0]` (literal index) and `&v[..]` (full range) are exempt;
        // `v[i]` and `&v[..i]` are not.
        assert_eq!(
            what,
            [".unwrap()", "slice indexing", "slice indexing", "panic!"]
        );
    }

    #[test]
    fn finds_lets_with_types_and_macros() {
        let f = flow_of(
            "fn f() {\n\
               let mut out: Vec<u8> = Vec::new();\n\
               let n = r.take_len()?;\n\
               let buf = vec![0u8; n];\n\
               format!(\"{n}\");\n\
             }",
        );
        assert_eq!(f.lets.len(), 3);
        assert_eq!(f.lets[0].name, "out");
        assert_eq!(f.lets[0].ty.as_deref(), Some("Vec"));
        assert_eq!(f.lets[1].name, "n");
        let macros: Vec<_> = f.macros.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(macros, ["vec", "format"]);
    }
}
