//! A minimal Rust lexer — just enough fidelity for rule scanning.
//!
//! The linter must never confuse a banned identifier inside a string
//! literal or comment with real code, and must never mis-lex a lifetime as
//! a char literal (or vice versa), because `#[cfg(test)]` block detection
//! and the panic-freedom rules both walk this token stream. Everything
//! else (numeric suffix details, exact punct joining) is irrelevant to the
//! rules and deliberately kept loose.

/// Token classes the rule engine distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, `r#type`).
    Ident,
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct,
    /// String, byte-string, or raw-string literal.
    Str,
    /// Character or byte literal.
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Numeric literal.
    Num,
}

/// One lexed token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

/// A comment, kept out of the token stream but retained for
/// `dcert-lint:` directive parsing.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

/// Lexes `source` into tokens and comments.
///
/// Unterminated literals/comments simply end the affected token at EOF;
/// the real compiler rejects such files long before the linter matters.
pub fn lex(source: &str) -> (Vec<Tok>, Vec<Comment>) {
    let chars: Vec<char> = source.chars().collect();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);

        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }

        // Comments.
        if c == '/' && i + 1 < chars.len() {
            match chars[i + 1] {
                '/' => {
                    let start = i;
                    while i < chars.len() && chars[i] != '\n' {
                        bump!();
                    }
                    comments.push(Comment {
                        text: chars[start..i].iter().collect(),
                        line: tline,
                    });
                    continue;
                }
                '*' => {
                    let start = i;
                    let mut depth = 0usize;
                    while i < chars.len() {
                        if chars[i] == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
                            depth += 1;
                            bump!();
                            bump!();
                        } else if chars[i] == '*' && i + 1 < chars.len() && chars[i + 1] == '/' {
                            depth -= 1;
                            bump!();
                            bump!();
                            if depth == 0 {
                                break;
                            }
                        } else {
                            bump!();
                        }
                    }
                    comments.push(Comment {
                        text: chars[start..i].iter().collect(),
                        line: tline,
                    });
                    continue;
                }
                _ => {}
            }
        }

        // Raw strings / raw identifiers / byte strings: r"..", r#".."#,
        // br#".."#, b"..", rb is not a thing but br is; c"..".
        if c == 'r' || c == 'b' || c == 'c' {
            // Look ahead past an optional second prefix letter.
            let mut j = i + 1;
            if j < chars.len() && (chars[j] == 'r' || chars[j] == 'b') && c == 'b' {
                j += 1;
            } else if j < chars.len() && chars[j] == 'b' && c == 'r' {
                // `rb` prefix does not exist; fall through to ident.
                j = i + 1;
            }
            // Raw identifier r#ident (not r#" which is a raw string).
            if c == 'r'
                && i + 1 < chars.len()
                && chars[i + 1] == '#'
                && i + 2 < chars.len()
                && is_ident_start(chars[i + 2])
            {
                bump!(); // r
                bump!(); // #
                let start = i;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    bump!();
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: chars[start..i].iter().collect(),
                    line: tline,
                    col: tcol,
                });
                continue;
            }
            // Raw string r##"..."## (with any number of #).
            let has_raw = c == 'r' || (j > i + 1 && chars[j - 1] == 'r');
            if has_raw && j < chars.len() && (chars[j] == '#' || chars[j] == '"') {
                let mut hashes = 0usize;
                let mut k = j;
                while k < chars.len() && chars[k] == '#' {
                    hashes += 1;
                    k += 1;
                }
                if k < chars.len() && chars[k] == '"' {
                    // Consume prefix + opening quote.
                    while i <= k {
                        bump!();
                    }
                    // Scan to closing quote followed by `hashes` #s.
                    'raw: while i < chars.len() {
                        if chars[i] == '"' {
                            let mut h = 0usize;
                            while h < hashes && i + 1 + h < chars.len() && chars[i + 1 + h] == '#' {
                                h += 1;
                            }
                            if h == hashes {
                                for _ in 0..=hashes {
                                    bump!();
                                }
                                break 'raw;
                            }
                        }
                        bump!();
                    }
                    toks.push(Tok {
                        kind: TokKind::Str,
                        text: String::new(),
                        line: tline,
                        col: tcol,
                    });
                    continue;
                }
            }
            // b"..." / b'.' / c"..."
            if (c == 'b' || c == 'c') && i + 1 < chars.len() && chars[i + 1] == '"' {
                bump!();
                lex_quoted(&chars, &mut i, &mut line, &mut col, '"');
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line: tline,
                    col: tcol,
                });
                continue;
            }
            if c == 'b' && i + 1 < chars.len() && chars[i + 1] == '\'' {
                bump!();
                lex_quoted(&chars, &mut i, &mut line, &mut col, '\'');
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line: tline,
                    col: tcol,
                });
                continue;
            }
            // Fall through: plain identifier starting with r/b/c.
        }

        // Identifiers and keywords.
        if is_ident_start(c) {
            let start = i;
            while i < chars.len() && is_ident_continue(chars[i]) {
                bump!();
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: chars[start..i].iter().collect(),
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Numbers (loose: consume alphanumerics, `.` handled by puncts so
        // `0..4` ranges stay three tokens, and `1.5` stays one).
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len()
                && (chars[i].is_ascii_alphanumeric()
                    || chars[i] == '_'
                    || (chars[i] == '.'
                        && i + 1 < chars.len()
                        && chars[i + 1].is_ascii_digit()
                        && !chars[start..i].contains(&'.')))
            {
                bump!();
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text: chars[start..i].iter().collect(),
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Strings.
        if c == '"' {
            lex_quoted(&chars, &mut i, &mut line, &mut col, '"');
            toks.push(Tok {
                kind: TokKind::Str,
                text: String::new(),
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Lifetime or char literal.
        if c == '\'' {
            // 'x' / '\n' → char; 'ident (no closing quote) → lifetime.
            if i + 1 < chars.len() && chars[i + 1] == '\\' {
                lex_quoted(&chars, &mut i, &mut line, &mut col, '\'');
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line: tline,
                    col: tcol,
                });
                continue;
            }
            if i + 1 < chars.len() && is_ident_start(chars[i + 1]) {
                let mut k = i + 1;
                while k < chars.len() && is_ident_continue(chars[k]) {
                    k += 1;
                }
                if k < chars.len() && chars[k] == '\'' && k == i + 2 {
                    // Exactly one ident char then a quote: char literal 'a'.
                    lex_quoted(&chars, &mut i, &mut line, &mut col, '\'');
                    toks.push(Tok {
                        kind: TokKind::Char,
                        text: String::new(),
                        line: tline,
                        col: tcol,
                    });
                } else {
                    // Lifetime.
                    bump!();
                    let start = i;
                    while i < chars.len() && is_ident_continue(chars[i]) {
                        bump!();
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: chars[start..i].iter().collect(),
                        line: tline,
                        col: tcol,
                    });
                }
                continue;
            }
            // '(' etc: single-char literal of punctuation.
            lex_quoted(&chars, &mut i, &mut line, &mut col, '\'');
            toks.push(Tok {
                kind: TokKind::Char,
                text: String::new(),
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Everything else: single punct.
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line: tline,
            col: tcol,
        });
        bump!();
    }

    (toks, comments)
}

/// Consumes a quoted literal starting at the opening quote, honoring
/// backslash escapes.
fn lex_quoted(chars: &[char], i: &mut usize, line: &mut u32, col: &mut u32, quote: char) {
    macro_rules! bump {
        () => {{
            if chars[*i] == '\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
            *i += 1;
        }};
    }
    bump!(); // opening quote
    while *i < chars.len() {
        if chars[*i] == '\\' {
            bump!();
            if *i < chars.len() {
                bump!();
            }
            continue;
        }
        if chars[*i] == quote {
            bump!();
            return;
        }
        bump!();
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}
