//! dcert-lint fixture (r7, violating half): allocations sized straight
//! from attacker-controlled wire lengths. Analyzed as
//! `crates/serve/src/codec_frame.rs`.

pub fn decode_batch(r: &mut Reader<'_>) -> Vec<u8> {
    let len = r.take_len();
    let mut out = Vec::with_capacity(len);
    let pad = vec![0u8; len];
    out.extend(pad);
    out
}
