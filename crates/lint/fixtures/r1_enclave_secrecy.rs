//! Fixture: R1 must fire on enclave-secret identifiers outside the
//! trusted modules. Scanned by the linter's self-tests, never compiled.
#![allow(unused)]

// Importing the trusted-program traits enables an ECall bypass.
use dcert_sgx::{TrustedApp, Sealable};

struct Operator;

impl Operator {
    fn steal_key(&self, kp: &dcert_primitives::keys::Keypair) -> SecretSeed {
        kp.to_secret_bytes()
    }
    fn poke_state(&self, app: &mut AppHandle, bytes: &[u8]) {
        app.import_state(bytes);
    }
}

use ed25519_dalek::SigningKey;
