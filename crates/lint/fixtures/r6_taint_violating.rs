//! dcert-lint fixture (r6, violating half): secret material formatted
//! and shipped across the trust boundary through a local helper.
//! Analyzed as `crates/sgx/src/keyops.rs`.

use dcert_obs::audit::publish_debug;

pub fn derive_and_leak(platform_secret: &[u8; 32]) -> u64 {
    expand(platform_secret)
}

fn expand(material: &[u8; 32]) -> u64 {
    let line = format!("expanding {:?}", material);
    publish_debug(line.as_bytes());
    line.len() as u64
}
