//! Fixture: R2 must fire on every panic-capable construct in a
//! verifier path — and stay silent on the test module at the bottom.
#![allow(unused)]

struct Client { ias: Ias }

impl Client {
    fn attest_bypass(&self, quote: &Quote) -> Report {
        self.ias.attest(&quote).unwrap() // regression: client-side attestation panic
    }

    fn decode(bytes: &[u8]) -> Header {
        Header::decode_all(bytes)
            .expect("malformed header")
    }

    fn dispatch(&self, tag: u8) {
        match tag {
            0 => panic!("bad tag"),
            1 => (),
            _ => unreachable!(),
        }
    }

    fn first_sig(&self, proof: &[Sig], bytes: &[u8]) -> (Sig, Sig) {
        (
            proof[0].clone(),
            // Slicing is indexing too.
            bytes[..4].to_vec(),
        )
    }

    fn shorten(&self, height: u64) -> u32 {
        height as u32
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let w: Option<u8> = Some(1);
        w.unwrap();
        let proof = vec![1u8];
        let _ = proof[0];
    }
}
