//! dcert-lint fixture (r5 entry): a verifier entry point calling across
//! crates into a helper. Analyzed as `crates/core/src/superlight.rs`.

use dcert_chain::helpers::find_header;

pub struct Client;

impl Client {
    pub fn verify_header(&self, raw: &[u8]) -> u64 {
        check_shape(raw)
    }
}

fn check_shape(raw: &[u8]) -> u64 {
    find_header(raw)
}
