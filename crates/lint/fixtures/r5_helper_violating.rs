//! dcert-lint fixture (r5, violating half): cross-crate helper whose
//! leaf panics on malformed input. Analyzed as
//! `crates/chain/src/helpers.rs`.

pub fn find_header(raw: &[u8]) -> u64 {
    decode_at(raw)
}

fn decode_at(raw: &[u8]) -> u64 {
    let idx = raw.len() - 1;
    u64::from(raw[idx])
}
