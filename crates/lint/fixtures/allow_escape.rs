//! Fixture: the allow escape hatch — a documented escape suppresses
//! and is counted; a reasonless escape suppresses nothing and is
//! itself reported as malformed.
#![allow(unused)]
fn head(bytes: &[u8]) -> u8 {
    // dcert-lint: allow(r2-panic-freedom, reason = "length checked on entry")
    bytes[0]
}

// dcert-lint: allow(r2-panic-freedom)
fn tail(bytes: &[u8]) -> u8 { bytes[bytes.len() - 1] }
