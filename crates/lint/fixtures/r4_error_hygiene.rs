//! Fixture: R4 must fire on stringly/boxed error returns and stay
//! silent on typed ones.
#![allow(unused)]
fn load(bytes: &[u8]) -> Result<(), String> {
    Ok(())
}

// Boxed errors erase the failure mode.
fn parse(bytes: &[u8]) -> Result<u8, Box<dyn std::error::Error>> {
    Ok(0)
}

trait Importer {
    // Trait methods count: every implementor inherits the stringly
    // error.
    fn restore(&mut self, state: &[u8]) -> Result<(), String>;
}

struct Codec;

fn typed(bytes: &[u8]) -> Result<Vec<u8>, CodecError> {
    Ok(bytes.to_vec())
}

// A String *payload* with a typed error is fine.
fn name() -> Result<String, CodecError> {
    Ok(String::new())
}
