//! dcert-lint fixture (r6, clean half): secret material stays inside
//! the trusted boundary except through the allow-listed hash kernel.
//! Analyzed as `crates/sgx/src/keyops.rs`.

use dcert_primitives::hash::hash_concat;

pub fn derive(platform_secret: &[u8; 32], measurement: &[u8; 32]) -> [u8; 32] {
    let material = expand(platform_secret);
    hash_concat(&[&material, measurement])
}

fn expand(secret_material: &[u8; 32]) -> [u8; 32] {
    let mut out = [0u8; 32];
    out.copy_from_slice(secret_material);
    out
}
