//! dcert-lint fixture (r5, clean half): the same helper API rejecting
//! malformed input without any panic path. Analyzed as
//! `crates/chain/src/helpers.rs`.

pub fn find_header(raw: &[u8]) -> u64 {
    decode_at(raw)
}

fn decode_at(raw: &[u8]) -> u64 {
    raw.last().copied().map(u64::from).unwrap_or(0)
}
