//! dcert-lint fixture (r7, clean half): the same decoder with the
//! lengths clamped or validated before any allocation. Analyzed as
//! `crates/serve/src/codec_frame.rs`.

pub const MAX_FRAME: usize = 4096;

pub fn decode_batch(r: &mut Reader<'_>) -> Vec<u8> {
    let len = r.take_len();
    let mut out = Vec::with_capacity(len.min(MAX_FRAME));
    if len > MAX_FRAME {
        return out;
    }
    let pad = vec![0u8; len];
    out.extend(pad);
    out
}
