//! dcert-lint fixture (r6 support): an untrusted observability sink.
//! Analyzed as `crates/obs/src/audit.rs`.

pub fn publish_debug(bytes: &[u8]) -> usize {
    bytes.len()
}
