//! dcert-lint fixture (r8, clean half): the head commit precedes the
//! unlink, and recovery-closure unlinks are exempt. Analyzed as
//! `crates/store/src/pruner.rs`.

use std::io;
use std::path::{Path, PathBuf};

pub struct Pruner {
    dir: PathBuf,
}

impl Pruner {
    pub fn open(dir: &Path) -> io::Result<Pruner> {
        drop_orphan(dir)?;
        Ok(Pruner {
            dir: dir.to_path_buf(),
        })
    }

    pub fn prune_below(&mut self, height: u64) -> io::Result<()> {
        self.sync()?;
        let victim = self.dir.join(format!("{height}.seg"));
        std::fs::remove_file(victim)
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn drop_orphan(dir: &Path) -> io::Result<()> {
    match std::fs::remove_file(dir.join("orphan.seg")) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}
