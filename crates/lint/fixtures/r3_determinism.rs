//! Fixture: R3 must fire on every ambient time/randomness source, and
//! honor a documented allow escape.
#![allow(unused)]
use std::time::Instant;

fn elapsed_ms() -> u64 {
    // Ambient wall clock breaks seeded replay:
    let t = Instant::now();
    0
}

fn stamp() -> u64 { read(SystemTime) }

fn roll() -> u64 { rand::thread_rng().next_u64() }

fn seed() { rand::rngs::OsRng.fill_bytes(&mut [0u8; 32]); }

fn ambient_rng() -> StdRng { StdRng::from_entropy() }

// dcert-lint: allow(r3-determinism, reason = "key generation entropy; replay paths inject seeds")
fn keygen_entropy() -> u64 { entropy(rand::rngs::OsRng) }
