//! dcert-lint fixture (r8, violating half): segment unlink precedes the
//! head-commit sync. Analyzed as `crates/store/src/pruner.rs`.

use std::io;
use std::path::PathBuf;

pub struct Pruner {
    dir: PathBuf,
}

impl Pruner {
    pub fn prune_below(&mut self, height: u64) -> io::Result<()> {
        let victim = self.dir.join(format!("{height}.seg"));
        std::fs::remove_file(victim)?;
        self.sync()
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}
