//! dcert-lint fixture (r6 support): the allow-listed hash kernel.
//! Analyzed as `crates/primitives/src/hash.rs`.

pub fn hash_concat(parts: &[&[u8]]) -> [u8; 32] {
    let mut acc = [0u8; 32];
    for p in parts {
        for (slot, b) in acc.iter_mut().zip(p.iter()) {
            *slot ^= *b;
        }
    }
    acc
}
