//! Software SGX enclave simulator.
//!
//! The paper's prototype runs its certificate-signing program inside a real
//! Intel SGX enclave via the Apache Teaclave SDK. No SGX hardware is
//! available here, so this crate reproduces — in software — exactly the
//! properties DCert's algorithms and measurements rely on:
//!
//! 1. **Trust boundary** ([`enclave::Enclave`]): the trusted program and
//!    its secrets live behind an opaque byte-level ECall interface; nothing
//!    outside the enclave can observe or forge its internal state. The
//!    enclave key `sk_enc` is generated inside and never crosses the
//!    boundary.
//! 2. **Measurement & attestation** ([`attestation`]): the enclave's code
//!    identity is hashed into a *measurement*; quotes over
//!    (measurement ‖ report-data) are signed by a simulated per-platform
//!    key, and a simulated Intel Attestation Service verifies quotes from
//!    registered platforms and countersigns *attestation reports* that
//!    anyone can check against the well-known IAS root key. This mirrors
//!    the EPID/IAS flow in Section 2.2 of the paper.
//! 3. **Cost model** ([`cost::CostModel`]): ECall/OCall transitions and
//!    cross-boundary data marshalling are charged wall-clock time
//!    (busy-wait calibrated to published SGX numbers: a few μs per
//!    transition, ~1 ns per byte copied+encrypted, and a steep paging
//!    penalty past the 93 MB EPC budget). This is what makes the
//!    enclave-overhead curves of Figures 8–10 reproducible in simulation.
//!
//! # Example
//!
//! ```
//! use dcert_sgx::{AttestationService, CostModel, Enclave, TrustedApp};
//! use dcert_primitives::hash::{hash_bytes, Hash};
//!
//! struct Echo;
//! impl TrustedApp for Echo {
//!     fn code_identity(&self) -> &[u8] { b"echo-v1" }
//!     fn call(&mut self, input: &[u8]) -> Vec<u8> { input.to_vec() }
//! }
//!
//! let mut ias = AttestationService::with_seed([7; 32]);
//! let enclave = Enclave::launch(Echo, CostModel::zero());
//! ias.register_platform(enclave.platform_key());
//!
//! let report = ias.attest(&enclave.quote(hash_bytes(b"pk_enc")))?;
//! report.verify(&ias.public_key())?;
//! assert_eq!(report.measurement, enclave.measurement());
//! assert_eq!(enclave.ecall(b"ping"), b"ping");
//! # Ok::<(), dcert_sgx::SgxError>(())
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)
)]

pub mod attestation;
pub mod cost;
pub mod enclave;
pub mod error;
pub mod sealing;

pub use attestation::{AttestationReport, AttestationService, Quote};
pub use cost::{CostModel, CrossingCharge};
pub use enclave::{Enclave, EnclaveStats, TrustedApp};
pub use error::SgxError;
pub use sealing::SealedBlob;
