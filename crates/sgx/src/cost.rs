//! The enclave cost model.
//!
//! Real SGX charges three distinct overheads that the paper's design works
//! around (Section 2.2): (1) ECall/OCall transitions flush and reload
//! execution context (measured at thousands of cycles by HotCalls,
//! SGX-perf, and EActors); (2) data crossing the boundary is copied and
//! transparently encrypted into EPC pages; (3) exceeding the ~93 MB usable
//! EPC triggers kernel paging with per-page encryption, an order of
//! magnitude slower. [`CostModel`] charges each as busy-waited wall-clock
//! time so that simulated experiments show the same *shape* of enclave
//! overhead the paper measures.

use std::time::{Duration, Instant};

/// Wall-clock charges applied by the simulated enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Cost of one ECall/OCall boundary crossing, nanoseconds.
    pub transition_ns: u64,
    /// Per-byte cost of marshalling data into/out of the enclave
    /// (copy + EPC encryption + MEE integrity traffic), nanoseconds.
    pub per_byte_ns: u64,
    /// Usable EPC budget in bytes (93 MB on the paper's hardware).
    pub epc_budget_bytes: usize,
    /// Per-byte penalty for data paged beyond the EPC budget, nanoseconds.
    pub paging_per_byte_ns: u64,
    /// Extra execution time charged on trusted compute, in percent —
    /// models the measured slowdown of memory accesses inside EPC
    /// (Memory Encryption Engine on every cache-line fill). SGX-perf and
    /// HotCalls report 1.2–2× for memory-bound enclave code.
    pub in_enclave_slowdown_pct: u32,
}

impl CostModel {
    /// A model calibrated to published SGX measurements: ≈4 μs per
    /// transition round trip, ≈10 ns/byte of boundary marshalling
    /// (copy + encryption + integrity tree), a 30 % in-EPC execution
    /// slowdown, 93 MB of usable EPC, and a further 20 ns/byte paging
    /// penalty beyond it.
    pub fn calibrated() -> Self {
        CostModel {
            transition_ns: 4_000,
            per_byte_ns: 10,
            epc_budget_bytes: 93 * 1024 * 1024,
            paging_per_byte_ns: 20,
            in_enclave_slowdown_pct: 30,
        }
    }

    /// An ARM TrustZone-flavoured model (Section 6 of the paper notes
    /// DCert can run on other TEEs): world switches via SMC are cheaper
    /// than SGX transitions, and most SoCs do not encrypt secure-world
    /// memory, so there is no per-byte or paging charge — but also weaker
    /// physical protection.
    pub fn trustzone() -> Self {
        CostModel {
            transition_ns: 1_500,
            per_byte_ns: 1,
            epc_budget_bytes: usize::MAX,
            paging_per_byte_ns: 0,
            in_enclave_slowdown_pct: 3,
        }
    }

    /// An AMD SEV-SNP-flavoured model: VM-level isolation means expensive
    /// VMEXIT-based transitions but full-memory encryption with a mild
    /// uniform slowdown and no SGX-style EPC ceiling.
    pub fn sev_snp() -> Self {
        CostModel {
            transition_ns: 9_000,
            per_byte_ns: 2,
            epc_budget_bytes: usize::MAX,
            paging_per_byte_ns: 0,
            in_enclave_slowdown_pct: 8,
        }
    }

    /// A free model: no simulated overhead (unit tests, logic-only runs).
    pub fn zero() -> Self {
        CostModel {
            transition_ns: 0,
            per_byte_ns: 0,
            epc_budget_bytes: usize::MAX,
            paging_per_byte_ns: 0,
            in_enclave_slowdown_pct: 0,
        }
    }

    /// The simulated extra charge for `trusted` seconds of in-enclave
    /// execution.
    pub fn slowdown_cost(&self, trusted: Duration) -> Duration {
        trusted.mul_f64(self.in_enclave_slowdown_pct as f64 / 100.0)
    }

    /// The simulated charge for one boundary crossing moving `bytes`.
    pub fn crossing_cost(&self, bytes: usize) -> Duration {
        let in_budget = bytes.min(self.epc_budget_bytes) as u64;
        let paged = bytes.saturating_sub(self.epc_budget_bytes) as u64;
        Duration::from_nanos(
            self.transition_ns
                + in_budget * self.per_byte_ns
                + paged * (self.per_byte_ns + self.paging_per_byte_ns),
        )
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::calibrated()
    }
}

/// Runs `f` and returns its result together with the wall-clock time it
/// took.
///
/// This is the single sanctioned clock access for code outside the
/// simulation modules: callers measure a closure instead of holding an
/// ambient [`Instant`] themselves, which keeps the determinism lint's
/// allowlist down to this module plus the network/pipeline simulators.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Busy-waits for `duration` (sleep has millisecond-scale jitter; enclave
/// transitions are microsecond-scale, so spinning is the only way to charge
/// them accurately).
pub fn spin(duration: Duration) {
    if duration.is_zero() {
        return;
    }
    let start = Instant::now();
    while start.elapsed() < duration {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_is_free() {
        let model = CostModel::zero();
        assert_eq!(model.crossing_cost(1_000_000), Duration::ZERO);
    }

    #[test]
    fn crossing_cost_scales_with_bytes() {
        let model = CostModel {
            transition_ns: 100,
            per_byte_ns: 2,
            epc_budget_bytes: 1000,
            paging_per_byte_ns: 10,
            in_enclave_slowdown_pct: 0,
        };
        assert_eq!(model.crossing_cost(0), Duration::from_nanos(100));
        assert_eq!(model.crossing_cost(10), Duration::from_nanos(120));
        // 1500 bytes: 1000 in budget (2 ns), 500 paged (12 ns).
        assert_eq!(
            model.crossing_cost(1500),
            Duration::from_nanos(100 + 2000 + 500 * 12)
        );
    }

    #[test]
    fn spin_waits_at_least_the_duration() {
        let start = Instant::now();
        spin(Duration::from_micros(200));
        assert!(start.elapsed() >= Duration::from_micros(200));
    }

    #[test]
    fn calibrated_defaults_are_sane() {
        let model = CostModel::calibrated();
        assert_eq!(model, CostModel::default());
        assert!(model.transition_ns >= 1_000, "transitions are μs-scale");
        assert_eq!(model.epc_budget_bytes, 93 * 1024 * 1024);
    }
}
