//! The enclave cost model.
//!
//! Real SGX charges three distinct overheads that the paper's design works
//! around (Section 2.2): (1) ECall/OCall transitions flush and reload
//! execution context (measured at thousands of cycles by HotCalls,
//! SGX-perf, and EActors); (2) data crossing the boundary is copied and
//! transparently encrypted into EPC pages; (3) exceeding the ~93 MB usable
//! EPC triggers kernel paging with per-page encryption, an order of
//! magnitude slower. [`CostModel`] charges each as busy-waited wall-clock
//! time so that simulated experiments show the same *shape* of enclave
//! overhead the paper measures.

use std::time::{Duration, Instant};

/// Wall-clock charges applied by the simulated enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Cost of one ECall/OCall boundary crossing, nanoseconds.
    pub transition_ns: u64,
    /// Per-byte cost of marshalling data into/out of the enclave
    /// (copy + EPC encryption + MEE integrity traffic), nanoseconds.
    pub per_byte_ns: u64,
    /// Usable EPC budget in bytes (93 MB on the paper's hardware).
    pub epc_budget_bytes: usize,
    /// Per-byte penalty for data paged beyond the EPC budget, nanoseconds.
    pub paging_per_byte_ns: u64,
    /// Extra execution time charged on trusted compute, in percent —
    /// models the measured slowdown of memory accesses inside EPC
    /// (Memory Encryption Engine on every cache-line fill). SGX-perf and
    /// HotCalls report 1.2–2× for memory-bound enclave code.
    pub in_enclave_slowdown_pct: u32,
}

impl CostModel {
    /// A model calibrated to published SGX measurements: ≈4 μs per
    /// transition round trip, ≈10 ns/byte of boundary marshalling
    /// (copy + encryption + integrity tree), a 30 % in-EPC execution
    /// slowdown, 93 MB of usable EPC, and a further 20 ns/byte paging
    /// penalty beyond it.
    pub fn calibrated() -> Self {
        CostModel {
            transition_ns: 4_000,
            per_byte_ns: 10,
            epc_budget_bytes: 93 * 1024 * 1024,
            paging_per_byte_ns: 20,
            in_enclave_slowdown_pct: 30,
        }
    }

    /// An ARM TrustZone-flavoured model (Section 6 of the paper notes
    /// DCert can run on other TEEs): world switches via SMC are cheaper
    /// than SGX transitions, and most SoCs do not encrypt secure-world
    /// memory, so there is no per-byte or paging charge — but also weaker
    /// physical protection.
    pub fn trustzone() -> Self {
        CostModel {
            transition_ns: 1_500,
            per_byte_ns: 1,
            epc_budget_bytes: usize::MAX,
            paging_per_byte_ns: 0,
            in_enclave_slowdown_pct: 3,
        }
    }

    /// An AMD SEV-SNP-flavoured model: VM-level isolation means expensive
    /// VMEXIT-based transitions but full-memory encryption with a mild
    /// uniform slowdown and no SGX-style EPC ceiling.
    pub fn sev_snp() -> Self {
        CostModel {
            transition_ns: 9_000,
            per_byte_ns: 2,
            epc_budget_bytes: usize::MAX,
            paging_per_byte_ns: 0,
            in_enclave_slowdown_pct: 8,
        }
    }

    /// A free model: no simulated overhead (unit tests, logic-only runs).
    pub fn zero() -> Self {
        CostModel {
            transition_ns: 0,
            per_byte_ns: 0,
            epc_budget_bytes: usize::MAX,
            paging_per_byte_ns: 0,
            in_enclave_slowdown_pct: 0,
        }
    }

    /// The simulated extra charge for `trusted` seconds of in-enclave
    /// execution.
    pub fn slowdown_cost(&self, trusted: Duration) -> Duration {
        trusted.mul_f64(self.in_enclave_slowdown_pct as f64 / 100.0)
    }

    /// The simulated charge for one boundary crossing moving `bytes`,
    /// considered in isolation (a fresh enclave with an empty EPC).
    ///
    /// Real EPC pressure is *cumulative* across crossings — a long run of
    /// small ECalls fills the EPC just as surely as one huge one — so the
    /// enclave boundary charges through [`CostModel::charge_crossing`]
    /// with its persistent residency instead. This stateless form remains
    /// for single-shot estimates only.
    pub fn crossing_cost(&self, bytes: usize) -> Duration {
        self.charge_crossing(bytes, &mut 0).cost
    }

    /// The simulated charge for one boundary crossing moving `bytes` into
    /// an enclave whose EPC already holds `resident_bytes`.
    ///
    /// `resident_bytes` is the boundary's cumulative working set: it is
    /// advanced by `bytes`, and every byte landing beyond
    /// `epc_budget_bytes` is charged the paging penalty on top of the
    /// marshalling cost. This is the fix for the classic per-crossing
    /// accounting bug, where payloads smaller than the budget could never
    /// trigger paging no matter how many of them crossed: paging now fires
    /// exactly when the *cumulative* residency crosses the budget, and the
    /// charge is split correctly for a crossing that straddles it.
    pub fn charge_crossing(&self, bytes: usize, resident_bytes: &mut u64) -> CrossingCharge {
        let bytes = bytes as u64;
        let budget = u64::try_from(self.epc_budget_bytes).unwrap_or(u64::MAX);
        let headroom = budget.saturating_sub(*resident_bytes);
        let in_budget = bytes.min(headroom);
        let paged = bytes - in_budget;
        *resident_bytes = resident_bytes.saturating_add(bytes);
        let cost = Duration::from_nanos(
            self.transition_ns
                .saturating_add(in_budget.saturating_mul(self.per_byte_ns))
                .saturating_add(
                    paged.saturating_mul(self.per_byte_ns.saturating_add(self.paging_per_byte_ns)),
                ),
        );
        CrossingCharge {
            cost,
            paged_bytes: paged,
        }
    }
}

/// What one boundary crossing cost, from [`CostModel::charge_crossing`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossingCharge {
    /// The simulated wall-clock charge (transition + marshalling + paging).
    pub cost: Duration,
    /// Bytes of this crossing that landed beyond the EPC budget and were
    /// charged the paging penalty.
    pub paged_bytes: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::calibrated()
    }
}

/// Runs `f` and returns its result together with the wall-clock time it
/// took.
///
/// This is the single sanctioned clock access for code outside the
/// simulation modules: callers measure a closure instead of holding an
/// ambient [`Instant`] themselves, which keeps the determinism lint's
/// allowlist down to this module plus the network/pipeline simulators.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Busy-waits for `duration` (sleep has millisecond-scale jitter; enclave
/// transitions are microsecond-scale, so spinning is the only way to charge
/// them accurately).
pub fn spin(duration: Duration) {
    if duration.is_zero() {
        return;
    }
    let start = Instant::now();
    while start.elapsed() < duration {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_is_free() {
        let model = CostModel::zero();
        assert_eq!(model.crossing_cost(1_000_000), Duration::ZERO);
    }

    #[test]
    fn crossing_cost_scales_with_bytes() {
        let model = CostModel {
            transition_ns: 100,
            per_byte_ns: 2,
            epc_budget_bytes: 1000,
            paging_per_byte_ns: 10,
            in_enclave_slowdown_pct: 0,
        };
        assert_eq!(model.crossing_cost(0), Duration::from_nanos(100));
        assert_eq!(model.crossing_cost(10), Duration::from_nanos(120));
        // 1500 bytes: 1000 in budget (2 ns), 500 paged (12 ns).
        assert_eq!(
            model.crossing_cost(1500),
            Duration::from_nanos(100 + 2000 + 500 * 12)
        );
    }

    #[test]
    fn cumulative_residency_triggers_paging_where_per_crossing_never_could() {
        let model = CostModel {
            transition_ns: 0,
            per_byte_ns: 1,
            epc_budget_bytes: 1000,
            paging_per_byte_ns: 10,
            in_enclave_slowdown_pct: 0,
        };
        // The buggy per-crossing model: 100-byte payloads are far below
        // the 1000-byte budget, so paging never fires no matter how many
        // crossings happen.
        for _ in 0..20 {
            assert_eq!(model.crossing_cost(100), Duration::from_nanos(100));
        }
        // The cumulative model: the same 20 crossings fill the EPC after
        // 10 and page thereafter.
        let mut resident = 0u64;
        let mut paged_total = 0u64;
        let mut cost_total = Duration::ZERO;
        for _ in 0..20 {
            let charge = model.charge_crossing(100, &mut resident);
            paged_total += charge.paged_bytes;
            cost_total += charge.cost;
        }
        assert_eq!(resident, 2000);
        assert_eq!(paged_total, 1000, "bytes 1001..=2000 must page");
        // 2000 bytes marshalled at 1 ns + 1000 paged bytes at 10 ns.
        assert_eq!(cost_total, Duration::from_nanos(2000 + 10_000));
    }

    #[test]
    fn straddling_crossing_splits_the_paging_charge() {
        let model = CostModel {
            transition_ns: 7,
            per_byte_ns: 2,
            epc_budget_bytes: 1000,
            paging_per_byte_ns: 10,
            in_enclave_slowdown_pct: 0,
        };
        let mut resident = 900u64;
        let charge = model.charge_crossing(300, &mut resident);
        assert_eq!(resident, 1200);
        assert_eq!(charge.paged_bytes, 200);
        // 100 bytes in budget at 2 ns, 200 paged at 12 ns, 7 ns transition.
        assert_eq!(charge.cost, Duration::from_nanos(7 + 200 + 2400));
        // Stateless form matches a fresh residency of zero.
        assert_eq!(model.crossing_cost(300), Duration::from_nanos(7 + 600));
    }

    #[test]
    fn unbounded_epc_models_never_page_cumulatively() {
        let model = CostModel::trustzone();
        let mut resident = 1u64 << 60; // absurdly large, realistic ceiling
        let charge = model.charge_crossing(100, &mut resident);
        assert_eq!(charge.paged_bytes, 0, "usize::MAX budget never pages");
        assert_eq!(resident, (1 << 60) + 100);
        // At the absolute numeric edge the residency saturates rather than
        // wrapping (the charge itself is then headroom-limited, which is
        // fine — nothing real gets within 2^63 bytes of it).
        let mut edge = u64::MAX - 10;
        model.charge_crossing(100, &mut edge);
        assert_eq!(edge, u64::MAX, "residency saturates, no overflow");
    }

    #[test]
    fn spin_waits_at_least_the_duration() {
        let start = Instant::now();
        spin(Duration::from_micros(200));
        assert!(start.elapsed() >= Duration::from_micros(200));
    }

    #[test]
    fn calibrated_defaults_are_sane() {
        let model = CostModel::calibrated();
        assert_eq!(model, CostModel::default());
        assert!(model.transition_ns >= 1_000, "transitions are μs-scale");
        assert_eq!(model.epc_budget_bytes, 93 * 1024 * 1024);
    }
}
