//! Quotes, attestation reports, and the simulated Intel Attestation
//! Service.
//!
//! The flow mirrors Section 2.2 of the paper:
//!
//! 1. the enclave produces a [`Quote`] over (measurement ‖ report-data),
//!    signed by the hardware-protected *platform key*;
//! 2. the [`AttestationService`] (the IAS stand-in) checks that the
//!    platform key belongs to a provisioned CPU and that the quote
//!    verifies, then countersigns an [`AttestationReport`];
//! 3. anyone holding the well-known IAS root public key can verify the
//!    report offline — which is how superlight clients validate `rep`
//!    inside every certificate (Algorithm 3, lines 3–5).

use dcert_primitives::codec::{Decode, Encode, Reader};
use dcert_primitives::error::CodecError;
use dcert_primitives::hash::{hash_concat, Hash};
use dcert_primitives::keys::{Keypair, PublicKey, Signature};

use crate::error::SgxError;

const QUOTE_DOMAIN: u8 = 0x31;
const REPORT_DOMAIN: u8 = 0x32;

fn quote_digest(measurement: &Hash, report_data: &Hash) -> Hash {
    hash_concat([
        std::slice::from_ref(&QUOTE_DOMAIN),
        measurement.as_bytes(),
        report_data.as_bytes(),
    ])
}

fn report_digest(measurement: &Hash, report_data: &Hash) -> Hash {
    hash_concat([
        std::slice::from_ref(&REPORT_DOMAIN),
        measurement.as_bytes(),
        report_data.as_bytes(),
    ])
}

/// A platform-signed statement that an enclave with `measurement` bound
/// `report_data` (DCert binds `H(pk_enc)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    /// The enclave measurement.
    pub measurement: Hash,
    /// Caller-chosen data bound into the quote.
    pub report_data: Hash,
    /// The signing platform's public key.
    pub platform_key: PublicKey,
    /// Platform signature over the quote digest.
    pub signature: Signature,
}

impl Quote {
    /// Signs a quote with the platform key (called by the enclave).
    pub fn sign(platform: &Keypair, measurement: Hash, report_data: Hash) -> Self {
        let digest = quote_digest(&measurement, &report_data);
        Quote {
            measurement,
            report_data,
            platform_key: platform.public(),
            signature: platform.sign(digest.as_bytes()),
        }
    }

    /// Verifies the platform signature (does *not* establish that the
    /// platform is genuine — that is the attestation service's job).
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::BadQuote`] if the signature is invalid.
    pub fn verify_signature(&self) -> Result<(), SgxError> {
        let digest = quote_digest(&self.measurement, &self.report_data);
        self.platform_key
            .verify(digest.as_bytes(), &self.signature)
            .map_err(|_| SgxError::BadQuote)
    }
}

/// An IAS-countersigned attestation report: offline-verifiable proof that
/// a genuine enclave with `measurement` bound `report_data`.
///
/// This is the `rep` element of every DCert certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttestationReport {
    /// The attested enclave measurement.
    pub measurement: Hash,
    /// The attested report data (DCert: `H(pk_enc)`).
    pub report_data: Hash,
    /// IAS signature over the report digest.
    pub signature: Signature,
}

impl AttestationReport {
    /// Verifies the IAS signature against the well-known root key.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::BadReport`] if the signature is invalid.
    pub fn verify(&self, ias_key: &PublicKey) -> Result<(), SgxError> {
        let digest = report_digest(&self.measurement, &self.report_data);
        ias_key
            .verify(digest.as_bytes(), &self.signature)
            .map_err(|_| SgxError::BadReport)
    }

    /// Serialized size in bytes (contributes to certificate size).
    pub fn size_bytes(&self) -> usize {
        self.encoded_len()
    }
}

impl Encode for AttestationReport {
    fn encode(&self, out: &mut Vec<u8>) {
        self.measurement.encode(out);
        self.report_data.encode(out);
        self.signature.encode(out);
    }
}

impl Decode for AttestationReport {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(AttestationReport {
            measurement: Hash::decode(r)?,
            report_data: Hash::decode(r)?,
            signature: Signature::decode(r)?,
        })
    }
}

/// The simulated Intel Attestation Service.
///
/// Knows the set of provisioned platform keys (as Intel does through EPID
/// provisioning) and countersigns reports with its root key, which
/// verifiers embed as a trust anchor.
pub struct AttestationService {
    root: Keypair,
    platforms: Vec<PublicKey>,
}

impl std::fmt::Debug for AttestationService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttestationService")
            .field("root", &self.root.public())
            .field("platforms", &self.platforms.len())
            .finish()
    }
}

impl AttestationService {
    /// Creates a service with a deterministic root key.
    pub fn with_seed(seed: [u8; 32]) -> Self {
        AttestationService {
            root: Keypair::from_seed(seed),
            platforms: Vec::new(),
        }
    }

    /// The well-known IAS root public key (the verifier trust anchor).
    pub fn public_key(&self) -> PublicKey {
        self.root.public()
    }

    /// Provisions a platform key (models Intel's EPID group join).
    pub fn register_platform(&mut self, key: PublicKey) {
        if !self.platforms.contains(&key) {
            self.platforms.push(key);
        }
    }

    /// Verifies a quote and countersigns an attestation report.
    ///
    /// # Errors
    ///
    /// - [`SgxError::UntrustedPlatform`] if the platform key is not
    ///   provisioned,
    /// - [`SgxError::BadQuote`] if the quote signature is invalid.
    pub fn attest(&self, quote: &Quote) -> Result<AttestationReport, SgxError> {
        if !self.platforms.contains(&quote.platform_key) {
            return Err(SgxError::UntrustedPlatform);
        }
        quote.verify_signature()?;
        let digest = report_digest(&quote.measurement, &quote.report_data);
        Ok(AttestationReport {
            measurement: quote.measurement,
            report_data: quote.report_data,
            signature: self.root.sign(digest.as_bytes()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcert_primitives::hash::hash_bytes;

    fn setup() -> (AttestationService, Keypair) {
        let mut ias = AttestationService::with_seed([1; 32]);
        let platform = Keypair::from_seed([2; 32]);
        ias.register_platform(platform.public());
        (ias, platform)
    }

    #[test]
    fn full_attestation_flow() {
        let (ias, platform) = setup();
        let quote = Quote::sign(&platform, hash_bytes(b"code"), hash_bytes(b"pk"));
        let report = ias.attest(&quote).unwrap();
        report.verify(&ias.public_key()).unwrap();
        assert_eq!(report.measurement, hash_bytes(b"code"));
        assert_eq!(report.report_data, hash_bytes(b"pk"));
    }

    #[test]
    fn unregistered_platform_rejected() {
        let ias = AttestationService::with_seed([1; 32]);
        let rogue = Keypair::from_seed([9; 32]);
        let quote = Quote::sign(&rogue, hash_bytes(b"code"), hash_bytes(b"pk"));
        assert_eq!(ias.attest(&quote), Err(SgxError::UntrustedPlatform));
    }

    #[test]
    fn forged_quote_rejected() {
        let (ias, platform) = setup();
        let mut quote = Quote::sign(&platform, hash_bytes(b"code"), hash_bytes(b"pk"));
        quote.measurement = hash_bytes(b"other-code");
        assert_eq!(ias.attest(&quote), Err(SgxError::BadQuote));
    }

    #[test]
    fn report_from_wrong_ias_rejected() {
        let (ias, platform) = setup();
        let fake_ias = AttestationService::with_seed([7; 32]);
        let quote = Quote::sign(&platform, hash_bytes(b"code"), hash_bytes(b"pk"));
        let report = ias.attest(&quote).unwrap();
        assert_eq!(
            report.verify(&fake_ias.public_key()),
            Err(SgxError::BadReport)
        );
    }

    #[test]
    fn tampered_report_rejected() {
        let (ias, platform) = setup();
        let quote = Quote::sign(&platform, hash_bytes(b"code"), hash_bytes(b"pk"));
        let mut report = ias.attest(&quote).unwrap();
        report.report_data = hash_bytes(b"attacker-pk");
        assert_eq!(report.verify(&ias.public_key()), Err(SgxError::BadReport));
    }

    #[test]
    fn report_codec_round_trip() {
        let (ias, platform) = setup();
        let quote = Quote::sign(&platform, hash_bytes(b"code"), hash_bytes(b"pk"));
        let report = ias.attest(&quote).unwrap();
        let decoded = AttestationReport::decode_all(&report.to_encoded_bytes()).unwrap();
        assert_eq!(decoded, report);
    }

    #[test]
    fn register_is_idempotent() {
        let (mut ias, platform) = setup();
        ias.register_platform(platform.public());
        ias.register_platform(platform.public());
        assert_eq!(ias.platforms.len(), 1);
    }
}
