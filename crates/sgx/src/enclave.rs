//! The enclave container: trust boundary, measurement, ECall dispatch.

use std::time::Duration;

use dcert_primitives::hash::{hash_concat, Hash};
use dcert_primitives::keys::{Keypair, PublicKey};
use parking_lot::Mutex;
// dcert-lint: allow(r3-determinism, reason = "platform-key provisioning entropy; every replayable path launches via launch_with_platform_seed instead")
use rand::rngs::OsRng;
use rand::RngCore;

use crate::attestation::Quote;
use crate::cost::{spin, timed, CostModel, CrossingCharge};
use crate::error::SgxError;
use crate::sealing::{self, SealedBlob};
use dcert_obs::{Buckets, Counter, Gauge, Histogram, Registry};

/// Domain tag for enclave measurements.
const MEASUREMENT_DOMAIN: u8 = 0x30;

/// A program loadable into an [`Enclave`].
///
/// The interface is deliberately byte-level: real ECalls marshal opaque
/// buffers across the boundary, and the cost model charges by byte, so
/// trusted programs must serialize their arguments (DCert's certificate
/// program uses the workspace codec).
///
/// Implementations hold the enclave's secrets (e.g. `sk_enc`); because the
/// only access path is [`Enclave::ecall`], those secrets never leave the
/// boundary.
pub trait TrustedApp: Send {
    /// The bytes measured as this program's code identity (in real SGX:
    /// the enclave image; here: a stable code/version string).
    fn code_identity(&self) -> &[u8];

    /// Handles one ECall. Input and output cross the enclave boundary and
    /// are charged by the cost model.
    fn call(&mut self, input: &[u8]) -> Vec<u8>;
}

/// A trusted program whose secret state can be sealed to disk and
/// restored on the same platform (the SGX sealing workflow; see
/// [`crate::sealing`]). Export/import never cross the enclave boundary in
/// the clear — [`Enclave::seal_state`] encrypts inside the boundary.
pub trait Sealable {
    /// Serializes the secret state to seal.
    fn export_state(&self) -> Vec<u8>;

    /// Restores previously exported state.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::BadSeal`] if the bytes are malformed.
    fn import_state(&mut self, state: &[u8]) -> Result<(), SgxError>;
}

/// Counters describing everything the enclave boundary has done —
/// the data behind the inside/outside breakdowns of Figures 8–10.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnclaveStats {
    /// Number of ECalls dispatched.
    pub ecalls: u64,
    /// Total bytes marshalled into the enclave.
    pub bytes_in: u64,
    /// Total bytes marshalled out of the enclave.
    pub bytes_out: u64,
    /// Bytes charged the EPC paging penalty (cumulative residency beyond
    /// the cost model's `epc_budget_bytes`).
    pub paged_bytes: u64,
    /// Bytes of ECall request encoding served from a reused marshalling
    /// scratch buffer instead of a fresh allocation (see
    /// [`Enclave::note_marshal_reuse`]). Purely an attribution counter —
    /// it never feeds the cost model.
    pub marshal_reuse_bytes: u64,
    /// Simulated transition/marshalling overhead.
    pub overhead: Duration,
    /// Wall-clock time spent running trusted code.
    pub trusted_time: Duration,
}

/// Metric handles for the enclave cost center (see
/// [`Enclave::attach_obs`]). Registered once; every recording after that
/// is lock-free in the registry.
struct EnclaveObs {
    ecalls: Counter,
    bytes_in: Counter,
    bytes_out: Counter,
    paged_bytes: Counter,
    /// Deterministic simulated crossing charge (transition + marshalling +
    /// paging), in nanoseconds. Named `_nanos`, not `_ns`: the value is a
    /// pure function of the byte counts, so it must survive the
    /// wall-clock-stripped determinism comparison.
    sim_charge_nanos: Counter,
    /// Bytes of request encoding served from a reused marshalling scratch
    /// buffer. Deterministic: a pure function of the request-length
    /// sequence, so it participates in the determinism comparison.
    marshal_reuse_bytes: Counter,
    /// Full simulated overhead including the slowdown derived from the
    /// measured trusted time — wall-clock-tainted, hence `_ns`.
    overhead_ns: Counter,
    /// Wall-clock trusted execution time.
    trusted_time_ns: Counter,
    epc_resident_bytes: Gauge,
    crossing_bytes: Histogram,
}

impl EnclaveObs {
    fn register(registry: &Registry) -> Self {
        EnclaveObs {
            ecalls: registry.counter("enclave.ecalls"),
            bytes_in: registry.counter("enclave.bytes_in"),
            bytes_out: registry.counter("enclave.bytes_out"),
            paged_bytes: registry.counter("enclave.paged_bytes"),
            sim_charge_nanos: registry.counter("enclave.sim_charge_nanos"),
            marshal_reuse_bytes: registry.counter("enclave.marshal_reuse_bytes"),
            overhead_ns: registry.counter("enclave.overhead_ns"),
            trusted_time_ns: registry.counter("enclave.trusted_time_ns"),
            epc_resident_bytes: registry.gauge("enclave.epc_resident_bytes"),
            crossing_bytes: registry.histogram("enclave.crossing_bytes", Buckets::bytes()),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn record_ecall(
        &self,
        input_len: usize,
        output_len: usize,
        in_charge: CrossingCharge,
        out_charge: CrossingCharge,
        slowdown: Duration,
        trusted: Duration,
        resident_bytes: u64,
    ) {
        self.ecalls.inc();
        self.bytes_in.add(input_len as u64);
        self.bytes_out.add(output_len as u64);
        self.paged_bytes
            .add(in_charge.paged_bytes + out_charge.paged_bytes);
        self.crossing_bytes.observe(input_len as u64);
        self.crossing_bytes.observe(output_len as u64);
        self.sim_charge_nanos
            .add(saturating_nanos(in_charge.cost + out_charge.cost));
        self.overhead_ns.add(saturating_nanos(
            in_charge.cost + slowdown + out_charge.cost,
        ));
        self.trusted_time_ns.add(saturating_nanos(trusted));
        self.epc_resident_bytes
            .record_max(i64::try_from(resident_bytes).unwrap_or(i64::MAX));
    }
}

fn saturating_nanos(duration: Duration) -> u64 {
    u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX)
}

/// Everything behind the trust boundary: the trusted program plus the
/// boundary counters its ECalls update. One lock guards both so a
/// concurrent caller can never observe a call without its accounting.
struct Boundary<A> {
    app: A,
    stats: EnclaveStats,
    /// Cumulative bytes marshalled into EPC-backed memory — the working
    /// set the paging charge is assessed against. Deliberately *not* part
    /// of [`EnclaveStats`]: resetting the benchmark counters must not
    /// pretend the EPC emptied.
    resident_bytes: u64,
    obs: Option<EnclaveObs>,
}

/// A simulated SGX enclave hosting a [`TrustedApp`].
///
/// On launch the "CPU" measures the program
/// (`measurement = H(code_identity)`) and provisions a per-platform
/// attestation key; [`Enclave::quote`] signs
/// (measurement ‖ report-data) with it, to be validated by the
/// [`AttestationService`](crate::AttestationService).
///
/// The handle is shareable: [`Enclave::ecall`] takes `&self` and
/// serializes callers through an internal lock, mirroring a real
/// single-TCS enclave where hardware admits one logical ECall at a time.
/// Wrap the enclave in an `Arc` to drive it from several threads (the
/// certification pipeline does exactly this).
pub struct Enclave<A: TrustedApp> {
    boundary: Mutex<Boundary<A>>,
    measurement: Hash,
    platform: Keypair,
    /// Raw platform secret (the simulated fuse key) for sealing-key
    /// derivation; never exposed.
    platform_secret: [u8; 32],
    cost: CostModel,
}

impl<A: TrustedApp> std::fmt::Debug for Enclave<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Enclave")
            .field("measurement", &self.measurement)
            .field("platform", &self.platform.public())
            .field("stats", &self.boundary.lock().stats)
            .finish()
    }
}

impl<A: TrustedApp> Enclave<A> {
    /// Loads `app` into a fresh enclave with a random platform key.
    pub fn launch(app: A, cost: CostModel) -> Self {
        let mut seed = [0u8; 32];
        // dcert-lint: allow(r3-determinism, reason = "platform-key provisioning entropy; every replayable path launches via launch_with_platform_seed instead")
        OsRng.fill_bytes(&mut seed);
        Self::launch_with_platform_seed(app, cost, seed)
    }

    /// Loads `app` with a deterministic platform key (tests, reproducible
    /// benches).
    pub fn launch_with_platform_seed(app: A, cost: CostModel, seed: [u8; 32]) -> Self {
        let measurement = measure(app.code_identity());
        Enclave {
            boundary: Mutex::new(Boundary {
                app,
                stats: EnclaveStats::default(),
                resident_bytes: 0,
                obs: None,
            }),
            measurement,
            platform: Keypair::from_seed(seed),
            platform_secret: seed,
            cost,
        }
    }

    /// The enclave's measurement (`MRENCLAVE` analogue).
    pub fn measurement(&self) -> Hash {
        self.measurement
    }

    /// The platform attestation public key (registered with the IAS during
    /// provisioning).
    pub fn platform_key(&self) -> PublicKey {
        self.platform.public()
    }

    /// Boundary counters so far.
    pub fn stats(&self) -> EnclaveStats {
        self.boundary.lock().stats
    }

    /// Resets the boundary counters (between benchmark phases). EPC
    /// residency is *not* reset: clearing a counter does not free enclave
    /// memory (see [`Enclave::reset_epc_residency`]).
    pub fn reset_stats(&self) {
        self.boundary.lock().stats = EnclaveStats::default();
    }

    /// Cumulative bytes marshalled into EPC-backed memory — the working
    /// set the paging charge is assessed against.
    pub fn epc_resident_bytes(&self) -> u64 {
        self.boundary.lock().resident_bytes
    }

    /// Empties the simulated EPC working set (models an enclave
    /// teardown/relaunch between independent benchmark phases).
    pub fn reset_epc_residency(&self) {
        self.boundary.lock().resident_bytes = 0;
    }

    /// Registers this enclave's cost-center metrics (`enclave.*`) in
    /// `registry` and records every subsequent ECall into them. Attaching
    /// a [`Registry::disabled`] registry is free and exports nothing.
    pub fn attach_obs(&self, registry: &Registry) {
        self.boundary.lock().obs = Some(EnclaveObs::register(registry));
    }

    /// The active cost model.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Dispatches one ECall: charges the inbound crossing, runs the trusted
    /// program, charges the outbound crossing, and returns the output.
    ///
    /// Concurrent callers serialize on the boundary lock — the simulated
    /// crossing/slowdown costs are paid inside it, so throughput under
    /// contention degrades exactly like a single-TCS enclave.
    pub fn ecall(&self, input: &[u8]) -> Vec<u8> {
        let mut boundary = self.boundary.lock();
        let in_charge = self
            .cost
            .charge_crossing(input.len(), &mut boundary.resident_bytes);
        spin(in_charge.cost);
        let (output, trusted) = timed(|| boundary.app.call(input));
        // In-EPC execution slowdown (MEE on every cache-line fill).
        let slowdown = self.cost.slowdown_cost(trusted);
        spin(slowdown);
        let out_charge = self
            .cost
            .charge_crossing(output.len(), &mut boundary.resident_bytes);
        spin(out_charge.cost);

        boundary.stats.ecalls += 1;
        boundary.stats.bytes_in += input.len() as u64;
        boundary.stats.bytes_out += output.len() as u64;
        boundary.stats.paged_bytes += in_charge.paged_bytes + out_charge.paged_bytes;
        boundary.stats.overhead += in_charge.cost + slowdown + out_charge.cost;
        boundary.stats.trusted_time += trusted;
        if let Some(obs) = &boundary.obs {
            obs.record_ecall(
                input.len(),
                output.len(),
                in_charge,
                out_charge,
                slowdown,
                trusted,
                boundary.resident_bytes,
            );
        }
        output
    }

    /// Records that `bytes` of ECall request encoding were written into a
    /// reused marshalling scratch buffer instead of a freshly allocated
    /// `Vec`. Callers (the certificate issuers) compute the figure from
    /// their own scratch high-water mark, so the count is a pure function
    /// of the request-length sequence — deterministic across runs and
    /// thread settings.
    pub fn note_marshal_reuse(&self, bytes: u64) {
        let mut boundary = self.boundary.lock();
        boundary.stats.marshal_reuse_bytes += bytes;
        if let Some(obs) = &boundary.obs {
            obs.marshal_reuse_bytes.add(bytes);
        }
    }

    /// Produces a quote binding `report_data` (e.g. `H(pk_enc)`) to this
    /// enclave's measurement, signed by the platform key.
    pub fn quote(&self, report_data: Hash) -> Quote {
        Quote::sign(&self.platform, self.measurement, report_data)
    }
}

impl<A: TrustedApp + Sealable> Enclave<A> {
    /// Seals the trusted program's secret state to this platform and
    /// measurement. The plaintext never leaves the boundary; the returned
    /// blob can be persisted by untrusted code.
    pub fn seal_state(&self) -> SealedBlob {
        sealing::seal(
            &self.platform_secret,
            &self.measurement,
            &self.boundary.lock().app.export_state(),
        )
    }

    /// Relaunches an enclave on the same platform (`platform_seed` must
    /// match the sealing enclave's) and restores the sealed state into a
    /// fresh `app`.
    ///
    /// # Errors
    ///
    /// [`SgxError::BadSeal`] if the blob was sealed by a different
    /// platform or measurement, or was tampered with.
    pub fn restore(
        mut app: A,
        cost: CostModel,
        platform_seed: [u8; 32],
        blob: &SealedBlob,
    ) -> Result<Self, SgxError> {
        let measurement = measure(app.code_identity());
        let state = sealing::unseal(&platform_seed, &measurement, blob)?;
        app.import_state(&state)?;
        Ok(Self::launch_with_platform_seed(app, cost, platform_seed))
    }
}

/// The measurement function: `H(domain || code_identity)`.
pub fn measure(code_identity: &[u8]) -> Hash {
    hash_concat([std::slice::from_ref(&MEASUREMENT_DOMAIN), code_identity])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Instant;

    struct Secret {
        key: u8,
        calls: u32,
    }

    impl TrustedApp for Secret {
        fn code_identity(&self) -> &[u8] {
            b"secret-app-v1"
        }
        fn call(&mut self, input: &[u8]) -> Vec<u8> {
            self.calls += 1;
            // "Sign" by xoring with the secret — stands in for sk_enc use.
            input.iter().map(|b| b ^ self.key).collect()
        }
    }

    #[test]
    fn measurement_depends_on_code_only() {
        let a = Enclave::launch(Secret { key: 1, calls: 0 }, CostModel::zero());
        let b = Enclave::launch(Secret { key: 9, calls: 0 }, CostModel::zero());
        // Same code identity → same measurement, regardless of data.
        assert_eq!(a.measurement(), b.measurement());
        assert_eq!(a.measurement(), measure(b"secret-app-v1"));
    }

    #[test]
    fn ecall_round_trip_and_stats() {
        let enclave = Enclave::launch(
            Secret {
                key: 0xff,
                calls: 0,
            },
            CostModel::zero(),
        );
        let out = enclave.ecall(&[0x0f, 0xf0]);
        assert_eq!(out, vec![0xf0, 0x0f]);
        let stats = enclave.stats();
        assert_eq!(stats.ecalls, 1);
        assert_eq!(stats.bytes_in, 2);
        assert_eq!(stats.bytes_out, 2);
    }

    #[test]
    fn cost_model_charges_overhead() {
        let cost = CostModel {
            transition_ns: 200_000, // 0.2 ms, clearly measurable
            per_byte_ns: 0,
            epc_budget_bytes: usize::MAX,
            paging_per_byte_ns: 0,
            in_enclave_slowdown_pct: 0,
        };
        let enclave = Enclave::launch(Secret { key: 0, calls: 0 }, cost);
        let started = Instant::now();
        enclave.ecall(b"x");
        let elapsed = started.elapsed();
        // Two crossings at 0.2 ms each.
        assert!(
            elapsed >= Duration::from_micros(400),
            "elapsed = {elapsed:?}"
        );
        assert!(enclave.stats().overhead >= Duration::from_micros(400));
    }

    #[test]
    fn distinct_enclaves_have_distinct_platform_keys() {
        let a = Enclave::launch_with_platform_seed(
            Secret { key: 0, calls: 0 },
            CostModel::zero(),
            [1; 32],
        );
        let b = Enclave::launch_with_platform_seed(
            Secret { key: 0, calls: 0 },
            CostModel::zero(),
            [2; 32],
        );
        assert_ne!(a.platform_key(), b.platform_key());
    }

    #[test]
    fn reset_stats_zeroes_counters() {
        let enclave = Enclave::launch(Secret { key: 1, calls: 0 }, CostModel::zero());
        enclave.ecall(b"abc");
        enclave.note_marshal_reuse(17);
        enclave.reset_stats();
        assert_eq!(enclave.stats(), EnclaveStats::default());
    }

    #[test]
    fn marshal_reuse_accumulates_in_stats_and_registry() {
        let enclave = Enclave::launch(Secret { key: 0, calls: 0 }, CostModel::zero());
        let registry = dcert_obs::Registry::new();
        enclave.attach_obs(&registry);
        enclave.note_marshal_reuse(100);
        enclave.note_marshal_reuse(28);
        assert_eq!(enclave.stats().marshal_reuse_bytes, 128);
        assert_eq!(
            registry.snapshot().counter("enclave.marshal_reuse_bytes"),
            128
        );
        // Attribution only: the cost model never sees these bytes.
        assert_eq!(enclave.stats().ecalls, 0);
        assert_eq!(enclave.stats().bytes_in, 0);
    }

    #[test]
    fn repeated_small_ecalls_accumulate_epc_residency_and_page() {
        let cost = CostModel {
            transition_ns: 0,
            per_byte_ns: 0,
            epc_budget_bytes: 1000,
            paging_per_byte_ns: 0,
            in_enclave_slowdown_pct: 0,
        };
        let enclave = Enclave::launch(Secret { key: 0, calls: 0 }, cost);
        // Each call crosses 100 bytes in + 100 bytes out (xor echo), far
        // below the 1000-byte budget individually. After 5 calls the
        // cumulative working set hits the budget; the next 5 page fully.
        for _ in 0..10 {
            enclave.ecall(&[0u8; 100]);
        }
        assert_eq!(enclave.epc_resident_bytes(), 2000);
        assert_eq!(enclave.stats().paged_bytes, 1000);
        // Counter resets must not pretend the EPC emptied.
        enclave.reset_stats();
        assert_eq!(enclave.epc_resident_bytes(), 2000);
        enclave.ecall(&[0u8; 100]);
        assert_eq!(enclave.stats().paged_bytes, 200, "fully beyond budget");
        // An explicit teardown does empty it.
        enclave.reset_epc_residency();
        assert_eq!(enclave.epc_resident_bytes(), 0);
    }

    #[test]
    fn attached_registry_mirrors_boundary_accounting() {
        let cost = CostModel {
            transition_ns: 0,
            per_byte_ns: 0,
            epc_budget_bytes: 150,
            paging_per_byte_ns: 0,
            in_enclave_slowdown_pct: 0,
        };
        let enclave = Enclave::launch(Secret { key: 0, calls: 0 }, cost);
        let registry = dcert_obs::Registry::new();
        enclave.attach_obs(&registry);
        enclave.ecall(&[0u8; 100]);
        enclave.ecall(&[0u8; 100]);
        let snapshot = registry.snapshot();
        let stats = enclave.stats();
        assert_eq!(snapshot.counter("enclave.ecalls"), stats.ecalls);
        assert_eq!(snapshot.counter("enclave.bytes_in"), stats.bytes_in);
        assert_eq!(snapshot.counter("enclave.bytes_out"), stats.bytes_out);
        assert_eq!(snapshot.counter("enclave.paged_bytes"), stats.paged_bytes);
        assert!(stats.paged_bytes > 0, "budget of 150 must page by call 2");
        assert_eq!(
            snapshot.gauge("enclave.epc_resident_bytes"),
            i64::try_from(enclave.epc_resident_bytes()).unwrap()
        );
        let crossings = snapshot
            .histograms
            .get("enclave.crossing_bytes")
            .expect("histogram registered");
        assert_eq!(crossings.count, 4, "two calls, in + out each");
    }

    #[test]
    fn disabled_registry_keeps_enclave_behavior_and_exports_nothing() {
        let enclave = Enclave::launch(
            Secret {
                key: 0xff,
                calls: 0,
            },
            CostModel::zero(),
        );
        let registry = dcert_obs::Registry::disabled();
        enclave.attach_obs(&registry);
        let out = enclave.ecall(&[0x0f, 0xf0]);
        assert_eq!(out, vec![0xf0, 0x0f]);
        assert_eq!(enclave.stats().ecalls, 1);
        assert_eq!(registry.snapshot(), dcert_obs::Snapshot::default());
    }

    #[test]
    fn concurrent_ecalls_serialize_and_account_exactly() {
        const THREADS: u64 = 8;
        const CALLS_PER_THREAD: u64 = 32;
        let enclave = Arc::new(Enclave::launch(
            Secret {
                key: 0x55,
                calls: 0,
            },
            CostModel::zero(),
        ));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let enclave = Arc::clone(&enclave);
                thread::spawn(move || {
                    for _ in 0..CALLS_PER_THREAD {
                        let out = enclave.ecall(&[0x00, 0xff]);
                        // Each call sees a consistent trusted program.
                        assert_eq!(out, vec![0x55, 0xaa]);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let stats = enclave.stats();
        // No lost updates: every crossing is counted under the lock.
        assert_eq!(stats.ecalls, THREADS * CALLS_PER_THREAD);
        assert_eq!(stats.bytes_in, THREADS * CALLS_PER_THREAD * 2);
        assert_eq!(stats.bytes_out, THREADS * CALLS_PER_THREAD * 2);
    }
}
